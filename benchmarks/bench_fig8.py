"""Figure 8 bench: CPU contention throttles the sender; a DSRT
reservation restores it.

Shape assertions (§5.5): steady full rate; significant drop once the
hog starts; full rate again once the 90% CPU reservation activates.
"""

from repro.experiments.fig8_cpu_reservation import run


def test_fig8_cpu_reservation(once):
    result = once(run, quick=True)
    target = result.extra["target_kbps"]
    before = result.extra["before_contention_kbps"]
    during = result.extra["during_contention_kbps"]
    after = result.extra["after_reservation_kbps"]
    assert before > 0.95 * target
    assert during < 0.75 * before, "the hog must visibly throttle the app"
    assert after > 0.9 * target, "the DSRT reservation must restore it"
