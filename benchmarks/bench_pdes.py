#!/usr/bin/env python
"""PDES speedup-vs-shards benchmark on the garnet_xl grid.

Runs the ``garnet_xl`` scenario (1,000 routers, 100k flows; see
:mod:`repro.pdes.scenarios`) at each requested shard count and reports
wall time, events/second, and speedup relative to the first count.
Every run's merged output must be byte-identical to the reference and
every sharded run must conserve the total event count exactly — a
violation fails the benchmark regardless of the timings.

The speedup column is honest: on a one-core container the fork backend
cannot beat serial (CI gates only determinism and the exact event
counts; the speedup curve is informative there). On a multi-core
machine expect the curve to track core count until the
windows-per-simulated-second overhead dominates.

Usage::

    python benchmarks/bench_pdes.py                     # 1,2,4 shards
    python benchmarks/bench_pdes.py --shards 1,2,4,8
    python benchmarks/bench_pdes.py --update            # record baseline
    python benchmarks/bench_pdes.py --check             # gate vs baseline

``--update`` appends the measurement to the ``speedup_history`` list in
``BENCH_pdes.json`` (the same file whose ``history`` list carries the
``perf_smoke --workload pdes`` throughput baseline). ``--check``
additionally verifies the per-shard event counts against the most
recent recorded entry — exact match required.
"""

from __future__ import annotations

import argparse
import gc
import json
import platform
import sys
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO / "src"))

BENCH_FILE = REPO / "BENCH_pdes.json"


def run_counts(scenario: str, seed: int, counts, backend: str, duration):
    from repro.pdes import run_scenario

    reference = None
    rows = []
    for shards in counts:
        gc.disable()
        try:
            result = run_scenario(
                scenario, seed=seed, shards=shards, backend=backend,
                duration=duration,
            )
        finally:
            gc.enable()
            gc.collect()
        payload = json.dumps(result.merged, sort_keys=True)
        if reference is None:
            reference = (payload, result.total_events)
        else:
            if payload != reference[0]:
                raise SystemExit(
                    f"{scenario} x{shards}: merged output diverged from "
                    f"x{counts[0]} — the PDES determinism contract is broken"
                )
            if result.total_events != reference[1]:
                raise SystemExit(
                    f"{scenario} x{shards}: processed "
                    f"{result.total_events} events vs {reference[1]} at "
                    f"x{counts[0]} — events were lost or duplicated"
                )
        rows.append(result)
    return rows


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--scenario", default="garnet_xl")
    parser.add_argument("--shards", default="1,2,4",
                        help="comma-separated shard counts (first = reference)")
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--duration", type=float, default=None)
    parser.add_argument("--backend", default="auto",
                        choices=["auto", "inline", "fork"])
    parser.add_argument("--update", action="store_true",
                        help="append this measurement to BENCH_pdes.json")
    parser.add_argument("--check", action="store_true",
                        help="fail if per-shard event counts drift from the "
                             "recorded baseline")
    parser.add_argument("--label", default="measurement")
    args = parser.parse_args(argv)

    counts = [int(s) for s in args.shards.split(",") if s.strip()]
    results = run_counts(
        args.scenario, args.seed, counts, args.backend, args.duration
    )

    base_wall = results[0].wall_s
    print(
        f"{'shards':>6s} {'backend':>8s} {'wall s':>8s} {'events/s':>12s} "
        f"{'speedup':>8s} {'windows':>8s} {'boundary':>9s}"
    )
    measured = []
    for r in results:
        speedup = base_wall / r.wall_s if r.wall_s else float("nan")
        print(
            f"{r.n_shards:6d} {r.backend:>8s} {r.wall_s:8.2f} "
            f"{r.total_events / r.wall_s:12,.0f} {speedup:8.2f} "
            f"{r.windows:8d} {sum(r.boundary_messages):9d}"
        )
        measured.append({
            "shards": r.n_shards,
            "backend": r.backend,
            "wall_seconds": round(r.wall_s, 3),
            "speedup": round(speedup, 3),
            "events": r.total_events,
            "per_shard_events": list(r.per_shard_events),
            "windows": r.windows,
            "boundary_messages": sum(r.boundary_messages),
        })
    print(
        f"determinism: all {len(counts)} layouts byte-identical, "
        f"{results[0].total_events} events conserved"
    )

    bench = json.loads(BENCH_FILE.read_text()) if BENCH_FILE.exists() else {
        "benchmark": "garnet_xl PDES: shard-count invariance and speedup",
        "history": [],
    }

    status = 0
    if args.check:
        history = bench.get("speedup_history", [])
        if not history:
            print("no speedup baseline in BENCH_pdes.json; run --update")
            return 1
        baseline = history[-1]
        want = {e["shards"]: e["per_shard_events"] for e in baseline["runs"]}
        for m in measured:
            expected = want.get(m["shards"])
            if expected is None:
                continue
            if m["per_shard_events"] != expected:
                print(
                    f"FAIL: x{m['shards']} per-shard events "
                    f"{m['per_shard_events']} != baseline {expected} "
                    f"(from {baseline['label']!r})"
                )
                status = 1
        if status == 0:
            print("OK: per-shard event counts match the recorded baseline")

    if args.update:
        bench.setdefault("speedup_history", []).append({
            "label": args.label,
            "scenario": args.scenario,
            "seed": args.seed,
            "python": platform.python_version(),
            "runs": measured,
        })
        BENCH_FILE.write_text(json.dumps(bench, indent=2) + "\n")
        print(f"recorded in {BENCH_FILE}")

    return status


if __name__ == "__main__":
    sys.exit(main())
