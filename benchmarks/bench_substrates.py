"""Substrate microbenchmarks: simulator, TCP, and MPI engine speed.

Unlike the figure benches (single whole-simulation runs), these are
true repeated-measurement microbenchmarks of the hot paths, so
regressions in the event loop or the TCP datapath show up directly.
"""

from repro.kernel import Simulator
from repro.mpi import MpiWorld
from repro.net import DropTailQueue, Network, mbps
from repro.transport import TcpLayer


def test_event_loop_throughput(benchmark):
    """Raw timer scheduling/dispatch rate of the kernel."""

    def run_timers():
        sim = Simulator()
        count = 50_000

        def tick():
            pass

        for i in range(count):
            sim.call_in(i * 1e-6, tick)
        sim.run()
        return sim.events_processed

    events = benchmark(run_timers)
    assert events == 50_000


def test_process_switch_throughput(benchmark):
    """Generator-process resume rate (ping-pong via timeouts)."""

    def run_processes():
        sim = Simulator()
        done = []

        def worker():
            for _ in range(5_000):
                yield sim.timeout(1e-6)
            done.append(True)

        for _ in range(4):
            sim.process(worker())
        sim.run()
        return len(done)

    assert benchmark(run_processes) == 4


def test_tcp_bulk_transfer_speed(benchmark):
    """Simulated-bytes-per-wall-second of the TCP datapath."""

    def transfer():
        sim = Simulator()
        net = Network(sim)
        a, b = net.add_host("a"), net.add_host("b")
        net.connect(a, b, mbps(100), 0.5e-3,
                    lambda: DropTailQueue(limit_packets=2000))
        net.build_routes()
        tcp_a, tcp_b = TcpLayer(a), TcpLayer(b)
        listener = tcp_b.listen(80)
        total = 5_000_000
        state = {}

        def server():
            conn = yield listener.accept()
            got = 0
            while got < total:
                got += yield conn.recv(1 << 20)
            state["got"] = got

        def client():
            conn = tcp_a.connect(b.addr, 80)
            yield conn.established_event
            sent = 0
            while sent < total:
                yield conn.send(1 << 16)
                sent += 1 << 16

        done = sim.process(server())
        sim.process(client())
        sim.run_until_event(done, limit=100.0)
        return state["got"]

    # The client sends whole 64 KB chunks, so the server may read past
    # the nominal total by part of the final chunk.
    assert benchmark(transfer) >= 5_000_000


def test_mpi_pingpong_latency_overhead(benchmark):
    """Engine overhead for many small MPI messages."""

    def pingpong():
        sim = Simulator()
        net = Network(sim)
        a, b = net.add_host("a"), net.add_host("b")
        net.connect(a, b, mbps(100), 0.1e-3)
        net.build_routes()
        world = MpiWorld(sim, [a, b])
        rounds = 300
        count = []

        def main(comm):
            if comm.rank == 0:
                for _ in range(rounds):
                    yield comm.send(1, nbytes=1000)
                    yield comm.recv(source=1)
                count.append(True)
            else:
                for _ in range(rounds):
                    yield comm.recv(source=0)
                    yield comm.send(0, nbytes=1000)

        procs = world.launch(main)
        sim.run_until_event(sim.all_of(procs), limit=100.0)
        return len(count)

    assert benchmark(pingpong) == 1
