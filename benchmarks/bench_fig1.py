"""Figure 1 bench: TCP above its reservation oscillates below it.

Shape assertions (paper: flow reserved at 40 Mb/s, sending 50 Mb/s,
bandwidth varies wildly between roughly 20 and 55 Mb/s):

* the mean sits below the attempted rate and near/below the reservation;
* the trace genuinely oscillates (non-trivial standard deviation);
* dips fall well below the reservation, peaks approach/exceed it.
"""

import numpy as np

from repro.experiments.fig1_tcp_reservation import run


def test_fig1_oscillation(once):
    result = once(run, quick=True, duration=30.0)
    reserved = result.extra["reserved_kbps"]
    attempted = result.extra["attempted_kbps"]
    mean = result.extra["mean_kbps"]
    assert mean < attempted, "cannot exceed the attempted sending rate"
    assert mean > 0.4 * reserved, "flow should still move real data"
    assert mean < 1.05 * reserved, "policing must bite"
    # Wild variation: dips and peaks around the reservation.
    assert result.extra["std_kbps"] > 0.05 * reserved
    assert result.extra["min_kbps"] < 0.85 * reserved
    assert result.extra["max_kbps"] > 0.95 * reserved
    assert result.extra["retransmissions"] > 0
