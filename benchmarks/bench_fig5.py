"""Figure 5 bench: ping-pong throughput vs reservation under contention.

Shape assertions (§5.2):

* throughput rises with the reservation until "adequate", then flattens;
* without a reservation the contended flow is crushed;
* bigger messages reach a higher plateau (latency-bound regime);
* under-reserved throughput is far below the reservation itself.
"""

from repro.experiments.fig5_pingpong import measure_point


def _sweep(message_bits, reservations, duration=2.0):
    return {
        r: measure_point(message_bits, r, duration=duration)
        for r in reservations
    }


def test_fig5_shape(once):
    def experiment():
        small = _sweep(8_000, (0, 2000, 12000))
        large = _sweep(120_000, (500, 2000, 6000, 12000))
        return small, large

    small, large = once(experiment)

    # No reservation: essentially starved by the UDP blast.
    assert small[0] < 0.2 * small[12000]
    # Rising then flat: the small message saturates early.
    assert small[2000] > 0.4 * small[12000]
    # Large messages rise across the whole sweep and end higher.
    assert large[500] < large[2000] < large[6000] < large[12000]
    assert large[12000] > 2.0 * small[12000]
    # "Throughput observed was much lower than the reservation, until
    # the reservation was large enough": deeply inadequate reservations
    # deliver well under their own size (TCP backs off on the drops).
    assert large[500] < 0.7 * 500
