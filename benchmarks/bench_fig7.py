"""Figure 7 bench: burst structure of the two 400 Kb/s profiles.

Shape assertions: both profiles move the same volume per second, but
the 1 fps program concentrates its data into far larger instantaneous
bursts ("sends all of its data in one much larger burst").
"""

from repro.experiments.fig7_burstiness_traces import run


def test_fig7_burst_contrast(once):
    result = once(run, quick=True)
    rows = {row[0]: row for row in result.rows}
    smooth = rows["10fps x 40Kb"]
    bursty = rows["1fps x 400Kb"]
    # Equal-ish volume over the one-second window (same average rate).
    assert 0.5 * smooth[1] <= bursty[1] <= 2.0 * smooth[1]
    # The bursty profile's largest 50 ms burst dwarfs the smooth one's.
    assert bursty[2] > 3.0 * smooth[2]
    # The smooth profile's largest burst is about one frame (5 KB).
    assert smooth[2] < 10.0
