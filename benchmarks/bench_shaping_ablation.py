"""Ablation: end-system traffic shaping (the §5.4 proposal).

The paper closes §5.4 by proposing to "incorporate traffic-shaping
support into the MPICH-GQ implementation on the end-system" as the
alternative to ever-deeper router buckets. This bench demonstrates it:
the bursty 1 fps flow, which with the normal bucket needs a ~1.5x
reservation, achieves its full rate at the *smooth* flow's reservation
once the sender shapes its own traffic.
"""

from repro.experiments.fig6_visualization import measure_point

BANDWIDTH_KBPS = 400.0
RESERVATION_KBPS = 550.0  # adequate for the smooth 10 fps profile
FRAME_KB = 50_000 / 1024  # 1 fps at 400 Kb/s


def test_shaping_rescues_bursty_flow(once):
    def experiment():
        unshaped = measure_point(
            FRAME_KB, RESERVATION_KBPS, duration=8.0, fps=1.0,
            bucket_divisor=40.0, shaped=False,
        )
        shaped = measure_point(
            FRAME_KB, RESERVATION_KBPS, duration=8.0, fps=1.0,
            bucket_divisor=40.0, shaped=True,
        )
        return unshaped, shaped

    unshaped, shaped = once(experiment)
    # Without shaping, the burst blows through the normal bucket and
    # TCP pays the recovery cost: the stream misses its target.
    assert unshaped < 0.9 * BANDWIDTH_KBPS
    # With end-system shaping, the same reservation delivers in full.
    assert shaped > 0.95 * BANDWIDTH_KBPS
    assert shaped > 1.1 * unshaped
