"""Benchmark-suite configuration.

Each benchmark runs a scaled-down ("quick") variant of one paper
experiment exactly once under pytest-benchmark's pedantic mode (these
are whole-simulation runs, not microbenchmarks — except the substrate
suite) and then asserts the *shape* properties the paper reports.

Passing ``--metrics-out DIR`` activates the :mod:`repro.telemetry`
session for every benchmark and dumps one ``<test>.metrics.json`` per
test into DIR. Without the flag telemetry stays off, so benchmark
timings measure the uninstrumented (guard-only) hot path.
"""

import re

import pytest

from repro import telemetry


def pytest_addoption(parser):
    parser.addoption(
        "--metrics-out",
        action="store",
        default=None,
        help="directory for per-benchmark telemetry metric dumps "
             "(enables telemetry collection)",
    )


@pytest.fixture(autouse=True)
def _telemetry_session(request):
    """Install an active telemetry session when --metrics-out is given."""
    out = request.config.getoption("--metrics-out")
    if out is None:
        yield None
        return
    # Same per-packet exclusions as the experiment runner: the
    # registry already summarises tx/segment/mark volumes, and an
    # unfiltered trace of one benchmark run is hundreds of MB.
    tel = telemetry.Telemetry(
        trace=telemetry.FlowTrace(
            exclude=(
                ("net", "tx"),
                ("tcp", "segment"),
                ("diffserv", "mark"),
            ),
            limit=200_000,
        )
    )
    telemetry.install(tel)
    try:
        yield tel
    finally:
        telemetry.uninstall()
        from pathlib import Path

        slug = re.sub(r"[^A-Za-z0-9_.-]+", "_", request.node.name)
        telemetry.export_json(
            tel,
            Path(out) / f"{slug}.metrics.json",
            meta={"test": request.node.nodeid},
        )


def run_once(benchmark, fn, *args, **kwargs):
    """Run ``fn`` once under the benchmark and return its result."""
    return benchmark.pedantic(fn, args=args, kwargs=kwargs,
                              rounds=1, iterations=1, warmup_rounds=0)


@pytest.fixture
def once(benchmark):
    def _run(fn, *args, **kwargs):
        return run_once(benchmark, fn, *args, **kwargs)

    return _run
