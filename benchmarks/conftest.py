"""Benchmark-suite configuration.

Each benchmark runs a scaled-down ("quick") variant of one paper
experiment exactly once under pytest-benchmark's pedantic mode (these
are whole-simulation runs, not microbenchmarks — except the substrate
suite) and then asserts the *shape* properties the paper reports.

Passing ``--metrics-out DIR`` activates the :mod:`repro.telemetry`
session for every benchmark and dumps one ``<test>.metrics.json`` per
test into DIR. Without the flag telemetry stays off, so benchmark
timings measure the uninstrumented (guard-only) hot path.
"""

import re

import pytest

from repro import telemetry


def pytest_addoption(parser):
    parser.addoption(
        "--metrics-out",
        action="store",
        default=None,
        help="directory for per-benchmark telemetry metric dumps "
             "(enables telemetry collection)",
    )
    parser.addoption(
        "--bench-parallel",
        action="store",
        type=int,
        default=1,
        metavar="N",
        help="fan seed-sweep benchmarks out over N worker processes "
             "(default: serial). Each swept run is an independent "
             "simulation, so results are identical either way.",
    )


@pytest.fixture(autouse=True)
def _telemetry_session(request):
    """Install an active telemetry session when --metrics-out is given."""
    out = request.config.getoption("--metrics-out")
    if out is None:
        yield None
        return
    # Same per-packet exclusions as the experiment runner: the
    # registry already summarises tx/segment/mark volumes, and an
    # unfiltered trace of one benchmark run is hundreds of MB.
    tel = telemetry.Telemetry(
        trace=telemetry.FlowTrace(
            exclude=(
                ("net", "tx"),
                ("tcp", "segment"),
                ("diffserv", "mark"),
            ),
            limit=200_000,
        )
    )
    telemetry.install(tel)
    try:
        yield tel
    finally:
        telemetry.uninstall()
        from pathlib import Path

        slug = re.sub(r"[^A-Za-z0-9_.-]+", "_", request.node.name)
        telemetry.export_json(
            tel,
            Path(out) / f"{slug}.metrics.json",
            meta={"test": request.node.nodeid},
        )


def run_once(benchmark, fn, *args, **kwargs):
    """Run ``fn`` once under the benchmark and return its result."""
    return benchmark.pedantic(fn, args=args, kwargs=kwargs,
                              rounds=1, iterations=1, warmup_rounds=0)


@pytest.fixture
def once(benchmark):
    def _run(fn, *args, **kwargs):
        return run_once(benchmark, fn, *args, **kwargs)

    return _run


@pytest.fixture
def fanout(request):
    """Map a function over independent items, optionally in parallel.

    ``fanout(fn, items)`` returns ``[fn(item) for item in items]``,
    preserving order. With ``--bench-parallel N`` (N > 1) the calls
    run in a fork-based pool of up to N workers; ``fn`` must then be
    a module-level (picklable) function. Telemetry sessions do not
    cross the fork boundary, so seed sweeps under --metrics-out
    should stay serial.
    """
    n = request.config.getoption("--bench-parallel")

    def _map(fn, items):
        items = list(items)
        if n <= 1 or len(items) <= 1:
            return [fn(item) for item in items]
        import multiprocessing as mp

        with mp.get_context("fork").Pool(min(n, len(items))) as pool:
            return pool.map(fn, items)

    return _map
