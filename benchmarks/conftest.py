"""Benchmark-suite configuration.

Each benchmark runs a scaled-down ("quick") variant of one paper
experiment exactly once under pytest-benchmark's pedantic mode (these
are whole-simulation runs, not microbenchmarks — except the substrate
suite) and then asserts the *shape* properties the paper reports.
"""

import pytest


def run_once(benchmark, fn, *args, **kwargs):
    """Run ``fn`` once under the benchmark and return its result."""
    return benchmark.pedantic(fn, args=args, kwargs=kwargs,
                              rounds=1, iterations=1, warmup_rounds=0)


@pytest.fixture
def once(benchmark):
    def _run(fn, *args, **kwargs):
        return run_once(benchmark, fn, *args, **kwargs)

    return _run
