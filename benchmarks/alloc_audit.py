#!/usr/bin/env python
"""Allocation audit: tracemalloc + slab-reuse counts for the datapath.

Runs a short fig1 grid once per simulator mode and reports, for each:

* tracemalloc's peak traced memory and live-at-end block counts for
  the datapath modules (net/transport/kernel/diffserv), with the
  heaviest live sites; and
* the *datagram allocation churn*: how many datagram objects were
  actually constructed for how many datagrams sent. Packet mode
  allocates one ``Packet`` per datagram; batch/hybrid modes draw from
  the struct-of-arrays slab, which recycles a small working set of
  ``SlabPacket`` views — the churn ratio is the point of the slab.

Note the slab *raises* live-at-end memory (its arrays and free list
are preallocated and permanent) while cutting per-datagram transient
allocations; read the two numbers together.

Usage::

    python benchmarks/alloc_audit.py            # print the comparison
    python benchmarks/alloc_audit.py --json F   # also write JSON

Numbers move with workload duration and Python version; treat the
recorded history in INTERNALS.md as indicative, not a gate. (The
gates live in perf_smoke.py: event-count pins and throughput floors.)
"""

from __future__ import annotations

import argparse
import json
import platform
import sys
import tracemalloc
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO / "src"))

#: Modules whose allocations count as "datapath" for the summary.
DATAPATH_PREFIXES = (
    "repro/net/",
    "repro/transport/",
    "repro/kernel/",
    "repro/diffserv/",
)

DURATION = 4.0


def _run(mode: str):
    from repro.experiments import fig1_tcp_reservation
    from repro.kernel import simulator as sim_mod

    sims = []
    orig_init = sim_mod.Simulator.__init__

    def tracking_init(self, *args, **kwargs):
        orig_init(self, *args, **kwargs)
        sims.append(self)

    sim_mod.Simulator.__init__ = tracking_init
    tracemalloc.start(10)
    tracemalloc.clear_traces()
    try:
        fig1_tcp_reservation.run(
            quick=True, seed=0, duration=DURATION, mode=mode
        )
    finally:
        sim_mod.Simulator.__init__ = orig_init
    _, peak = tracemalloc.get_traced_memory()
    snapshot = tracemalloc.take_snapshot()
    tracemalloc.stop()

    stats = snapshot.statistics("lineno")
    datapath = [
        s for s in stats
        if any(p in s.traceback[0].filename for p in DATAPATH_PREFIXES)
    ]
    top = [
        {
            "site": f"{Path(s.traceback[0].filename).name}"
                    f":{s.traceback[0].lineno}",
            "blocks": s.count,
            "kib": round(s.size / 1024, 1),
        }
        for s in sorted(datapath, key=lambda s: s.count, reverse=True)[:6]
    ]

    # Datagram churn: in batch mode the pool's counters say how many
    # datagrams were served by how many actual view allocations. In
    # packet mode there is no pool — one Packet per datagram, always.
    pool_stats = None
    for sim in sims:
        if sim.packet_pool is not None:
            pool_stats = sim.packet_pool.stats()
    return {
        "mode": mode,
        "peak_kib": round(peak / 1024, 1),
        "live_blocks_total": sum(s.count for s in stats),
        "live_kib_total": round(sum(s.size for s in stats) / 1024, 1),
        "datapath_live_blocks": sum(s.count for s in datapath),
        "datapath_live_kib": round(
            sum(s.size for s in datapath) / 1024, 1
        ),
        "top_datapath_sites": top,
        "pool": pool_stats,
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--json", type=Path, default=None,
                        help="write the full comparison as JSON")
    args = parser.parse_args(argv)

    results = [_run("packet"), _run("batch")]
    for r in results:
        print(
            f"{r['mode']:>7s}: peak {r['peak_kib']:10.1f} KiB; "
            f"{r['live_blocks_total']:8d} live blocks at end "
            f"({r['live_kib_total']:10.1f} KiB), datapath "
            f"{r['datapath_live_blocks']:8d} "
            f"({r['datapath_live_kib']:8.1f} KiB)"
        )
        for site in r["top_datapath_sites"]:
            print(f"         {site['site']:36s} {site['blocks']:8d} blocks "
                  f"{site['kib']:8.1f} KiB")
        if r["pool"]:
            p = r["pool"]
            churn = p["recycled_views"] / p["acquired"] if p["acquired"] else 0
            print(
                f"         slab: {p['acquired']} datagrams served by "
                f"{p['acquired'] - p['recycled_views']} view allocations "
                f"({p['recycled_views']} recycled, {churn:.1%} reuse; "
                f"{p['overflow']} overflowed to plain Packet)"
            )

    if args.json is not None:
        payload = {"python": platform.python_version(),
                   "duration": DURATION, "results": results}
        args.json.write_text(json.dumps(payload, indent=2) + "\n")
        print(f"wrote {args.json}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
