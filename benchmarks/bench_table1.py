"""Table 1 bench: required reservation vs burstiness and bucket depth.

Shape assertions (§5.4): for a fixed 400 Kb/s target,

* the smooth (10 fps) profile needs a modest margin over the target;
* the bursty (1 fps) profile with the normal (bw/40) bucket needs
  roughly 50% more than the smooth profile;
* the large (bw/4) bucket removes the burstiness penalty entirely.
"""

from repro.experiments.table1_burstiness import required_reservation


def test_table1_row_400(once):
    def experiment():
        smooth = required_reservation(400, 10.0, 40.0, duration=5.0,
                                      resolution_kbps=100.0)
        bursty = required_reservation(400, 1.0, 40.0, duration=5.0,
                                      resolution_kbps=100.0)
        large = required_reservation(400, 1.0, 4.0, duration=5.0,
                                     resolution_kbps=100.0)
        return smooth, bursty, large

    smooth, bursty, large = once(experiment)
    assert smooth == smooth and bursty == bursty and large == large, (
        "every cell must be satisfiable within the search range"
    )
    # Smooth: adequate with a modest margin (paper: 500 for 400).
    assert smooth <= 1.5 * 400
    # Bursty/normal needs a clearly larger reservation than smooth.
    assert bursty >= 1.15 * smooth
    # The large bucket erases the penalty.
    assert large <= 1.05 * smooth
