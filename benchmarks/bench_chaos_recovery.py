"""Chaos recovery: premium bandwidth before/during/after a backbone
failure, with the resilient stack rerouting onto the standby core.

A leased premium reservation carries a shaped TCP stream over GARNET's
primary backbone. At FAIL_AT the edge1--core link dies: TCP stalls on
RTO backoff, routing fails over to the standby core, and the lease
re-admits its claims on the new path. The bench reports the bandwidth
in each phase plus the recovery time, and asserts the whole timeline is
deterministic for a fixed seed.
"""

import numpy as np

from repro.core import Shaper
from repro.core.mpichgq import MpichGQ
from repro.diffserv import FlowSpec
from repro.faults import ChaosSchedule
from repro.gara import NetworkReservationSpec
from repro.kernel import Simulator
from repro.net import garnet, mbps
from repro.net.packet import PROTO_TCP
from repro.transport.tcp import TcpConfig

DURATION = 20.0
FAIL_AT = 7.0
RESTORE_AT = 14.0
RATE = mbps(40)


def chaos_run(seed: int = 0):
    sim = Simulator(seed=seed)
    testbed = garnet(
        sim,
        backbone_bandwidth=mbps(155),
        backbone_delay=2e-3,
        redundant_backbone=True,
    )
    cfg = TcpConfig(sndbuf=1 << 20, rcvbuf=1 << 20, max_rto=1.0)
    gq = MpichGQ.on_garnet(testbed, tcp_config=cfg, resilient=True)
    spec = NetworkReservationSpec(
        testbed.premium_src, testbed.premium_dst, RATE, bucket_divisor=16.0
    )
    flow = FlowSpec(
        src=testbed.premium_src.addr,
        dst=testbed.premium_dst.addr,
        dport=5501,
        proto=PROTO_TCP,
    )
    lease = gq.lease_manager.lease(spec, bindings=[flow])

    chaos = ChaosSchedule(sim, testbed.network)
    chaos.at(FAIL_AT).fail_link("edge1", "core")
    chaos.at(RESTORE_AT).restore_link("edge1", "core")

    listener = gq.world.procs[1].tcp.listen(5501, config=cfg)
    state = {}

    def server():
        conn = yield listener.accept()
        state["server"] = conn
        while True:
            if (yield conn.recv(1 << 20)) == 0:
                return

    def client():
        conn = gq.world.procs[0].tcp.connect(
            testbed.premium_dst.addr, 5501, config=cfg
        )
        yield conn.established_event
        shaper = Shaper(sim, rate=mbps(50), depth_bytes=64 * 1024)
        while sim.now < DURATION:
            yield from shaper.acquire(16 * 1024)
            yield conn.send(16 * 1024)

    sim.process(server())
    sim.process(client())
    sim.run(until=DURATION)

    binsize = 0.25
    _t, rates = state["server"].delivered_counter.rate_series(
        binsize, 0, DURATION
    )
    series = rates * 8 / 1e6  # Mb/s per bin
    bins = np.arange(len(series)) * binsize

    def phase_mean(start, end):
        sel = (bins >= start) & (bins < end)
        return float(series[sel].mean())

    before = phase_mean(2.0, FAIL_AT)
    during = phase_mean(FAIL_AT, RESTORE_AT)
    after = phase_mean(RESTORE_AT, DURATION)
    # Recovery: first bin after the failure back above 80% of the
    # pre-failure bandwidth.
    recovered = np.nonzero((bins > FAIL_AT) & (series > 0.8 * before))[0]
    recovery_time = (
        float(bins[recovered[0]] - FAIL_AT) if len(recovered) else float("inf")
    )
    return {
        "before": before,
        "during": during,
        "after": after,
        "recovery_time": recovery_time,
        "lease": (lease.state, lease.degradations, lease.readmissions),
        "trace": tuple(np.round(series, 6)),
    }


def test_backbone_flap_recovers(once):
    stats = once(chaos_run)
    # Pre-failure: the shaped stream runs at its offered ~40 Mb/s.
    assert 35.0 < stats["before"] < 45.0
    # The failure bites (TCP stalls while RTO backoff rides it out),
    # then the standby core carries the stream again: the during-phase
    # average stays well above zero and recovery is fast.
    assert stats["during"] > 0.5 * stats["before"]
    assert stats["recovery_time"] < 3.0
    # After the primary returns, full service continues.
    assert 35.0 < stats["after"] < 45.0
    # The lease degraded exactly once and re-admitted on the new path.
    assert stats["lease"] == ("HELD", 1, 1)


def test_same_seed_identical_timeline(once):
    def experiment():
        return chaos_run(seed=5), chaos_run(seed=5)

    first, second = once(experiment)
    assert first["trace"] == second["trace"]
    assert first["recovery_time"] == second["recovery_time"]
    assert first["lease"] == second["lease"]
