"""Figure 6 bench: visualization throughput vs reservation.

Shape assertions (§5.3):

* full target rate once the reservation reaches ~1.06x the sending rate;
* a slightly-too-small reservation "dramatically decreases" throughput
  (worse than proportional scaling — the TCP congestion-control cliff);
* low reservations are much worse than linear scaling would suggest.
"""

from repro.experiments.fig6_visualization import measure_point

TARGET_KBPS = 2458  # 30 KB frames at 10 fps


def test_fig6_adequacy_cliff(once):
    def experiment():
        return {
            r: measure_point(30, r, duration=8.0)
            for r in (800, 2300, 2700)
        }

    points = once(experiment)
    # Adequate at ~1.06x target(+margin): full rate.
    assert points[2700] > 0.95 * TARGET_KBPS
    # A little bit too small: dramatic collapse, not a 6% loss.
    assert points[2300] < 0.65 * TARGET_KBPS
    # One third of the target reserved: far less than one third achieved
    # ("significantly worse than we would expect from simple scaling").
    assert points[800] < 0.33 * TARGET_KBPS
