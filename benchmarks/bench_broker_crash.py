"""Broker crash/recovery: premium bandwidth across a mid-run broker
process death, with journal replay reconstructing the slot tables.

A leased premium reservation carries a shaped TCP stream over GARNET
(the fig-1 setup). At CRASH_AT the bandwidth broker process dies and
loses all in-memory state; the failure detector degrades the lease to
best-effort, the data plane keeps moving bytes, and at RESTART_AT the
broker replays its write-ahead journal — reconstructing the exact
pre-crash slot-table state — after which the lease re-admits and EF
marking resumes. The bench asserts recovery equivalence (replay
snapshot == pre-crash snapshot), bandwidth convergence (post-recovery
within 5% of the no-crash steady state), the slot-table conservation
invariant, and seed determinism across a 5-seed soak.
"""

import numpy as np

from repro.core import Shaper
from repro.core.mpichgq import MpichGQ
from repro.diffserv import FlowSpec
from repro.faults import ChaosSchedule
from repro.gara import NetworkReservationSpec
from repro.kernel import Simulator
from repro.net import garnet, mbps
from repro.net.packet import PROTO_TCP
from repro.transport.tcp import TcpConfig

DURATION = 18.0
CRASH_AT = 6.0
RESTART_AT = 9.0
SETTLE = 4.0  # post-restart settle (policer-readjustment transient)
RATE = mbps(40)
SOAK_SEEDS = (0, 1, 2, 3, 4)


def crash_run(seed: int = 0, crash: bool = True):
    sim = Simulator(seed=seed)
    testbed = garnet(
        sim, backbone_bandwidth=mbps(155), backbone_delay=2e-3
    )
    cfg = TcpConfig(sndbuf=1 << 20, rcvbuf=1 << 20, max_rto=1.0)
    gq = MpichGQ.on_garnet(testbed, tcp_config=cfg, resilient=True)
    spec = NetworkReservationSpec(
        testbed.premium_src, testbed.premium_dst, RATE, bucket_divisor=16.0
    )
    flow = FlowSpec(
        src=testbed.premium_src.addr,
        dst=testbed.premium_dst.addr,
        dport=5501,
        proto=PROTO_TCP,
    )
    lease = gq.lease_manager.lease(spec, bindings=[flow])

    state = {}
    if crash:
        sim.call_at(
            CRASH_AT - 1e-3,
            lambda: state.update(pre_crash=gq.broker.snapshot()),
        )
        chaos = ChaosSchedule(sim, testbed.network)
        chaos.at(CRASH_AT).crash(gq.broker)
        chaos.at(RESTART_AT).restart(gq.broker)

    listener = gq.world.procs[1].tcp.listen(5501, config=cfg)

    def server():
        conn = yield listener.accept()
        state["server"] = conn
        while True:
            if (yield conn.recv(1 << 20)) == 0:
                return

    def client():
        conn = gq.world.procs[0].tcp.connect(
            testbed.premium_dst.addr, 5501, config=cfg
        )
        yield conn.established_event
        shaper = Shaper(sim, rate=mbps(50), depth_bytes=64 * 1024)
        while sim.now < DURATION:
            yield from shaper.acquire(16 * 1024)
            yield conn.send(16 * 1024)

    sim.process(server())
    sim.process(client())
    sim.run(until=DURATION)

    binsize = 0.25
    _t, rates = state["server"].delivered_counter.rate_series(
        binsize, 0, DURATION
    )
    series = rates * 8 / 1e6  # Mb/s per bin
    bins = np.arange(len(series)) * binsize

    def phase_mean(start, end):
        sel = (bins >= start) & (bins < end)
        return float(series[sel].mean())

    broker = gq.broker
    live_paths = len(gq.network_manager._claims)
    return {
        "before": phase_mean(2.0, CRASH_AT),
        "after": phase_mean(RESTART_AT + SETTLE, DURATION),
        "steady": phase_mean(2.0, DURATION),
        "lease": (lease.state, lease.degradations, lease.readmissions),
        "replay_matches": (
            crash and broker.last_replay_snapshot == state["pre_crash"]
        ),
        "invariant_holds": (
            broker.admissions
            - broker.releases
            - broker.orphan_paths_collected
            == live_paths
        ),
        "orphan_paths": broker.orphan_paths_collected,
        "suspicions": gq.detector.suspicions,
        "recoveries": gq.detector.recoveries,
        "trace": tuple(np.round(series, 6)),
    }


def test_broker_crash_recovers_within_5pct(once):
    def experiment():
        return crash_run(seed=0, crash=True), crash_run(seed=0, crash=False)

    crashed, baseline = once(experiment)
    # Journal replay reconstructed the exact pre-crash slot tables.
    assert crashed["replay_matches"]
    # The lease degraded during the outage and re-admitted afterwards.
    assert crashed["lease"] == ("HELD", 1, 1)
    assert crashed["suspicions"] == 1 and crashed["recoveries"] == 1
    # Post-recovery bandwidth within 5% of the no-crash steady state.
    steady = baseline["steady"]
    assert abs(crashed["after"] - steady) <= 0.05 * steady
    # Conservation: nothing double-booked, nothing stranded.
    assert crashed["invariant_holds"]
    assert crashed["orphan_paths"] == 0


def _soak_one(seed: int):
    """Module-level so --bench-parallel can ship it to pool workers."""
    return crash_run(seed=seed, crash=True)


def test_broker_crash_soak_5_seeds(once, fanout):
    def soak():
        return fanout(_soak_one, SOAK_SEEDS)

    runs = once(soak)
    for seed, stats in zip(SOAK_SEEDS, runs):
        # Convergence: the lease must be re-admitted and held again.
        assert stats["lease"][0] == "HELD", f"seed {seed} never converged"
        assert stats["replay_matches"], f"seed {seed} replay mismatch"
        assert stats["invariant_holds"], f"seed {seed} leaked claims"
        # The run's own pre-crash phase is its no-crash steady state.
        assert (
            abs(stats["after"] - stats["before"]) <= 0.05 * stats["before"]
        ), f"seed {seed} did not return to steady bandwidth"


def test_same_seed_identical_recovery(once):
    def experiment():
        return crash_run(seed=3), crash_run(seed=3)

    first, second = once(experiment)
    assert first["trace"] == second["trace"]
    assert first["lease"] == second["lease"]
