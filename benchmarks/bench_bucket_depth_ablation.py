"""Ablation: the token-bucket depth rule (DESIGN.md design choice).

§4.3 derives depth = bandwidth * delay but deploys bandwidth/40 "to
allow for larger bursts", and §5.4 shows even that failing for very
bursty flows. This bench sweeps the divisor for the bursty 1 fps flow
at a fixed reservation: deeper buckets (smaller divisors) monotonically
help, and overly shallow buckets starve the flow.
"""

from repro.experiments.fig6_visualization import measure_point

BANDWIDTH_KBPS = 400.0
RESERVATION_KBPS = 550.0
FRAME_KB = 50_000 / 1024  # 1 fps at 400 Kb/s


def test_depth_divisor_sweep(once):
    def experiment():
        return {
            divisor: measure_point(
                FRAME_KB, RESERVATION_KBPS, duration=8.0, fps=1.0,
                bucket_divisor=divisor,
            )
            for divisor in (400.0, 40.0, 4.0)
        }

    achieved = once(experiment)
    # Deeper buckets never hurt, and the ends differ dramatically.
    assert achieved[400.0] <= achieved[40.0] + 1.0
    assert achieved[40.0] <= achieved[4.0] + 1.0
    assert achieved[4.0] > 0.9 * BANDWIDTH_KBPS
    assert achieved[400.0] < 0.5 * BANDWIDTH_KBPS
