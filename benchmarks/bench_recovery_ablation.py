"""Ablation: Reno vs NewReno under token-bucket policing (Figure 1).

DESIGN.md's calibration note claims the paper's Figure 1 oscillation is
a classic-Reno artifact: NewReno's partial-ACK recovery rides the same
policer losses with a nearly flat line just under the reservation.
This bench runs the Fig 1 scenario under both recovery styles and
asserts that contrast.
"""

from repro.core import Shaper
from repro.diffserv import FlowSpec
from repro.gara import NetworkReservationSpec
from repro.kernel import Simulator
from repro.core.mpichgq import MpichGQ
from repro.apps import UdpTrafficGenerator
from repro.net import garnet, mbps
from repro.net.packet import PROTO_TCP
from repro.transport.tcp import TcpConfig

DURATION = 25.0


def trace_stats(recovery: str, seed: int = 0):
    sim = Simulator(seed=seed)
    testbed = garnet(sim, backbone_bandwidth=mbps(155), backbone_delay=2e-3)
    cfg = TcpConfig(sndbuf=1 << 20, rcvbuf=1 << 20, recovery=recovery)
    gq = MpichGQ.on_garnet(testbed, tcp_config=cfg)
    UdpTrafficGenerator(
        testbed.competitive_src, testbed.competitive_dst, rate=mbps(30)
    ).start()
    spec = NetworkReservationSpec(
        testbed.premium_src, testbed.premium_dst, mbps(40), bucket_divisor=16.0
    )
    reservation = gq.gara.reserve(spec)
    gq.gara.bind(
        reservation,
        FlowSpec(src=testbed.premium_src.addr, dst=testbed.premium_dst.addr,
                 dport=5501, proto=PROTO_TCP),
    )
    listener = gq.world.procs[1].tcp.listen(5501, config=cfg)
    state = {}

    def server():
        conn = yield listener.accept()
        state["server"] = conn
        while True:
            if (yield conn.recv(1 << 20)) == 0:
                return

    def client():
        conn = gq.world.procs[0].tcp.connect(
            testbed.premium_dst.addr, 5501, config=cfg
        )
        yield conn.established_event
        shaper = Shaper(sim, rate=mbps(50), depth_bytes=64 * 1024)
        while sim.now < DURATION:
            yield from shaper.acquire(16 * 1024)
            yield conn.send(16 * 1024)

    sim.process(server())
    sim.process(client())
    sim.run(until=DURATION)
    _t, rates = state["server"].delivered_counter.rate_series(1.0, 0, DURATION)
    mbps_series = rates[3:] * 8 / 1e6
    return float(mbps_series.mean()), float(mbps_series.std())


def test_reno_oscillates_newreno_flat(once):
    def experiment():
        return trace_stats("reno"), trace_stats("newreno")

    (reno_mean, reno_std), (nr_mean, nr_std) = once(experiment)
    # NewReno sits just under the reservation, nearly flat.
    assert 35.0 < nr_mean < 41.0
    assert nr_std < 3.0
    # Reno oscillates hard (the paper's trace).
    assert reno_std > 2.0 * nr_std
    assert reno_mean < nr_mean + 1.0
