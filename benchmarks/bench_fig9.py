"""Figure 9 bench: the full five-phase story — congestion, network
reservation, CPU contention, CPU reservation.

Shape assertions (§5.5): each contention phase visibly degrades the
35 Mb/s stream and each reservation restores it; "it is insufficient to
make just a network reservation or a CPU reservation: both reservations
are needed".
"""

from repro.experiments.fig9_combined import run


def test_fig9_phases(once):
    result = once(run, quick=True)
    target = result.extra["target_kbps"]
    p1 = result.extra["phase1_clean_kbps"]
    p2 = result.extra["phase2_congested_kbps"]
    p3 = result.extra["phase3_net_reserved_kbps"]
    p4 = result.extra["phase4_cpu_contended_kbps"]
    p5 = result.extra["phase5_both_reserved_kbps"]
    assert p1 > 0.95 * target
    assert p2 < 0.7 * p1, "network congestion must bite"
    assert p3 > 0.9 * target, "the network reservation must restore"
    assert p4 < 0.75 * p3, (
        "CPU contention must bite even though the network is reserved "
        "(a network reservation alone is insufficient)"
    )
    assert p5 > 0.9 * target, "both reservations together restore the rate"
