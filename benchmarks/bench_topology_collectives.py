"""Ablation: topology-aware vs binomial collectives (§1's companion
work): a hierarchy-aware broadcast crosses each wide-area boundary
once instead of once per remote rank."""

from repro.kernel import Simulator
from repro.mpi import MpiWorld, hierarchical_bcast
from repro.net import DropTailQueue, Network, mbps

RANKS_PER_SITE = 6
PAYLOAD = 200_000


def wan_bcast_bytes(use_hierarchical: bool, seed: int = 0):
    """Bytes crossing the inter-site link for one broadcast."""
    sim = Simulator(seed=seed)
    net = Network(sim)
    left = net.add_host("left")
    right = net.add_host("right")
    r1 = net.add_router("r1")
    r2 = net.add_router("r2")
    deep = lambda: DropTailQueue(limit_packets=5000)  # noqa: E731
    net.connect(left, r1, mbps(1000), 0.05e-3, deep)
    wan = net.connect(r1, r2, mbps(100), 5e-3, deep)
    net.connect(r2, right, mbps(1000), 0.05e-3, deep)
    net.build_routes()
    hosts = [left] * RANKS_PER_SITE + [right] * RANKS_PER_SITE
    world = MpiWorld(sim, hosts)

    def main(comm):
        data = "payload" if comm.rank == 0 else None
        if use_hierarchical:
            result = yield from hierarchical_bcast(comm, data, PAYLOAD, root=0)
        else:
            result = yield from comm.bcast(data, PAYLOAD, root=0)
        assert result == "payload"

    procs = world.launch(main)
    sim.run_until_event(sim.all_of(procs), limit=120.0)
    return wan.iface_ab.tx_bytes, sim.now


def test_hierarchical_bcast_crosses_wan_once(once):
    def experiment():
        return wan_bcast_bytes(False), wan_bcast_bytes(True)

    (naive_bytes, naive_t), (aware_bytes, aware_t) = once(experiment)
    # Binomial trees cross the WAN for several of the remote ranks;
    # the hierarchical tree pays one payload (+ handshakes).
    assert aware_bytes < 0.5 * naive_bytes
    assert aware_bytes < 1.5 * PAYLOAD
    # And it is faster end-to-end on this topology.
    assert aware_t <= naive_t * 1.1
