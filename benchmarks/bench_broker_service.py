#!/usr/bin/env python
"""Broker-service wire throughput: journaled admissions/second.

One client drives one :class:`BrokerService` over real localhost TCP
with batched compact-array frames: each reserve batch admits ``batch``
reservations (every one carrying an idempotency key, journaled in both
the broker and service write-ahead logs before its reply), and a
matching cancel batch releases them by reserve-key, so slot tables
stay small and the measured rate is *sustainable*, not a fill-up.

``admissions_per_sec`` counts completed reserve+cancel pairs over the
whole wall time — protocol decode, admission, double journaling,
reply encode, and the release path all included. Target: >= 50k/s on
one core (``--target``).

Usage::

    python benchmarks/bench_broker_service.py                 # measure
    python benchmarks/bench_broker_service.py --check         # gate vs baseline
    python benchmarks/bench_broker_service.py --update        # record baseline

``--check`` fails when admissions/s drops more than ``--tolerance``
(default 0.30, env ``PERF_SMOKE_TOLERANCE``) below the recorded
baseline, or when the absolute ``--target`` (when non-zero) is missed.
"""

from __future__ import annotations

import argparse
import asyncio
import gc
import json
import os
import sys
import time
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO / "src"))

BENCH_FILE = REPO / "BENCH_broker.json"
DESCRIPTION = (
    "batched reserve+cancel pairs over localhost TCP, best-of-N, gc off"
)


def build_service():
    from repro.broker_service import BrokerService
    from repro.gara import BandwidthBroker
    from repro.kernel import Simulator
    from repro.net import Network, mbps
    from repro.resilience import Journal

    sim = Simulator(seed=0)
    network = Network(sim)
    a = network.add_host("a")
    b = network.add_host("b")
    network.connect(a, b, bandwidth=mbps(1000.0), delay=0.1e-3)
    network.build_routes()
    broker = BandwidthBroker(network, journal=Journal("broker"))
    # max_pending is sized so the pipelined client never trips load
    # shedding — this bench measures sustained throughput; shedding
    # behaviour has its own tests.
    return BrokerService(
        broker,
        Journal("broker-service"),
        tick=None,
        max_pending=1 << 17,
    )


async def run_once(ops: int, batch: int) -> dict:
    from repro.broker_service.protocol import STATUS_OK, encode_frame, read_frame

    service = build_service()
    await service.start()
    reader, writer = await asyncio.open_connection("127.0.0.1", service.port)

    # Precompute every frame so client-side encode cost stays out of
    # the (server-dominated) loop as much as possible. Reservations
    # carry idempotency keys; cancels resolve by reserve-key and are
    # interleaved directly after their reserve, so the slot table
    # carries at most one live entry — the measured rate is the
    # sustainable steady state, not a fill-up whose admission checks
    # scan an ever-growing table.
    frames = []
    op = 0
    while op < ops:
        n = min(batch, ops - op)
        subs = []
        for i in range(n):
            k = op + i
            subs.append(["rsv", k, f"k{k}", None, "a", "b", 1e6, 0.0, 100.0])
            subs.append(["can", k, None, None, f"k{k}"])
        frames.append((encode_frame(["batch", op, subs, 1]), n))
        op += n

    # Pipelined: the writer streams frames while replies are drained
    # concurrently, so the server never idles waiting for the next
    # frame's round trip — the measured rate is server-bound, not
    # ping-pong-latency-bound.
    async def pump() -> None:
        for frame, _n in frames:
            writer.write(frame)
            await writer.drain()

    ok = err = 0
    started = time.perf_counter()
    pump_task = asyncio.ensure_future(pump())
    for _ in frames:
        reply = await read_frame(reader)
        if reply[1] == STATUS_OK:
            ok += reply[2][0]
            err += reply[2][1]
    await pump_task
    wall = time.perf_counter() - started

    # Conservation is checked against *server* end state, not the
    # summarized replies alone: every reserve journaled and counted,
    # every cancel a counted release, no live slot entries left.
    broker = service.broker
    live = sum(len(t) for t in broker._tables.values())
    admitted = service.admissions
    cancelled = service.cancels
    stats = {
        "ops": ops,
        "replies_ok": ok,
        "replies_err": err,
        "admitted": admitted,
        "cancelled": cancelled,
        "wall_seconds": wall,
        "admissions_per_sec": ops / wall,
        "broker_admissions": broker.admissions,
        "journal_records_broker": len(broker.journal),
        "journal_records_service": len(service.journal),
        "live_entries_after": live,
    }
    writer.close()
    await service.close()
    if admitted != ops or cancelled != ops or err or ok != 2 * ops or live != 0:
        raise SystemExit(
            f"bench invariant broke: admitted={admitted} "
            f"cancelled={cancelled} ok={ok} err={err} live={live} "
            f"expected ops={ops}"
        )
    return stats


def measure(rounds: int, ops: int, batch: int):
    best = None
    for i in range(rounds):
        # GC stays off during the timed run; collecting *between*
        # rounds keeps one round's journals from inflating the next.
        gc.disable()
        try:
            stats = asyncio.run(run_once(ops, batch))
        finally:
            gc.enable()
            gc.collect()
        rate = stats["admissions_per_sec"]
        print(
            f"round {i}: {ops} admissions in "
            f"{stats['wall_seconds']:.2f}s ({rate:,.0f}/s)"
        )
        if best is None or rate > best["admissions_per_sec"]:
            best = stats
    return best


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--ops", type=int, default=30000,
                        help="reserve+cancel pairs per round (default 30000)")
    parser.add_argument("--batch", type=int, default=256,
                        help="requests per wire frame (default 256)")
    parser.add_argument("--rounds", type=int, default=3,
                        help="runs to take the best of (default 3)")
    parser.add_argument("--check", action="store_true",
                        help="fail if throughput regresses vs the baseline")
    parser.add_argument("--update", action="store_true",
                        help="append this measurement to the baseline file")
    parser.add_argument("--label", default="measurement")
    parser.add_argument("--target", type=float, default=0.0,
                        help="absolute admissions/s floor (0 = skip)")
    parser.add_argument(
        "--tolerance",
        type=float,
        default=float(os.environ.get("PERF_SMOKE_TOLERANCE", "0.30")),
    )
    args = parser.parse_args(argv)

    best = measure(args.rounds, args.ops, args.batch)
    rate = best["admissions_per_sec"]
    print(f"best: {rate:,.0f} admissions/s "
          f"({best['ops']} pairs in {best['wall_seconds']:.2f}s)")

    bench = json.loads(BENCH_FILE.read_text()) if BENCH_FILE.exists() else {
        "benchmark": DESCRIPTION,
        "target_admissions_per_sec": 50000,
        "history": [],
    }

    status = 0
    if args.check:
        if not bench["history"]:
            print(f"no baseline recorded in {BENCH_FILE.name}; run --update")
            return 1
        baseline = bench["history"][-1]
        floor = baseline["admissions_per_sec"] * (1.0 - args.tolerance)
        if rate < floor:
            print(
                f"FAIL: {rate:,.0f} admissions/s is below {floor:,.0f} "
                f"({args.tolerance:.0%} under baseline "
                f"{baseline['admissions_per_sec']:,.0f} from "
                f"{baseline['label']!r})"
            )
            status = 1
        else:
            print(
                f"OK: within {args.tolerance:.0%} of baseline "
                f"{baseline['admissions_per_sec']:,.0f} admissions/s"
            )
        if args.target and rate < args.target:
            print(f"FAIL: below absolute target {args.target:,.0f}/s")
            status = 1

    if args.update:
        bench["history"].append({
            "label": args.label,
            "ops": args.ops,
            "batch": args.batch,
            "rounds": args.rounds,
            "best_wall_seconds": round(best["wall_seconds"], 3),
            "admissions_per_sec": round(rate),
        })
        BENCH_FILE.write_text(json.dumps(bench, indent=2) + "\n")
        print(f"recorded in {BENCH_FILE}")

    return status


if __name__ == "__main__":
    sys.exit(main())
