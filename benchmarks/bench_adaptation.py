"""Closed-loop SLO adaptation: static vs adaptive under surge + faults.

Runs the fig_adaptation experiment (quick variant) once and asserts
the shape properties the adaptation story promises: the adaptive
flavor's SLO-compliance fraction strictly exceeds the static flavor's,
the control loop actually renegotiated (and rode out the broker
outage with retries rather than cancel-and-reacquire), and the flap
count respects the documented ``1 + floor(T/cooldown)`` bound.

Throughput regression gating for this workload lives in
``perf_smoke.py --workload adaptation`` against
``BENCH_adaptation.json`` (fails on any event-count drift or a >30%
events/second drop).
"""

from repro.experiments import fig_adaptation
from repro.slo.chaos import run_soak

SOAK_SEEDS = (0, 1, 2)


def test_adaptive_beats_static_compliance(once):
    result = once(fig_adaptation.run, quick=True, seed=0)
    static = result.extra["static_compliance"]
    adaptive = result.extra["adaptive_compliance"]
    # The whole point of closing the loop: strictly higher compliance
    # on the identical surge + broker-fault timeline.
    assert adaptive > static
    assert result.extra["adaptive_within_flap_bound"]
    rows = {row[0]: row for row in result.rows}
    cols = {name: i for i, name in enumerate(result.headers)}
    adaptive_row = rows["adaptive"]
    # The loop must have renegotiated through the outage, not around it.
    assert adaptive_row[cols["renegotiations"]] >= 1
    assert adaptive_row[cols["broker_retries"]] >= 1
    # Static never touches the control plane after setup.
    static_row = rows["static"]
    assert static_row[cols["renegotiations"]] == 0
    assert static_row[cols["flaps"]] == 0


def _soak_one(seed: int):
    """Module-level so --bench-parallel can ship it to pool workers."""
    return run_soak(seed=seed, cycles=2)


def test_adaptation_chaos_soak(once, fanout):
    """The CI soak's invariants, over 3 seeds: conservation after each
    restart, empty slot tables at the end, flaps under the bound, and
    the full ladder (degrade to best-effort, restore to premium)."""

    def soak():
        return fanout(_soak_one, SOAK_SEEDS)

    runs = once(soak)
    for seed, stats in zip(SOAK_SEEDS, runs):
        # run_soak raises SoakFailure on any violated invariant; here
        # just confirm the ladder really cycled on every seed.
        assert stats["degradations"] >= 1, f"seed {seed}: ladder idle"
        assert stats["restores"] >= 1, f"seed {seed}: never climbed back"
        assert stats["final_rung"] == "premium", f"seed {seed} stuck"
        assert stats["flaps"] <= stats["flap_bound"], f"seed {seed} flapped"


def test_same_seed_identical_adaptation(once):
    def experiment():
        return (
            fig_adaptation.measure_cell("adaptive", seed=0, duration=20.0),
            fig_adaptation.measure_cell("adaptive", seed=0, duration=20.0),
        )

    first, second = once(experiment)
    assert first == second
