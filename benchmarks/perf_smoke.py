#!/usr/bin/env python
"""Kernel-throughput smoke check: events/second on fig1 ``--quick``.

The fig1 experiment is the kernel's reference workload (one shaped TCP
stream against UDP contention, ~900k events). This script runs it
``--rounds`` times with GC suspended, takes the best wall time, and
reports events/second. The event count is gathered by instrumenting
``Simulator.__init__`` so every simulator built by the experiment is
tallied — the workload's event count is deterministic, so any change
in it is itself a red flag (and is checked against the recorded
baseline).

Usage::

    python benchmarks/perf_smoke.py             # measure and print
    python benchmarks/perf_smoke.py --check     # exit 1 on regression
    python benchmarks/perf_smoke.py --update    # append to BENCH_kernel.json

``--check`` compares against the most recent entry in
``BENCH_kernel.json`` and fails when throughput drops below
``(1 - tolerance)`` of it. The default tolerance is 0.30 (a >30%
regression fails); override with ``--tolerance`` or the
``PERF_SMOKE_TOLERANCE`` environment variable (CI machines of very
different speed should instead refresh the baseline with --update).
"""

from __future__ import annotations

import argparse
import gc
import json
import os
import sys
import time
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO / "src"))

BENCH_FILE = REPO / "BENCH_kernel.json"


def measure_once():
    """One fig1 --quick run; returns (total_events, wall_seconds)."""
    from repro.experiments import fig1_tcp_reservation
    from repro.kernel import simulator as sim_mod

    sims = []
    orig_init = sim_mod.Simulator.__init__

    def tracking_init(self, *args, **kwargs):
        orig_init(self, *args, **kwargs)
        sims.append(self)

    sim_mod.Simulator.__init__ = tracking_init
    gc.disable()
    try:
        started = time.perf_counter()
        fig1_tcp_reservation.run(quick=True, seed=0)
        wall = time.perf_counter() - started
    finally:
        gc.enable()
        gc.collect()
        sim_mod.Simulator.__init__ = orig_init
    return sum(s.events_processed for s in sims), wall


def measure(rounds: int):
    """Best-of-``rounds``; returns (events, best_wall, events_per_sec)."""
    events = None
    best = float("inf")
    for i in range(rounds):
        n, wall = measure_once()
        if events is None:
            events = n
        elif n != events:
            raise SystemExit(
                f"nondeterministic event count: round {i} processed {n}, "
                f"round 0 processed {events}"
            )
        best = min(best, wall)
        print(f"round {i}: {n} events in {wall:.2f}s "
              f"({n / wall:,.0f} events/s)")
    return events, best, events / best


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--rounds", type=int, default=5,
                        help="runs to take the best of (default 5)")
    parser.add_argument("--check", action="store_true",
                        help="fail if throughput regresses vs the baseline")
    parser.add_argument("--update", action="store_true",
                        help="append this measurement to BENCH_kernel.json")
    parser.add_argument("--label", default="measurement",
                        help="history label for --update")
    parser.add_argument(
        "--tolerance",
        type=float,
        default=float(os.environ.get("PERF_SMOKE_TOLERANCE", "0.30")),
        help="allowed fractional drop vs baseline for --check "
             "(default 0.30, env PERF_SMOKE_TOLERANCE)",
    )
    args = parser.parse_args(argv)

    events, best, eps = measure(args.rounds)
    print(f"best: {events} events in {best:.2f}s ({eps:,.0f} events/s)")

    bench = json.loads(BENCH_FILE.read_text()) if BENCH_FILE.exists() else {
        "benchmark": "fig1 --quick --seed 0 wall time, best-of-N, gc off",
        "history": [],
    }

    status = 0
    if args.check:
        if not bench["history"]:
            print("no baseline recorded in BENCH_kernel.json; run --update")
            return 1
        baseline = bench["history"][-1]
        if events != baseline["events"]:
            print(
                f"FAIL: event count changed: {events} vs baseline "
                f"{baseline['events']} — the workload itself drifted"
            )
            status = 1
        floor = baseline["events_per_sec"] * (1.0 - args.tolerance)
        if eps < floor:
            print(
                f"FAIL: {eps:,.0f} events/s is below {floor:,.0f} "
                f"({args.tolerance:.0%} under baseline "
                f"{baseline['events_per_sec']:,.0f} from "
                f"{baseline['label']!r})"
            )
            status = 1
        else:
            print(
                f"OK: within {args.tolerance:.0%} of baseline "
                f"{baseline['events_per_sec']:,.0f} events/s"
            )

    if args.update:
        bench["history"].append({
            "label": args.label,
            "events": events,
            "best_wall_seconds": round(best, 3),
            "events_per_sec": round(eps),
            "rounds": args.rounds,
        })
        BENCH_FILE.write_text(json.dumps(bench, indent=2) + "\n")
        print(f"recorded in {BENCH_FILE}")

    return status


if __name__ == "__main__":
    sys.exit(main())
