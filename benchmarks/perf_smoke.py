#!/usr/bin/env python
"""Datapath-throughput smoke checks: events/second on fixed workloads.

Each workload runs ``--rounds`` times with GC suspended; the best and
the median wall times are reported as events/second. The event count
is gathered by instrumenting ``Simulator.__init__`` so every simulator
built by the workload is tallied — a workload's event count is
deterministic, so any change in it is itself a red flag (and is
checked against the recorded baseline).

Workloads (``--workload``):

* ``kernel`` (default) — fig1 ``--quick``, the kernel's reference
  workload (one shaped TCP stream against UDP contention, ~900k
  events); baseline in ``BENCH_kernel.json``.
* ``aqm`` — one oversubscribed table1_aqm cell in ``wred+ecn`` mode,
  exercising the three-color markers, the WRED'd DRR band, and the
  RFC 3168 ECN feedback loop end to end; baseline in
  ``BENCH_aqm.json``.
* ``aqm-codel`` — the matching table1_l4s cell in ``codel`` mode:
  the sojourn-stamped datapath, the dequeue-time drop/mark machinery
  behind the peek contract, and CE marks feeding RFC 3168 senders;
  baseline in ``BENCH_aqm_codel.json``.
* ``adaptation`` — the fig_adaptation adaptive cell: the SLO monitor's
  windowed quantiles, the K-of-N vote, and the renegotiation state
  machine riding a broker crash/restart; baseline in
  ``BENCH_adaptation.json``.
* ``hybrid`` — fig1 at 60 s in ``Simulator(mode="hybrid")`` (batched
  egress + fluid UDP contention) followed by the packet-mode reference
  run, asserting the hybrid Fig 1 statistics stay within 1% of packet
  mode (the fidelity gate) and reporting *effective* events/second
  (processed + credited); baseline in ``BENCH_hybrid.json``.
* ``pdes`` — the ``garnet_xl`` grid (1,000 routers, 100k flows) run
  2-sharded through the conservative PDES layer (inline backend, so
  both shard simulators are measured in-process); the baseline in
  ``BENCH_pdes.json`` additionally pins the per-shard event counts,
  window count, and boundary-message total exactly — any drift means
  the partition, the lookahead, or the boundary protocol changed.

Usage::

    python benchmarks/perf_smoke.py                  # measure and print
    python benchmarks/perf_smoke.py --check          # exit 1 on regression
    python benchmarks/perf_smoke.py --update         # append to baseline file
    python benchmarks/perf_smoke.py --workload aqm --check
    python benchmarks/perf_smoke.py --profile        # per-callback-site cost

``--check`` compares against the most recent entry in the workload's
baseline file and fails when throughput drops below ``(1 -
tolerance)`` of it, or when the event count drifts at all. Throughput
gates on the *median* events/second when the baseline entry records
one (best-of-N is noisy on a 1-core container); older entries without
a median fall back to the recorded best-based figure — history is
migrated on the next ``--update``, never re-pinned in place. The
default tolerance is 0.30 (a >30% regression fails); override with
``--tolerance`` or the ``PERF_SMOKE_TOLERANCE`` environment variable
(CI machines of very different speed should instead refresh the
baseline with --update).

``--profile`` wires the :mod:`repro.telemetry` event-loop profiler
into one run and prints the per-callback-site wall-time table
(heaviest first); ``--profile-out FILE`` writes the full JSON
snapshot. Profiling adds per-event overhead, so it refuses to combine
with ``--check``/``--update``.
"""

from __future__ import annotations

import argparse
import gc
import json
import os
import platform
import statistics
import sys
import time
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO / "src"))

#: Duration and tolerance of the hybrid-vs-packet fidelity gate. 60 s
#: is the shortest horizon where TCP trajectory chaos averages out
#: below the bound (at the 12 s quick grid, µs-level perturbations
#: alone move the mean by ~2%; see INTERNALS.md "Batched egress &
#: hybrid fidelity").
HYBRID_EQUIV_DURATION = 60.0
HYBRID_EQUIV_TOLERANCE = 0.01


def _run_kernel():
    from repro.experiments import fig1_tcp_reservation

    fig1_tcp_reservation.run(quick=True, seed=0)


def _run_aqm():
    from repro.experiments import table1_aqm
    from repro.experiments.table1_burstiness import NORMAL_DEPTH_DIVISOR

    cell = table1_aqm.measure_cell(
        bandwidth_kbps=1600.0,
        fps=1.0,
        bucket_divisor=NORMAL_DEPTH_DIVISOR,
        mode="wred+ecn",
        seed=0,
        duration=5.0,
    )
    # The cell must actually exercise the marking path — a silent
    # config drift that stops CE marks would turn this benchmark into
    # a plain priority-queue measurement.
    if cell["ecn_marks"] <= 0:
        raise SystemExit(
            f"aqm workload produced no ECN marks ({cell!r}); "
            "the WRED+ECN datapath is not being exercised"
        )


def _run_aqm_codel():
    from repro.experiments import table1_l4s
    from repro.experiments.table1_burstiness import NORMAL_DEPTH_DIVISOR

    cell = table1_l4s.measure_cell(
        bandwidth_kbps=1600.0,
        fps=1.0,
        bucket_divisor=NORMAL_DEPTH_DIVISOR,
        mode="codel",
        seed=0,
        duration=5.0,
    )
    # Same guard as the aqm workload: the CoDel band must be marking
    # (its actions ride the ECN path here), and the sojourn accounting
    # that feeds queue_delay_ms must be live.
    if cell["ecn_marks"] <= 0:
        raise SystemExit(
            f"aqm-codel workload produced no ECN marks ({cell!r}); "
            "the CoDel datapath is not being exercised"
        )
    if cell["queue_delay_ms"] <= 0.0:
        raise SystemExit(
            f"aqm-codel workload reported no queue delay ({cell!r}); "
            "sojourn accounting is not being exercised"
        )


def _run_adaptation():
    from repro.experiments import fig_adaptation

    cell = fig_adaptation.measure_cell("adaptive", seed=0, duration=20.0)
    # The control loop must actually close: a silent config drift that
    # never trips the K-of-N vote (or never reaches the broker) would
    # turn this into a plain streaming benchmark.
    if cell["renegotiations"] <= 0:
        raise SystemExit(
            f"adaptation workload performed no renegotiations ({cell!r}); "
            "the SLO control loop is not being exercised"
        )
    if cell["broker_retries"] <= 0:
        raise SystemExit(
            f"adaptation workload saw no broker retries ({cell!r}); "
            "the crash/restart no longer lands mid-renegotiation"
        )


def _run_hybrid():
    from repro.experiments import fig1_tcp_reservation

    hybrid = fig1_tcp_reservation.run(
        quick=True, seed=0, duration=HYBRID_EQUIV_DURATION, mode="hybrid"
    )
    if hybrid.extra["events_credited"] <= 0:
        raise SystemExit(
            "hybrid workload credited no events; the fluid background "
            "engine is not running"
        )
    # The fidelity gate: the packet-mode reference run of the same
    # grid, compared on trajectory-robust statistics (time-averaged
    # bandwidth and total delivered volume — per-bin curves diverge by
    # construction: TCP trajectories are chaotic under µs-level
    # perturbations, so only averages are meaningful).
    packet = fig1_tcp_reservation.run(
        quick=True, seed=0, duration=HYBRID_EQUIV_DURATION, mode="packet"
    )
    checks = {
        "mean_kbps": (packet.extra["mean_kbps"], hybrid.extra["mean_kbps"]),
        "delivered": (
            sum(row[1] for row in packet.rows),
            sum(row[1] for row in hybrid.rows),
        ),
    }
    for name, (ref, got) in checks.items():
        err = abs(got - ref) / ref if ref else 0.0
        print(
            f"hybrid fidelity: {name} packet={ref:.1f} hybrid={got:.1f} "
            f"error={err:.3%} (bound {HYBRID_EQUIV_TOLERANCE:.0%})"
        )
        if err > HYBRID_EQUIV_TOLERANCE:
            raise SystemExit(
                f"hybrid workload {name} diverged {err:.3%} from packet "
                f"mode (bound {HYBRID_EQUIV_TOLERANCE:.0%})"
            )


def _run_pdes():
    from repro.pdes import run_scenario

    result = run_scenario("garnet_xl", seed=0, shards=2, backend="inline")
    if sum(result.per_shard_events) != result.total_events:
        raise SystemExit(
            f"pdes workload lost events: shards {result.per_shard_events} "
            f"vs total {result.total_events}"
        )
    if min(result.per_shard_events) <= 0:
        raise SystemExit(
            f"pdes workload left a shard idle ({result.per_shard_events}); "
            "the partition is degenerate"
        )
    if sum(result.boundary_messages) <= 0:
        raise SystemExit(
            "pdes workload exchanged no boundary messages; the cut is "
            "not being exercised"
        )
    return {
        "per_shard_events": list(result.per_shard_events),
        "windows": result.windows,
        "boundary_messages": sum(result.boundary_messages),
    }


#: name -> (description line for the baseline file, baseline file, fn)
WORKLOADS = {
    "kernel": (
        "fig1 --quick --seed 0 wall time, best-of-N, gc off",
        REPO / "BENCH_kernel.json",
        _run_kernel,
    ),
    "aqm": (
        "table1_aqm cell 1600/1fps wred+ecn wall time, best-of-N, gc off",
        REPO / "BENCH_aqm.json",
        _run_aqm,
    ),
    "aqm-codel": (
        "table1_l4s cell 1600/1fps codel wall time, best-of-N, gc off",
        REPO / "BENCH_aqm_codel.json",
        _run_aqm_codel,
    ),
    "adaptation": (
        "fig_adaptation adaptive cell 20s wall time, best-of-N, gc off",
        REPO / "BENCH_adaptation.json",
        _run_adaptation,
    ),
    "hybrid": (
        "fig1 60s hybrid mode + packet reference with 1% fidelity gate, "
        "gc off",
        REPO / "BENCH_hybrid.json",
        _run_hybrid,
    ),
    "pdes": (
        "garnet_xl 2-shard inline PDES wall time + exact shard pins, gc off",
        REPO / "BENCH_pdes.json",
        _run_pdes,
    ),
}


def measure_once(workload_fn):
    """One workload run; returns (events, credited, wall_seconds,
    pinned). ``pinned`` is the workload's optional dict of exact-match
    values (e.g. the pdes per-shard event counts), None otherwise."""
    from repro.kernel import simulator as sim_mod

    sims = []
    orig_init = sim_mod.Simulator.__init__

    def tracking_init(self, *args, **kwargs):
        orig_init(self, *args, **kwargs)
        sims.append(self)

    sim_mod.Simulator.__init__ = tracking_init
    gc.disable()
    try:
        started = time.perf_counter()
        pinned = workload_fn()
        wall = time.perf_counter() - started
    finally:
        gc.enable()
        gc.collect()
        sim_mod.Simulator.__init__ = orig_init
    return (
        sum(s.events_processed for s in sims),
        sum(s.events_credited for s in sims),
        wall,
        pinned,
    )


def measure(rounds: int, workload_fn):
    """Run ``rounds`` times; returns
    (events, credited, best_wall, median_wall, pinned)."""
    events = credited = pinned = None
    walls = []
    for i in range(rounds):
        n, c, wall, p = measure_once(workload_fn)
        if events is None:
            events, credited, pinned = n, c, p
        elif (n, c) != (events, credited):
            raise SystemExit(
                f"nondeterministic event count: round {i} processed "
                f"{n} (+{c} credited), round 0 processed {events} "
                f"(+{credited} credited)"
            )
        elif p != pinned:
            raise SystemExit(
                f"nondeterministic workload pins: round {i} produced "
                f"{p!r}, round 0 produced {pinned!r}"
            )
        walls.append(wall)
        effective = "" if not c else (
            f", {(n + c) / wall:,.0f} effective ev/s"
        )
        print(f"round {i}: {n} events in {wall:.2f}s "
              f"({n / wall:,.0f} events/s{effective})")
    return events, credited, min(walls), statistics.median(walls), pinned


def _baseline_floor(baseline: dict, tolerance: float):
    """(metric name, gate floor) for one history entry — median-based
    when the entry records it, legacy best-based otherwise."""
    eps = baseline.get("median_events_per_sec")
    if eps is not None:
        return "median", eps * (1.0 - tolerance)
    return "best", baseline["events_per_sec"] * (1.0 - tolerance)


def _profile(workload_fn, out: Path | None) -> int:
    """One profiled run: per-callback-site wall time, heaviest first."""
    import repro.telemetry as telemetry

    tel = telemetry.Telemetry(profile=True)
    telemetry.install(tel)
    gc.disable()
    try:
        workload_fn()
    finally:
        gc.enable()
        gc.collect()
        for profiler in tel._profilers:
            profiler.stop()
        telemetry.uninstall()
    if not tel._profilers:
        print("no simulator attached a profiler; nothing to report")
        return 1
    snapshots = [p.snapshot() for p in tel._profilers]
    for i, snap in enumerate(snapshots):
        print(
            f"\nsim {i}: {snap['events']} events, "
            f"{snap['wall_seconds']:.2f}s in-loop "
            f"({snap['events_per_second']:,.0f} events/s), "
            f"heap depth mean {snap['heap_depth_mean']:.1f} "
            f"max {snap['heap_depth_max']}"
        )
        print(f"{'call site':58s} {'calls':>9s} {'wall s':>8s} {'mean µs':>8s}")
        for name, site in snap["call_sites"].items():
            print(
                f"{name[:58]:58s} {site['calls']:9d} "
                f"{site['wall_seconds']:8.3f} {site['mean_us']:8.2f}"
            )
    if out is not None:
        payload = {
            "python": platform.python_version(),
            "profiles": snapshots,
        }
        out.parent.mkdir(parents=True, exist_ok=True)
        out.write_text(json.dumps(payload, indent=2) + "\n")
        print(f"\nwrote {out}")
    return 0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--workload", choices=sorted(WORKLOADS),
                        default="kernel",
                        help="which datapath to measure (default kernel)")
    parser.add_argument("--rounds", type=int, default=5,
                        help="runs to take best/median of (default 5)")
    parser.add_argument("--check", action="store_true",
                        help="fail if throughput regresses vs the baseline")
    parser.add_argument("--update", action="store_true",
                        help="append this measurement to the baseline file")
    parser.add_argument("--label", default="measurement",
                        help="history label for --update")
    parser.add_argument("--profile", action="store_true",
                        help="one profiled run: per-callback-site wall time")
    parser.add_argument("--profile-out", type=Path, default=None,
                        help="write the --profile JSON snapshot here")
    parser.add_argument(
        "--tolerance",
        type=float,
        default=float(os.environ.get("PERF_SMOKE_TOLERANCE", "0.30")),
        help="allowed fractional drop vs baseline for --check "
             "(default 0.30, env PERF_SMOKE_TOLERANCE)",
    )
    args = parser.parse_args(argv)

    description, bench_file, workload_fn = WORKLOADS[args.workload]

    if args.profile:
        if args.check or args.update:
            parser.error(
                "--profile adds per-event overhead; run it without "
                "--check/--update"
            )
        return _profile(workload_fn, args.profile_out)

    events, credited, best, median, pinned = measure(args.rounds, workload_fn)
    best_eps = events / best
    median_eps = events / median
    line = (
        f"best: {events} events in {best:.2f}s ({best_eps:,.0f} events/s); "
        f"median {median:.2f}s ({median_eps:,.0f} events/s)"
    )
    if credited:
        line += (
            f"; +{credited} credited -> "
            f"{(events + credited) / median:,.0f} effective ev/s (median)"
        )
    print(line)

    bench = json.loads(bench_file.read_text()) if bench_file.exists() else {
        "benchmark": description,
        "history": [],
    }

    status = 0
    if args.check:
        if not bench["history"]:
            print(f"no baseline recorded in {bench_file.name}; run --update")
            return 1
        baseline = bench["history"][-1]
        if events != baseline["events"]:
            print(
                f"FAIL: event count changed: {events} vs baseline "
                f"{baseline['events']} — the workload itself drifted"
            )
            status = 1
        baseline_credited = baseline.get("events_credited")
        if baseline_credited is not None and credited != baseline_credited:
            print(
                f"FAIL: credited event count changed: {credited} vs "
                f"baseline {baseline_credited} — the batching/fluid "
                f"shortcuts drifted"
            )
            status = 1
        baseline_pinned = baseline.get("pinned")
        if baseline_pinned is not None and pinned != baseline_pinned:
            print(
                f"FAIL: pinned workload values changed:\n"
                f"  measured: {json.dumps(pinned, sort_keys=True)}\n"
                f"  baseline: {json.dumps(baseline_pinned, sort_keys=True)}"
            )
            status = 1
        metric, floor = _baseline_floor(baseline, args.tolerance)
        gate_eps = median_eps if metric == "median" else best_eps
        if gate_eps < floor:
            print(
                f"FAIL: {gate_eps:,.0f} events/s ({metric}) is below "
                f"{floor:,.0f} ({args.tolerance:.0%} under baseline "
                f"from {baseline['label']!r})"
            )
            status = 1
        else:
            print(
                f"OK: {metric} events/s within {args.tolerance:.0%} of "
                f"baseline floor {floor:,.0f}"
            )

    if args.update:
        entry = {
            "label": args.label,
            "events": events,
            "best_wall_seconds": round(best, 3),
            "events_per_sec": round(best_eps),
            "median_wall_seconds": round(median, 3),
            "median_events_per_sec": round(median_eps),
            "rounds": args.rounds,
            "python": platform.python_version(),
        }
        if credited:
            entry["events_credited"] = credited
            entry["effective_events_per_sec"] = round(
                (events + credited) / median
            )
        if pinned is not None:
            entry["pinned"] = pinned
        bench["history"].append(entry)
        bench_file.write_text(json.dumps(bench, indent=2) + "\n")
        print(f"recorded in {bench_file}")

    return status


if __name__ == "__main__":
    sys.exit(main())
