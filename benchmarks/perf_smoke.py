#!/usr/bin/env python
"""Datapath-throughput smoke checks: events/second on fixed workloads.

Each workload runs ``--rounds`` times with GC suspended; the best wall
time is reported as events/second. The event count is gathered by
instrumenting ``Simulator.__init__`` so every simulator built by the
workload is tallied — a workload's event count is deterministic, so
any change in it is itself a red flag (and is checked against the
recorded baseline).

Workloads (``--workload``):

* ``kernel`` (default) — fig1 ``--quick``, the kernel's reference
  workload (one shaped TCP stream against UDP contention, ~900k
  events); baseline in ``BENCH_kernel.json``.
* ``aqm`` — one oversubscribed table1_aqm cell in ``wred+ecn`` mode,
  exercising the three-color markers, the WRED'd DRR band, and the
  RFC 3168 ECN feedback loop end to end; baseline in
  ``BENCH_aqm.json``.
* ``aqm-codel`` — the matching table1_l4s cell in ``codel`` mode:
  the sojourn-stamped datapath, the dequeue-time drop/mark machinery
  behind the peek contract, and CE marks feeding RFC 3168 senders;
  baseline in ``BENCH_aqm_codel.json``.
* ``adaptation`` — the fig_adaptation adaptive cell: the SLO monitor's
  windowed quantiles, the K-of-N vote, and the renegotiation state
  machine riding a broker crash/restart; baseline in
  ``BENCH_adaptation.json``.

Usage::

    python benchmarks/perf_smoke.py                  # measure and print
    python benchmarks/perf_smoke.py --check          # exit 1 on regression
    python benchmarks/perf_smoke.py --update         # append to baseline file
    python benchmarks/perf_smoke.py --workload aqm --check

``--check`` compares against the most recent entry in the workload's
baseline file and fails when throughput drops below ``(1 -
tolerance)`` of it, or when the event count drifts at all. The default
tolerance is 0.30 (a >30% regression fails); override with
``--tolerance`` or the ``PERF_SMOKE_TOLERANCE`` environment variable
(CI machines of very different speed should instead refresh the
baseline with --update).
"""

from __future__ import annotations

import argparse
import gc
import json
import os
import sys
import time
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO / "src"))


def _run_kernel():
    from repro.experiments import fig1_tcp_reservation

    fig1_tcp_reservation.run(quick=True, seed=0)


def _run_aqm():
    from repro.experiments import table1_aqm
    from repro.experiments.table1_burstiness import NORMAL_DEPTH_DIVISOR

    cell = table1_aqm.measure_cell(
        bandwidth_kbps=1600.0,
        fps=1.0,
        bucket_divisor=NORMAL_DEPTH_DIVISOR,
        mode="wred+ecn",
        seed=0,
        duration=5.0,
    )
    # The cell must actually exercise the marking path — a silent
    # config drift that stops CE marks would turn this benchmark into
    # a plain priority-queue measurement.
    if cell["ecn_marks"] <= 0:
        raise SystemExit(
            f"aqm workload produced no ECN marks ({cell!r}); "
            "the WRED+ECN datapath is not being exercised"
        )


def _run_aqm_codel():
    from repro.experiments import table1_l4s
    from repro.experiments.table1_burstiness import NORMAL_DEPTH_DIVISOR

    cell = table1_l4s.measure_cell(
        bandwidth_kbps=1600.0,
        fps=1.0,
        bucket_divisor=NORMAL_DEPTH_DIVISOR,
        mode="codel",
        seed=0,
        duration=5.0,
    )
    # Same guard as the aqm workload: the CoDel band must be marking
    # (its actions ride the ECN path here), and the sojourn accounting
    # that feeds queue_delay_ms must be live.
    if cell["ecn_marks"] <= 0:
        raise SystemExit(
            f"aqm-codel workload produced no ECN marks ({cell!r}); "
            "the CoDel datapath is not being exercised"
        )
    if cell["queue_delay_ms"] <= 0.0:
        raise SystemExit(
            f"aqm-codel workload reported no queue delay ({cell!r}); "
            "sojourn accounting is not being exercised"
        )


def _run_adaptation():
    from repro.experiments import fig_adaptation

    cell = fig_adaptation.measure_cell("adaptive", seed=0, duration=20.0)
    # The control loop must actually close: a silent config drift that
    # never trips the K-of-N vote (or never reaches the broker) would
    # turn this into a plain streaming benchmark.
    if cell["renegotiations"] <= 0:
        raise SystemExit(
            f"adaptation workload performed no renegotiations ({cell!r}); "
            "the SLO control loop is not being exercised"
        )
    if cell["broker_retries"] <= 0:
        raise SystemExit(
            f"adaptation workload saw no broker retries ({cell!r}); "
            "the crash/restart no longer lands mid-renegotiation"
        )


#: name -> (description line for the baseline file, baseline file, fn)
WORKLOADS = {
    "kernel": (
        "fig1 --quick --seed 0 wall time, best-of-N, gc off",
        REPO / "BENCH_kernel.json",
        _run_kernel,
    ),
    "aqm": (
        "table1_aqm cell 1600/1fps wred+ecn wall time, best-of-N, gc off",
        REPO / "BENCH_aqm.json",
        _run_aqm,
    ),
    "aqm-codel": (
        "table1_l4s cell 1600/1fps codel wall time, best-of-N, gc off",
        REPO / "BENCH_aqm_codel.json",
        _run_aqm_codel,
    ),
    "adaptation": (
        "fig_adaptation adaptive cell 20s wall time, best-of-N, gc off",
        REPO / "BENCH_adaptation.json",
        _run_adaptation,
    ),
}


def measure_once(workload_fn):
    """One workload run; returns (total_events, wall_seconds)."""
    from repro.kernel import simulator as sim_mod

    sims = []
    orig_init = sim_mod.Simulator.__init__

    def tracking_init(self, *args, **kwargs):
        orig_init(self, *args, **kwargs)
        sims.append(self)

    sim_mod.Simulator.__init__ = tracking_init
    gc.disable()
    try:
        started = time.perf_counter()
        workload_fn()
        wall = time.perf_counter() - started
    finally:
        gc.enable()
        gc.collect()
        sim_mod.Simulator.__init__ = orig_init
    return sum(s.events_processed for s in sims), wall


def measure(rounds: int, workload_fn):
    """Best-of-``rounds``; returns (events, best_wall, events_per_sec)."""
    events = None
    best = float("inf")
    for i in range(rounds):
        n, wall = measure_once(workload_fn)
        if events is None:
            events = n
        elif n != events:
            raise SystemExit(
                f"nondeterministic event count: round {i} processed {n}, "
                f"round 0 processed {events}"
            )
        best = min(best, wall)
        print(f"round {i}: {n} events in {wall:.2f}s "
              f"({n / wall:,.0f} events/s)")
    return events, best, events / best


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--workload", choices=sorted(WORKLOADS),
                        default="kernel",
                        help="which datapath to measure (default kernel)")
    parser.add_argument("--rounds", type=int, default=5,
                        help="runs to take the best of (default 5)")
    parser.add_argument("--check", action="store_true",
                        help="fail if throughput regresses vs the baseline")
    parser.add_argument("--update", action="store_true",
                        help="append this measurement to the baseline file")
    parser.add_argument("--label", default="measurement",
                        help="history label for --update")
    parser.add_argument(
        "--tolerance",
        type=float,
        default=float(os.environ.get("PERF_SMOKE_TOLERANCE", "0.30")),
        help="allowed fractional drop vs baseline for --check "
             "(default 0.30, env PERF_SMOKE_TOLERANCE)",
    )
    args = parser.parse_args(argv)

    description, bench_file, workload_fn = WORKLOADS[args.workload]
    events, best, eps = measure(args.rounds, workload_fn)
    print(f"best: {events} events in {best:.2f}s ({eps:,.0f} events/s)")

    bench = json.loads(bench_file.read_text()) if bench_file.exists() else {
        "benchmark": description,
        "history": [],
    }

    status = 0
    if args.check:
        if not bench["history"]:
            print(f"no baseline recorded in {bench_file.name}; run --update")
            return 1
        baseline = bench["history"][-1]
        if events != baseline["events"]:
            print(
                f"FAIL: event count changed: {events} vs baseline "
                f"{baseline['events']} — the workload itself drifted"
            )
            status = 1
        floor = baseline["events_per_sec"] * (1.0 - args.tolerance)
        if eps < floor:
            print(
                f"FAIL: {eps:,.0f} events/s is below {floor:,.0f} "
                f"({args.tolerance:.0%} under baseline "
                f"{baseline['events_per_sec']:,.0f} from "
                f"{baseline['label']!r})"
            )
            status = 1
        else:
            print(
                f"OK: within {args.tolerance:.0%} of baseline "
                f"{baseline['events_per_sec']:,.0f} events/s"
            )

    if args.update:
        bench["history"].append({
            "label": args.label,
            "events": events,
            "best_wall_seconds": round(best, 3),
            "events_per_sec": round(eps),
            "rounds": args.rounds,
        })
        bench_file.write_text(json.dumps(bench, indent=2) + "\n")
        print(f"recorded in {bench_file}")

    return status


if __name__ == "__main__":
    sys.exit(main())
