#!/usr/bin/env python
"""End-to-end QoS: co-reserving storage, CPU, and network.

The paper's thesis (§1) is that end-to-end performance needs
"reservation, and co-reservation, of CPU, network, and other
resources". This example streams frames *read from a DPSS storage
server* through CPU work and over the congested GARNET backbone —
three resources, three kinds of contention — and shows that only the
three-way GARA co-reservation restores the full rate.

Run:  python examples/end_to_end_pipeline.py
"""

from repro import Simulator, garnet, mbps, MpichGQ
from repro.apps import CpuHog, StoragePipeline, UdpTrafficGenerator
from repro.cpu import Cpu
from repro.gara import (
    CpuReservationSpec,
    NetworkReservationSpec,
    StorageReservationSpec,
    StorageServer,
)


def run_case(reserve: bool) -> float:
    sim = Simulator(seed=21)
    testbed = garnet(sim, backbone_bandwidth=mbps(30))
    gq = MpichGQ.on_garnet(testbed)
    sender = testbed.premium_src
    cpu = Cpu(sim, host=sender)
    disk = StorageServer(sim, "dpss", bandwidth=mbps(40))

    # Contention on all three resources.
    UdpTrafficGenerator(
        testbed.competitive_src, testbed.competitive_dst, rate=mbps(40)
    ).start()
    CpuHog(sender).start()

    def disk_hog():
        while True:
            yield disk.read("batch-job", 10_000_000)

    sim.process(disk_hog())

    target = mbps(8.0)
    app = StoragePipeline(
        server=disk,
        client_id="viz",
        frame_bytes=int(target / 10 / 8),
        fps=10,
        duration=8.0,
        work_fraction=0.85,
    )
    gq.world.launch(app.main)

    if reserve:
        reservations = gq.gara.reserve_many([
            (StorageReservationSpec(disk, target * 1.2), None, None),
            (NetworkReservationSpec(
                testbed.premium_src, testbed.premium_dst, target * 1.06,
            ), None, None),
            (CpuReservationSpec(cpu, 0.9), None, None),
        ])
        storage_res, net_res, cpu_res = reservations
        gq.gara.bind(storage_res, "viz")
        for flow in gq.agent._flow_specs(0, 1):
            gq.gara.bind(net_res, flow)

        def bind_cpu():
            while app._cpu_task is None:
                yield sim.timeout(0.05)
            gq.gara.bind(cpu_res, app._cpu_task)

        sim.process(bind_cpu())

    sim.run(until=60.0)
    return app.achieved_bandwidth_kbps(1.0, 8.0)


def main():
    target_kbps = 8000
    print("DPSS -> CPU -> network pipeline under three-way contention "
          f"(target {target_kbps} Kb/s)")
    contended = run_case(reserve=False)
    reserved = run_case(reserve=True)
    print(f"  no reservations     : {contended:7.0f} Kb/s "
          f"({contended / target_kbps:4.0%})")
    print(f"  3-way co-reservation: {reserved:7.0f} Kb/s "
          f"({reserved / target_kbps:4.0%})")
    assert reserved > 0.9 * target_kbps
    assert contended < 0.5 * target_kbps


if __name__ == "__main__":
    main()
