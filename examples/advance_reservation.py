#!/usr/bin/env python
"""GARA advance reservations and the slot table.

GARA supports "secure immediate and advance co-reservation" (§4.2): a
reservation can be requested now for a future interval, admission-
controlled against the slot table, and enabled/cancelled by timers.
This example books the backbone for a nightly bulk transfer, watches
the state-change callbacks fire, and shows admission control rejecting
an overlapping overcommitment while accepting a disjoint one.

Run:  python examples/advance_reservation.py
"""

from repro import Simulator, garnet, mbps, MpichGQ
from repro.diffserv import FlowSpec
from repro.gara import NetworkReservationSpec, ReservationError
from repro.net.packet import PROTO_TCP


def main():
    sim = Simulator(seed=1)
    testbed = garnet(sim, backbone_bandwidth=mbps(30))
    gq = MpichGQ.on_garnet(testbed)
    src, dst = testbed.premium_src, testbed.premium_dst

    print("EF capacity on the backbone:",
          f"{gq.broker.path_available(src, dst, 0, 100) / 1e6:.0f} Mb/s")

    # Book 15 Mb/s for t in [10, 40).
    night = gq.gara.reserve(
        NetworkReservationSpec(src, dst, mbps(15)), start=10.0, duration=30.0
    )
    night.register_callback(
        lambda r, old, new: print(f"  t={sim.now:5.1f}s  {old} -> {new}")
    )
    gq.gara.bind(night, FlowSpec(src=src.addr, dst=dst.addr, proto=PROTO_TCP))
    print(f"booked: {night}")

    # Overlapping overcommitment is refused...
    try:
        gq.gara.reserve(
            NetworkReservationSpec(src, dst, mbps(10)), start=20.0,
            duration=10.0,
        )
    except ReservationError as exc:
        print(f"overlapping 10 Mb/s request refused: {exc}")
    # ...but the same request after the window fits.
    later = gq.gara.reserve(
        NetworkReservationSpec(src, dst, mbps(10)), start=45.0, duration=10.0
    )
    print(f"disjoint booking accepted: {later}")

    print("running the clock; watch the lifecycle callbacks:")
    sim.run(until=60.0)
    assert night.state == "EXPIRED"
    print(f"final states: night={night.state}, later={later.state}")


if __name__ == "__main__":
    main()
