#!/usr/bin/env python
"""Quickstart: QoS for an MPI program via the attribute mechanism.

This is the paper's Figure 3 in runnable form. Two MPI ranks exchange
messages across the GARNET testbed while a UDP blast congests the
backbone. The application requests premium service by *putting* a
QoS attribute on its communicator (which triggers the reservation) and
checks the outcome by *getting* it back.

Run:  python examples/quickstart.py
"""

from repro import (
    MpichGQ,
    QOS_PREMIUM,
    QosAttribute,
    Simulator,
    garnet,
    mbps,
)
from repro.apps import PingPong, UdpTrafficGenerator


def measure(with_qos: bool) -> float:
    sim = Simulator(seed=42)
    testbed = garnet(sim, backbone_bandwidth=mbps(30))
    gq = MpichGQ.on_garnet(testbed)

    # Contention: a UDP generator "quite capable of overwhelming any
    # TCP application that does not have a reservation" (paper §5.2).
    blast = UdpTrafficGenerator(
        testbed.competitive_src, testbed.competitive_dst, rate=mbps(40)
    )
    blast.start()

    app = PingPong(message_bytes=10 * 1024, duration=3.0)

    def main(comm):
        if with_qos and comm.rank == 0:
            # --- the paper's Fig 3, in Python -------------------------
            qos = QosAttribute(
                qosclass=QOS_PREMIUM,
                bandwidth_kbps=4000.0,  # peak application bandwidth
                max_message_size=10 * 1024,  # max size used in MPI_Send
            )
            comm.attr_put(gq.qos_keyval, qos)  # triggers the request
            got, flag = comm.attr_get(gq.qos_keyval)
            assert flag and got.granted, got.error
            print(f"  rank 0: QoS granted -> {got}")
            # ----------------------------------------------------------
        yield from app.main(comm)

    gq.world.launch(main)
    sim.run(until=20.0)
    return app.result.one_way_throughput_kbps()


def main():
    print("MPICH-GQ quickstart: ping-pong under heavy UDP contention")
    best_effort = measure(with_qos=False)
    print(f"  best effort : {best_effort:8.0f} Kb/s one-way")
    premium = measure(with_qos=True)
    print(f"  premium QoS : {premium:8.0f} Kb/s one-way")
    if best_effort > 1.0:
        print(f"  speedup     : {premium / best_effort:8.1f}x")
    else:
        print("  speedup     : (best-effort flow was starved outright)")
    assert premium > max(2 * best_effort, 100), "QoS should beat best effort"


if __name__ == "__main__":
    main()
