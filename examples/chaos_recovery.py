#!/usr/bin/env python
"""Chaos recovery: a premium MPI application rides out a backbone
failure.

Two MPI ranks stream messages across a GARNET testbed built with a
standby core router. Mid-run a chaos schedule kills the primary
backbone link: in-flight packets die, routing fails over to the
standby core, the premium lease re-admits its reservation on the new
path, and the application keeps its EF service — all without touching
application code. The MPI QoS agent reports the degradation and the
restoration through the attribute it manages.

Run:  python examples/chaos_recovery.py
"""

from repro import (
    ChaosSchedule,
    MpichGQ,
    QOS_PREMIUM,
    QosAttribute,
    Simulator,
    garnet,
    mbps,
)

FAIL_AT = 2.0
RESTORE_AT = 6.0
MESSAGES = 200
MESSAGE_BYTES = 20 * 1024


def main():
    print("MPICH-GQ chaos recovery: backbone flap under a premium lease")
    sim = Simulator(seed=42)
    testbed = garnet(
        sim, backbone_bandwidth=mbps(30), redundant_backbone=True
    )
    gq = MpichGQ.on_garnet(testbed, resilient=True)

    def mpi_main(comm):
        if comm.rank == 0:
            qos = QosAttribute(
                qosclass=QOS_PREMIUM,
                bandwidth_kbps=4000.0,
                max_message_size=MESSAGE_BYTES,
            )
            comm.attr_put(gq.qos_keyval, qos)
            got, flag = comm.attr_get(gq.qos_keyval)
            assert flag and got.granted, got.error
            print(f"  t={sim.now:5.2f}s  rank 0: premium granted -> {got}")
            for _ in range(MESSAGES):
                yield comm.send(1, nbytes=MESSAGE_BYTES)
            print(f"  t={sim.now:5.2f}s  rank 0: all messages sent")
        else:
            for _ in range(MESSAGES):
                yield comm.recv(source=0)
            print(f"  t={sim.now:5.2f}s  rank 1: all messages received")

    # Narrate the lease's view of the outage.
    def watch_leases():
        # The agent creates the leases during attr_put; decorate them
        # once they exist.
        for lease in gq.lease_manager.leases:
            original_degraded = lease.on_degraded
            original_restored = lease.on_restored

            def degraded(l, why, _chain=original_degraded):
                print(f"  t={sim.now:5.2f}s  lease degraded: {why}")
                if _chain:
                    _chain(l, why)

            def restored(l, _chain=original_restored):
                print(f"  t={sim.now:5.2f}s  lease re-admitted via "
                      f"{[n.name for n in testbed.network.path(testbed.premium_src, testbed.premium_dst)]}")
                if _chain:
                    _chain(l)

            lease.on_degraded = degraded
            lease.on_restored = restored

    sim.call_at(0.5, watch_leases)

    chaos = ChaosSchedule(sim, testbed.network)
    chaos.at(FAIL_AT).fail_link("edge1", "core")
    chaos.at(RESTORE_AT).restore_link("edge1", "core")
    chaos.at(FAIL_AT).call(
        lambda: print(f"  t={sim.now:5.2f}s  CHAOS: edge1--core failed")
    )
    chaos.at(RESTORE_AT).call(
        lambda: print(f"  t={sim.now:5.2f}s  CHAOS: edge1--core restored")
    )

    procs = gq.world.launch(mpi_main)
    sim.run_until_event(sim.all_of(procs), limit=60.0)

    for lease in gq.lease_manager.leases:
        print(
            f"  final lease state: {lease.state} "
            f"(degradations={lease.degradations}, "
            f"readmissions={lease.readmissions})"
        )
        assert lease.state == "HELD"


if __name__ == "__main__":
    main()
