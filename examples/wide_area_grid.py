#!/usr/bin/env python
"""A grid run across the wide-area GARNET (Fig 4's upper half).

Six MPI ranks spread over three sites (ANL, LBNL, UChicago) run the
finite-difference solver; halo traffic crosses ESnet and MREN VCs with
tens of milliseconds of delay. The example contrasts:

* naive vs topology-aware broadcast (how many times the WAN is
  crossed for the same result), and
* best-effort vs premium halos while a bulk transfer congests the
  ESnet VC.

Run:  python examples/wide_area_grid.py
"""

from repro import Simulator, mbps
from repro.apps import UdpTrafficGenerator
from repro.core.mpichgq import MpichGQ
from repro.mpi import SUM, hierarchical_bcast, hierarchical_reduce
from repro.net import PacketTracer, garnet_wide


def build(seed=61):
    sim = Simulator(seed=seed)
    tb = garnet_wide(sim, esnet_bandwidth=mbps(20))
    hosts = [
        tb.hosts["anl"], tb.hosts["anl"],
        tb.hosts["lbnl"], tb.hosts["lbnl"],
        tb.hosts["uchicago"], tb.hosts["uchicago"],
    ]
    gq = MpichGQ(tb.network, hosts, routers=tb.routers)
    return sim, tb, gq


def broadcast_study():
    print("-- broadcast: how often does 200 KB cross the ESnet VC?")
    for aware in (False, True):
        sim, tb, gq = build()
        wan = PacketTracer(
            tb.network.path_interfaces(tb.hosts["anl"], tb.hosts["lbnl"])[1]
        )

        def main(comm):
            data = "field" if comm.rank == 0 else None
            if aware:
                result = yield from hierarchical_bcast(comm, data, 200_000)
            else:
                result = yield from comm.bcast(data, 200_000)
            assert result == "field"

        procs = gq.world.launch(main)
        sim.run_until_event(sim.all_of(procs), limit=120.0)
        label = "topology-aware" if aware else "binomial      "
        print(f"   {label}: {wan.total_bytes() / 1e3:7.0f} KB over the WAN, "
              f"done at t={sim.now * 1e3:.0f} ms")


def reduce_study():
    print("-- allreduce-style residual under ESnet congestion")
    durations = {}
    for reserved in (False, True):
        sim, tb, gq = build()
        # A bulk transfer out of LBNL loads its ESnet VC egress to 95% —
        # the direction the reduction's site-leader messages take.
        # (Above the VC rate the best-effort queue never drains and
        # TCP is starved outright; just below it, TCP crawls.)
        UdpTrafficGenerator(
            tb.hosts["lbnl"], tb.hosts["snl"], rate=mbps(19)
        ).start()
        if reserved:
            # Premium service for the LBNL->ANL partials (and the
            # reverse direction for the TCP ACK stream).
            gq.agent.reserve_flows(2, 0, mbps(5))
            gq.agent.reserve_flows(0, 2, mbps(1))
        done = {}

        def main(comm):
            total = None
            for _ in range(10):
                total = yield from hierarchical_reduce(
                    comm, comm.rank, 50_000, SUM, root=0
                )
            if comm.rank == 0:
                done["t"] = sim.now
                done["total"] = total

        procs = gq.world.launch(main)
        sim.run_until_event(sim.all_of(procs), limit=600.0)
        label = "premium halos" if reserved else "best effort  "
        print(f"   {label}: 10 reductions in {done['t']:6.2f} s "
              f"(sum={done['total']})")
        assert done["total"] == sum(range(6))
        durations[reserved] = done["t"]
    assert durations[True] < durations[False], "premium halos must win"


def main():
    print("Wide-area GARNET: 6 ranks over ANL / LBNL / UChicago")
    broadcast_study()
    reduce_study()


if __name__ == "__main__":
    main()
