#!/usr/bin/env python
"""Adaptive QoS: negotiate what's available, adapt the application.

§4.2 of the paper looks forward to MPI programs that "select from among
alternative resources, according to their availability, and adapt
execution strategies or change reservations if reservations cannot be
satisfied in full or are preempted". Here a visualization stream asks
for 8 Mb/s of premium bandwidth while a bulk transfer holds most of the
EF capacity; the adaptive session takes what the bandwidth broker can
grant and the application lowers its frame rate to fit — then, when
the bulk transfer's reservation expires, the session renegotiates up
and the stream returns to full quality.

Run:  python examples/adaptive_streaming.py
"""

from repro import Simulator, garnet, mbps, MpichGQ
from repro.apps import UdpTrafficGenerator
from repro.core import AdaptiveQosSession
from repro.gara import NetworkReservationSpec
from repro.kernel import Counter


def main():
    sim = Simulator(seed=5)
    testbed = garnet(sim, backbone_bandwidth=mbps(20))
    gq = MpichGQ.on_garnet(testbed)
    UdpTrafficGenerator(
        testbed.competitive_src, testbed.competitive_dst, rate=mbps(30)
    ).start()

    # A bulk transfer holds 10 of the 14 Mb/s EF capacity until t=15.
    gq.gara.reserve(
        NetworkReservationSpec(
            testbed.premium_src, testbed.premium_dst, mbps(10)
        ),
        duration=15.0,
    )

    desired = mbps(8.0)
    session = AdaptiveQosSession(
        gq.agent, 0, 1, desired_bps=desired, minimum_bps=mbps(1.0)
    )
    frame_bytes = 100_000  # 0.8 Mbit per frame
    run_for = 30.0

    grants = [(sim.now, session.granted_bps / 1e6)]
    session.listeners.append(
        lambda s: grants.append((sim.now, s.granted_bps / 1e6))
    )
    delivered = Counter(sim, "frames")

    def sender(comm):
        while sim.now < run_for:
            # Fit the stream inside ~94% of the current grant (leaving
            # the protocol-overhead margin), at least 1 fps.
            usable = max(session.granted_bps * 0.94, frame_bytes * 8.0)
            interval = frame_bytes * 8.0 / usable
            yield comm.send(1, nbytes=frame_bytes, tag=77)
            yield sim.timeout(interval)
        yield comm.send(1, nbytes=1, tag=78)

    def receiver(comm):
        stop = comm.irecv(source=0, tag=78)
        while True:
            frame = comm.irecv(source=0, tag=77)
            yield sim.any_of([stop.wait(), frame.wait()])
            if frame.completed:
                delivered.add(frame.wait().value[1].nbytes)
                continue
            if stop.completed:
                return

    def main_fn(comm):
        if comm.rank == 0:
            yield from sender(comm)
        else:
            yield from receiver(comm)

    gq.world.launch(main_fn)
    sim.run(until=run_for + 10.0)

    low = delivered.rate_over(1.0, 14.0) * 8 / 1e6
    high = delivered.rate_over(16.0, 29.0) * 8 / 1e6
    print("grant timeline:")
    for t, g in grants:
        print(f"  t={t:5.1f}s  -> {g:.1f} Mb/s granted")
    print(f"delivered while squeezed (t=1..14)   : {low:5.1f} Mb/s")
    print(f"delivered after renegotiation (16..29): {high:5.1f} Mb/s")
    assert session.granted_bps == desired, "must renegotiate up at t=15"
    assert high > 1.5 * low, "quality must improve after renegotiation"


if __name__ == "__main__":
    main()
