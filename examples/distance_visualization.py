#!/usr/bin/env python
"""Distance visualization over a congested WAN (paper §5.3).

A sender streams fixed-size frames to a remote display at 10 frames per
second — the paper's emulation of a distance-visualization pipeline.
The script sweeps the premium reservation and prints the achieved
bandwidth, showing the paper's two headline effects:

* a reservation slightly below ~1.06x the sending rate collapses the
  stream (TCP congestion control, not proportional degradation);
* once adequate, extra reservation buys nothing.

Run:  python examples/distance_visualization.py
"""

from repro import Simulator, garnet, kbps, mbps, MpichGQ
from repro.apps import UdpTrafficGenerator, VisualizationPipeline
from repro.net import KB


def stream(reservation_kbps: float) -> float:
    sim = Simulator(seed=7)
    testbed = garnet(sim, backbone_bandwidth=mbps(30))
    gq = MpichGQ.on_garnet(testbed)
    UdpTrafficGenerator(
        testbed.competitive_src, testbed.competitive_dst, rate=mbps(40)
    ).start()

    if reservation_kbps > 0:
        gq.agent.reserve_flows(0, 1, kbps(reservation_kbps))

    app = VisualizationPipeline(frame_bytes=20 * KB, fps=10, duration=8.0)
    gq.world.launch(app.main)
    sim.run(until=30.0)
    return app.achieved_bandwidth_kbps(1.0, 8.0)


def main():
    target = 20 * KB * 8 * 10 / 1e3  # 1638 Kb/s
    print(f"20 KB frames at 10 fps -> target {target:.0f} Kb/s")
    print(f"{'reservation':>12}  {'achieved':>9}  {'of target':>9}")
    for reservation in (0, 600, 1200, 1500, 1600, 1750, 2000, 2400):
        achieved = stream(reservation)
        print(
            f"{reservation:>9} Kb/s {achieved:8.0f} Kb/s "
            f"{achieved / target:8.0%}"
        )
    print(
        "\nNote the cliff: ~1.06x the sending rate is adequate, a bit "
        "less collapses the stream."
    )


if __name__ == "__main__":
    main()
