#!/usr/bin/env python
"""Co-reserving network and CPU (paper §5.5, Figure 9).

A 10 Mb/s visualization stream faces *both* network congestion and a
CPU hog on its sending host. The script shows that neither reservation
alone restores the stream — "it is insufficient to make just a network
reservation or a CPU reservation: both reservations are needed" — and
then uses GARA's all-or-nothing co-reservation to fix both at once.

Run:  python examples/coreservation.py
"""

from repro import Simulator, garnet, mbps, MpichGQ
from repro.apps import CpuHog, UdpTrafficGenerator, VisualizationPipeline
from repro.cpu import Cpu
from repro.gara import CpuReservationSpec, NetworkReservationSpec


def run_case(reserve_network: bool, reserve_cpu: bool) -> float:
    sim = Simulator(seed=3)
    testbed = garnet(sim, backbone_bandwidth=mbps(30))
    gq = MpichGQ.on_garnet(testbed)
    sender = testbed.premium_src
    cpu = Cpu(sim, host=sender)

    # Both kinds of contention from the start.
    UdpTrafficGenerator(
        testbed.competitive_src, testbed.competitive_dst, rate=mbps(40)
    ).start()
    hog = CpuHog(sender)
    hog.start()

    target = mbps(10.0)
    app = VisualizationPipeline(
        frame_bytes=int(target / 10 / 8),
        fps=10,
        duration=8.0,
        work_fraction=0.85,
    )
    gq.world.launch(app.main)

    # GARA co-reservation: all-or-nothing across resource types.
    requests = []
    if reserve_network:
        requests.append(
            (NetworkReservationSpec(
                testbed.premium_src, testbed.premium_dst, target * 1.06
            ), None, None)
        )
    if reserve_cpu:
        requests.append((CpuReservationSpec(cpu, 0.9), None, None))
    reservations = gq.gara.reserve_many(requests)
    for reservation in reservations:
        if isinstance(reservation.spec, NetworkReservationSpec):
            for flow in gq.agent._flow_specs(0, 1):
                gq.gara.bind(reservation, flow)

    def bind_cpu_task():
        while app._cpu_task is None:
            yield sim.timeout(0.05)
        for reservation in reservations:
            if isinstance(reservation.spec, CpuReservationSpec):
                gq.gara.bind(reservation, app._cpu_task)

    if reserve_cpu:
        sim.process(bind_cpu_task())

    sim.run(until=40.0)
    return app.achieved_bandwidth_kbps(1.0, 8.0)


def main():
    target_kbps = 10_000
    print(f"10 Mb/s stream vs UDP blast + CPU hog (target {target_kbps} Kb/s)")
    cases = [
        ("no reservation", False, False),
        ("network only", True, False),
        ("CPU only", False, True),
        ("network + CPU", True, True),
    ]
    results = {}
    for label, net, cpu in cases:
        achieved = run_case(net, cpu)
        results[label] = achieved
        print(f"  {label:<15} {achieved:8.0f} Kb/s ({achieved/target_kbps:4.0%})")
    assert results["network + CPU"] > 0.9 * target_kbps
    assert results["network only"] < 0.9 * target_kbps
    assert results["CPU only"] < 0.9 * target_kbps
    print("\nBoth reservations are needed — exactly the paper's point.")


if __name__ == "__main__":
    main()
