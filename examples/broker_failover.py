#!/usr/bin/env python
"""Broker failover: a premium MPI flow survives a bandwidth-broker
crash via journal replay.

Two MPI ranks stream messages with premium QoS (the fig-1 flow).
Mid-run a chaos schedule kills the bandwidth broker *process* — all of
its in-memory slot tables, per-owner usage, and quotas are gone. The
failure detector suspects the broker within its timeout, the lease
degrades the communicator to best-effort (the attribute's ``granted``
flips to False), and the data plane keeps moving bytes unmarked.

When the broker restarts it replays its write-ahead journal, rebuilding
the exact pre-crash slot-table state (verified against a snapshot taken
just before the crash); the network manager flushes any releases queued
while the broker was deaf and re-registers live claims so the orphan GC
leaves them alone. The detector observes the recovery, collapses the
lease's backoff, and premium EF marking resumes.

The script prints the whole recovery timeline.

Run:  python examples/broker_failover.py
"""

from repro import (
    ChaosSchedule,
    MpichGQ,
    QOS_PREMIUM,
    QosAttribute,
    Simulator,
    garnet,
    mbps,
)

CRASH_AT = 2.0
RESTART_AT = 5.0
MESSAGES = 300
MESSAGE_BYTES = 20 * 1024


def main():
    print("MPICH-GQ broker failover: journaled recovery under a premium flow")
    sim = Simulator(seed=42)
    testbed = garnet(sim, backbone_bandwidth=mbps(30))
    gq = MpichGQ.on_garnet(testbed, resilient=True)
    timeline = []

    def mark(event):
        timeline.append((sim.now, event))
        print(f"  t={sim.now:5.2f}s  {event}")

    qos = QosAttribute(
        qosclass=QOS_PREMIUM,
        bandwidth_kbps=4000.0,
        max_message_size=MESSAGE_BYTES,
    )

    def mpi_main(comm):
        if comm.rank == 0:
            comm.attr_put(gq.qos_keyval, qos)
            got, flag = comm.attr_get(gq.qos_keyval)
            assert flag and got.granted, got.error
            mark(f"rank 0: premium granted ({qos.bandwidth_kbps:.0f} Kb/s)")
            for i in range(MESSAGES):
                yield comm.send(1, nbytes=MESSAGE_BYTES)
                if i == MESSAGES // 2:
                    state = "premium" if qos.granted else "best-effort"
                    mark(f"rank 0: halfway through, running {state}")
            mark("rank 0: all messages sent")
        else:
            for _ in range(MESSAGES):
                yield comm.recv(source=0)
            mark("rank 1: all messages received")

    # Narrate the lease view of the outage.
    def watch_leases():
        for lease in gq.lease_manager.leases:
            chain_degraded, chain_restored = lease.on_degraded, lease.on_restored

            def degraded(l, why, _c=chain_degraded):
                mark(f"lease degraded to best-effort: {why}")
                if _c:
                    _c(l, why)

            def restored(l, _c=chain_restored):
                mark("lease re-admitted: EF marking restored")
                if _c:
                    _c(l)

            lease.on_degraded = degraded
            lease.on_restored = restored

    sim.call_at(0.5, watch_leases)

    # Snapshot the slot tables an instant before the crash so the
    # journal replay can be checked for exact reconstruction.
    pre_crash = {}
    sim.call_at(
        CRASH_AT - 1e-3,
        lambda: pre_crash.update(snapshot=gq.broker.snapshot()),
    )

    chaos = ChaosSchedule(sim, testbed.network)
    chaos.at(CRASH_AT).call(
        lambda: mark("CHAOS: broker process killed (state wiped)")
    )
    chaos.at(CRASH_AT).crash(gq.broker)
    chaos.at(RESTART_AT).restart(gq.broker)
    chaos.at(RESTART_AT).call(
        lambda: mark(
            f"CHAOS: broker restarted; journal replayed "
            f"{len(gq.journal)} records"
        )
    )

    procs = gq.world.launch(mpi_main)
    sim.run_until_event(sim.all_of(procs), limit=60.0)
    # The message stream outpaces the outage; keep the control plane
    # running until the broker has restarted and the leases re-admitted.
    sim.run(until=max(sim.now, RESTART_AT) + 3.0)

    print("\nRecovery audit:")
    replay_ok = gq.broker.last_replay_snapshot == pre_crash["snapshot"]
    print(f"  journal records              : {len(gq.journal)}")
    print(f"  replay == pre-crash snapshot : {replay_ok}")
    print(f"  detector suspicions/recoveries: "
          f"{gq.detector.suspicions}/{gq.detector.recoveries}")
    print(f"  orphan paths collected       : "
          f"{gq.broker.orphan_paths_collected}")
    for lease in gq.lease_manager.leases:
        print(f"  final lease: {lease.state} "
              f"(degradations={lease.degradations}, "
              f"readmissions={lease.readmissions})")
        assert lease.state == "HELD"
    assert replay_ok, "journal replay diverged from the pre-crash state"
    assert qos.granted, qos.error


if __name__ == "__main__":
    main()
