#!/usr/bin/env python
"""The paper's motivating SPMD workload: a finite-difference code.

§3 motivates MPICH-GQ with "a simple finite difference application
partitioned across two 8-processor multiprocessors connected by a wide
area network": tiny *average* bandwidth, but large instantaneous bursts
that blow through a naive token bucket.

This example runs a real Jacobi solver on four MPI ranks spread over
the GARNET testbed (two per side), exchanges halos over the congested
backbone, and compares convergence time with and without premium QoS
for the communicator.

Run:  python examples/finite_difference.py
"""

import numpy as np

from repro import (
    MpichGQ,
    QOS_PREMIUM,
    QosAttribute,
    Simulator,
    garnet,
    mbps,
)
from repro.apps import FiniteDifference, UdpTrafficGenerator


def solve(with_qos: bool) -> tuple:
    sim = Simulator(seed=11)
    testbed = garnet(sim, backbone_bandwidth=mbps(20))
    # Ranks 0,1 on the left site; ranks 2,3 on the right site.
    gq = MpichGQ.on_garnet(
        testbed,
        ranks_hosts=[
            testbed.premium_src,
            testbed.premium_src,
            testbed.premium_dst,
            testbed.premium_dst,
        ],
    )
    # Contention heavy enough to hurt best effort badly, light enough
    # that the unreserved run still finishes (for the comparison).
    UdpTrafficGenerator(
        testbed.competitive_src, testbed.competitive_dst, rate=mbps(22)
    ).start()

    app = FiniteDifference(n=128, iterations=40, residual_every=20)
    finished = {}

    def main(comm):
        if with_qos and comm.rank == 0:
            comm.attr_put(
                gq.qos_keyval,
                QosAttribute(
                    QOS_PREMIUM,
                    bandwidth_kbps=3000.0,
                    max_message_size=app.halo_bytes_per_exchange(),
                ),
            )
        yield from app.main(comm)
        if comm.rank == 0:
            finished["t"] = comm.sim.now

    gq.world.launch(main)
    sim.run(until=600.0)
    return finished.get("t"), app


def main():
    print("4-rank Jacobi solver, halos over a congested wide-area link")
    t_be, app_be = solve(with_qos=False)
    t_qos, app_qos = solve(with_qos=True)
    print(f"  best effort : {t_be:7.2f} s to finish 40 sweeps"
          if t_be else "  best effort : did not finish in 600 s")
    print(f"  premium QoS : {t_qos:7.2f} s to finish 40 sweeps")
    print(f"  residuals   : {['%.4f' % r for r in app_qos.stats.residuals]}")

    # The numerics are identical either way — QoS changes time, not math.
    if t_be is not None:
        for rank in range(4):
            assert np.allclose(
                app_be.solutions[rank], app_qos.solutions[rank], atol=1e-12
            )
        assert t_qos < t_be, "premium halos should finish first"
        print(f"  speedup     : {t_be / t_qos:7.1f}x")
    else:
        print("  speedup     : unbounded (best effort never completed)")


if __name__ == "__main__":
    main()
