"""Crash/restart chaos soak for the broker service.

Seeded clients hammer a live :class:`BrokerService` with reserve /
cancel / modify / claim traffic while a killer task crashes and
restarts the service mid-load (hard aborts and graceful shutdowns,
chosen by the seed). After the last cycle every client reconciles its
in-doubt operations (a request whose reply was lost to a crash is
resolved through its idempotency key: cancel-by-reserve-key either
cancels the committed reservation or tombstones the key so a late
commit is impossible), the orphan-GC grace window is allowed to pass,
and the harness asserts the conservation invariants the service
guarantees:

* **no lost reservation** — every reservation a client still holds is
  live on the service and its claim entries sit in the broker's slot
  tables;
* **no leaked/duplicated reservation** — the service holds nothing a
  client does not, every slot-table entry belongs to exactly one live
  reservation, and no slot table exceeds its EF capacity;
* **replay equivalence** — a fresh broker + fresh service replaying
  the two (possibly compacted) journals reconstructs slot tables and
  reservation maps identical to the survivor's — the journal is the
  truth, crashes notwithstanding;
* **liveness evidence** — clients actually retried (the outages were
  real) and every crash/restart cycle is visible in the counters.

Run it directly::

    python -m repro.broker_service.chaos --seed 0 --cycles 3

Exit status 1 and a ``violations`` list in the JSON report mean a
guarantee broke.
"""

from __future__ import annotations

import argparse
import asyncio
import json
import random
import sys
from typing import Dict, List, Optional, Tuple

from ..gara import BandwidthBroker
from ..kernel import Simulator
from ..net import garnet, mbps
from ..resilience import Journal
from .client import (
    AdmissionRejected,
    BrokerClient,
    BrokerClientError,
    BrokerReservation,
)
from .server import BrokerService

__all__ = ["build_service", "chaos_soak", "main"]

#: Host pairs chaos clients reserve between (all cross the backbone).
PAIRS = (
    ("premium_src", "premium_dst"),
    ("competitive_src", "competitive_dst"),
    ("premium_src", "competitive_dst"),
    ("competitive_src", "premium_dst"),
)

GC_GRACE = 0.5


def build_service(
    seed: int = 0,
    *,
    compact_every: int = 0,
    max_pending: int = 256,
    evict_after: Optional[float] = None,
    gc_grace: float = GC_GRACE,
    tick: Optional[float] = 0.02,
) -> BrokerService:
    """A broker service over a fresh GARNET topology (OC3 backbone)."""
    sim = Simulator(seed=seed)
    testbed = garnet(sim, backbone_bandwidth=mbps(155.0))
    testbed.network.build_routes()
    broker = BandwidthBroker(
        testbed.network, journal=Journal("broker"), gc_grace=gc_grace
    )
    return BrokerService(
        broker,
        Journal("broker-service"),
        compact_every=compact_every,
        max_pending=max_pending,
        evict_after=evict_after,
        tick=tick,
    )


async def _worker(
    idx: int,
    seed: int,
    port: int,
    ops: int,
    out: Dict[int, dict],
) -> None:
    rng = random.Random(seed)
    cli = BrokerClient(
        "127.0.0.1",
        port,
        name=f"chaos-{idx}",
        seed=seed + 1,
        timeout=0.25,
        max_retries=40,
        backoff_base=0.01,
        backoff_cap=0.15,
    )
    cli.start_heartbeats(0.1)
    held: List[BrokerReservation] = []
    in_doubt: List[BrokerReservation] = []
    stats = {"rejected": 0, "gave_up": 0, "ops": 0}
    for _ in range(ops):
        stats["ops"] += 1
        roll = rng.random()
        if roll < 0.55 or not held:
            src, dst = PAIRS[rng.randrange(len(PAIRS))]
            start = rng.uniform(0.0, 40.0)
            res = BrokerReservation(
                cli.new_key(),
                f"chaos-{idx}",
                src,
                dst,
                rng.uniform(0.5e6, 3e6),
                start,
                start + rng.uniform(5.0, 40.0),
            )
            # Track before sending: if the reply is lost we must
            # reconcile this key, not forget it.
            in_doubt.append(res)
            try:
                got = await cli.reserve(
                    res.src, res.dst, res.bandwidth, res.start, res.end,
                    owner=res.owner, key=res.key, degrade=False,
                )
            except AdmissionRejected:
                stats["rejected"] += 1
                in_doubt.remove(res)
            except BrokerClientError:
                # Reply lost (a crash window): the key stays in-doubt
                # and is reconciled below.
                stats["gave_up"] += 1
            else:
                in_doubt.remove(res)
                held.append(got)
        elif roll < 0.85:
            res = held.pop(rng.randrange(len(held)))
            in_doubt.append(res)
            try:
                await cli.cancel(res)
            except BrokerClientError:
                stats["gave_up"] += 1
            else:
                in_doubt.remove(res)
        elif roll < 0.95:
            res = held[rng.randrange(len(held))]
            try:
                await cli.modify(
                    res, bandwidth=res.bandwidth * rng.uniform(0.6, 1.1)
                )
            except AdmissionRejected:
                stats["rejected"] += 1
            except BrokerClientError:
                stats["gave_up"] += 1
        else:
            try:
                await cli.claim(held[rng.randrange(len(held))])
            except BrokerClientError:
                stats["gave_up"] += 1
        await asyncio.sleep(rng.uniform(0.0, 0.004))
    out[idx] = {
        "client": cli, "held": held, "in_doubt": in_doubt, "stats": stats,
    }


async def _reconcile(worker: dict) -> None:
    """Resolve every in-doubt operation through idempotency keys.

    The service is stable now, so these must all land: a cancel by
    reserve-key either frees the committed reservation, is a counted
    no-op (already cancelled), or tombstones a never-committed key.
    """
    cli: BrokerClient = worker["client"]
    for res in worker["in_doubt"]:
        await cli.cancel(res)
    worker["in_doubt"] = []


def _replay_oracle(service: BrokerService, seed: int) -> Tuple:
    """Rebuild broker + service state purely from the journals."""
    sim = Simulator(seed=seed)
    testbed = garnet(sim, backbone_bandwidth=mbps(155.0))
    testbed.network.build_routes()
    oracle_broker = BandwidthBroker(
        testbed.network, journal=service.broker.journal, gc_grace=GC_GRACE
    )
    oracle_broker.crash()
    oracle_broker.restart()
    oracle_svc = BrokerService(oracle_broker, service.journal, tick=None)
    if service.journal.snapshot_payload is not None:
        oracle_svc._restore_checkpoint(service.journal.snapshot_payload)
    for record in service.journal.records:
        oracle_svc._replay(record)
    claims_by_name = {
        rid: tuple((c[0].node.name, c[0].name, c[1]) for c in claims)
        for rid, claims in oracle_svc._claims.items()
    }
    return oracle_broker.snapshot(), claims_by_name


async def chaos_soak(
    seed: int = 0,
    *,
    cycles: int = 3,
    clients: int = 3,
    ops: int = 40,
    compact_every: int = 64,
    settle: float = GC_GRACE + 0.4,
) -> dict:
    """One full soak; returns a report with a ``violations`` list
    (empty = every guarantee held)."""
    rng = random.Random(seed ^ 0x5EED)
    service = build_service(
        seed, compact_every=compact_every, evict_after=1.0
    )
    await service.start()
    port = service.port

    out: Dict[int, dict] = {}
    workers = [
        asyncio.create_task(_worker(i, seed * 1000 + i, port, ops, out))
        for i in range(clients)
    ]

    crash_log = []
    for cycle in range(cycles):
        await asyncio.sleep(rng.uniform(0.15, 0.4))
        graceful = rng.random() < 0.4
        await service.crash(graceful=graceful)
        crash_log.append("graceful" if graceful else "hard")
        await asyncio.sleep(rng.uniform(0.05, 0.2))
        await service.restart()

    await asyncio.gather(*workers)
    for worker in out.values():
        await _reconcile(worker)
    # Let the orphan-GC grace window for the last restart expire so
    # broker-journal-only entries (crash between the two journal
    # appends) are expunged before we audit.
    await asyncio.sleep(settle)

    violations: List[str] = []

    client_rids = {}
    for idx, worker in out.items():
        for res in worker["held"]:
            if res.rid is None:
                continue
            if res.rid in client_rids:
                violations.append(
                    f"rid {res.rid} held by two clients "
                    f"({client_rids[res.rid]} and {idx}) — double booked"
                )
            client_rids[res.rid] = idx

    server_rids = set(service._claims)
    lost = set(client_rids) - server_rids
    leaked = server_rids - set(client_rids)
    if lost:
        violations.append(f"lost reservations: {sorted(lost)}")
    if leaked:
        violations.append(f"leaked reservations: {sorted(leaked)}")

    # Slot-table conservation: every live claim entry present, every
    # table entry owned by exactly one live reservation, no table over
    # its EF capacity.
    entry_count = 0
    for rid, claims in service._claims.items():
        for iface, entry_id, _owner, _bw in claims:
            entry_count += 1
            if entry_id not in service.broker.table_for(iface):
                violations.append(
                    f"rid {rid} claim entry {entry_id} missing from "
                    f"{iface.node.name}.{iface.name}"
                )
    table_entries = sum(
        len(table) for table in service.broker._tables.values()
    )
    if table_entries != entry_count:
        violations.append(
            f"slot tables hold {table_entries} entries but live "
            f"reservations account for {entry_count}"
        )
    for table in service.broker._tables.values():
        if len(table):
            peak = table.max_usage(0.0, 1e9)
            if peak > table.capacity + 1e-6:
                violations.append(
                    f"{table.name} over capacity: {peak} > {table.capacity}"
                )

    # Replay equivalence: journals alone rebuild the survivor's state.
    oracle_snapshot, oracle_claims = _replay_oracle(service, seed)
    if oracle_snapshot != service.broker.snapshot():
        violations.append("broker journal replay diverged from live state")
    live_claims = {
        rid: tuple((c[0].node.name, c[0].name, c[1]) for c in claims)
        for rid, claims in service._claims.items()
    }
    if oracle_claims != live_claims:
        violations.append("service journal replay diverged from live state")

    total_retries = sum(w["client"].retries for w in out.values())
    if cycles and total_retries == 0:
        violations.append("no client ever retried — outages were not felt")
    if service.crashes != cycles or service.restarts != cycles:
        violations.append(
            f"crash/restart cycles miscounted: "
            f"{service.crashes}/{service.restarts} vs {cycles}"
        )

    report = {
        "seed": seed,
        "cycles": cycles,
        "crashes": crash_log,
        "clients": clients,
        "ops_per_client": ops,
        "live_reservations": len(server_rids),
        "client_retries": total_retries,
        "client_timeouts": sum(w["client"].timeouts for w in out.values()),
        "client_conn_failures": sum(
            w["client"].conn_failures for w in out.values()
        ),
        "client_idempotent_acks": sum(
            w["client"].idempotent_acks for w in out.values()
        ),
        "gave_up": sum(w["stats"]["gave_up"] for w in out.values()),
        "rejected": sum(w["stats"]["rejected"] for w in out.values()),
        "recovery_seconds_last": service.recovery_seconds_last,
        "recovery_seconds_total": service.recovery_seconds_total,
        "service": service.status_counters(),
        "violations": violations,
    }
    for worker in out.values():
        await worker["client"].close()
    await service.close()
    return report


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--cycles", type=int, default=3)
    parser.add_argument("--clients", type=int, default=3)
    parser.add_argument("--ops", type=int, default=40)
    parser.add_argument("--compact-every", type=int, default=64)
    args = parser.parse_args(argv)
    report = asyncio.run(
        chaos_soak(
            args.seed,
            cycles=args.cycles,
            clients=args.clients,
            ops=args.ops,
            compact_every=args.compact_every,
        )
    )
    print(json.dumps(report, indent=2, default=str))
    return 1 if report["violations"] else 0


if __name__ == "__main__":
    sys.exit(main())
