"""Wire protocol for the always-on GARA broker service.

Framing
-------
Every message — request or reply — travels as one *frame*::

    +----------------+----------------------------+
    | length (4B BE) | UTF-8 JSON payload         |
    +----------------+----------------------------+

``length`` is the byte length of the JSON payload (unsigned big-endian,
bounded by ``max_frame`` — oversized frames kill the connection before
a byte of payload is read, so a hostile client cannot balloon server
memory).

Requests
--------
A request is a JSON array whose first element is the operation tag::

    ["rsv",   id, key, owner, src, dst, bandwidth, start, end]
    ["mod",   id, key, rid, bandwidth, start, end]
    ["can",   id, key, rid, reserve_key]
    ["clm",   id, rid]
    ["hb",    id, client, epoch]
    ["st",    id]
    ["batch", id, [sub_request, ...], summary?]

``id`` is a caller-chosen correlation value echoed verbatim in the
reply. ``key`` is an optional idempotency key (``null`` to opt out):
the service remembers the committed outcome per key — in its journal,
so across crashes — and a retried request replays the recorded reply
instead of re-executing. ``batch`` carries sub-requests (any op except
``batch``) executed in order with one reply frame for the lot; with
the optional trailing ``summary`` flag set to 1 the reply aggregates
to ``[ok_count, error_count]`` instead of per-sub replies (bulk
pipelines that do not need individual rids — e.g. cancel-by-key
streams — use this to halve reply bandwidth and decode cost; every
sub-request is still executed and journaled individually).

For human-operated clients every op also accepts an object form
(``{"op": "reserve", "id": 1, "src": "a", ...}``); :func:`normalize`
lowers it to the array form above. The array form is canonical and is
what the performance path speaks.

Replies
-------
A reply is ``[id, status, ...payload]`` with integer status:

    ========  ==========  ==============================================
    status    name        payload
    ========  ==========  ==============================================
    0         OK          op-specific (see below)
    1         REJECTED    reason string (admission/quota denial — final)
    2         BUSY        retry-after seconds (load shed — transient)
    3         RETRY       retry-after seconds (broker down/restarting)
    4         BAD         reason string (malformed request — final)
    5         UNKNOWN     reason string (no such reservation — final)
    ========  ==========  ==============================================

OK payloads::

    rsv   -> rid, idempotent          (idempotent=1: replayed, not re-run)
    mod   -> rid, idempotent
    can   -> counted, idempotent      (counted=0: already gone; a no-op)
    clm   -> {"rid", "owner", "bandwidth", "start", "end", "claims"}
    hb    -> epoch, fresh             (fresh=0: stale epoch, re-register)
    st    -> {counter: value, ...}
    batch -> [sub_reply, ...]         (summary=1: [ok_count, error_count])

BUSY and RETRY are the only retryable statuses; both carry an explicit
retry-after hint so backoff is server-paced under overload.
"""

from __future__ import annotations

import asyncio
import json
import struct
from typing import Any, List, Optional

__all__ = [
    "MAX_FRAME",
    "STATUS_OK",
    "STATUS_REJECTED",
    "STATUS_BUSY",
    "STATUS_RETRY",
    "STATUS_BAD",
    "STATUS_UNKNOWN",
    "STATUS_NAMES",
    "RETRYABLE_STATUSES",
    "ProtocolError",
    "FrameTooLarge",
    "encode_frame",
    "decode_payload",
    "read_frame",
    "normalize",
]

#: Default upper bound on a frame's JSON payload, in bytes.
MAX_FRAME = 1 << 20

STATUS_OK = 0
STATUS_REJECTED = 1
STATUS_BUSY = 2
STATUS_RETRY = 3
STATUS_BAD = 4
STATUS_UNKNOWN = 5

STATUS_NAMES = {
    STATUS_OK: "OK",
    STATUS_REJECTED: "REJECTED",
    STATUS_BUSY: "BUSY",
    STATUS_RETRY: "RETRY",
    STATUS_BAD: "BAD",
    STATUS_UNKNOWN: "UNKNOWN",
}

#: Statuses a client may transparently retry (with backoff).
RETRYABLE_STATUSES = frozenset({STATUS_BUSY, STATUS_RETRY})

_LEN = struct.Struct(">I")


class ProtocolError(Exception):
    """The peer sent bytes that do not decode to a valid message."""


class FrameTooLarge(ProtocolError):
    """Frame length header exceeds the negotiated maximum."""


def encode_frame(payload: Any) -> bytes:
    """Serialize ``payload`` to one length-prefixed JSON frame."""
    body = json.dumps(payload, separators=(",", ":")).encode("utf-8")
    return _LEN.pack(len(body)) + body


def decode_payload(body: bytes) -> Any:
    try:
        return json.loads(body)
    except ValueError as exc:
        raise ProtocolError(f"undecodable frame payload: {exc}") from exc


async def read_frame(
    reader: asyncio.StreamReader, max_frame: int = MAX_FRAME
) -> Any:
    """Read one frame; raises ``IncompleteReadError`` on clean EOF,
    :class:`FrameTooLarge` before reading an oversized payload."""
    header = await reader.readexactly(4)
    (length,) = _LEN.unpack(header)
    if length > max_frame:
        raise FrameTooLarge(f"frame of {length} bytes exceeds {max_frame}")
    return decode_payload(await reader.readexactly(length))


# -- object-form lowering ----------------------------------------------------

# op name -> (tag, ordered field names, number of *required* fields).
# Optional trailing fields default to None when absent from the object.
_OBJECT_FORMS = {
    "reserve": (
        "rsv",
        ("key", "owner", "src", "dst", "bandwidth", "start", "end"),
        7,
    ),
    "modify": ("mod", ("key", "rid", "bandwidth", "start", "end"), 5),
    "cancel": ("can", ("key", "rid", "reserve_key"), 0),
    "claim": ("clm", ("rid",), 1),
    "heartbeat": ("hb", ("client", "epoch"), 1),
    "status": ("st", (), 0),
    "batch": ("batch", ("requests", "summary"), 1),
}

_TAGS = frozenset(tag for tag, _f, _n in _OBJECT_FORMS.values())


def normalize(message: Any) -> List[Any]:
    """Lower a request to canonical array form.

    Array-form requests pass through after a shape check; object-form
    requests are rewritten per the table above. Raises
    :class:`ProtocolError` for anything else.
    """
    if isinstance(message, list):
        if not message or message[0] not in _TAGS:
            raise ProtocolError(f"unknown request tag in {message!r}")
        if message[0] == "batch":
            if len(message) not in (3, 4) or not isinstance(message[2], list):
                raise ProtocolError("batch requests must be a list")
            # Array-form subs pass through untouched (the dispatcher
            # replies per-sub BAD for anything malformed); only
            # object-form subs need lowering.
            lowered = [
                "batch",
                message[1],
                [
                    sub if type(sub) is list else normalize(sub)
                    for sub in message[2]
                ],
            ]
            if len(message) == 4 and message[3]:
                lowered.append(1)
            return lowered
        return message
    if not isinstance(message, dict):
        raise ProtocolError(f"request must be array or object, got {message!r}")
    op = message.get("op")
    form = _OBJECT_FORMS.get(op)
    if form is None:
        raise ProtocolError(f"unknown op {op!r}")
    tag, fields, required = form
    lowered: List[Any] = [tag, message.get("id")]
    for index, field in enumerate(fields):
        if index < required and field not in message:
            raise ProtocolError(f"op {op!r} missing field {field!r}")
        lowered.append(message.get(field))
    if tag == "batch":
        summary = lowered.pop()
        subs = lowered.pop()
        if not isinstance(subs, list):
            raise ProtocolError("batch requests must be a list")
        lowered.append([normalize(sub) for sub in subs])
        if summary:
            lowered.append(1)
    return lowered


def reply_status(reply: List[Any]) -> int:
    """Status code of a decoded reply array."""
    return reply[1]
