"""Always-on GARA broker service.

:class:`BrokerService` wraps a :class:`~repro.gara.BandwidthBroker` in
an asyncio TCP server speaking the length-prefixed JSON protocol of
:mod:`repro.broker_service.protocol`, turning the in-process broker
into the long-lived reservation daemon the paper's GARA architecture
assumes (the broker "normally" being "an external QoS system").

Durability
----------
Two write-ahead journals cooperate:

* the **broker journal** (required) logs every slot-table mutation
  before ``admit_path``/``release`` return — exactly as in the embedded
  broker;
* the **service journal** logs the service-level outcome (reservation
  id, idempotency key, claim names) *after* the broker commit, so every
  reply the service sends is backed by stable storage.

A crash wipes all volatile state. :meth:`restart` replays broker
journal then service journal (each restoring its compaction checkpoint
first, then folding the suffix), re-registers every live reservation's
claims with the broker — rescuing them from the orphan GC — and
reopens the listener. The recovery window where the broker journal has
an admission but the service journal has no matching reservation (a
crash between the two appends) resolves conservatively: nobody
re-registers those entries, the orphan GC expunges them after its
grace window, and the client's retried reserve (same idempotency key,
which the service never recorded) re-admits cleanly. No capacity is
ever leaked or double-booked.

Overload
--------
Admission to the *service* is itself admission-controlled: at most
``max_connections`` sockets and ``max_pending`` queued requests (batch
frames count per sub-request). Excess load is shed with an explicit
``BUSY`` reply carrying a retry-after hint rather than buffered into
unbounded memory; a crashed/restarting service answers ``RETRY``. Both
are client-retryable; everything else is final.

Liveness
--------
Clients may register with ``hb`` frames; a
:class:`~repro.resilience.FailureDetector` in push mode supervises
them, and a client silent past ``evict_after`` seconds is evicted:
watch closed (fresh epoch on return), its connections dropped. Its
reservations survive until cancelled — eviction is about connection
hygiene, not capacity reclamation (the orphan GC handles capacity, and
only across restarts).

Time
----
The broker's simulator clock drives detector timers and the orphan GC.
With ``tick`` set (the default), a background task advances the
simulator to track the asyncio wall clock. Tests pass ``tick=None``
and call :meth:`advance` to drive time deterministically.
"""

from __future__ import annotations

import asyncio
import time
from collections import deque
from typing import Any, Dict, List, Optional, Tuple

from ..gara.broker import BandwidthBroker, BrokerUnavailable
from ..gara.reservation import ReservationError
from ..resilience import FailureDetector, Journal
from .protocol import (
    MAX_FRAME,
    ProtocolError,
    STATUS_BAD,
    STATUS_BUSY,
    STATUS_OK,
    STATUS_REJECTED,
    STATUS_RETRY,
    STATUS_UNKNOWN,
    encode_frame,
    normalize,
    read_frame,
)

__all__ = ["BrokerService"]

_NUMBER = (int, float)

#: Ops that mutate or read broker state and must bounce with RETRY
#: while the underlying broker is down.
_NEEDS_BROKER = frozenset({"rsv", "mod", "can", "clm"})


class _Conn:
    """One accepted client connection."""

    __slots__ = ("reader", "writer", "client")

    def __init__(self, reader, writer) -> None:
        self.reader = reader
        self.writer = writer
        #: Client name, learned from the first heartbeat on this socket.
        self.client: Optional[str] = None


def _valid_interval(bandwidth: Any, start: Any, end: Any) -> bool:
    return (
        type(bandwidth) in _NUMBER
        and bandwidth > 0
        and type(start) in _NUMBER
        and type(end) in _NUMBER
        and end > start
    )


class BrokerService:
    """Network front-end for a journaled :class:`BandwidthBroker`.

    Parameters
    ----------
    broker:
        The underlying broker. Must have a journal attached — the
        service's recovery guarantees build on it.
    journal:
        Service-level write-ahead journal (one is created if omitted).
    host, port:
        Listen address; ``port=0`` picks a free port (read it back
        from ``service.port`` after :meth:`start`).
    max_connections, max_pending:
        Overload limits: connections beyond the first are refused with
        BUSY; queued requests beyond the second are shed with BUSY.
    busy_retry_after, down_retry_after:
        Retry-after hints (seconds) carried by BUSY and RETRY replies.
    evict_after:
        Seconds of heartbeat silence after which a registered client
        is evicted (None disables eviction; a detector can also be
        passed explicitly via ``detector``).
    compact_every:
        Compact both journals whenever the service journal reaches
        this many records (0 disables automatic compaction).
    tick:
        Wall-clock tick driving the simulator (None = manual time via
        :meth:`advance`).
    """

    def __init__(
        self,
        broker: BandwidthBroker,
        journal: Optional[Journal] = None,
        *,
        host: str = "127.0.0.1",
        port: int = 0,
        max_connections: int = 64,
        max_pending: int = 256,
        max_frame: int = MAX_FRAME,
        busy_retry_after: float = 0.05,
        down_retry_after: float = 0.25,
        evict_after: Optional[float] = None,
        detector: Optional[FailureDetector] = None,
        compact_every: int = 0,
        tick: Optional[float] = 0.02,
    ) -> None:
        if broker.journal is None:
            raise ValueError(
                "BrokerService requires a journaled broker "
                "(pass journal= to BandwidthBroker)"
            )
        if max_connections < 1 or max_pending < 1:
            raise ValueError("max_connections and max_pending must be >= 1")
        self.broker = broker
        self.sim = broker.sim
        self.journal = journal if journal is not None else Journal("broker-service")
        self.host = host
        self.port = port
        self.max_connections = max_connections
        self.max_pending = max_pending
        self.max_frame = max_frame
        self.busy_retry_after = busy_retry_after
        self.down_retry_after = down_retry_after
        self.compact_every = compact_every
        self.tick = tick
        self.evict_after = evict_after
        if detector is None and evict_after is not None:
            detector = FailureDetector(
                self.sim,
                interval=evict_after / 4.0,
                timeout=evict_after,
            )
        self.detector = detector

        self.alive = False
        self._server: Optional[asyncio.AbstractServer] = None
        self._conns: set = set()
        self._queue: deque = deque()
        self._queue_event = asyncio.Event()
        self._pending = 0
        self._tasks: List[asyncio.Task] = []

        # Reservation state (volatile; rebuilt from the journals).
        self._next_rid = 1
        #: rid -> broker claim records [(iface, entry_id, owner, bw)].
        self._claims: Dict[int, list] = {}
        #: rid -> (owner, bandwidth, start, end, src, dst).
        self._meta: Dict[int, Tuple] = {}
        #: idempotency key -> (op, reply payload list) | ("tomb", []).
        self._key_replies: Dict[str, Tuple[str, list]] = {}
        self._node_cache: Dict[str, Any] = {}

        # Service statistics (scraped by repro.telemetry). Counters are
        # per-incarnation (a crash zeroes them); the crash/restart/
        # recovery ones below survive, observer-side.
        self.frames_total = 0
        self.requests_total = 0
        self.admissions = 0
        self.rejections = 0
        self.cancels = 0
        self.modifies = 0
        self.claims_served = 0
        self.heartbeats = 0
        self.idempotent_replays = 0
        self.sheds = 0
        self.conn_sheds = 0
        self.busy_replies = 0
        self.retry_replies = 0
        self.bad_requests = 0
        self.unknown_rids = 0
        self.tombstones = 0
        self.queue_high_water = 0
        self.evictions = 0
        self.crashes = 0
        self.restarts = 0
        self.recovery_seconds_last = 0.0
        self.recovery_seconds_total = 0.0
        self.replayed_reservations = 0

        self._handlers = {
            "rsv": self._do_reserve,
            "mod": self._do_modify,
            "can": self._do_cancel,
            "clm": self._do_claim,
            "hb": self._do_heartbeat,
            "st": self._do_status,
        }

    # -- lifecycle -----------------------------------------------------------

    async def start(self) -> None:
        """Bind the listener and start serving."""
        if self.alive:
            raise RuntimeError("service already started")
        self._server = await asyncio.start_server(
            self._handle_conn, self.host, self.port
        )
        self.port = self._server.sockets[0].getsockname()[1]
        self.alive = True
        self._start_tasks()

    def _start_tasks(self) -> None:
        self._queue_event = asyncio.Event()
        self._tasks = [asyncio.create_task(self._dispatch_loop())]
        if self.tick is not None:
            self._tasks.append(asyncio.create_task(self._tick_loop()))

    async def close(self) -> None:
        """Orderly shutdown (not a crash: state stays journaled and
        volatile maps are left intact for inspection)."""
        self.alive = False
        await self._stop_io(graceful=True)

    async def crash(self, graceful: bool = False) -> None:
        """Kill the service process.

        All volatile state (reservation maps, idempotency cache, queued
        requests, client watches) is lost; both journals survive.
        ``graceful=True`` models a crash that gets to flush its socket
        buffers: queued requests are answered with a deterministic
        RETRY + retry-after and connections are closed cleanly. A hard
        crash (default) aborts every connection mid-stream, so clients
        see resets/timeouts and must rely on retry + idempotency keys.
        """
        if not self.alive:
            return
        self.alive = False
        self.crashes += 1
        await self._stop_io(graceful=graceful)
        # Volatile state dies with the process.
        self._claims.clear()
        self._meta.clear()
        self._key_replies.clear()
        self._next_rid = 1
        self.frames_total = 0
        self.requests_total = 0
        self.admissions = 0
        self.rejections = 0
        self.cancels = 0
        self.modifies = 0
        self.claims_served = 0
        self.heartbeats = 0
        self.idempotent_replays = 0
        self.tombstones = 0
        if self.detector is not None:
            # Client watches are process state; epochs persist, so a
            # re-registration after restart gets a fresh epoch and old
            # in-flight heartbeats read as stale.
            self.detector.close()
            self.detector.watches.clear()
        if self.broker.alive:
            self.broker.crash()

    async def _stop_io(self, graceful: bool) -> None:
        for task in self._tasks:
            task.cancel()
        for task in self._tasks:
            try:
                await task
            except (asyncio.CancelledError, Exception):
                pass
        self._tasks = []
        if self._server is not None:
            self._server.close()
            try:
                await self._server.wait_closed()
            except Exception:
                pass
            self._server = None
        if graceful:
            # In-flight requests get a deterministic RETRY-AFTER.
            while self._queue:
                conn, msg, cost = self._queue.popleft()
                self.retry_replies += 1
                try:
                    conn.writer.write(
                        encode_frame([msg[1], STATUS_RETRY, self.down_retry_after])
                    )
                except Exception:
                    pass
        self._queue.clear()
        self._pending = 0
        for conn in list(self._conns):
            try:
                if graceful:
                    conn.writer.close()
                else:
                    transport = conn.writer.transport
                    if transport is not None:
                        transport.abort()
            except Exception:
                pass
        self._conns.clear()

    async def restart(self) -> None:
        """Recover from a crash: replay both journals, re-register the
        surviving reservations' claims, reopen the listener."""
        if self.alive:
            return
        t0 = time.perf_counter()
        if not self.broker.alive:
            self.broker.restart()
        replayed = 0
        if self.journal.snapshot_payload is not None:
            self._restore_checkpoint(self.journal.snapshot_payload)
        for record in self.journal.records:
            self._replay(record)
            replayed += 1
        max_rid = max(self._meta, default=0)
        if max_rid >= self._next_rid:
            self._next_rid = max_rid + 1
        # Prove liveness for every reservation the service journal says
        # is still held, before the orphan-GC grace expires.
        for claims in self._claims.values():
            self.broker.reregister(claims)
        self.replayed_reservations = len(self._claims)
        self._server = await asyncio.start_server(
            self._handle_conn, self.host, self.port
        )
        self.port = self._server.sockets[0].getsockname()[1]
        self.alive = True
        self._start_tasks()
        self.restarts += 1
        self.recovery_seconds_last = time.perf_counter() - t0
        self.recovery_seconds_total += self.recovery_seconds_last
        self._emit(
            "service_restart",
            replayed=replayed,
            reservations=len(self._claims),
            recovery_seconds=self.recovery_seconds_last,
        )

    async def serve_forever(self) -> None:
        if self._server is None:
            raise RuntimeError("service not started")
        await self._server.serve_forever()

    def advance(self, seconds: float) -> None:
        """Advance the simulator clock manually (``tick=None`` mode) —
        fires detector polls, orphan GC, and any other timers due."""
        if seconds > 0:
            self.sim.run(until=self.sim.now + seconds)

    async def _tick_loop(self) -> None:
        loop = asyncio.get_running_loop()
        base_wall = loop.time()
        base_sim = self.sim.now
        while True:
            await asyncio.sleep(self.tick)
            target = base_sim + (loop.time() - base_wall)
            if target > self.sim.now:
                self.sim.run(until=target)

    # -- connection handling -------------------------------------------------

    async def _handle_conn(self, reader, writer) -> None:
        if not self.alive:
            writer.close()
            return
        if len(self._conns) >= self.max_connections:
            self.conn_sheds += 1
            self.sheds += 1
            try:
                writer.write(
                    encode_frame([None, STATUS_BUSY, self.busy_retry_after])
                )
                await writer.drain()
            except (ConnectionError, OSError):
                pass
            writer.close()
            return
        conn = _Conn(reader, writer)
        self._conns.add(conn)
        try:
            while True:
                try:
                    raw = await read_frame(reader, self.max_frame)
                except asyncio.IncompleteReadError:
                    break
                except ProtocolError as exc:
                    # Framing is gone; a reply then hang up is all we
                    # can do for this socket.
                    self.bad_requests += 1
                    writer.write(encode_frame([None, STATUS_BAD, str(exc)]))
                    await writer.drain()
                    break
                self.frames_total += 1
                try:
                    msg = normalize(raw)
                except ProtocolError as exc:
                    self.bad_requests += 1
                    writer.write(encode_frame([None, STATUS_BAD, str(exc)]))
                    continue
                cost = (
                    len(msg[2])
                    if msg[0] == "batch" and isinstance(msg[2], list)
                    else 1
                )
                if self._pending + cost > self.max_pending:
                    # Bounded queue: shed instead of buffer.
                    self.sheds += cost
                    self.busy_replies += 1
                    writer.write(
                        encode_frame([msg[1], STATUS_BUSY, self.busy_retry_after])
                    )
                    continue
                self._pending += cost
                if self._pending > self.queue_high_water:
                    self.queue_high_water = self._pending
                self._queue.append((conn, msg, cost))
                self._queue_event.set()
        except (ConnectionError, OSError):
            pass
        except asyncio.CancelledError:
            # Event-loop teardown: the connection is done either way;
            # returning (rather than re-raising) keeps asyncio's stream
            # machinery from logging a spurious "Exception in callback".
            pass
        finally:
            self._conns.discard(conn)
            try:
                writer.close()
            except Exception:
                pass

    async def _dispatch_loop(self) -> None:
        queue = self._queue
        while True:
            if not queue:
                self._queue_event.clear()
                await self._queue_event.wait()
                continue
            conn, msg, cost = queue.popleft()
            self.requests_total += cost
            try:
                reply = self._execute(conn, msg)
            except (IndexError, TypeError, ValueError, KeyError) as exc:
                # Belt and braces: a malformed frame must never take
                # the dispatcher down with it.
                self.bad_requests += 1
                mid = msg[1] if isinstance(msg, list) and len(msg) > 1 else None
                reply = [mid, STATUS_BAD, f"malformed request: {exc!r}"]
            self._pending -= cost
            writer = conn.writer
            if not writer.is_closing():
                writer.write(encode_frame(reply))
                try:
                    await writer.drain()
                except (ConnectionError, OSError):
                    pass

    # -- request execution ---------------------------------------------------

    def _execute(self, conn: _Conn, msg: list) -> list:
        if msg[0] == "batch":
            subs = msg[2]
            if len(msg) > 3 and msg[3]:
                # Summary mode: every sub still executes (and journals)
                # individually; only the reply aggregates, sparing bulk
                # pipelines N sub-reply encodes they would discard.
                n_ok = n_err = 0
                for sub in subs:
                    if sub[0] == "batch":
                        self.bad_requests += 1
                        n_err += 1
                    elif self._dispatch(conn, sub)[1] == STATUS_OK:
                        n_ok += 1
                    else:
                        n_err += 1
                return [msg[1], STATUS_OK, [n_ok, n_err]]
            replies = []
            for sub in subs:
                if sub[0] == "batch":
                    self.bad_requests += 1
                    replies.append([sub[1], STATUS_BAD, "nested batch"])
                else:
                    replies.append(self._dispatch(conn, sub))
            return [msg[1], STATUS_OK, replies]
        return self._dispatch(conn, msg)

    def _dispatch(self, conn: _Conn, msg: list) -> list:
        tag = msg[0]
        if not self.broker.alive and tag in _NEEDS_BROKER:
            self.retry_replies += 1
            return [msg[1], STATUS_RETRY, self.down_retry_after]
        try:
            return self._handlers[tag](conn, msg)
        except (IndexError, TypeError, ValueError, KeyError) as exc:
            self.bad_requests += 1
            mid = msg[1] if len(msg) > 1 else None
            return [mid, STATUS_BAD, f"malformed {tag!r} request: {exc!r}"]

    def _cached(self, key: Any, op: str, mid: Any) -> Optional[list]:
        """Replay the recorded outcome for an idempotency key, if any."""
        if key is None:
            return None
        cached = self._key_replies.get(key)
        if cached is None:
            return None
        cop, payload = cached
        if cop == "tomb":
            return [mid, STATUS_REJECTED, "reservation already cancelled"]
        if cop != op:
            self.bad_requests += 1
            return [mid, STATUS_BAD, "idempotency key reused across ops"]
        self.idempotent_replays += 1
        return [mid, STATUS_OK] + payload + [1]

    def _node(self, name: Any):
        node = self._node_cache.get(name)
        if node is None:
            node = self.broker.network._resolve(name)
            self._node_cache[name] = node
        return node

    def _do_reserve(self, conn: _Conn, msg: list) -> list:
        mid, key, owner = msg[1], msg[2], msg[3]
        hit = self._cached(key, "rsv", mid)
        if hit is not None:
            return hit
        src, dst, bandwidth, start, end = msg[4], msg[5], msg[6], msg[7], msg[8]
        if not _valid_interval(bandwidth, start, end):
            self.bad_requests += 1
            return [mid, STATUS_BAD, "bandwidth/start/end invalid"]
        try:
            src_node = self._node(src)
            dst_node = self._node(dst)
        except KeyError:
            self.bad_requests += 1
            return [mid, STATUS_BAD, f"unknown node in {src!r}->{dst!r}"]
        try:
            claims = self.broker.admit_path(
                src_node, dst_node, bandwidth, start, end, owner=owner
            )
        except BrokerUnavailable:
            self.retry_replies += 1
            return [mid, STATUS_RETRY, self.down_retry_after]
        except ReservationError as exc:
            self.rejections += 1
            return [mid, STATUS_REJECTED, str(exc)]
        rid = self._next_rid
        self._next_rid = rid + 1
        self._claims[rid] = claims
        self._meta[rid] = (owner, bandwidth, start, end, src, dst)
        self.journal.append(
            "rsv",
            rid=rid,
            key=key,
            owner=owner,
            src=src,
            dst=dst,
            bandwidth=bandwidth,
            start=start,
            end=end,
            claims=tuple(
                [(c[0].node.name, c[0].name, c[1]) for c in claims]
            ),
        )
        if key is not None:
            self._key_replies[key] = ("rsv", [rid])
        self.admissions += 1
        self._maybe_compact()
        return [mid, STATUS_OK, rid, 0]

    def _do_modify(self, conn: _Conn, msg: list) -> list:
        mid, key, rid = msg[1], msg[2], msg[3]
        hit = self._cached(key, "mod", mid)
        if hit is not None:
            return hit
        bandwidth, start, end = msg[4], msg[5], msg[6]
        old = self._claims.get(rid)
        if old is None:
            self.unknown_rids += 1
            return [mid, STATUS_UNKNOWN, f"no reservation {rid!r}"]
        if not _valid_interval(bandwidth, start, end):
            self.bad_requests += 1
            return [mid, STATUS_BAD, "bandwidth/start/end invalid"]
        owner, _bw, _s, _e, src, dst = self._meta[rid]
        # Make-before-break: the new interval is admitted while the old
        # one still counts (no service interruption, no transient
        # overcommit window), then the old claims are released. A
        # modify that cannot fit alongside the old one is REJECTED and
        # the old reservation is untouched.
        try:
            claims = self.broker.admit_path(
                self._node(src), self._node(dst), bandwidth, start, end,
                owner=owner,
            )
        except BrokerUnavailable:
            self.retry_replies += 1
            return [mid, STATUS_RETRY, self.down_retry_after]
        except ReservationError as exc:
            self.rejections += 1
            return [mid, STATUS_REJECTED, str(exc)]
        self.broker.release(old, count=False)
        self._claims[rid] = claims
        self._meta[rid] = (owner, bandwidth, start, end, src, dst)
        self.journal.append(
            "mod",
            rid=rid,
            key=key,
            owner=owner,
            src=src,
            dst=dst,
            bandwidth=bandwidth,
            start=start,
            end=end,
            claims=tuple(
                [(c[0].node.name, c[0].name, c[1]) for c in claims]
            ),
        )
        if key is not None:
            self._key_replies[key] = ("mod", [rid])
        self.modifies += 1
        self._maybe_compact()
        return [mid, STATUS_OK, rid, 0]

    def _do_cancel(self, conn: _Conn, msg: list) -> list:
        mid, key, rid, rkey = msg[1], msg[2], msg[3], msg[4]
        hit = self._cached(key, "can", mid)
        if hit is not None:
            return hit
        if rid is None:
            if rkey is None:
                self.bad_requests += 1
                return [mid, STATUS_BAD, "cancel needs rid or reserve_key"]
            entry = self._key_replies.get(rkey)
            if entry is not None and entry[0] == "rsv":
                rid = entry[1][0]
            elif entry is None:
                # The reserve this key names never committed. Tombstone
                # the key so a still-in-flight duplicate of that
                # reserve cannot commit *after* this cancel — the
                # capacity-conservation guarantee for the crash window.
                self._key_replies[rkey] = ("tomb", [])
                self.journal.append("tomb", key=rkey)
                self.tombstones += 1
        counted = 0
        if rid is not None:
            claims = self._claims.pop(rid, None)
            if claims is not None:
                self.broker.release(claims)
                self._meta.pop(rid, None)
                counted = 1
                self.cancels += 1
        self.journal.append("can", rid=rid, key=key, counted=counted)
        if key is not None:
            self._key_replies[key] = ("can", [counted])
        self._maybe_compact()
        return [mid, STATUS_OK, counted, 0]

    def _do_claim(self, conn: _Conn, msg: list) -> list:
        mid, rid = msg[1], msg[2]
        claims = self._claims.get(rid)
        if claims is None:
            self.unknown_rids += 1
            return [mid, STATUS_UNKNOWN, f"no reservation {rid!r}"]
        owner, bandwidth, start, end, src, dst = self._meta[rid]
        self.claims_served += 1
        return [
            mid,
            STATUS_OK,
            {
                "rid": rid,
                "owner": owner,
                "bandwidth": bandwidth,
                "start": start,
                "end": end,
                "src": src,
                "dst": dst,
                "claims": [
                    [c[0].node.name, c[0].name, c[1]] for c in claims
                ],
            },
        ]

    def _do_heartbeat(self, conn: _Conn, msg: list) -> list:
        mid, client, epoch = msg[1], msg[2], msg[3]
        self.heartbeats += 1
        if self.detector is None:
            return [mid, STATUS_OK, 0, 1]
        watch = self.detector.lookup(client)
        if watch is None:
            if epoch is not None:
                # A dead incarnation knocking; it must re-register
                # (heartbeat without an epoch) to come back.
                self.detector.stale_heartbeats += 1
                return [mid, STATUS_OK, 0, 0]
            watch = self.detector.watch(
                client, None, on_down=self._evict_client
            )
            conn.client = client
            return [mid, STATUS_OK, watch.epoch, 1]
        fresh = watch.heartbeat(epoch)
        if fresh:
            conn.client = client
        return [mid, STATUS_OK, watch.epoch, 1 if fresh else 0]

    def _do_status(self, conn: _Conn, msg: list) -> list:
        return [msg[1], STATUS_OK, self.status_counters()]

    def _evict_client(self, watch) -> None:
        """Detector ``on_down``: a silent client is expelled — watch
        retired (fresh epoch on return) and its sockets dropped."""
        self.detector.evict(watch)
        self.evictions += 1
        for conn in list(self._conns):
            if conn.client == watch.name:
                try:
                    conn.writer.close()
                except Exception:
                    pass
                self._conns.discard(conn)
        self._emit("client_evicted", client=watch.name, epoch=watch.epoch)

    # -- durability ----------------------------------------------------------

    def _maybe_compact(self) -> None:
        if self.compact_every and len(self.journal) >= self.compact_every:
            self.compact()

    def compact(self) -> int:
        """Checkpoint service + broker journals and truncate the
        records the checkpoints subsume; returns service records
        truncated."""
        self.broker.compact_journal()
        return self.journal.compact(self._checkpoint())

    def _checkpoint(self):
        claims = tuple(
            (
                rid,
                tuple(
                    (c[0].node.name, c[0].name, c[1], c[2], c[3])
                    for c in claim_list
                ),
            )
            for rid, claim_list in self._claims.items()
        )
        return (
            "svc-v1",
            self._next_rid,
            claims,
            tuple(self._meta.items()),
            tuple(self._key_replies.items()),
        )

    def _restore_checkpoint(self, payload) -> None:
        version, next_rid, claims, meta, keys = payload
        if version != "svc-v1":  # pragma: no cover - future-proofing
            raise ValueError(f"unknown service checkpoint version {version!r}")
        self._next_rid = next_rid
        for rid, claim_names in claims:
            self._claims[rid] = [
                (self.broker._iface(n, i), eid, owner, bw)
                for n, i, eid, owner, bw in claim_names
            ]
        for rid, fields in meta:
            self._meta[rid] = tuple(fields)
        for key, (op, reply_payload) in keys:
            self._key_replies[key] = (op, list(reply_payload))

    def _replay(self, record) -> None:
        op, fields = record.op, record.fields
        if op in ("rsv", "mod"):
            owner = fields["owner"]
            bandwidth = fields["bandwidth"]
            rid = fields["rid"]
            self._claims[rid] = [
                (self.broker._iface(n, i), eid, owner, bandwidth)
                for n, i, eid in fields["claims"]
            ]
            self._meta[rid] = (
                owner, bandwidth, fields["start"], fields["end"],
                fields["src"], fields["dst"],
            )
            if fields["key"] is not None:
                self._key_replies[fields["key"]] = (op, [rid])
        elif op == "can":
            rid = fields["rid"]
            if rid is not None:
                self._claims.pop(rid, None)
                self._meta.pop(rid, None)
            if fields["key"] is not None:
                self._key_replies[fields["key"]] = ("can", [fields["counted"]])
        elif op == "tomb":
            self._key_replies[fields["key"]] = ("tomb", [])
        else:  # pragma: no cover - future-proofing
            raise ValueError(f"unknown service journal op {op!r}")

    # -- observability -------------------------------------------------------

    def status_counters(self) -> Dict[str, Any]:
        broker = self.broker
        return {
            "alive": 1 if self.alive else 0,
            "frames": self.frames_total,
            "requests": self.requests_total,
            "admissions": self.admissions,
            "rejections": self.rejections,
            "cancels": self.cancels,
            "modifies": self.modifies,
            "claims_served": self.claims_served,
            "heartbeats": self.heartbeats,
            "idempotent_replays": self.idempotent_replays,
            "tombstones": self.tombstones,
            "sheds": self.sheds,
            "conn_sheds": self.conn_sheds,
            "busy_replies": self.busy_replies,
            "retry_replies": self.retry_replies,
            "bad_requests": self.bad_requests,
            "unknown_rids": self.unknown_rids,
            "queue_depth": self._pending,
            "queue_high_water": self.queue_high_water,
            "connections": len(self._conns),
            "live_reservations": len(self._claims),
            "evictions": self.evictions,
            "crashes": self.crashes,
            "restarts": self.restarts,
            "recovery_seconds_last": self.recovery_seconds_last,
            "recovery_seconds_total": self.recovery_seconds_total,
            "replayed_reservations": self.replayed_reservations,
            "journal_records": len(self.journal),
            "journal_snapshots": self.journal.snapshots_total,
            "journal_truncated": self.journal.records_truncated,
            "broker_admissions": broker.admissions,
            "broker_rejections": broker.rejections,
            "broker_releases": broker.releases,
            "broker_orphans_collected": broker.orphans_collected,
            "sim_now": self.sim.now,
        }

    def _emit(self, name: str, **fields: Any) -> None:
        tel = self.sim.telemetry
        if tel is not None and tel.trace is not None:
            tel.trace.emit(self.sim.now, "broker_service", name, **fields)

    def __repr__(self) -> str:
        state = "up" if self.alive else "down"
        return (
            f"<BrokerService {self.host}:{self.port} {state} "
            f"{len(self._claims)} live reservations>"
        )
