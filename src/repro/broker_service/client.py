"""Fault-aware client for the GARA broker service.

:class:`BrokerClient` wraps the wire protocol in the retry discipline a
wide-area control plane needs:

* **per-request timeouts** — a hung broker looks identical to a dead
  one; every request is bounded by ``timeout`` seconds;
* **capped exponential backoff with seeded jitter** — the shared
  :func:`repro.faults.backoff_delay` helper (same curve as PR 1's
  reservation leases), respecting any server-supplied retry-after hint
  from BUSY/RETRY replies so overload backpressure is server-paced;
* **idempotency keys** — every reserve/modify/cancel carries a unique
  key; the service journals the committed outcome per key, so a retry
  that races a crash (reply lost after commit) replays the original
  result instead of double-booking capacity;
* **graceful degradation** — when the broker stays unreachable past
  ``degrade_after`` seconds, :meth:`reserve` returns a *best-effort*
  reservation (mirroring the lease manager's premium→best-effort
  downgrade) and keeps retrying the premium admission in the
  background with the *same* idempotency key; when the broker returns,
  the reservation upgrades in place and ``on_upgrade`` fires.

The client serializes requests on its single connection (one
outstanding request at a time); throughput-oriented callers batch with
:meth:`request_batch` or pipeline raw frames themselves.
"""

from __future__ import annotations

import asyncio
import random
from typing import Any, Callable, List, Optional

from ..faults.lease import backoff_delay
from .protocol import (
    MAX_FRAME,
    ProtocolError,
    RETRYABLE_STATUSES,
    STATUS_NAMES,
    STATUS_OK,
    STATUS_REJECTED,
    STATUS_RETRY,
    encode_frame,
    read_frame,
)

__all__ = [
    "BrokerClient",
    "BrokerClientError",
    "AdmissionRejected",
    "RequestFailed",
    "BrokerUnreachable",
    "BrokerReservation",
    "RES_HELD",
    "RES_BEST_EFFORT",
    "RES_CANCELLED",
]

RES_HELD = "HELD"
RES_BEST_EFFORT = "BEST_EFFORT"
RES_CANCELLED = "CANCELLED"


class BrokerClientError(Exception):
    """Base class for client-visible failures."""


class AdmissionRejected(BrokerClientError):
    """The broker answered REJECTED (capacity or policy) — final."""


class RequestFailed(BrokerClientError):
    """The broker answered BAD or UNKNOWN — final."""


class BrokerUnreachable(BrokerClientError):
    """Retries/deadline exhausted without a final answer."""


class BrokerReservation:
    """Client-side handle for one reservation.

    ``state`` is HELD (premium capacity committed, ``rid`` set),
    BEST_EFFORT (broker unreachable; traffic runs unprotected while a
    background task keeps retrying the premium admission), or
    CANCELLED.
    """

    __slots__ = (
        "key", "owner", "src", "dst", "bandwidth", "start", "end",
        "rid", "state", "_upgrade_task",
    )

    def __init__(self, key, owner, src, dst, bandwidth, start, end) -> None:
        self.key = key
        self.owner = owner
        self.src = src
        self.dst = dst
        self.bandwidth = bandwidth
        self.start = start
        self.end = end
        self.rid: Optional[int] = None
        self.state = RES_BEST_EFFORT
        self._upgrade_task: Optional[asyncio.Task] = None

    @property
    def held(self) -> bool:
        return self.state == RES_HELD

    @property
    def best_effort(self) -> bool:
        return self.state == RES_BEST_EFFORT

    def __repr__(self) -> str:
        return (
            f"<BrokerReservation {self.key} {self.state} rid={self.rid} "
            f"{self.src}->{self.dst} {self.bandwidth / 1e6:.1f} Mb/s>"
        )


class BrokerClient:
    """One client endpoint of the broker service."""

    def __init__(
        self,
        host: str,
        port: int,
        *,
        name: str = "client",
        seed: int = 0,
        rng: Optional[random.Random] = None,
        timeout: float = 1.0,
        max_retries: int = 10,
        backoff_base: float = 0.02,
        backoff_cap: float = 0.5,
        jitter: float = 0.25,
        degrade_after: Optional[float] = None,
        max_frame: int = MAX_FRAME,
        on_upgrade: Optional[Callable[[BrokerReservation], None]] = None,
    ) -> None:
        self.host = host
        self.port = port
        self.name = name
        self.rng = rng if rng is not None else random.Random(seed)
        self.timeout = timeout
        self.max_retries = max_retries
        self.backoff_base = backoff_base
        self.backoff_cap = backoff_cap
        self.jitter = jitter
        self.degrade_after = degrade_after
        self.max_frame = max_frame
        self.on_upgrade = on_upgrade

        self._reader: Optional[asyncio.StreamReader] = None
        self._writer: Optional[asyncio.StreamWriter] = None
        self._lock = asyncio.Lock()
        self._seq = 0
        self._epoch: Optional[int] = None
        self._hb_task: Optional[asyncio.Task] = None
        self._upgrade_tasks: set = set()

        # Client statistics (scraped by repro.telemetry).
        self.requests_total = 0
        self.replies_total = 0
        self.retries = 0
        self.timeouts = 0
        self.conn_failures = 0
        self.busy_seen = 0
        self.retry_seen = 0
        self.degradations = 0
        self.upgrades = 0
        self.idempotent_acks = 0
        self.heartbeats_sent = 0
        self.stale_epochs = 0

    # -- plumbing ------------------------------------------------------------

    def _next_id(self) -> int:
        self._seq += 1
        return self._seq

    def new_key(self) -> str:
        """A fresh idempotency key, unique per (client name, sequence)."""
        return f"{self.name}:{self._next_id()}"

    async def _ensure_conn(self) -> None:
        if self._writer is None or self._writer.is_closing():
            self._reader, self._writer = await asyncio.open_connection(
                self.host, self.port
            )

    def _drop_conn(self) -> None:
        if self._writer is not None:
            try:
                self._writer.close()
            except Exception:
                pass
        self._reader = None
        self._writer = None

    async def close(self) -> None:
        if self._hb_task is not None:
            self._hb_task.cancel()
            try:
                await self._hb_task
            except (asyncio.CancelledError, Exception):
                pass
            self._hb_task = None
        for task in list(self._upgrade_tasks):
            task.cancel()
            try:
                await task
            except (asyncio.CancelledError, Exception):
                pass
        self._upgrade_tasks.clear()
        self._drop_conn()

    async def request(
        self,
        msg: List[Any],
        *,
        deadline: Optional[float] = None,
        max_retries: Optional[int] = None,
    ) -> List[Any]:
        """Send one request, retrying transient failures with capped
        exponential backoff (seeded jitter) until a final reply, the
        retry budget, or the ``loop.time()`` deadline runs out.

        Transient = connection failure, per-request timeout, or a
        BUSY/RETRY reply (whose retry-after hint, when larger than the
        backoff, paces the retry). Returns the raw reply array;
        raises :class:`BrokerUnreachable` when the budget is spent.
        """
        budget = self.max_retries if max_retries is None else max_retries
        loop = asyncio.get_running_loop()
        attempt = 0
        last_error: Any = None
        while True:
            hint = 0.0
            try:
                async with self._lock:
                    await self._ensure_conn()
                    self._writer.write(encode_frame(msg))
                    await self._writer.drain()
                    self.requests_total += 1
                    reply = await asyncio.wait_for(
                        read_frame(self._reader, self.max_frame), self.timeout
                    )
            except asyncio.TimeoutError:
                self.timeouts += 1
                last_error = "timeout"
                self._drop_conn()
            except (ConnectionError, OSError, asyncio.IncompleteReadError):
                self.conn_failures += 1
                last_error = "connection failure"
                self._drop_conn()
            except ProtocolError:
                self._drop_conn()
                raise
            else:
                self.replies_total += 1
                status = reply[1]
                if status not in RETRYABLE_STATUSES:
                    return reply
                if status == STATUS_RETRY:
                    self.retry_seen += 1
                else:
                    self.busy_seen += 1
                hint = float(reply[2]) if len(reply) > 2 else 0.0
                last_error = STATUS_NAMES[status]
            if attempt >= budget or (
                deadline is not None and loop.time() >= deadline
            ):
                raise BrokerUnreachable(
                    f"{msg[0]} gave up after {attempt} retries "
                    f"(last: {last_error})"
                )
            delay = max(
                hint,
                backoff_delay(
                    attempt, self.backoff_base, self.backoff_cap,
                    self.jitter, self.rng,
                ),
            )
            if deadline is not None:
                delay = min(delay, max(0.0, deadline - loop.time()))
            self.retries += 1
            attempt += 1
            await asyncio.sleep(delay)

    @staticmethod
    def _final(reply: List[Any]) -> List[Any]:
        status = reply[1]
        if status == STATUS_OK:
            return reply
        if status == STATUS_REJECTED:
            raise AdmissionRejected(str(reply[2]))
        raise RequestFailed(f"{STATUS_NAMES.get(status, status)}: {reply[2]!r}")

    # -- operations ----------------------------------------------------------

    async def reserve(
        self,
        src: str,
        dst: str,
        bandwidth: float,
        start: float,
        end: float,
        *,
        owner: Optional[str] = None,
        key: Optional[str] = None,
        degrade: Optional[bool] = None,
    ) -> BrokerReservation:
        """Admit ``bandwidth`` from ``src`` to ``dst`` over
        ``[start, end)``.

        Returns a HELD reservation on success and raises
        :class:`AdmissionRejected` on a capacity/policy denial. When
        the broker is unreachable past ``degrade_after`` (and
        degradation is enabled), returns a BEST_EFFORT reservation
        whose premium admission keeps retrying in the background with
        the same idempotency key — an upgrade can never double-book.
        """
        if degrade is None:
            degrade = self.degrade_after is not None
        key = key if key is not None else self.new_key()
        res = BrokerReservation(key, owner, src, dst, bandwidth, start, end)
        msg = [
            "rsv", self._next_id(), key, owner, src, dst,
            bandwidth, start, end,
        ]
        deadline = None
        if degrade and self.degrade_after is not None:
            deadline = asyncio.get_running_loop().time() + self.degrade_after
        try:
            reply = self._final(await self.request(msg, deadline=deadline))
        except BrokerUnreachable:
            if not degrade:
                raise
            self.degradations += 1
            task = asyncio.create_task(self._upgrade_loop(res, msg))
            res._upgrade_task = task
            self._upgrade_tasks.add(task)
            task.add_done_callback(self._upgrade_tasks.discard)
            return res
        res.rid = reply[2]
        res.state = RES_HELD
        if reply[3]:
            self.idempotent_acks += 1
        return res

    async def _upgrade_loop(
        self, res: BrokerReservation, msg: List[Any]
    ) -> None:
        """Keep retrying a degraded reservation's premium admission.

        Reuses the original request verbatim — same idempotency key —
        so if the pre-degradation attempt actually committed
        server-side (reply lost to a crash), the upgrade adopts that
        committed reservation instead of booking a second one.
        """
        attempt = 0
        while res.state == RES_BEST_EFFORT:
            await asyncio.sleep(
                backoff_delay(
                    min(attempt, 16), self.backoff_base, self.backoff_cap,
                    self.jitter, self.rng,
                )
            )
            attempt += 1
            if res.state != RES_BEST_EFFORT:
                return
            try:
                reply = await self.request(msg, max_retries=0)
            except BrokerUnreachable:
                continue
            if res.state != RES_BEST_EFFORT:
                return
            if reply[1] == STATUS_OK:
                res.rid = reply[2]
                res.state = RES_HELD
                if reply[3]:
                    self.idempotent_acks += 1
                self.upgrades += 1
                if self.on_upgrade is not None:
                    self.on_upgrade(res)
                return
            # REJECTED: capacity may free up later — keep trying while
            # the reservation stays wanted. Final errors (BAD) abort.
            if reply[1] != STATUS_REJECTED:
                return

    async def cancel(self, res: BrokerReservation) -> int:
        """Release a reservation (idempotent; safe for BEST_EFFORT
        handles — a cancel-by-key tombstone guarantees a still
        in-flight admission for the same key can never commit after
        this). Returns 1 if capacity was freed now, 0 for a no-op."""
        if res.state == RES_CANCELLED:
            return 0
        task = res._upgrade_task
        if task is not None:
            task.cancel()
            try:
                await task
            except (asyncio.CancelledError, Exception):
                pass
            res._upgrade_task = None
        msg = ["can", self._next_id(), self.new_key(), res.rid, res.key]
        reply = self._final(await self.request(msg))
        res.state = RES_CANCELLED
        return reply[2]

    async def modify(
        self,
        res: BrokerReservation,
        *,
        bandwidth: Optional[float] = None,
        start: Optional[float] = None,
        end: Optional[float] = None,
    ) -> BrokerReservation:
        """Re-negotiate a HELD reservation (make-before-break on the
        server). Updates and returns ``res`` on success."""
        if res.rid is None:
            raise RequestFailed("cannot modify a best-effort reservation")
        bandwidth = res.bandwidth if bandwidth is None else bandwidth
        start = res.start if start is None else start
        end = res.end if end is None else end
        msg = [
            "mod", self._next_id(), self.new_key(), res.rid,
            bandwidth, start, end,
        ]
        reply = self._final(await self.request(msg))
        if reply[3]:
            self.idempotent_acks += 1
        res.bandwidth = bandwidth
        res.start = start
        res.end = end
        return res

    async def claim(self, res: BrokerReservation) -> dict:
        """Fetch the committed claim records for a HELD reservation."""
        if res.rid is None:
            raise RequestFailed("best-effort reservation has no claims")
        reply = self._final(
            await self.request(["clm", self._next_id(), res.rid])
        )
        return reply[2]

    async def status(self) -> dict:
        reply = self._final(await self.request(["st", self._next_id()]))
        return reply[2]

    async def request_batch(self, subs: List[List[Any]]) -> List[List[Any]]:
        """Execute several requests in one frame; returns sub-replies."""
        reply = self._final(
            await self.request(["batch", self._next_id(), subs])
        )
        return reply[2]

    # -- liveness ------------------------------------------------------------

    async def heartbeat(self) -> bool:
        """Send one liveness report; registers on first contact and
        re-registers after an eviction (stale epoch). Returns True iff
        the service accepted this heartbeat as fresh."""
        self.heartbeats_sent += 1
        reply = self._final(
            await self.request(["hb", self._next_id(), self.name, self._epoch])
        )
        epoch, fresh = reply[2], reply[3]
        if fresh:
            self._epoch = epoch or None
            return True
        # Evicted (or a dead incarnation's epoch): start over.
        self.stale_epochs += 1
        self._epoch = None
        return False

    def start_heartbeats(self, every: float) -> None:
        """Spawn a background task heartbeating every ``every`` s."""
        if self._hb_task is not None:
            return

        async def _loop() -> None:
            while True:
                try:
                    await self.heartbeat()
                except BrokerClientError:
                    pass
                await asyncio.sleep(every)

        self._hb_task = asyncio.create_task(_loop())

    def __repr__(self) -> str:
        return (
            f"<BrokerClient {self.name} -> {self.host}:{self.port} "
            f"retries={self.retries}>"
        )
