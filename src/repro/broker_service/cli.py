"""``mpichgq-broker``: run the GARA broker service as a daemon.

Builds a simulated topology (GARNET by default, or a single
host--host pair for benchmarking), wires a journaled bandwidth broker
to it, and serves the wire protocol until interrupted. On shutdown
the final status counters are printed as JSON.

Examples::

    mpichgq-broker                         # GARNET, random free port
    mpichgq-broker --port 7001 --topology pair --ef-share 0.9
    mpichgq-broker --evict-after 2.0 --compact-every 5000
"""

from __future__ import annotations

import argparse
import asyncio
import json
import sys
from typing import List, Optional

from ..gara import BandwidthBroker, DEFAULT_EF_SHARE
from ..kernel import Simulator
from ..net import Network, garnet, mbps
from ..resilience import Journal
from .server import BrokerService

__all__ = ["build", "main"]


def build(args: argparse.Namespace) -> BrokerService:
    sim = Simulator(seed=args.seed)
    if args.topology == "pair":
        network = Network(sim)
        a = network.add_host("a")
        b = network.add_host("b")
        network.connect(a, b, bandwidth=mbps(args.pair_mbps), delay=0.1e-3)
        network.build_routes()
    else:
        testbed = garnet(sim)
        network = testbed.network
        network.build_routes()
    broker = BandwidthBroker(
        network,
        ef_share=args.ef_share,
        journal=Journal("broker"),
        gc_grace=args.gc_grace,
    )
    return BrokerService(
        broker,
        Journal("broker-service"),
        host=args.host,
        port=args.port,
        max_connections=args.max_connections,
        max_pending=args.max_pending,
        evict_after=args.evict_after,
        compact_every=args.compact_every,
    )


async def _serve(service: BrokerService) -> None:
    await service.start()
    print(
        f"mpichgq-broker listening on {service.host}:{service.port}",
        file=sys.stderr,
        flush=True,
    )
    try:
        await service.serve_forever()
    except asyncio.CancelledError:
        pass


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="mpichgq-broker", description=__doc__.splitlines()[0]
    )
    parser.add_argument("--host", default="127.0.0.1")
    parser.add_argument("--port", type=int, default=0)
    parser.add_argument(
        "--topology", choices=("garnet", "pair"), default="garnet"
    )
    parser.add_argument("--pair-mbps", type=float, default=1000.0)
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--ef-share", type=float, default=DEFAULT_EF_SHARE)
    parser.add_argument("--gc-grace", type=float, default=2.0)
    parser.add_argument("--max-connections", type=int, default=64)
    parser.add_argument("--max-pending", type=int, default=256)
    parser.add_argument(
        "--evict-after",
        type=float,
        default=None,
        help="evict clients silent for this many seconds (default: off)",
    )
    parser.add_argument("--compact-every", type=int, default=10000)
    args = parser.parse_args(argv)

    service = build(args)
    try:
        asyncio.run(_serve(service))
    except KeyboardInterrupt:
        pass
    print(json.dumps(service.status_counters(), indent=2, default=str))
    return 0


if __name__ == "__main__":
    sys.exit(main())
