"""Always-on GARA broker service: the paper's external bandwidth
broker as a long-lived network daemon.

The embedded :class:`~repro.gara.BandwidthBroker` assumes callers live
in the same process. This package lifts it behind a small
length-prefixed JSON wire protocol and adds the machinery an
always-on control plane needs:

``repro.broker_service.protocol``
    Framing and message forms (reserve/modify/cancel/claim/heartbeat/
    status/batch), status codes, retry-after semantics.
``repro.broker_service.server``
    :class:`BrokerService`: asyncio TCP front-end with double
    journaling (broker + service logs, both compactable), crash/
    restart with replay and claim re-registration, bounded queues with
    explicit BUSY load shedding, and heartbeat-based client eviction.
``repro.broker_service.client``
    :class:`BrokerClient`: per-request timeouts, capped exponential
    backoff with seeded jitter, idempotency keys, and graceful
    degradation to best-effort with background premium upgrade.
``repro.broker_service.chaos``
    Seeded crash/restart soak harness asserting conservation: no
    reservation lost, duplicated, or double-booked across crashes.
``repro.broker_service.cli``
    The ``mpichgq-broker`` entry point.
"""

from .client import (
    AdmissionRejected,
    BrokerClient,
    BrokerClientError,
    BrokerReservation,
    BrokerUnreachable,
    RequestFailed,
    RES_BEST_EFFORT,
    RES_CANCELLED,
    RES_HELD,
)
from .protocol import (
    MAX_FRAME,
    FrameTooLarge,
    ProtocolError,
    RETRYABLE_STATUSES,
    STATUS_BAD,
    STATUS_BUSY,
    STATUS_NAMES,
    STATUS_OK,
    STATUS_REJECTED,
    STATUS_RETRY,
    STATUS_UNKNOWN,
    encode_frame,
    normalize,
    read_frame,
)
from .server import BrokerService

__all__ = [
    "AdmissionRejected",
    "BrokerClient",
    "BrokerClientError",
    "BrokerReservation",
    "BrokerService",
    "BrokerUnreachable",
    "FrameTooLarge",
    "MAX_FRAME",
    "ProtocolError",
    "RETRYABLE_STATUSES",
    "RES_BEST_EFFORT",
    "RES_CANCELLED",
    "RES_HELD",
    "RequestFailed",
    "STATUS_BAD",
    "STATUS_BUSY",
    "STATUS_NAMES",
    "STATUS_OK",
    "STATUS_REJECTED",
    "STATUS_RETRY",
    "STATUS_UNKNOWN",
    "encode_frame",
    "normalize",
    "read_frame",
]
