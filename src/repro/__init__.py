"""MPICH-GQ reproduction: Quality-of-Service for message-passing
programs (Roy et al., SC 2000), rebuilt on a discrete-event simulation
substrate.

Layering (bottom-up):

``repro.kernel``
    Discrete-event engine (events, processes, monitors).
``repro.net``
    Packets, links, routers, topologies (incl. the GARNET testbed).
``repro.diffserv``
    Classifiers, token buckets, EF/AF/BE per-hop behaviours.
``repro.transport``
    TCP Reno/NewReno and UDP over the simulated network.
``repro.cpu``
    Processor-sharing CPU with DSRT-style reservations.
``repro.gara``
    Slot tables, reservation lifecycle, resource managers, broker.
``repro.mpi``
    Communicators, point-to-point, collectives, attributes.
``repro.core``
    MPICH-GQ itself: QoS attributes, the MPI QoS agent, shaping.
``repro.faults``
    Fault injection (link failure, loss/corruption, chaos schedules)
    and renewable reservation leases.
``repro.resilience``
    Crash-tolerant control plane: write-ahead journal + replay,
    heartbeat failure detection, two-phase co-reservation.
``repro.apps`` / ``repro.experiments``
    The paper's workloads and every table/figure regenerator.

Quickstart::

    from repro import Simulator, garnet, MpichGQ, QosAttribute, QOS_PREMIUM

    sim = Simulator(seed=1)
    testbed = garnet(sim)
    gq = MpichGQ.on_garnet(testbed)

    def main(comm):
        comm.attr_put(gq.qos_keyval,
                      QosAttribute(QOS_PREMIUM, bandwidth_kbps=800))
        ...

    gq.world.launch(main)
    sim.run(until=30.0)
"""

from .kernel import Counter, Monitor, Simulator
from .net import garnet, kbps, mbps, Network
from .core import (
    MpichGQ,
    QOS_BEST_EFFORT,
    QOS_LOW_LATENCY,
    QOS_PREMIUM,
    QosAttribute,
    Shaper,
)
from .faults import ChaosSchedule, LeaseManager, ReservationLost
from .resilience import FailureDetector, Journal, TwoPhaseCoordinator

__version__ = "1.0.0"

__all__ = [
    "ChaosSchedule",
    "Counter",
    "FailureDetector",
    "Journal",
    "LeaseManager",
    "Monitor",
    "MpichGQ",
    "Network",
    "ReservationLost",
    "QOS_BEST_EFFORT",
    "QOS_LOW_LATENCY",
    "QOS_PREMIUM",
    "QosAttribute",
    "Shaper",
    "Simulator",
    "TwoPhaseCoordinator",
    "garnet",
    "kbps",
    "mbps",
    "__version__",
]
