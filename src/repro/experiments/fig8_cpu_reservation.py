"""Figure 8: CPU contention and a DSRT reservation.

"At the beginning, it is able to maintain a fairly steady throughput of
15Mb/s. However at 10 seconds, a CPU-intensive application begins
running on the same machine as the sending side of the visualization
application. This reduces the bandwidth significantly, so a CPU
reservation for 90% of the CPU is made at 20 seconds, and the
visualization application again is able to achieve its full bandwidth"
(§5.5).

The CPU reservation is requested through GARA as an *advance*
reservation at t=0 with start time 20 s — exercising the slot table and
timer-driven enablement.
"""

from __future__ import annotations

import numpy as np

from ..apps import CpuHog, VisualizationPipeline
from ..cpu import Cpu
from ..gara import CpuReservationSpec
from ..net import mbps
from ..transport.tcp import TcpConfig
from .common import ExperimentResult, build_deployment

__all__ = ["run"]


def run(
    quick: bool = False,
    seed: int = 0,
    target_rate: float = mbps(15.0),
    fps: float = 10.0,
    work_fraction: float = 0.85,
    hog_at: float = 10.0,
    reserve_at: float = 20.0,
    duration: float = 30.0,
    reservation_fraction: float = 0.9,
    bin_seconds: float = 0.5,
) -> ExperimentResult:
    if quick:
        hog_at, reserve_at, duration = 3.0, 6.0, 9.0
    dep = build_deployment(
        seed=seed,
        backbone_bandwidth=mbps(155.0),
        eager_threshold=512 * 1024,
        tcp_config=TcpConfig(sndbuf=512 * 1024, rcvbuf=512 * 1024),
    )
    sim, tb, gq = dep.sim, dep.testbed, dep.gq
    sender = tb.premium_src
    cpu = Cpu(sim, host=sender, name="sender-cpu")

    frame_bytes = int(target_rate / fps / 8.0)
    app = VisualizationPipeline(
        frame_bytes=frame_bytes,
        fps=fps,
        duration=duration,
        work_fraction=work_fraction,
    )
    gq.world.launch(app.main)

    hog = CpuHog(sender)
    sim.call_at(hog_at, hog.start)

    # Advance DSRT reservation, made now, active from ``reserve_at``.
    reservation = gq.gara.reserve(
        CpuReservationSpec(cpu, reservation_fraction), start=reserve_at
    )

    def bind_when_task_exists():
        # The app creates its CPU task lazily on its first frame.
        while app._cpu_task is None:
            yield sim.timeout(0.05)
        gq.gara.bind(reservation, app._cpu_task)

    sim.process(bind_when_task_exists(), name="fig8-binder")
    sim.run(until=duration + 10.0)

    times, rates = app.delivered.rate_series(bin_seconds, 0.0, duration)
    rates_kbps = rates * 8.0 / 1e3

    def phase_mean(t0, t1):
        mask = (times >= t0) & (times < t1)
        return float(np.mean(rates_kbps[mask])) if mask.any() else 0.0

    result = ExperimentResult(
        experiment="fig8",
        description="visualization bandwidth: CPU hog then DSRT "
        "reservation",
        headers=["time_s", "bandwidth_kbps"],
        rows=[[float(t), float(r)] for t, r in zip(times, rates_kbps)],
        series={"bandwidth": (times, rates_kbps)},
        extra={
            "target_kbps": target_rate / 1e3,
            "before_contention_kbps": phase_mean(1.0, hog_at),
            "during_contention_kbps": phase_mean(hog_at + 0.5, reserve_at),
            "after_reservation_kbps": phase_mean(reserve_at + 0.5, duration),
            "hog_at": hog_at,
            "reserve_at": reserve_at,
        },
    )
    return result
