"""Table 1 revisited under active queue management.

A beyond-paper ablation: the Table 1 burstiness grid is rerun with the
reservation deliberately *undersized* (``RES_FACTOR`` of the target
rate — the oversubscribed regime §5.4 warns about) under three domain
configurations:

* ``droptail`` — the paper's strict-priority + policer setup, built
  through exactly the pre-AQM code path;
* ``wred`` — premium excess is three-color-remarked into a WRED'd
  assured band with a small bounded DRR share;
* ``wred+ecn`` — same, but WRED marks CE instead of dropping and the
  transport negotiates RFC 3168 ECN.

Where the paper's configuration turns an undersized reservation into
policer drops, RTO timeouts, and go-back-N resends, the AQM modes keep
the excess flowing: WRED converts bursts into early drops the sender
repairs cheaply, and WRED+ECN signals congestion with no loss at all.
The interesting columns are the resent segments and timeouts next to
the achieved throughput.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from ..aqm import AQM_MODES, AqmPolicy
from ..apps import VisualizationPipeline
from ..net import KB, kbps, mbps
from ..transport.tcp import TcpConfig
from .common import ExperimentResult, build_deployment
from .table1_burstiness import CONFIGS, FULL_BANDWIDTHS, QUICK_BANDWIDTHS

__all__ = ["run", "measure_cell", "plan_cells", "RES_FACTOR"]

#: Reservation as a fraction of the application's target rate. 0.6
#: leaves enough excess to exceed the AF band's DRR share on bursty
#: cells, so WRED actually has to arbitrate.
RES_FACTOR = 0.6


def measure_cell(
    bandwidth_kbps: float,
    fps: float,
    bucket_divisor: float,
    mode: str,
    seed: int = 0,
    duration: float = 8.0,
) -> Dict[str, float]:
    """One grid cell under one AQM mode.

    Same deployment recipe as :func:`..fig6_visualization.measure_point`
    (30 Mb/s backbone, 40 Mb/s UDP contention, period-correct Reno with
    a 300 ms RTO floor), but with the domain's AQM policy switched and
    the loss-recovery cost captured alongside the throughput.
    """
    aqm = None if mode == "droptail" else AqmPolicy(mode=mode)
    dep = build_deployment(
        seed=seed,
        backbone_bandwidth=mbps(30.0),
        contention_rate=mbps(40.0),
        tcp_config=TcpConfig(
            recovery="reno",
            min_rto=0.3,
            ecn=aqm is not None and aqm.ecn,
        ),
        aqm=aqm,
    )
    sim, gq = dep.sim, dep.gq
    reservation_kbps = bandwidth_kbps * RES_FACTOR
    gq.agent.reserve_flows(
        0, 1, kbps(reservation_kbps), bucket_divisor=bucket_divisor
    )
    frame_bytes = int(bandwidth_kbps * 1e3 / fps / 8.0)
    app = VisualizationPipeline(
        frame_bytes=frame_bytes, fps=fps, duration=duration
    )
    gq.world.launch(app.main)
    sim.run(until=duration * 4 + 5.0)
    throughput = (
        app.achieved_bandwidth_kbps(1.0, duration)
        if app.delivered is not None
        else 0.0
    )

    resent = timeouts = ce = 0
    from ..net.packet import PROTO_TCP

    for proc in gq.world.procs:
        layer = proc.host.protocols.get(PROTO_TCP)
        if layer is None:
            continue
        for conn in layer._connections.values():
            resent += conn.resent_segments
            timeouts += conn.timeouts
            ce += conn.ecn_ce_received
    early = tail = marks = 0
    for qdisc in gq.domain.priority_qdiscs:
        bands = getattr(qdisc, "bands", None)
        if bands is None or callable(bands):
            continue
        for band in bands:
            early += getattr(band, "early_drops", 0)
            tail += getattr(band, "tail_drops", 0)
            marks += getattr(band, "ecn_marks", 0)
    return {
        "reservation_kbps": reservation_kbps,
        "throughput_kbps": throughput,
        "resent_segments": resent,
        "timeouts": timeouts,
        "early_drops": early,
        "tail_drops": tail,
        "ecn_marks": marks,
        "ce_received": ce,
    }


def _resolve_grid(
    quick: bool,
    bandwidths_kbps: Optional[Sequence[float]],
    duration: Optional[float],
) -> Tuple[Sequence[float], float]:
    if bandwidths_kbps is None:
        bandwidths_kbps = QUICK_BANDWIDTHS if quick else FULL_BANDWIDTHS
    if duration is None:
        duration = 5.0 if quick else 8.0
    return bandwidths_kbps, duration


def plan_cells(
    quick: bool = False,
    bandwidths_kbps: Optional[Sequence[float]] = None,
    duration: Optional[float] = None,
) -> List[Tuple[Tuple[float, str, str], dict]]:
    """The grid as independent jobs, keyed ``(bandwidth, config, mode)``.

    Each cell builds a fresh deployment from the seed, so cells
    parallelise without changing any value; :func:`run`'s
    ``cell_results`` merges them through the serial assembly path.
    """
    bandwidths_kbps, duration = _resolve_grid(quick, bandwidths_kbps, duration)
    return [
        (
            (bandwidth, label, mode),
            dict(
                bandwidth_kbps=bandwidth,
                fps=fps,
                bucket_divisor=divisor,
                mode=mode,
                duration=duration,
            ),
        )
        for bandwidth in bandwidths_kbps
        for label, fps, divisor in CONFIGS
        for mode in AQM_MODES
    ]


def run(
    quick: bool = False,
    seed: int = 0,
    bandwidths_kbps: Optional[Sequence[float]] = None,
    duration: Optional[float] = None,
    cell_results: Optional[Dict[Tuple[float, str, str], Dict[str, float]]] = None,
) -> ExperimentResult:
    """Produce the AQM-ablation table.

    ``cell_results`` optionally supplies precomputed cell measurements
    (keyed as in :func:`plan_cells`) so the parallel runner merges
    through the same assembly code as a serial run.
    """
    bandwidths_kbps, duration = _resolve_grid(quick, bandwidths_kbps, duration)

    result = ExperimentResult(
        experiment="table1_aqm",
        description=f"Table 1 grid at {RES_FACTOR:.0%} reservation: "
        "drop-tail vs WRED vs WRED+ECN",
        headers=[
            "bandwidth_kbps",
            "config",
            "mode",
            "reservation_kbps",
            "throughput_kbps",
            "resent_segments",
            "timeouts",
            "early_drops",
            "tail_drops",
            "ecn_marks",
        ],
    )
    totals = {mode: {"resent": 0, "timeouts": 0, "throughput": 0.0}
              for mode in AQM_MODES}
    for bandwidth in bandwidths_kbps:
        for label, fps, divisor in CONFIGS:
            for mode in AQM_MODES:
                if cell_results is not None:
                    cell = cell_results[(bandwidth, label, mode)]
                else:
                    cell = measure_cell(
                        bandwidth,
                        fps,
                        divisor,
                        mode,
                        seed=seed,
                        duration=duration,
                    )
                result.rows.append([
                    bandwidth,
                    label,
                    mode,
                    cell["reservation_kbps"],
                    cell["throughput_kbps"],
                    cell["resent_segments"],
                    cell["timeouts"],
                    cell["early_drops"],
                    cell["tail_drops"],
                    cell["ecn_marks"],
                ])
                totals[mode]["resent"] += cell["resent_segments"]
                totals[mode]["timeouts"] += cell["timeouts"]
                totals[mode]["throughput"] += cell["throughput_kbps"]
    for mode in AQM_MODES:
        key = mode.replace("+", "_")
        result.extra[f"{key}_resent_segments"] = totals[mode]["resent"]
        result.extra[f"{key}_timeouts"] = totals[mode]["timeouts"]
        result.extra[f"{key}_total_throughput_kbps"] = totals[mode]["throughput"]
    return result
