"""Figure 5: ping-pong throughput versus reservation size.

"Figure 5 shows the one-way throughput obtained by this program as a
function of reservation size, for four different message sizes, in the
face of heavy contention. ... the achieved throughput improves as the
applied reservation increases until the reservation is 'adequate' for
the message size in question, after which further increases in
reservation size have no significant impact" (§5.2).

Message sizes follow the paper's legend (8/40/80/120 Kb — kilobits).
The total reservation is twice the plotted one-way value because both
directions are reserved, exactly as the paper notes.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

import numpy as np

from ..apps import PingPong
from ..net import kbps, mbps
from ..transport.tcp import TcpConfig
from .common import ExperimentResult, build_deployment

__all__ = ["run", "measure_point", "MESSAGE_SIZES_BITS"]

#: The paper's message sizes, in bits (its "Kb messages" legend).
MESSAGE_SIZES_BITS = (8_000, 40_000, 80_000, 120_000)

#: Reservation sweep in Kb/s (one-way), paper x-axis 0..12000.
FULL_RESERVATIONS = (250, 500, 750, 1000, 1500, 2000, 3000, 4000,
                     6000, 8000, 10000, 12000)
QUICK_RESERVATIONS = (500, 2000, 6000, 12000)


def measure_point(
    message_bits: int,
    reservation_kbps: float,
    seed: int = 0,
    duration: float = 3.0,
    contention_rate: float = mbps(40.0),
    backbone_bandwidth: float = mbps(30.0),
) -> float:
    """One data point: measured one-way throughput in Kb/s."""
    dep = build_deployment(
        seed=seed,
        backbone_bandwidth=backbone_bandwidth,
        contention_rate=contention_rate,
        tcp_config=TcpConfig(recovery="reno"),
    )
    sim, gq = dep.sim, dep.gq
    if reservation_kbps > 0:
        # One reservation per direction (total = 2x, as in the paper).
        gq.agent.reserve_flows(0, 1, kbps(reservation_kbps))
        gq.agent.reserve_flows(1, 0, kbps(reservation_kbps))
    app = PingPong(message_bytes=message_bits // 8, duration=duration)
    gq.world.launch(app.main)
    hard_stop = duration * 4 + 5.0
    sim.run(until=hard_stop)
    delivered = app.result.delivered
    if delivered is None or app.result.started_at == 0.0 and not delivered.times:
        return 0.0
    t0 = app.result.started_at
    t1 = min(sim.now, t0 + duration)
    if t1 <= t0:
        return 0.0
    return delivered.rate_over(t0, t1) * 8.0 / 1e3


def run(
    quick: bool = False,
    seed: int = 0,
    reservations_kbps: Optional[Sequence[float]] = None,
    message_sizes_bits: Optional[Sequence[int]] = None,
    duration: Optional[float] = None,
) -> ExperimentResult:
    if reservations_kbps is None:
        reservations_kbps = QUICK_RESERVATIONS if quick else FULL_RESERVATIONS
    if message_sizes_bits is None:
        message_sizes_bits = (
            MESSAGE_SIZES_BITS[::3] if quick else MESSAGE_SIZES_BITS
        )
    if duration is None:
        duration = 1.5 if quick else 3.0

    result = ExperimentResult(
        experiment="fig5",
        description="ping-pong one-way throughput vs reservation, under "
        "heavy UDP contention",
        headers=["message_kbits", "reservation_kbps", "throughput_kbps"],
    )
    for message_bits in message_sizes_bits:
        xs, ys = [], []
        for reservation in reservations_kbps:
            throughput = measure_point(
                message_bits, reservation, seed=seed, duration=duration
            )
            result.rows.append(
                [message_bits // 1000, reservation, throughput]
            )
            xs.append(reservation)
            ys.append(throughput)
        result.series[f"{message_bits // 1000}Kb"] = (
            np.asarray(xs, dtype=float),
            np.asarray(ys, dtype=float),
        )
    return result
