"""Figure 7: TCP sequence-number traces for two burstiness profiles.

"TCP traces of two programs that each send at 400Kb/s, but with very
different burstiness characteristics. On the top is a program sending
10 frames per second, and each frame is 40Kb. On the bottom is a
program sending just 1 frame per second, and the frame is 400Kb."
(Frame sizes in kilobits: 5 KB and 50 KB.)
"""

from __future__ import annotations

import numpy as np

from ..apps import VisualizationPipeline
from ..net import KB, kbps, mbps
from ..transport.tcp import TcpConfig
from .common import ExperimentResult, build_deployment

__all__ = ["run", "trace_for"]


def trace_for(
    fps: float,
    frame_bytes: int,
    seed: int = 0,
    reservation_kbps: float = 600.0,
    window: tuple = (2.0, 3.0),
):
    """One-second (t, cumulative KB) sequence trace of the sender."""
    dep = build_deployment(
        seed=seed,
        backbone_bandwidth=mbps(30.0),
        contention_rate=mbps(40.0),
        tcp_config=TcpConfig(recovery="reno"),
    )
    sim, gq = dep.sim, dep.gq
    gq.agent.reserve_flows(0, 1, kbps(reservation_kbps))
    app = VisualizationPipeline(
        frame_bytes=frame_bytes, fps=fps, duration=window[1] + 2.0
    )
    gq.world.launch(app.main)
    sim.run(until=window[1] + 8.0)
    # The sender's TCP channel to rank 1 holds the sequence trace.
    channel = gq.world.procs[0].channels[1]
    times, offsets = channel.seq_monitor.as_arrays()
    mask = (times >= window[0]) & (times <= window[1])
    t = times[mask] - window[0]
    seq_kb = offsets[mask] / 1024.0
    if len(seq_kb):
        seq_kb = seq_kb - seq_kb[0]
    return t, seq_kb


def run(quick: bool = False, seed: int = 0) -> ExperimentResult:
    bandwidth_kbps = 400.0
    window = (2.0, 3.0)
    # Each profile runs with its Table-1 line-1 adequate reservation
    # (500 / 750 Kb/s), so the traces show the *application's* burst
    # structure rather than policer-induced retransmission dribble.
    t_smooth, s_smooth = trace_for(
        fps=10.0, frame_bytes=5 * KB, seed=seed, window=window,
        reservation_kbps=500.0,
    )
    t_bursty, s_bursty = trace_for(
        fps=1.0, frame_bytes=50 * KB, seed=seed, window=window,
        reservation_kbps=750.0,
    )

    def largest_jump(t, s, dt=0.05):
        """Max KB transmitted within any dt window (burst metric)."""
        if len(t) < 2:
            return 0.0
        best = 0.0
        j = 0
        for i in range(len(t)):
            while t[i] - t[j] > dt:
                j += 1
            best = max(best, s[i] - s[j])
        return float(best)

    result = ExperimentResult(
        experiment="fig7",
        description="sequence traces at 400 Kb/s: 10 fps x 5 KB vs "
        "1 fps x 50 KB",
        headers=["profile", "bytes_in_window_kb", "max_burst_kb_per_50ms"],
        rows=[
            ["10fps x 40Kb", float(s_smooth[-1]) if len(s_smooth) else 0.0,
             largest_jump(t_smooth, s_smooth)],
            ["1fps x 400Kb", float(s_bursty[-1]) if len(s_bursty) else 0.0,
             largest_jump(t_bursty, s_bursty)],
        ],
        series={
            "10fps": (t_smooth, s_smooth),
            "1fps": (t_bursty, s_bursty),
        },
        extra={"bandwidth_kbps": bandwidth_kbps},
    )
    return result
