"""The burstiness grid under modern congestion signaling (L4S study).

Companion to :mod:`.table1_aqm`: the same undersized-reservation grid
(``RES_FACTOR`` of the target rate), but pitting the 1998-era
WRED+ECN baseline against the modern AQM family on the AF band:

* ``wred+ecn`` — the :mod:`.table1_aqm` reference point (RFC 3168 ECN
  over per-precedence WRED curves);
* ``codel`` — RFC 8289 sojourn-time control, head drop/mark at
  dequeue;
* ``pie`` — RFC 8033 proportional-integral probability on queue
  latency;
* ``dualpi2`` — RFC 9332 coupled dual queue, paired with the matching
  modern *transport*: DCTCP-style proportional ECN response over
  ECT(1) (so the data rides the L queue) and CUBIC growth.

The first three run the same period-correct Reno/RFC 3168 transport as
``table1_aqm`` so differences isolate the *qdisc*; the ``dualpi2`` row
is deliberately the full modern stack, because L4S only delivers its
latency story when a scalable sender feeds the L queue. The headline
column is ``queue_delay_ms`` — the AF band's mean per-packet sojourn —
next to the achieved throughput: the modern qdiscs should hold the
standing queue near their targets where WRED rides its curve knee.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from ..aqm import AqmPolicy
from ..apps import VisualizationPipeline
from ..net import kbps, mbps
from ..transport.tcp import TcpConfig
from .common import ExperimentResult, build_deployment
from .table1_aqm import RES_FACTOR
from .table1_burstiness import CONFIGS, FULL_BANDWIDTHS, QUICK_BANDWIDTHS

__all__ = ["run", "measure_cell", "plan_cells", "MODES"]

#: The mode grid: the WRED+ECN baseline plus the modern family.
MODES = ("wred+ecn", "codel", "pie", "dualpi2")


def _tcp_config(mode: str) -> TcpConfig:
    if mode == "dualpi2":
        # The L4S pairing: scalable DCTCP response + CUBIC growth.
        return TcpConfig(
            min_rto=0.3,
            ecn=True,
            ecn_response="dctcp",
            cc="cubic",
        )
    # Period-correct transport, identical to table1_aqm's, so the
    # classic-AQM rows isolate the queue discipline.
    return TcpConfig(recovery="reno", min_rto=0.3, ecn=True)


def measure_cell(
    bandwidth_kbps: float,
    fps: float,
    bucket_divisor: float,
    mode: str,
    seed: int = 0,
    duration: float = 8.0,
) -> Dict[str, float]:
    """One grid cell under one mode (deployment recipe as table1_aqm)."""
    aqm = AqmPolicy(mode=mode)
    dep = build_deployment(
        seed=seed,
        backbone_bandwidth=mbps(30.0),
        contention_rate=mbps(40.0),
        tcp_config=_tcp_config(mode),
        aqm=aqm,
    )
    sim, gq = dep.sim, dep.gq
    reservation_kbps = bandwidth_kbps * RES_FACTOR
    gq.agent.reserve_flows(
        0, 1, kbps(reservation_kbps), bucket_divisor=bucket_divisor
    )
    frame_bytes = int(bandwidth_kbps * 1e3 / fps / 8.0)
    app = VisualizationPipeline(
        frame_bytes=frame_bytes, fps=fps, duration=duration
    )
    gq.world.launch(app.main)
    sim.run(until=duration * 4 + 5.0)
    throughput = (
        app.achieved_bandwidth_kbps(1.0, duration)
        if app.delivered is not None
        else 0.0
    )

    resent = timeouts = ce = responses = 0
    from ..net.packet import PROTO_TCP

    for proc in gq.world.procs:
        layer = proc.host.protocols.get(PROTO_TCP)
        if layer is None:
            continue
        for conn in layer._connections.values():
            resent += conn.resent_segments
            timeouts += conn.timeouts
            ce += conn.ecn_ce_received
            responses += conn.ecn_responses
    early = tail = marks = 0
    sojourn_sum = 0.0
    sojourn_count = 0
    for qdisc in gq.domain.priority_qdiscs:
        bands = getattr(qdisc, "bands", None)
        if bands is None or callable(bands):
            continue
        for band in bands:
            early += getattr(band, "early_drops", 0)
            tail += getattr(band, "tail_drops", 0)
            marks += getattr(band, "ecn_marks", 0)
            sojourn_sum += getattr(band, "sojourn_sum", 0.0)
            sojourn_count += getattr(band, "sojourn_count", 0)
    queue_delay_ms = (
        sojourn_sum / sojourn_count * 1e3 if sojourn_count else 0.0
    )
    return {
        "reservation_kbps": reservation_kbps,
        "throughput_kbps": throughput,
        "resent_segments": resent,
        "timeouts": timeouts,
        "early_drops": early,
        "tail_drops": tail,
        "ecn_marks": marks,
        "ce_received": ce,
        "ecn_responses": responses,
        "queue_delay_ms": queue_delay_ms,
    }


def _resolve_grid(
    quick: bool,
    bandwidths_kbps: Optional[Sequence[float]],
    duration: Optional[float],
) -> Tuple[Sequence[float], float]:
    if bandwidths_kbps is None:
        bandwidths_kbps = QUICK_BANDWIDTHS if quick else FULL_BANDWIDTHS
    if duration is None:
        duration = 5.0 if quick else 8.0
    return bandwidths_kbps, duration


def plan_cells(
    quick: bool = False,
    bandwidths_kbps: Optional[Sequence[float]] = None,
    duration: Optional[float] = None,
) -> List[Tuple[Tuple[float, str, str], dict]]:
    """The grid as independent jobs, keyed ``(bandwidth, config, mode)``
    — the same merge contract as :func:`repro.experiments.table1_aqm.plan_cells`."""
    bandwidths_kbps, duration = _resolve_grid(quick, bandwidths_kbps, duration)
    return [
        (
            (bandwidth, label, mode),
            dict(
                bandwidth_kbps=bandwidth,
                fps=fps,
                bucket_divisor=divisor,
                mode=mode,
                duration=duration,
            ),
        )
        for bandwidth in bandwidths_kbps
        for label, fps, divisor in CONFIGS
        for mode in MODES
    ]


def run(
    quick: bool = False,
    seed: int = 0,
    bandwidths_kbps: Optional[Sequence[float]] = None,
    duration: Optional[float] = None,
    cell_results: Optional[Dict[Tuple[float, str, str], Dict[str, float]]] = None,
) -> ExperimentResult:
    """Produce the L4S/modern-AQM comparison table."""
    bandwidths_kbps, duration = _resolve_grid(quick, bandwidths_kbps, duration)

    result = ExperimentResult(
        experiment="table1_l4s",
        description=f"Table 1 grid at {RES_FACTOR:.0%} reservation: "
        "WRED+ECN vs CoDel vs PIE vs DualPI2+DCTCP",
        headers=[
            "bandwidth_kbps",
            "config",
            "mode",
            "reservation_kbps",
            "throughput_kbps",
            "resent_segments",
            "timeouts",
            "early_drops",
            "tail_drops",
            "ecn_marks",
            "queue_delay_ms",
        ],
    )
    totals = {
        mode: {
            "resent": 0,
            "timeouts": 0,
            "throughput": 0.0,
            "delay_sum": 0.0,
            "cells": 0,
        }
        for mode in MODES
    }
    for bandwidth in bandwidths_kbps:
        for label, fps, divisor in CONFIGS:
            for mode in MODES:
                if cell_results is not None:
                    cell = cell_results[(bandwidth, label, mode)]
                else:
                    cell = measure_cell(
                        bandwidth,
                        fps,
                        divisor,
                        mode,
                        seed=seed,
                        duration=duration,
                    )
                result.rows.append([
                    bandwidth,
                    label,
                    mode,
                    cell["reservation_kbps"],
                    cell["throughput_kbps"],
                    cell["resent_segments"],
                    cell["timeouts"],
                    cell["early_drops"],
                    cell["tail_drops"],
                    cell["ecn_marks"],
                    cell["queue_delay_ms"],
                ])
                totals[mode]["resent"] += cell["resent_segments"]
                totals[mode]["timeouts"] += cell["timeouts"]
                totals[mode]["throughput"] += cell["throughput_kbps"]
                totals[mode]["delay_sum"] += cell["queue_delay_ms"]
                totals[mode]["cells"] += 1
    for mode in MODES:
        key = mode.replace("+", "_")
        t = totals[mode]
        result.extra[f"{key}_resent_segments"] = t["resent"]
        result.extra[f"{key}_timeouts"] = t["timeouts"]
        result.extra[f"{key}_total_throughput_kbps"] = t["throughput"]
        result.extra[f"{key}_mean_queue_delay_ms"] = (
            t["delay_sum"] / t["cells"] if t["cells"] else 0.0
        )
    return result
