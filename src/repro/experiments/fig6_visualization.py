"""Figure 6: the visualization application versus reservation size.

"Figure 6 shows the throughput achieved by this program as a function
of reservation size for frame sizes of 5, 10, 20, and 30 KB. (The rate
was fixed at 10 frames per second.) ... in contrast to the ping-pong
case, we see that the performance at lower reservations is
significantly worse than we would expect from simple scaling. This
effect is due to TCP congestion control strategies. We also see that
we require a reservation value of around 1.06 of the sending rate,
because of TCP packet overheads" (§5.3).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..apps import VisualizationPipeline
from ..net import KB, kbps, mbps
from ..transport.tcp import TcpConfig
from .common import ExperimentResult, build_deployment

__all__ = ["run", "measure_point", "plan_points", "FRAME_SIZES_KB"]

#: Paper frame sizes (KB) at 10 fps -> 400/800/1600/2400 Kb/s targets.
FRAME_SIZES_KB = (5, 10, 20, 30)

FULL_RESERVATIONS = (100, 200, 300, 400, 500, 600, 800, 1000, 1200,
                     1400, 1600, 1800, 2000, 2200, 2400, 2600)
QUICK_RESERVATIONS = (200, 800, 1700, 2600)


def measure_point(
    frame_kb: int,
    reservation_kbps: float,
    seed: int = 0,
    duration: float = 10.0,
    fps: float = 10.0,
    contention_rate: float = mbps(40.0),
    bucket_divisor: Optional[float] = None,
    shaped: bool = False,
) -> float:
    """Achieved visualization bandwidth (Kb/s) for one reservation."""
    # Period-correct TCP: Reno recovery with a 300 ms RTO floor
    # (between Linux 2.2's 200 ms and RFC 2988's 1 s). The RTO floor is
    # what turns a burst of policer drops into a missed frame interval:
    # with a very low floor the sender recovers within milliseconds and
    # Table 1's burstiness penalty disappears; with a full second it
    # never recovers inside the frame interval at all. 300 ms lands the
    # penalty in the paper's "approximately 50% larger reservation"
    # regime.
    dep = build_deployment(
        seed=seed,
        backbone_bandwidth=mbps(30.0),
        contention_rate=contention_rate,
        tcp_config=TcpConfig(recovery="reno", min_rto=0.3),
    )
    sim, gq = dep.sim, dep.gq
    if reservation_kbps > 0:
        gq.agent.reserve_flows(
            0, 1, kbps(reservation_kbps), bucket_divisor=bucket_divisor
        )
    if shaped:
        # §5.4's alternative: end-system shaping inside the MPI
        # implementation, pacing the wire traffic itself.
        gq.enable_end_system_shaping(
            0, 1, rate=kbps(reservation_kbps) * 0.94, depth_bytes=8 * KB
        )
    app = VisualizationPipeline(
        frame_bytes=int(frame_kb * KB), fps=fps, duration=duration
    )
    gq.world.launch(app.main)
    sim.run(until=duration * 4 + 5.0)
    if app.delivered is None:
        return 0.0
    # Skip the first second (slow start), stop at the nominal end.
    return app.achieved_bandwidth_kbps(1.0, duration)


def _resolve_grid(
    quick: bool,
    frame_sizes_kb: Optional[Sequence[int]],
    reservations_kbps: Optional[Sequence[float]],
    duration: Optional[float],
) -> Tuple[Sequence[int], Sequence[float], float]:
    if frame_sizes_kb is None:
        frame_sizes_kb = FRAME_SIZES_KB[::3] if quick else FRAME_SIZES_KB
    if reservations_kbps is None:
        reservations_kbps = QUICK_RESERVATIONS if quick else FULL_RESERVATIONS
    if duration is None:
        duration = 4.0 if quick else 10.0
    return frame_sizes_kb, reservations_kbps, duration


def plan_points(
    quick: bool = False,
    frame_sizes_kb: Optional[Sequence[int]] = None,
    reservations_kbps: Optional[Sequence[float]] = None,
    duration: Optional[float] = None,
) -> List[Tuple[Tuple[int, float], dict]]:
    """The measurement grid as independent jobs.

    Returns ``[(key, measure_point_kwargs), ...]`` where ``key`` is
    ``(frame_kb, reservation_kbps)``. Feeding the measured values back
    through :func:`run`'s ``point_results`` reproduces the serial
    result exactly — each grid point builds its own deployment from the
    seed, so evaluation order (or process) cannot matter.
    """
    frame_sizes_kb, reservations_kbps, duration = _resolve_grid(
        quick, frame_sizes_kb, reservations_kbps, duration
    )
    return [
        (
            (frame_kb, reservation),
            dict(
                frame_kb=frame_kb,
                reservation_kbps=reservation,
                duration=duration,
            ),
        )
        for frame_kb in frame_sizes_kb
        for reservation in reservations_kbps
    ]


def run(
    quick: bool = False,
    seed: int = 0,
    frame_sizes_kb: Optional[Sequence[int]] = None,
    reservations_kbps: Optional[Sequence[float]] = None,
    duration: Optional[float] = None,
    point_results: Optional[Dict[Tuple[int, float], float]] = None,
) -> ExperimentResult:
    """Produce the Figure 6 result.

    ``point_results`` optionally supplies precomputed grid values
    (keyed as in :func:`plan_points`); the parallel runner uses this so
    merging goes through the exact same assembly code as a serial run.
    """
    frame_sizes_kb, reservations_kbps, duration = _resolve_grid(
        quick, frame_sizes_kb, reservations_kbps, duration
    )

    result = ExperimentResult(
        experiment="fig6",
        description="visualization app (10 fps) throughput vs reservation",
        headers=["target_kbps", "reservation_kbps", "throughput_kbps"],
    )
    for frame_kb in frame_sizes_kb:
        target = frame_kb * KB * 8 * 10 / 1e3
        xs, ys = [], []
        for reservation in reservations_kbps:
            if point_results is not None:
                throughput = point_results[(frame_kb, reservation)]
            else:
                throughput = measure_point(
                    frame_kb, reservation, seed=seed, duration=duration
                )
            result.rows.append([target, reservation, throughput])
            xs.append(reservation)
            ys.append(throughput)
        result.series[f"{target:.0f}Kb/s"] = (
            np.asarray(xs, dtype=float),
            np.asarray(ys, dtype=float),
        )
    return result
