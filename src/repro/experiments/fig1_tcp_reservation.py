"""Figure 1: a TCP flow sending faster than its reservation.

"An application using TCP has made a reservation for only 40 Mb/s,
when it is sending at 50 Mb/s" — the achieved bandwidth oscillates
wildly (roughly 20-55 Mb/s in the paper): every policer drop knocks TCP
into recovery/slow start, it climbs back, overshoots the token-bucket
rate, and is dropped again.

Reproduction: raw TCP bulk transfer on GARNET, application writes paced
at the attempted rate, a GARA premium reservation (with the bandwidth/40
bucket rule) below that rate, UDP contention on the backbone.
"""

from __future__ import annotations

import numpy as np

from ..core import Shaper
from ..diffserv import FlowSpec
from ..gara import NetworkReservationSpec
from ..net import mbps, to_kbps
from ..net.packet import PROTO_TCP
from ..transport.tcp import TcpConfig
from .common import ExperimentResult, build_deployment

__all__ = ["run"]

_PORT = 5501


def run(
    quick: bool = False,
    seed: int = 0,
    attempted_rate: float = mbps(50.0),
    reserved_rate: float = mbps(40.0),
    duration: float = None,
    bin_seconds: float = 1.0,
    mode: str = "packet",
    contention_rate: float = mbps(30.0),
    access_bandwidth: float = mbps(100.0),
) -> ExperimentResult:
    if duration is None:
        duration = 12.0 if quick else 100.0
    # Period-correct TCP: classic Reno recovery, where multiple drops
    # per window frequently end in a retransmission timeout — the
    # "TCP kicks into slow start mode" dips of the paper's trace.
    cfg = TcpConfig(
        sndbuf=1024 * 1024, rcvbuf=1024 * 1024, recovery="reno"
    )
    dep = build_deployment(
        seed=seed,
        backbone_bandwidth=mbps(155.0),
        access_bandwidth=access_bandwidth,
        backbone_delay=2e-3,
        contention_rate=contention_rate,
        tcp_config=cfg,
        mode=mode,
    )
    sim, tb, gq = dep.sim, dep.testbed, dep.gq

    # The reservation: premium service at 40 Mb/s for the data flow.
    # Figure 1 predates the paper's bandwidth/40 depth rule (§4.3); the
    # premium service it exercised had a generous burst allowance, so
    # we use a deep bucket (bandwidth/16 bytes, ~0.5 s of
    # burst at the attempted rate) here.
    spec = NetworkReservationSpec(
        tb.premium_src, tb.premium_dst, reserved_rate, bucket_divisor=16.0
    )
    reservation = gq.gara.reserve(spec)
    gq.gara.bind(
        reservation,
        FlowSpec(
            src=tb.premium_src.addr,
            dst=tb.premium_dst.addr,
            dport=_PORT,
            proto=PROTO_TCP,
        ),
    )

    tcp_src = gq.world.procs[0].tcp
    tcp_dst = gq.world.procs[1].tcp
    listener = tcp_dst.listen(_PORT, config=cfg)
    state = {}

    def server():
        conn = yield listener.accept()
        state["server"] = conn
        while True:
            n = yield conn.recv(1 << 20)
            if n == 0:
                return

    def client():
        conn = tcp_src.connect(tb.premium_dst.addr, _PORT, config=cfg)
        state["client"] = conn
        yield conn.established_event
        # Application paced at the attempted rate, 16 KB writes.
        shaper = Shaper(sim, rate=attempted_rate, depth_bytes=64 * 1024)
        chunk = 16 * 1024
        while sim.now < duration:
            yield from shaper.acquire(chunk)
            yield conn.send(chunk)

    sim.process(server(), name="fig1-server")
    sim.process(client(), name="fig1-client")
    sim.run(until=duration)

    delivered = state["server"].delivered_counter
    times, rates = delivered.rate_series(bin_seconds, t_start=0.0, t_end=duration)
    rates_kbps = rates * 8.0 / 1e3

    steady = rates_kbps[2:]  # skip slow-start warmup bins
    result = ExperimentResult(
        experiment="fig1",
        description=(
            "TCP at 50 Mb/s with a 40 Mb/s reservation: bandwidth trace"
        ),
        headers=["time_s", "bandwidth_kbps"],
        rows=[[float(t), float(r)] for t, r in zip(times, rates_kbps)],
        series={"tcp-flow": (times, rates_kbps)},
        extra={
            "attempted_kbps": to_kbps(attempted_rate),
            "reserved_kbps": to_kbps(reserved_rate),
            "mean_kbps": float(np.mean(steady)) if len(steady) else 0.0,
            "min_kbps": float(np.min(steady)) if len(steady) else 0.0,
            "max_kbps": float(np.max(steady)) if len(steady) else 0.0,
            "std_kbps": float(np.std(steady)) if len(steady) else 0.0,
            "retransmissions": state["client"].retransmissions,
        },
    )
    if mode != "packet":
        # Only non-default modes annotate the payload: the packet-mode
        # quick JSON is pinned byte-identical across PRs.
        result.extra["mode"] = mode
        result.extra["events_processed"] = sim.events_processed
        result.extra["events_credited"] = sim.events_credited
        result.extra["effective_events"] = sim.effective_events
    return result
