"""Grid-scale GARNET: 1,000 routers, 100k DiffServ flows, shardable.

The paper's testbed is seven nodes; the digital-twin target the PDES
layer exists for is a metropolitan-scale DiffServ mesh. This
experiment runs the :mod:`repro.pdes` ``garnet_xl`` scenario — a
25x40 router grid with one host per router, strict-priority DiffServ
egress, 100k short premium/assured/best-effort flows plus standing
best-effort background bursts — optionally partitioned over worker
processes (``--shards N``), and reports the per-class delivery and
latency table. The merged output is byte-identical for every shard
count, so the table is the same whether it ran serially or sharded;
only ``elapsed_seconds`` and the events/sec figures change.

``--quick`` swaps in a 10x10 grid with 5k flows (same class mix and
merge path) so smoke runs finish in about a second.
"""

from __future__ import annotations

from ..pdes import run_scenario
from .common import ExperimentResult

__all__ = ["run"]

_QUICK_PARAMS = {
    "rows": 10,
    "cols": 10,
    "n_flows": 5_000,
    "bg_flows": 20,
    "duration": 0.6,
}


def run(
    quick: bool = False,
    seed: int = 0,
    shards: int = 1,
    backend: str = "auto",
) -> ExperimentResult:
    params = dict(_QUICK_PARAMS) if quick else None
    result = run_scenario(
        "garnet_xl", seed=seed, shards=shards, backend=backend, params=params
    )
    merged = result.merged
    rows = []
    for dscp in sorted(merged["classes"], key=int):
        cls = merged["classes"][dscp]
        lat = merged["latency"].get(dscp)
        rows.append([
            int(dscp),
            cls["tx_datagrams"],
            cls["rx_datagrams"],
            round(lat["p50"] * 1e3, 4) if lat else None,
            round(lat["p99"] * 1e3, 4) if lat else None,
            round(lat["max"] * 1e3, 4) if lat else None,
        ])
    grid = "10x10" if quick else "25x40"
    return ExperimentResult(
        experiment="garnet_xl",
        description=(
            f"{grid} GARNET grid under 3-class DiffServ load "
            f"({result.n_shards} shard{'s' if result.n_shards != 1 else ''}, "
            f"{result.backend} backend)"
        ),
        headers=[
            "dscp", "tx_datagrams", "rx_datagrams",
            "p50_ms", "p99_ms", "max_ms",
        ],
        rows=rows,
        extra={
            "shards": result.n_shards,
            "backend": result.backend,
            "lookahead_s": result.lookahead,
            "windows": result.windows,
            "total_events": result.total_events,
            "per_shard_events": list(result.per_shard_events),
            "boundary_messages": sum(result.boundary_messages),
            "qdisc_drops": merged["qdisc_drops"],
            "route_ttl_drops": merged["route_ttl_drops"],
            "events_per_second": (
                result.total_events / result.wall_s if result.wall_s else 0.0
            ),
            "wall_seconds": result.wall_s,
        },
    )
