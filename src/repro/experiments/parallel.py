"""Parallel experiment execution (``mpichgq-experiments --parallel N``).

The selected experiments fan out over a fork-based process pool.
Experiments whose data points are independent simulations — fig6's
measurement grid and table1's bisection cells — are partitioned into
per-point jobs; everything else runs as one whole-experiment job.
Jobs are submitted longest-estimated-first so the pool drains evenly.

Determinism: every grid point / cell builds its own deployment from
the seed, so values cannot depend on evaluation order or process.
Partitioned results are merged by feeding the measured values back
through the experiment's own :func:`run` (its ``point_results`` /
``cell_results`` parameter), so a parallel run's output is identical
to a serial run's except for the wall-clock ``elapsed_seconds``.

Telemetry: a telemetry session is process-global state tied to one
simulator at a time, so when collection is on, partitioning is
disabled — each experiment runs whole inside one worker, which
installs its own session and exports its own metrics files.

Fallback: with ``--parallel 1``, or on platforms without the ``fork``
start method, the same job plan executes in-process — no pool, no
pickling — and produces byte-identical results (every job builds its
deployment from the seed, so values never depend on where they ran).
"""

from __future__ import annotations

import gc
import multiprocessing as mp
import time
from pathlib import Path
from typing import Any, Dict, List, NamedTuple, Optional, Tuple

from . import (
    fig6_visualization,
    fig_adaptation,
    table1_aqm,
    table1_burstiness,
    table1_l4s,
)

__all__ = ["run_parallel"]

#: Rough --quick wall-clock (seconds) per whole experiment, used only
#: for longest-first submission order. Full runs scale all entries up
#: roughly uniformly, which preserves the ordering.
_WHOLE_WEIGHTS = {
    "fig1": 4.0,
    "fig5": 8.5,
    "fig6": 14.0,
    "fig7": 2.0,
    "table1": 60.0,
    "table1_aqm": 40.0,
    "table1_l4s": 50.0,
    "fig8": 0.5,
    "fig9": 11.0,
    "fig_adaptation": 5.0,
    "garnet_xl": 25.0,
}
#: One fig_adaptation flavor is a single fixed-duration run.
_FIG_ADAPTATION_CELL_WEIGHT = 2.5
_FIG6_POINT_WEIGHT = 2.0
#: A table1 cell runs ~5-10 bisection probes; probe cost grows with
#: the cell's target bandwidth, so weight by it (the constant only
#: has to rank cells above fig6 points and scale with bandwidth).
_TABLE1_CELL_WEIGHT_PER_KBPS = 0.008
#: A table1_aqm cell is a single (non-bisected) run of the same probe.
_TABLE1_AQM_CELL_WEIGHT_PER_KBPS = 0.001


class _Job(NamedTuple):
    key: Tuple[str, Any]
    weight: float
    fn: Any
    args: tuple


# ---------------------------------------------------------------------------
# Worker functions (module level so the pool can pickle them).
# ---------------------------------------------------------------------------


def _whole_job(
    name: str, quick: bool, seed: int, collect: bool, out: Optional[str]
):
    """Run one experiment end to end; returns (result, elapsed, summary)."""
    from .. import telemetry
    from .runner import EXPERIMENTS, make_telemetry

    tel = None
    if collect:
        tel = make_telemetry()
        telemetry.install(tel)
    started = time.time()
    gc.disable()
    try:
        result = EXPERIMENTS[name](quick=quick, seed=seed)
    finally:
        gc.enable()
        if tel is not None:
            telemetry.uninstall()
    elapsed = time.time() - started
    summary = None
    if tel is not None:
        tel.collect()
        snap = tel.snapshot()
        summary = (len(snap["metrics"]), snap["span_count"])
        if out is not None:
            meta = {"experiment": name, "quick": quick, "seed": seed}
            out_dir = Path(out)
            out_dir.mkdir(parents=True, exist_ok=True)
            telemetry.export_json(
                tel, out_dir / f"{name}.metrics.json", meta=meta
            )
            telemetry.export_csv(tel, out_dir / f"{name}.metrics.csv")
    return result, elapsed, summary


def _fig6_point_job(kwargs: dict, seed: int):
    started = time.time()
    gc.disable()
    try:
        value = fig6_visualization.measure_point(seed=seed, **kwargs)
    finally:
        gc.enable()
    return value, time.time() - started


def _table1_cell_job(kwargs: dict, seed: int):
    started = time.time()
    gc.disable()
    try:
        value = table1_burstiness.required_reservation(seed=seed, **kwargs)
    finally:
        gc.enable()
    return value, time.time() - started


def _table1_aqm_cell_job(kwargs: dict, seed: int):
    started = time.time()
    gc.disable()
    try:
        value = table1_aqm.measure_cell(seed=seed, **kwargs)
    finally:
        gc.enable()
    return value, time.time() - started


def _table1_l4s_cell_job(kwargs: dict, seed: int):
    started = time.time()
    gc.disable()
    try:
        value = table1_l4s.measure_cell(seed=seed, **kwargs)
    finally:
        gc.enable()
    return value, time.time() - started


def _fig_adaptation_cell_job(kwargs: dict, seed: int):
    started = time.time()
    gc.disable()
    try:
        value = fig_adaptation.measure_cell(seed=seed, **kwargs)
    finally:
        gc.enable()
    return value, time.time() - started


# ---------------------------------------------------------------------------
# Planning, execution, merging
# ---------------------------------------------------------------------------


def _plan(
    selected: List[str],
    quick: bool,
    seed: int,
    collect: bool,
    out: Optional[str],
) -> List[_Job]:
    partition = not collect
    jobs: List[_Job] = []
    for name in selected:
        if partition and name == "fig6":
            for key, kwargs in fig6_visualization.plan_points(quick=quick):
                jobs.append(
                    _Job(
                        ("fig6", key),
                        _FIG6_POINT_WEIGHT,
                        _fig6_point_job,
                        (kwargs, seed),
                    )
                )
        elif partition and name == "table1":
            for key, kwargs in table1_burstiness.plan_cells(quick=quick):
                bandwidth = key[0]
                jobs.append(
                    _Job(
                        ("table1", key),
                        bandwidth * _TABLE1_CELL_WEIGHT_PER_KBPS,
                        _table1_cell_job,
                        (kwargs, seed),
                    )
                )
        elif partition and name == "table1_aqm":
            for key, kwargs in table1_aqm.plan_cells(quick=quick):
                bandwidth = key[0]
                jobs.append(
                    _Job(
                        ("table1_aqm", key),
                        bandwidth * _TABLE1_AQM_CELL_WEIGHT_PER_KBPS,
                        _table1_aqm_cell_job,
                        (kwargs, seed),
                    )
                )
        elif partition and name == "table1_l4s":
            for key, kwargs in table1_l4s.plan_cells(quick=quick):
                bandwidth = key[0]
                jobs.append(
                    _Job(
                        ("table1_l4s", key),
                        bandwidth * _TABLE1_AQM_CELL_WEIGHT_PER_KBPS,
                        _table1_l4s_cell_job,
                        (kwargs, seed),
                    )
                )
        elif partition and name == "fig_adaptation":
            for key, kwargs in fig_adaptation.plan_cells(quick=quick):
                jobs.append(
                    _Job(
                        ("fig_adaptation", key),
                        _FIG_ADAPTATION_CELL_WEIGHT,
                        _fig_adaptation_cell_job,
                        (kwargs, seed),
                    )
                )
        else:
            jobs.append(
                _Job(
                    ("whole", name),
                    _WHOLE_WEIGHTS.get(name, 5.0),
                    _whole_job,
                    (name, quick, seed, collect, out),
                )
            )
    return jobs


def run_parallel(
    selected: List[str],
    quick: bool,
    seed: int,
    processes: int,
    collect: bool = False,
    out: Optional[Path] = None,
):
    """Run ``selected`` experiments over ``processes`` workers.

    Returns ``[(name, result, elapsed_seconds, telemetry_summary)]``
    in ``selected`` order. ``elapsed_seconds`` for a partitioned
    experiment is the summed worker time (its CPU cost, not critical
    path). ``telemetry_summary`` is ``(n_metrics, n_span_events)`` or
    None when collection is off.
    """
    jobs = _plan(selected, quick, seed, collect, str(out) if out else None)
    # Longest first: the heaviest job bounds the pool's critical path,
    # so it must never be picked up last.
    ordered = sorted(jobs, key=lambda j: -j.weight)
    raw: Dict[Tuple[str, Any], Any] = {}
    if processes <= 1 or "fork" not in mp.get_all_start_methods():
        # In-process fallback: same plan, same merge, no pool. Each
        # job rebuilds its deployment from the seed, so the output is
        # byte-identical to a pooled run.
        for job in ordered:
            raw[job.key] = job.fn(*job.args)
    else:
        # Fork keeps worker startup cheap and inherits the imported
        # stack.
        ctx = mp.get_context("fork")
        with ctx.Pool(processes=processes) as pool:
            pending = [
                (job.key, pool.apply_async(job.fn, job.args))
                for job in ordered
            ]
            pool.close()
            for key, handle in pending:
                raw[key] = handle.get()
            pool.join()

    results = []
    partition = not collect
    for name in selected:
        if partition and name == "fig6":
            keys = [k for k, _ in fig6_visualization.plan_points(quick=quick)]
            values = {k: raw[("fig6", k)][0] for k in keys}
            elapsed = sum(raw[("fig6", k)][1] for k in keys)
            result = fig6_visualization.run(
                quick=quick, seed=seed, point_results=values
            )
            results.append((name, result, elapsed, None))
        elif partition and name == "table1":
            keys = [k for k, _ in table1_burstiness.plan_cells(quick=quick)]
            values = {k: raw[("table1", k)][0] for k in keys}
            elapsed = sum(raw[("table1", k)][1] for k in keys)
            result = table1_burstiness.run(
                quick=quick, seed=seed, cell_results=values
            )
            results.append((name, result, elapsed, None))
        elif partition and name == "table1_aqm":
            keys = [k for k, _ in table1_aqm.plan_cells(quick=quick)]
            values = {k: raw[("table1_aqm", k)][0] for k in keys}
            elapsed = sum(raw[("table1_aqm", k)][1] for k in keys)
            result = table1_aqm.run(
                quick=quick, seed=seed, cell_results=values
            )
            results.append((name, result, elapsed, None))
        elif partition and name == "table1_l4s":
            keys = [k for k, _ in table1_l4s.plan_cells(quick=quick)]
            values = {k: raw[("table1_l4s", k)][0] for k in keys}
            elapsed = sum(raw[("table1_l4s", k)][1] for k in keys)
            result = table1_l4s.run(
                quick=quick, seed=seed, cell_results=values
            )
            results.append((name, result, elapsed, None))
        elif partition and name == "fig_adaptation":
            keys = [k for k, _ in fig_adaptation.plan_cells(quick=quick)]
            values = {k: raw[("fig_adaptation", k)][0] for k in keys}
            elapsed = sum(raw[("fig_adaptation", k)][1] for k in keys)
            result = fig_adaptation.run(
                quick=quick, seed=seed, cell_results=values
            )
            results.append((name, result, elapsed, None))
        else:
            result, elapsed, summary = raw[("whole", name)]
            results.append((name, result, elapsed, summary))
    return results
