"""Table 1: reservation required versus burstiness and bucket size.

"The reservation required to achieve a specified throughput, for
varying degrees of 'burstiness' (expressed in frames per second) and
token bucket sizes. ... with the normal depth, the very bursty
configurations needs an approximately 50% larger reservation" (§5.4).

Paper's table (Kb/s):

    bandwidth | normal bucket, 10 fps | normal, 1 fps | large, 1 fps
       400    |          500          |      750      |     500
       800    |          900          |     1450      |     900
      1600    |         1700          |     2700      |    1700
      2400    |         2500          |     3600      |    2500

We reproduce the procedure: for each cell, find the minimum reservation
at which the visualization application achieves (>= 95% of) its target
throughput, by bisection over the reservation.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from ..diffserv.token_bucket import LARGE_DEPTH_DIVISOR, NORMAL_DEPTH_DIVISOR
from ..net import KB
from .common import ExperimentResult
from .fig6_visualization import measure_point

__all__ = ["run", "required_reservation", "plan_cells"]

FULL_BANDWIDTHS = (400, 800, 1600, 2400)
QUICK_BANDWIDTHS = (400, 1600)

#: The three table columns: (label, fps, bucket divisor).
CONFIGS = (
    ("normal_10fps", 10.0, NORMAL_DEPTH_DIVISOR),
    ("normal_1fps", 1.0, NORMAL_DEPTH_DIVISOR),
    ("large_1fps", 1.0, LARGE_DEPTH_DIVISOR),
)


def required_reservation(
    bandwidth_kbps: float,
    fps: float,
    bucket_divisor: float,
    seed: int = 0,
    duration: float = 8.0,
    threshold: float = 0.95,
    resolution_kbps: float = 50.0,
    max_factor: float = 3.0,
) -> float:
    """Minimum adequate reservation (Kb/s) by bisection."""
    frame_bytes = int(bandwidth_kbps * 1e3 / fps / 8.0)
    target = bandwidth_kbps

    def adequate(reservation: float) -> bool:
        achieved = measure_point(
            frame_kb=frame_bytes / KB,
            reservation_kbps=reservation,
            seed=seed,
            duration=duration,
            fps=fps,
            bucket_divisor=bucket_divisor,
        )
        return achieved >= threshold * target

    lo, hi = target, target * max_factor
    if not adequate(hi):
        return float("nan")  # never adequate within the search range
    if adequate(lo):
        return lo
    while hi - lo > resolution_kbps:
        mid = (lo + hi) / 2.0
        if adequate(mid):
            hi = mid
        else:
            lo = mid
    return hi


def _resolve_grid(
    quick: bool,
    bandwidths_kbps: Optional[Sequence[float]],
    duration: Optional[float],
) -> Tuple[Sequence[float], float, float]:
    if bandwidths_kbps is None:
        bandwidths_kbps = QUICK_BANDWIDTHS if quick else FULL_BANDWIDTHS
    if duration is None:
        duration = 5.0 if quick else 8.0
    resolution = 100.0 if quick else 50.0
    return bandwidths_kbps, duration, resolution


def plan_cells(
    quick: bool = False,
    bandwidths_kbps: Optional[Sequence[float]] = None,
    duration: Optional[float] = None,
) -> List[Tuple[Tuple[float, str], dict]]:
    """The table's cells as independent bisection jobs.

    Returns ``[(key, required_reservation_kwargs), ...]`` with ``key``
    ``(bandwidth_kbps, config_label)``. Each cell's bisection is
    internally sequential but cells are independent — each probe
    builds a fresh deployment from the seed — so they parallelise
    without changing any value; :func:`run`'s ``cell_results`` merges
    them through the serial assembly path.
    """
    bandwidths_kbps, duration, resolution = _resolve_grid(
        quick, bandwidths_kbps, duration
    )
    return [
        (
            (bandwidth, label),
            dict(
                bandwidth_kbps=bandwidth,
                fps=fps,
                bucket_divisor=divisor,
                duration=duration,
                resolution_kbps=resolution,
            ),
        )
        for bandwidth in bandwidths_kbps
        for label, fps, divisor in CONFIGS
    ]


def run(
    quick: bool = False,
    seed: int = 0,
    bandwidths_kbps: Optional[Sequence[float]] = None,
    duration: Optional[float] = None,
    cell_results: Optional[Dict[Tuple[float, str], float]] = None,
) -> ExperimentResult:
    """Produce the Table 1 result.

    ``cell_results`` optionally supplies precomputed cell values
    (keyed as in :func:`plan_cells`) so the parallel runner merges
    through the same assembly code as a serial run.
    """
    bandwidths_kbps, duration, resolution = _resolve_grid(
        quick, bandwidths_kbps, duration
    )

    result = ExperimentResult(
        experiment="table1",
        description="reservation required for target throughput vs "
        "burstiness and bucket depth",
        headers=[
            "bandwidth_kbps",
            "normal_10fps",
            "normal_1fps",
            "large_1fps",
        ],
    )
    for bandwidth in bandwidths_kbps:
        row = [bandwidth]
        for label, fps, divisor in CONFIGS:
            if cell_results is not None:
                row.append(cell_results[(bandwidth, label)])
            else:
                row.append(
                    required_reservation(
                        bandwidth,
                        fps,
                        divisor,
                        seed=seed,
                        duration=duration,
                        resolution_kbps=resolution,
                    )
                )
        result.rows.append(row)
    # Headline ratios the paper calls out.
    ratios = [
        row[2] / row[1]
        for row in result.rows
        if row[1] == row[1] and row[2] == row[2] and row[1] > 0
    ]
    if ratios:
        result.extra["bursty_over_smooth_ratio"] = sum(ratios) / len(ratios)
    return result
