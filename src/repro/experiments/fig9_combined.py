"""Figure 9: combined network and CPU reservations.

"A trace of the bandwidth achieved by the visualization application as
it attempts to achieve a constant 35Mb/s rate. Initially it runs well
(0-10 seconds), then network congestion affects its bandwidth (11-20
seconds) until a network reservation is made (21-30 seconds).
Bandwidth again decreases when there is CPU contention at the sender
(31-40 seconds) until there is a CPU reservation (41-50 seconds)"
(§5.5). "Note that it is insufficient to make just a network
reservation or a CPU reservation: both reservations are needed."
"""

from __future__ import annotations

import numpy as np

from ..apps import CpuHog, VisualizationPipeline
from ..cpu import Cpu
from ..gara import CpuReservationSpec
from ..net import mbps
from ..transport.tcp import TcpConfig
from .common import ExperimentResult, build_deployment

__all__ = ["run"]


def run(
    quick: bool = False,
    seed: int = 0,
    target_rate: float = mbps(35.0),
    fps: float = 10.0,
    work_fraction: float = 0.85,
    congestion_at: float = 10.0,
    net_reserve_at: float = 21.0,
    hog_at: float = 31.0,
    cpu_reserve_at: float = 41.0,
    duration: float = 50.0,
    bin_seconds: float = 0.5,
) -> ExperimentResult:
    if quick:
        congestion_at, net_reserve_at, hog_at, cpu_reserve_at, duration = (
            3.0, 6.0, 9.0, 12.0, 15.0,
        )
    # The backbone must genuinely saturate under the blast: with
    # 100 Mb/s access links capping the generator, a 120 Mb/s backbone
    # carrying 95 Mb/s of UDP plus the 35 Mb/s application congests.
    dep = build_deployment(
        seed=seed,
        backbone_bandwidth=mbps(120.0),
        contention_rate=mbps(95.0),
        start_contention=False,
        eager_threshold=1024 * 1024,
        tcp_config=TcpConfig(
            sndbuf=1024 * 1024, rcvbuf=1024 * 1024, recovery="reno"
        ),
    )
    sim, tb, gq = dep.sim, dep.testbed, dep.gq
    sender = tb.premium_src
    cpu = Cpu(sim, host=sender, name="sender-cpu")

    frame_bytes = int(target_rate / fps / 8.0)
    app = VisualizationPipeline(
        frame_bytes=frame_bytes,
        fps=fps,
        duration=duration,
        work_fraction=work_fraction,
    )
    gq.world.launch(app.main)

    # Timeline of contention and remedies.
    sim.call_at(congestion_at, dep.contention.start)
    hog = CpuHog(sender)
    sim.call_at(hog_at, hog.start)

    def make_net_reservation():
        gq.agent.reserve_flows(0, 1, target_rate * 1.06)

    sim.call_at(net_reserve_at, make_net_reservation)

    cpu_reservation = gq.gara.reserve(
        CpuReservationSpec(cpu, 0.9), start=cpu_reserve_at
    )

    def bind_when_task_exists():
        while app._cpu_task is None:
            yield sim.timeout(0.05)
        gq.gara.bind(cpu_reservation, app._cpu_task)

    sim.process(bind_when_task_exists(), name="fig9-binder")
    sim.run(until=duration + 20.0)

    times, rates = app.delivered.rate_series(bin_seconds, 0.0, duration)
    rates_kbps = rates * 8.0 / 1e3

    def phase_mean(t0, t1):
        mask = (times >= t0) & (times < t1)
        return float(np.mean(rates_kbps[mask])) if mask.any() else 0.0

    result = ExperimentResult(
        experiment="fig9",
        description="35 Mb/s visualization: congestion, net reservation, "
        "CPU contention, CPU reservation",
        headers=["time_s", "bandwidth_kbps"],
        rows=[[float(t), float(r)] for t, r in zip(times, rates_kbps)],
        series={"bandwidth": (times, rates_kbps)},
        extra={
            "target_kbps": target_rate / 1e3,
            "phase1_clean_kbps": phase_mean(1.0, congestion_at),
            "phase2_congested_kbps": phase_mean(
                congestion_at + 0.5, net_reserve_at
            ),
            "phase3_net_reserved_kbps": phase_mean(
                net_reserve_at + 1.0, hog_at
            ),
            "phase4_cpu_contended_kbps": phase_mean(
                hog_at + 0.5, cpu_reserve_at
            ),
            "phase5_both_reserved_kbps": phase_mean(
                cpu_reserve_at + 1.0, duration
            ),
        },
    )
    return result
