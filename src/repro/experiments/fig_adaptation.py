"""Static vs adaptive QoS under a load surge and broker faults.

The paper's §5 adaptation story, measured: rank 0 streams fixed-rate
frames to rank 1 with a premium reservation deliberately sized at half
the stream's rate. Mid-run a UDP surge overwhelms the best-effort
class (where the unreserved half of the stream rides), and a
:class:`~repro.faults.ChaosSchedule` crashes and restarts the
bandwidth broker in the middle of the surge.

Two flavors run the identical timeline:

* ``static`` — the undersized reservation is left alone; an
  :class:`~repro.slo.SloMonitor` only *watches* the SLO.
* ``adaptive`` — an :class:`~repro.slo.AdaptationController` closes
  the loop: the monitor's K-of-N violation vote triggers upward
  renegotiation through ``gara.modify``, the broker outage is ridden
  out with backoff retries (never cancel-and-reacquire — that would
  double-book against journal replay), and the cooldown bounds flaps.

The interesting columns: SLO-compliance fraction, violation-seconds,
and flap count against the provable ``1 + floor(T/cooldown)`` bound.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from ..apps import UdpTrafficGenerator
from ..faults import ChaosSchedule
from ..mpi import Communicator
from ..net import mbps
from ..slo import AdaptationController, SloMonitor, SloSpec
from .common import ExperimentResult, build_deployment

__all__ = [
    "run",
    "measure_cell",
    "plan_cells",
    "FLAVORS",
    "APP_RATE_BPS",
    "RESERVE_FACTOR",
    "COOLDOWN",
]

FLAVORS = ("static", "adaptive")

#: The application stream and its deliberately undersized reservation.
APP_RATE_BPS = mbps(4.0)
FPS = 20.0
RESERVE_FACTOR = 0.5

#: SLO: the stream must keep near its rate with interactive latency.
P95_LATENCY_S = 0.120
GOODPUT_FLOOR_BPS = 0.8 * APP_RATE_BPS

#: Timeline (seconds): surge begins, broker crashes and restarts
#: while the adaptive flavor is still climbing (the monitor's K-of-N
#: vote trips around t=2-3, so the outage interrupts renegotiation
#: mid-flight and the backoff retries must carry it across restart),
#: surge ends ``SURGE_TAIL`` before the stream does.
SURGE_START = 4.0
CRASH_AT = 3.0
RESTART_AT = 6.0
SURGE_TAIL = 2.0
SURGE_RATE_BPS = mbps(40.0)

#: Controller tuning shared with the documented flap bound.
COOLDOWN = 3.0
UPGRADE_INTERVAL = 2.0
BOOST_FACTOR = 1.6


class _MonitoredStream:
    """Rank 0 streams timestamped frames; rank 1 feeds the monitor.

    Each frame's payload is its send time, so the receiver measures
    end-to-end latency without any clock plumbing; delivered bytes
    feed the goodput dimension.
    """

    def __init__(
        self,
        monitor: SloMonitor,
        frame_bytes: int,
        fps: float,
        duration: float,
        tag: int = 88,
    ) -> None:
        self.monitor = monitor
        self.frame_bytes = frame_bytes
        self.fps = fps
        self.duration = duration
        self.tag = tag
        self.frames_sent = 0
        self.frames_received = 0
        self.bytes_received = 0

    def main(self, comm: Communicator):
        if comm.rank == 0:
            yield from self._sender(comm)
        elif comm.rank == 1:
            yield from self._receiver(comm)

    def _sender(self, comm: Communicator):
        sim = comm.sim
        interval = 1.0 / self.fps
        n_frames = int(self.duration * self.fps)
        next_deadline = sim.now
        for _ in range(n_frames):
            yield comm.send(
                1, nbytes=self.frame_bytes, tag=self.tag, data=sim.now
            )
            self.frames_sent += 1
            self.monitor.record_sent(1)
            next_deadline += interval
            if sim.now < next_deadline:
                yield sim.timeout(next_deadline - sim.now)
        yield comm.send(1, nbytes=1, tag=self.tag + 1)  # end-of-stream

    def _receiver(self, comm: Communicator):
        sim = comm.sim
        stop = comm.irecv(source=0, tag=self.tag + 1)
        while True:
            frame = comm.irecv(source=0, tag=self.tag)
            yield sim.any_of([stop.wait(), frame.wait()])
            if frame.completed:
                sent_at, status = frame.wait().value
                self.monitor.record_latency(sim.now - sent_at)
                self.monitor.record_delivered(status.nbytes)
                self.frames_received += 1
                self.bytes_received += status.nbytes
                continue
            if stop.completed:
                return


def measure_cell(
    flavor: str,
    seed: int = 0,
    duration: float = 14.0,
) -> Dict[str, float]:
    """One flavor over the full surge + broker-fault timeline."""
    if flavor not in FLAVORS:
        raise ValueError(f"unknown flavor {flavor!r} (one of {FLAVORS})")
    dep = build_deployment(
        seed=seed,
        backbone_bandwidth=mbps(30.0),
        contention_rate=None,
        # Journaled broker: the crash/restart must recover reservations
        # rather than silently dropping them, or the static flavor's
        # grant would vanish mid-run through no fault of its own.
        resilient=True,
    )
    sim, gq, testbed = dep.sim, dep.gq, dep.testbed

    spec = SloSpec(
        p95_latency_s=P95_LATENCY_S,
        goodput_floor_bps=GOODPUT_FLOOR_BPS,
        name=f"stream-{flavor}",
    )
    monitor = SloMonitor(
        sim, spec, window=1.0, n_windows=4, k_violations=2, clear_windows=2
    )

    desired = APP_RATE_BPS * RESERVE_FACTOR
    controller = None
    if flavor == "adaptive":
        controller = AdaptationController(
            gq.agent, 0, 1, desired,
            upgrade_interval=UPGRADE_INTERVAL,
            monitor=monitor,
            boost_factor=BOOST_FACTOR,
            max_bps=2.0 * APP_RATE_BPS,
            cooldown=COOLDOWN,
        )
    else:
        gq.agent.reserve_flows(0, 1, desired)
        monitor.start()

    surge = UdpTrafficGenerator(
        testbed.competitive_src, testbed.competitive_dst, rate=SURGE_RATE_BPS
    )
    surge_end = duration - SURGE_TAIL
    sim.call_at(SURGE_START, surge.start)
    sim.call_at(surge_end, surge.stop)

    chaos = ChaosSchedule(sim, testbed.network)
    chaos.at(CRASH_AT).crash(gq.broker)
    chaos.at(RESTART_AT).restart(gq.broker)

    frame_bytes = int(APP_RATE_BPS / FPS / 8.0)
    app = _MonitoredStream(monitor, frame_bytes, FPS, duration)
    gq.world.launch(app.main)
    # Judge only while the stream is offered: once the sender stops,
    # empty windows would read as goodput violations in both flavors.
    sim.call_at(duration, monitor.stop)
    sim.run(until=duration + 3.0)

    cell = {
        "compliance": monitor.compliance_fraction,
        "violation_seconds": monitor.violation_seconds,
        "episodes": monitor.episodes,
        "flaps": controller.flaps if controller else 0,
        "flap_bound": (
            controller.flap_bound(duration + 3.0)
            if controller
            else 1 + int((duration + 3.0) / COOLDOWN)
        ),
        "renegotiations": controller.renegotiations if controller else 0,
        "degradations": controller.degradations if controller else 0,
        "restores": controller.restores if controller else 0,
        "broker_retries": controller.broker_retries if controller else 0,
        "granted_kbps": (
            controller.granted_bps / 1e3 if controller
            else desired / 1e3
        ),
        "throughput_kbps": app.bytes_received * 8.0 / duration / 1e3,
        "frames_received": app.frames_received,
    }
    if controller is not None:
        controller.close()
    return cell


def _resolve_duration(quick: bool, duration: Optional[float]) -> float:
    if duration is not None:
        return duration
    return 20.0 if quick else 40.0


def plan_cells(
    quick: bool = False,
    duration: Optional[float] = None,
) -> List[Tuple[str, dict]]:
    """The two flavors as independent jobs, keyed by flavor name.

    Each cell builds a fresh deployment from the seed, so the flavors
    parallelise without changing any value; :func:`run`'s
    ``cell_results`` merges them through the serial assembly path.
    """
    resolved = _resolve_duration(quick, duration)
    return [
        (flavor, dict(flavor=flavor, duration=resolved))
        for flavor in FLAVORS
    ]


def run(
    quick: bool = False,
    seed: int = 0,
    duration: Optional[float] = None,
    cell_results: Optional[Dict[str, Dict[str, float]]] = None,
) -> ExperimentResult:
    """Compare the flavors on SLO compliance under identical chaos.

    ``cell_results`` optionally supplies precomputed flavor
    measurements (keyed as in :func:`plan_cells`) so the parallel
    runner merges through the same assembly code as a serial run.
    """
    resolved = _resolve_duration(quick, duration)
    result = ExperimentResult(
        experiment="fig_adaptation",
        description=(
            "Static vs adaptive QoS: SLO compliance under a "
            f"{SURGE_RATE_BPS / 1e6:.0f} Mb/s surge with a broker "
            "crash/restart mid-renegotiation"
        ),
        headers=[
            "flavor",
            "compliance",
            "violation_seconds",
            "episodes",
            "flaps",
            "flap_bound",
            "renegotiations",
            "degradations",
            "restores",
            "broker_retries",
            "granted_kbps",
            "throughput_kbps",
        ],
    )
    cells = {}
    for flavor in FLAVORS:
        if cell_results is not None:
            cell = cell_results[flavor]
        else:
            cell = measure_cell(flavor, seed=seed, duration=resolved)
        cells[flavor] = cell
        result.rows.append([
            flavor,
            cell["compliance"],
            cell["violation_seconds"],
            cell["episodes"],
            cell["flaps"],
            cell["flap_bound"],
            cell["renegotiations"],
            cell["degradations"],
            cell["restores"],
            cell["broker_retries"],
            cell["granted_kbps"],
            cell["throughput_kbps"],
        ])
    result.extra["static_compliance"] = cells["static"]["compliance"]
    result.extra["adaptive_compliance"] = cells["adaptive"]["compliance"]
    result.extra["compliance_gain"] = (
        cells["adaptive"]["compliance"] - cells["static"]["compliance"]
    )
    result.extra["adaptive_within_flap_bound"] = bool(
        cells["adaptive"]["flaps"] <= cells["adaptive"]["flap_bound"]
    )
    return result
