"""Shared experiment infrastructure: GARNET deployments and run helpers.

Every experiment builds a fresh :class:`GarnetDeployment` per data
point, so points are statistically independent and individually
reproducible from their seed.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

import numpy as np

from ..apps import UdpTrafficGenerator
from ..core import MpichGQ
from ..kernel import Simulator
from ..net import GarnetTestbed, garnet, mbps
from ..transport.tcp import TcpConfig
from .. import telemetry as _telemetry

__all__ = [
    "GarnetDeployment",
    "build_deployment",
    "ExperimentResult",
]


@dataclass
class GarnetDeployment:
    """A ready-to-run GARNET testbed with MPICH-GQ deployed."""

    sim: Simulator
    testbed: GarnetTestbed
    gq: MpichGQ
    contention: Optional[UdpTrafficGenerator] = None


def build_deployment(
    seed: int = 0,
    backbone_bandwidth: float = mbps(30.0),
    access_bandwidth: float = mbps(100.0),
    backbone_delay: float = 0.5e-3,
    contention_rate: Optional[float] = None,
    ef_share: float = 0.7,
    eager_threshold: int = 64 * 1024,
    tcp_config: Optional[TcpConfig] = None,
    bucket_divisor: Optional[float] = None,
    start_contention: bool = True,
    aqm=None,
    resilient: bool = False,
    mode: str = "packet",
) -> GarnetDeployment:
    """GARNET + MPICH-GQ (ranks 0/1 on the premium hosts) + optional
    UDP contention between the competitive hosts. ``aqm`` optionally
    switches the domain from the paper's drop-tail configuration to a
    WRED / WRED+ECN one (see :class:`repro.aqm.AqmPolicy`);
    ``resilient`` attaches the broker's write-ahead journal so
    crash/restart experiments recover state instead of losing it.
    ``mode`` selects the datapath fidelity (``"packet"``, ``"batch"``,
    ``"hybrid"`` — see :class:`repro.kernel.Simulator`); in hybrid mode
    the UDP contention generator advances as a fluid rate envelope."""
    sim = Simulator(seed=seed, mode=mode)
    testbed = garnet(
        sim,
        backbone_bandwidth=backbone_bandwidth,
        access_bandwidth=access_bandwidth,
        backbone_delay=backbone_delay,
    )
    gq = MpichGQ.on_garnet(
        testbed,
        ef_share=ef_share,
        eager_threshold=eager_threshold,
        tcp_config=tcp_config,
        bucket_divisor=bucket_divisor,
        aqm=aqm,
        resilient=resilient,
    )
    contention = None
    if contention_rate:
        contention = UdpTrafficGenerator(
            testbed.competitive_src,
            testbed.competitive_dst,
            rate=contention_rate,
        )
        if start_contention:
            contention.start()
    deployment = GarnetDeployment(sim, testbed, gq, contention)
    # If a telemetry session is active (runner --out, benchmarks with
    # --metrics-out), attach it so the registry scrapes this deployment
    # at snapshot time. No-op — and zero per-event cost — otherwise.
    tel = _telemetry.active()
    if tel is not None:
        tel.attach(sim)
        tel.observe(deployment)
    return deployment


@dataclass
class ExperimentResult:
    """Uniform container the runner and benchmarks consume."""

    experiment: str
    description: str
    #: Tabular data: header row + value rows.
    headers: List[str] = field(default_factory=list)
    rows: List[List[Any]] = field(default_factory=list)
    #: Named (x, y) series for trace figures.
    series: Dict[str, Tuple[np.ndarray, np.ndarray]] = field(
        default_factory=dict
    )
    #: Free-form extras (per-experiment summary stats).
    extra: Dict[str, Any] = field(default_factory=dict)

    def row_dicts(self) -> List[Dict[str, Any]]:
        return [dict(zip(self.headers, row)) for row in self.rows]
