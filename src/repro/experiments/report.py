"""Plain-text rendering of experiment results: tables and ASCII plots."""

from __future__ import annotations

from typing import Any, Dict, List, Sequence, Tuple

import numpy as np

__all__ = ["format_table", "ascii_plot", "render_result"]


def _fmt(value: Any) -> str:
    if isinstance(value, float):
        if value != value:  # nan
            return "-"
        if abs(value) >= 100:
            return f"{value:.0f}"
        return f"{value:.2f}"
    return str(value)


def format_table(headers: Sequence[str], rows: Sequence[Sequence[Any]]) -> str:
    """Fixed-width table with a header rule."""
    cells = [[_fmt(v) for v in row] for row in rows]
    widths = [
        max(len(str(h)), *(len(r[i]) for r in cells)) if cells else len(str(h))
        for i, h in enumerate(headers)
    ]
    def line(values):
        return "  ".join(str(v).rjust(w) for v, w in zip(values, widths))

    out = [line(headers), line("-" * w for w in widths)]
    out.extend(line(r) for r in cells)
    return "\n".join(out)


def ascii_plot(
    series: Dict[str, Tuple[np.ndarray, np.ndarray]],
    width: int = 72,
    height: int = 16,
    x_label: str = "x",
    y_label: str = "y",
) -> str:
    """Multi-series scatter/line plot in ASCII (one glyph per series)."""
    glyphs = "*o+x#@%&"
    populated = {
        name: (np.asarray(x, dtype=float), np.asarray(y, dtype=float))
        for name, (x, y) in series.items()
        if len(x) > 0
    }
    if not populated:
        return "(no data)"
    all_x = np.concatenate([x for x, _ in populated.values()])
    all_y = np.concatenate([y for _, y in populated.values()])
    x_min, x_max = float(all_x.min()), float(all_x.max())
    y_min, y_max = float(min(all_y.min(), 0.0)), float(all_y.max())
    if x_max == x_min:
        x_max = x_min + 1.0
    if y_max == y_min:
        y_max = y_min + 1.0
    grid = [[" "] * width for _ in range(height)]
    for (name, (x, y)), glyph in zip(populated.items(), glyphs):
        cols = ((x - x_min) / (x_max - x_min) * (width - 1)).round().astype(int)
        rows = ((y - y_min) / (y_max - y_min) * (height - 1)).round().astype(int)
        for c, r in zip(cols, rows):
            grid[height - 1 - r][c] = glyph
    lines = [f"{y_label} (max {_fmt(y_max)})"]
    lines.extend("|" + "".join(row) for row in grid)
    lines.append("+" + "-" * width)
    lines.append(
        f" {x_label}: {_fmt(x_min)} .. {_fmt(x_max)}   legend: "
        + ", ".join(
            f"{g}={n}" for (n, _), g in zip(populated.items(), glyphs)
        )
    )
    return "\n".join(lines)


def render_result(result) -> str:
    """Full plain-text report for one ExperimentResult."""
    parts = [f"=== {result.experiment}: {result.description} ==="]
    if result.rows:
        parts.append(format_table(result.headers, result.rows))
    if result.series:
        parts.append(ascii_plot(result.series))
    if result.extra:
        parts.append(
            "\n".join(f"  {k}: {_fmt(v)}" for k, v in result.extra.items())
        )
    return "\n\n".join(parts) + "\n"
