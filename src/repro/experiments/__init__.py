"""Regenerators for every table and figure of the paper's evaluation.

Modules map one-to-one onto the paper (see DESIGN.md's experiment
index); each exposes ``run(quick=False, seed=0) -> ExperimentResult``.
"""

from .common import ExperimentResult, GarnetDeployment, build_deployment

__all__ = ["ExperimentResult", "GarnetDeployment", "build_deployment"]
