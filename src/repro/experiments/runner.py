"""Command-line entry point regenerating every paper table and figure.

Usage::

    mpichgq-experiments [--quick] [--seed N] [--out DIR] [--parallel N]
                        [exp ...]

where ``exp`` is any of: fig1 fig5 fig6 fig7 table1 table1_aqm
table1_l4s fig8 fig9 fig_adaptation garnet_xl (default: all, in paper
order). ``--quick`` runs the scaled-down variants the
benchmark suite uses. ``--parallel N`` fans the work out over N worker
processes (see :mod:`repro.experiments.parallel`); results are
identical to a serial run except for ``elapsed_seconds``. ``--shards
N`` partitions a single simulation across N PDES workers (see
:mod:`repro.pdes`) for the experiments that support it; merged results
are byte-identical to the 1-shard run.
"""

from __future__ import annotations

import argparse
import gc
import json
import sys
import time
from pathlib import Path

from .. import telemetry
from . import (
    fig1_tcp_reservation,
    fig5_pingpong,
    fig6_visualization,
    fig7_burstiness_traces,
    fig8_cpu_reservation,
    fig9_combined,
    fig_adaptation,
    garnet_xl,
    table1_aqm,
    table1_burstiness,
    table1_l4s,
)
from .report import render_result

__all__ = ["main", "EXPERIMENTS", "make_telemetry"]

EXPERIMENTS = {
    "fig1": fig1_tcp_reservation.run,
    "fig5": fig5_pingpong.run,
    "fig6": fig6_visualization.run,
    "fig7": fig7_burstiness_traces.run,
    "table1": table1_burstiness.run,
    "table1_aqm": table1_aqm.run,
    "table1_l4s": table1_l4s.run,
    "fig8": fig8_cpu_reservation.run,
    "fig9": fig9_combined.run,
    "fig_adaptation": fig_adaptation.run,
    "garnet_xl": garnet_xl.run,
}


def make_telemetry() -> "telemetry.Telemetry":
    """The runner's standard collection session.

    Excludes the per-packet event types: a full fig run emits hundreds
    of thousands of them, swamping the dump with data the registry
    already summarises as byte and conformance counters. Drops,
    retransmits, grants, and MPI-message events all stay.
    """
    return telemetry.Telemetry(
        trace=telemetry.FlowTrace(
            exclude=(
                ("net", "tx"),
                ("tcp", "segment"),
                ("diffserv", "mark"),
            ),
            limit=200_000,
        )
    )


def _payload(result, quick: bool, seed: int, elapsed: float) -> dict:
    return {
        "experiment": result.experiment,
        "description": result.description,
        "headers": result.headers,
        "rows": result.rows,
        "series": {
            k: [list(map(float, x)), list(map(float, y))]
            for k, (x, y) in result.series.items()
        },
        "extra": {
            k: (float(v) if isinstance(v, (int, float)) else v)
            for k, v in result.extra.items()
        },
        "quick": quick,
        "seed": seed,
        "elapsed_seconds": elapsed,
    }


def _report(name, result, elapsed, summary, args) -> None:
    """Print one experiment's result and write its JSON dump."""
    print(render_result(result))
    print(f"[{name} completed in {elapsed:.1f}s]\n")
    if summary is not None:
        n_metrics, n_spans = summary
        print(f"[telemetry: {n_metrics} metrics, {n_spans} span events]\n")
    if args.out is not None:
        args.out.mkdir(parents=True, exist_ok=True)
        path = args.out / f"{name}.json"
        path.write_text(
            json.dumps(_payload(result, args.quick, args.seed, elapsed), indent=2)
        )
        print(f"[wrote {path}]\n")


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="mpichgq-experiments",
        description="Regenerate the MPICH-GQ paper's tables and figures.",
    )
    parser.add_argument(
        "experiments",
        nargs="*",
        metavar="exp",
        help=f"subset to run (default: all); any of: "
             f"{' '.join(EXPERIMENTS)}",
    )
    parser.add_argument("--quick", action="store_true",
                        help="scaled-down parameters")
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument(
        "--mode", choices=("packet", "batch", "hybrid"), default="packet",
        help="datapath fidelity mode for experiments that support it "
             "(packet: byte-identical per-packet chain; batch: batched "
             "egress; hybrid: batched egress + fluid background traffic)",
    )
    parser.add_argument("--out", type=Path, default=None,
                        help="directory for JSON result dumps")
    parser.add_argument(
        "--parallel", type=int, default=1, metavar="N",
        help="run experiments over N worker processes (default: serial)",
    )
    parser.add_argument(
        "--shards", type=int, default=1, metavar="N",
        help="partition each supporting experiment's single simulation "
             "across N PDES workers (repro.pdes); merged output is "
             "byte-identical to --shards 1",
    )
    telemetry_group = parser.add_mutually_exclusive_group()
    telemetry_group.add_argument(
        "--telemetry", dest="telemetry", action="store_true", default=None,
        help="collect metrics/spans even without --out",
    )
    telemetry_group.add_argument(
        "--no-telemetry", dest="telemetry", action="store_false",
        help="skip metrics collection even with --out",
    )
    args = parser.parse_args(argv)

    # Validate experiment names explicitly. (The old
    # ``choices=[[], *EXPERIMENTS.keys()]`` hack — needed to let the
    # empty nargs="*" default pass validation — produced the baffling
    # error ``invalid choice: 'fig2' (choose from [], 'fig1', ...)``.)
    unknown = [name for name in args.experiments if name not in EXPERIMENTS]
    if unknown:
        parser.error(
            f"unknown experiment(s): {', '.join(unknown)} "
            f"(valid names: {', '.join(EXPERIMENTS)})"
        )
    if args.parallel < 1:
        parser.error(f"--parallel must be >= 1, got {args.parallel}")
    if args.shards < 1:
        parser.error(f"--shards must be >= 1, got {args.shards}")

    selected_early = args.experiments or list(EXPERIMENTS)
    if args.shards > 1:
        import inspect

        if args.parallel > 1:
            parser.error(
                "--shards partitions one simulation across processes and "
                "--parallel fans whole experiments out; pick one"
            )
        unsupported = [
            name for name in selected_early
            if "shards" not in inspect.signature(EXPERIMENTS[name]).parameters
        ]
        if unsupported:
            parser.error(
                f"--shards is not supported by: {', '.join(unsupported)} "
                f"(only PDES-backed experiments take a shards parameter)"
            )
    if args.mode != "packet":
        import inspect

        if args.parallel > 1:
            parser.error("--mode batch/hybrid runs serially; drop --parallel")

        unsupported = [
            name for name in selected_early
            if "mode" not in inspect.signature(EXPERIMENTS[name]).parameters
        ]
        if unsupported:
            parser.error(
                f"--mode {args.mode} is not supported by: "
                f"{', '.join(unsupported)} (only experiments taking a "
                f"mode parameter run in non-packet modes)"
            )

    # Telemetry is on whenever results are being written out, unless
    # explicitly disabled; --telemetry forces it on for console runs.
    collect_metrics = (
        args.telemetry if args.telemetry is not None else args.out is not None
    )

    selected = args.experiments or list(EXPERIMENTS)

    if args.parallel > 1:
        from .parallel import run_parallel

        results = run_parallel(
            selected,
            quick=args.quick,
            seed=args.seed,
            processes=args.parallel,
            collect=collect_metrics,
            out=args.out,
        )
        for name, result, elapsed, summary in results:
            _report(name, result, elapsed, summary, args)
        return 0

    for name in selected:
        tel = None
        if collect_metrics:
            tel = make_telemetry()
            telemetry.install(tel)
        started = time.time()
        # A simulation run allocates at a steady rate and drops whole
        # object graphs at once; generational GC only adds pauses, so
        # it is suspended for the duration of the experiment.
        gc.disable()
        try:
            kwargs = {"quick": args.quick, "seed": args.seed}
            if args.mode != "packet":
                kwargs["mode"] = args.mode
            if args.shards > 1:
                kwargs["shards"] = args.shards
            result = EXPERIMENTS[name](**kwargs)
        finally:
            gc.enable()
            gc.collect()
            if tel is not None:
                telemetry.uninstall()
        elapsed = time.time() - started
        summary = None
        if tel is not None:
            tel.collect()
            snap = tel.snapshot()
            summary = (len(snap["metrics"]), snap["span_count"])
        _report(name, result, elapsed, summary, args)
        if tel is not None and args.out is not None:
            meta = {"experiment": name, "quick": args.quick,
                    "seed": args.seed}
            mpath = args.out / f"{name}.metrics.json"
            telemetry.export_json(tel, mpath, meta=meta)
            cpath = args.out / f"{name}.metrics.csv"
            telemetry.export_csv(tel, cpath)
            print(f"[wrote {mpath} and {cpath}]\n")
    return 0


if __name__ == "__main__":
    sys.exit(main())
