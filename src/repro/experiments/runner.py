"""Command-line entry point regenerating every paper table and figure.

Usage::

    mpichgq-experiments [--quick] [--seed N] [--out DIR] [exp ...]

where ``exp`` is any of: fig1 fig5 fig6 fig7 table1 fig8 fig9 (default:
all, in paper order). ``--quick`` runs the scaled-down variants the
benchmark suite uses.
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path

from . import (
    fig1_tcp_reservation,
    fig5_pingpong,
    fig6_visualization,
    fig7_burstiness_traces,
    fig8_cpu_reservation,
    fig9_combined,
    table1_burstiness,
)
from .report import render_result

__all__ = ["main", "EXPERIMENTS"]

EXPERIMENTS = {
    "fig1": fig1_tcp_reservation.run,
    "fig5": fig5_pingpong.run,
    "fig6": fig6_visualization.run,
    "fig7": fig7_burstiness_traces.run,
    "table1": table1_burstiness.run,
    "fig8": fig8_cpu_reservation.run,
    "fig9": fig9_combined.run,
}


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="mpichgq-experiments",
        description="Regenerate the MPICH-GQ paper's tables and figures.",
    )
    parser.add_argument(
        "experiments",
        nargs="*",
        choices=[[], *EXPERIMENTS.keys()],
        help="subset to run (default: all)",
    )
    parser.add_argument("--quick", action="store_true",
                        help="scaled-down parameters")
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--out", type=Path, default=None,
                        help="directory for JSON result dumps")
    args = parser.parse_args(argv)

    selected = args.experiments or list(EXPERIMENTS)
    for name in selected:
        started = time.time()
        result = EXPERIMENTS[name](quick=args.quick, seed=args.seed)
        elapsed = time.time() - started
        print(render_result(result))
        print(f"[{name} completed in {elapsed:.1f}s]\n")
        if args.out is not None:
            args.out.mkdir(parents=True, exist_ok=True)
            payload = {
                "experiment": result.experiment,
                "description": result.description,
                "headers": result.headers,
                "rows": result.rows,
                "series": {
                    k: [list(map(float, x)), list(map(float, y))]
                    for k, (x, y) in result.series.items()
                },
                "extra": {
                    k: (float(v) if isinstance(v, (int, float)) else v)
                    for k, v in result.extra.items()
                },
                "quick": args.quick,
                "seed": args.seed,
                "elapsed_seconds": elapsed,
            }
            path = args.out / f"{name}.json"
            path.write_text(json.dumps(payload, indent=2))
            print(f"[wrote {path}]\n")
    return 0


if __name__ == "__main__":
    sys.exit(main())
