"""Unit helpers and conventions.

Throughout :mod:`repro`: time is in seconds, bandwidth in bits per
second, sizes in bytes. The paper quotes bandwidths in Kb/s (kilobits
per second); :func:`kbps` converts those literals.
"""

from __future__ import annotations

__all__ = ["kbps", "mbps", "to_kbps", "to_mbps", "KB", "MB", "transmission_time"]

#: Bytes per kilobyte / megabyte (powers of two, as the paper's "KB").
KB = 1024
MB = 1024 * 1024


def kbps(value: float) -> float:
    """Kilobits/second -> bits/second."""
    return value * 1e3


def mbps(value: float) -> float:
    """Megabits/second -> bits/second."""
    return value * 1e6


def to_kbps(bits_per_second: float) -> float:
    """Bits/second -> kilobits/second."""
    return bits_per_second / 1e3


def to_mbps(bits_per_second: float) -> float:
    """Bits/second -> megabits/second."""
    return bits_per_second / 1e6


def transmission_time(size_bytes: float, bandwidth_bps: float) -> float:
    """Seconds to serialise ``size_bytes`` onto a ``bandwidth_bps`` link."""
    if bandwidth_bps <= 0:
        raise ValueError("bandwidth must be positive")
    return size_bytes * 8.0 / bandwidth_bps
