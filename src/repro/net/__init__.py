"""Network substrate: packets, queues, links, nodes, topologies."""

from .packet import (
    DEFAULT_TTL,
    ECN_CE,
    ECN_ECT0,
    ECN_ECT1,
    ECN_NOT_ECT,
    FlowKey,
    IP_HEADER_BYTES,
    Packet,
    PROTO_TCP,
    PROTO_UDP,
    TCP_HEADER_BYTES,
    UDP_HEADER_BYTES,
)
from .grid import GridFlow, GridRouter, GridTestbed, garnet_grid, plan_flows
from .node import Host, Interface, Node, Router
from .queues import DropTailQueue, Qdisc
from .topology import (
    GarnetTestbed,
    LinkRecord,
    Network,
    RouteError,
    WideAreaTestbed,
    garnet,
    garnet_wide,
    partition_topology,
)
from .trace import PacketTracer, TraceRecord
from .units import KB, MB, kbps, mbps, to_kbps, to_mbps, transmission_time

__all__ = [
    "DEFAULT_TTL",
    "DropTailQueue",
    "ECN_CE",
    "ECN_ECT0",
    "ECN_ECT1",
    "ECN_NOT_ECT",
    "FlowKey",
    "GarnetTestbed",
    "GridFlow",
    "GridRouter",
    "GridTestbed",
    "Host",
    "IP_HEADER_BYTES",
    "Interface",
    "KB",
    "LinkRecord",
    "MB",
    "Network",
    "Node",
    "PROTO_TCP",
    "PROTO_UDP",
    "Packet",
    "PacketTracer",
    "Qdisc",
    "RouteError",
    "Router",
    "TCP_HEADER_BYTES",
    "TraceRecord",
    "UDP_HEADER_BYTES",
    "WideAreaTestbed",
    "garnet",
    "garnet_grid",
    "garnet_wide",
    "kbps",
    "partition_topology",
    "plan_flows",
    "mbps",
    "to_kbps",
    "to_mbps",
    "transmission_time",
]
