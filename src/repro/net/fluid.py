"""Fluid background traffic: rate envelopes instead of packets.

Hybrid mode (``Simulator(mode="hybrid")``) spends packet-level fidelity
only where the paper's QoS effects live — the premium/AF foreground
flows and their per-hop marking/policing decisions. Background
aggregates (the §5.2 UDP blaster, bulk best-effort) advance
*analytically*: a :class:`FluidAggregate` is a piecewise-constant rate
envelope pushed along its routed path of :class:`FluidChannel`\\ s, each
of which integrates the classic fluid backlog law over one sync tick::

    backlog += in_bytes - leftover_capacity        (clamped at 0)
    leftover_capacity = line_rate*dt - foreground_bytes - burst_served

with overflow above the band queue's capacity counted as drops, exactly
where drop-tail would drop the corresponding packets. Foreground bytes
are observed from the interface's ``tx_bytes`` delta, so the envelope
sees precisely the capacity the packet datapath left unused; in the
other direction, a foreground burst that shares the fluid's band (or a
lower one) is delayed by the backlog standing ahead of it
(:meth:`FluidChannel.on_foreground_burst`), which is how the envelope
occupies queue depth without materialising packets.

Every datagram-equivalent the envelope moves end-to-end credits the
per-packet event chain it replaced (``2*hops + 2`` kernel events: one
enqueue/tx-done pair and one arrival/receive pair per hop — measured
against packet mode on the GARNET path) to
``sim.events_credited``, so ``sim.effective_events`` stays comparable
across modes.

Validity: the fluid approximation holds for high-rate, long-lived,
inelastic aggregates whose per-packet fate is statistically uniform
(CBR/on-off UDP). It is *not* valid for closed-loop traffic (TCP
reacts to individual drops) or for flows whose per-packet marks matter
(AQM-managed AF) — those stay packet-level. See INTERNALS.md,
"Batched egress & hybrid fidelity".
"""

from __future__ import annotations

from typing import List, Optional

from ..diffserv.dscp import CLASS_BE, service_class_of

__all__ = ["FluidAggregate", "FluidChannel", "FluidEngine", "SYNC_INTERVAL"]

#: Default sync-tick period in seconds. 5 ms keeps the integration
#: error of a CBR envelope far below the 1% equivalence budget while
#: costing ~200 kernel events per simulated second.
SYNC_INTERVAL = 5e-3

#: Safety bound when walking route tables to resolve a path.
_MAX_HOPS = 64


def route_interfaces(src, dst) -> list:
    """The egress interfaces a packet from ``src`` to ``dst`` crosses,
    resolved by walking the nodes' routing tables (host default
    interface when no explicit route)."""
    ifaces = []
    node = src
    for _ in range(_MAX_HOPS):
        if node.addr == dst.addr:
            return ifaces
        egress = node.routes.get(dst.addr)
        if egress is None:
            if not node.interfaces:
                raise ValueError(f"{node.name} has no route to {dst.name}")
            egress = node.interfaces[0]
        ifaces.append(egress)
        if egress.peer is None:
            raise ValueError(f"{egress!r} is not connected")
        node = egress.peer.node
    raise ValueError(f"no loop-free path from {src.name} to {dst.name}")


def _band_capacity_bytes(qdisc, klass: int, packet_bytes: int) -> float:
    """Byte capacity of the queue (band) the aggregate's class maps to,
    approximating packet limits at the aggregate's packet size."""
    band = qdisc
    queues = getattr(qdisc, "_queues", None)
    if queues is not None:  # PriorityQdisc-style banded discipline
        band = queues[klass]
    limit_bytes = getattr(band, "limit_bytes", None)
    if limit_bytes:
        return float(limit_bytes)
    limit_packets = getattr(band, "limit_packets", None) or 100
    return float(limit_packets * packet_bytes)


class FluidChannel:
    """The fluid share of one egress interface's line and queue."""

    __slots__ = (
        "iface",
        "klass",
        "packet_bytes",
        "capacity_bytes",
        "backlog_bytes",
        "utilization",
        "fluid_sent_bytes",
        "dropped_bytes",
        "_interval_sent",
        "_last_fg_tx_bytes",
    )

    def __init__(self, iface, klass: int, packet_bytes: int) -> None:
        self.iface = iface
        self.klass = klass
        self.packet_bytes = packet_bytes
        self.capacity_bytes = _band_capacity_bytes(
            iface.qdisc, klass, packet_bytes
        )
        self.backlog_bytes = 0.0
        #: Fraction of the last tick the line spent on fluid bytes —
        #: the probability a foreground burst start finds a fluid
        #: datagram in (non-preemptible) service.
        self.utilization = 0.0
        #: Lifetime bytes the envelope put on this line.
        self.fluid_sent_bytes = 0.0
        #: Lifetime bytes dropped at this hop (queue overflow).
        self.dropped_bytes = 0.0
        # Line usage bookkeeping for one sync interval.
        self._interval_sent = 0.0
        self._last_fg_tx_bytes = iface.tx_bytes
        iface.fluid_channel = self

    def advance(self, dt: float, in_bytes: float) -> float:
        """Integrate one tick: admit ``in_bytes``, drain what the line's
        leftover capacity allows, return the bytes passed downstream."""
        iface = self.iface
        if not iface.up:
            # Dead link: everything offered or queued here is lost.
            self.dropped_bytes += in_bytes + self.backlog_bytes
            self.backlog_bytes = 0.0
            self._last_fg_tx_bytes = iface.tx_bytes
            self._interval_sent = 0.0
            return 0.0
        # Capacity the foreground left unused this interval. tx_bytes
        # only counts real packets, so fluid bytes served ahead of a
        # foreground burst are tracked separately in _interval_sent.
        fg_tx = iface.tx_bytes
        fg_bytes = fg_tx - self._last_fg_tx_bytes
        self._last_fg_tx_bytes = fg_tx
        line_bytes = dt * iface._bandwidth / 8.0
        leftover = line_bytes - fg_bytes - self._interval_sent
        self._interval_sent = 0.0
        if leftover < 0.0:
            leftover = 0.0
        queued = self.backlog_bytes + in_bytes
        out = queued if queued <= leftover else leftover
        backlog = queued - out
        if backlog > self.capacity_bytes:
            # The band queue cannot hold this much standing traffic;
            # drop-tail would have refused the excess arrivals.
            self.dropped_bytes += backlog - self.capacity_bytes
            backlog = self.capacity_bytes
        self.backlog_bytes = backlog
        self.fluid_sent_bytes += out
        self.utilization = out / line_bytes if line_bytes > 0.0 else 0.0
        return out

    def on_foreground_burst(self, now: float, batch) -> float:
        """Seconds of fluid backlog served ahead of a foreground burst.

        Strictly higher-priority foreground (a lower service-class
        index than the fluid's band) preempts the envelope but still
        pays the non-preemption residual: with probability equal to
        the fluid's line utilization a burst start finds a fluid
        datagram mid-serialization and waits a uniform fraction of its
        transmission time (the M/G/1 residual-service term — this
        µs-scale jitter measurably shifts closed-loop foreground
        equilibria, so dropping it would bias the hybrid curves).
        Same-or-lower priority waits behind the whole standing
        backlog, which is thereby put on the line (and accounted
        against this interval's capacity).
        """
        iface = self.iface
        if service_class_of(batch[0].dscp) < self.klass:
            utilization = self.utilization
            if utilization > 0.0:
                rng = iface.sim.rng
                if rng.random() < utilization:
                    return (
                        rng.random() * self.packet_bytes * iface._sec_per_byte
                    )
            return 0.0
        backlog = self.backlog_bytes
        if backlog <= 0.0:
            return 0.0
        self.backlog_bytes = 0.0
        self.fluid_sent_bytes += backlog
        self._interval_sent += backlog
        return backlog * iface._sec_per_byte


class FluidAggregate:
    """One background traffic aggregate advancing as a rate envelope."""

    __slots__ = (
        "name",
        "src",
        "dst",
        "rate",
        "packet_bytes",
        "dscp",
        "on_time",
        "off_time",
        "channels",
        "running",
        "offered_bytes",
        "delivered_bytes",
        "delivered_datagrams",
        "_phase_start",
        "_stage_bytes",
        "_datagram_residual",
        "on_offered",
        "on_delivered",
    )

    def __init__(
        self,
        src,
        dst,
        rate: float,
        packet_bytes: int,
        dscp: int = 0,
        on_time: Optional[float] = None,
        off_time: Optional[float] = None,
    ) -> None:
        if rate <= 0:
            raise ValueError("rate must be positive")
        self.name = f"fluid:{src.name}->{dst.name}"
        self.src = src
        self.dst = dst
        self.rate = rate
        self.packet_bytes = packet_bytes
        self.dscp = dscp
        self.on_time = on_time
        self.off_time = off_time
        klass = service_class_of(dscp)
        self.channels: List[FluidChannel] = [
            FluidChannel(iface, klass, packet_bytes)
            for iface in route_interfaces(src, dst)
        ]
        if not self.channels:
            raise ValueError("fluid aggregate needs at least one hop")
        self.running = False
        self.offered_bytes = 0.0
        self.delivered_bytes = 0.0
        self.delivered_datagrams = 0
        self._phase_start = 0.0
        # Bytes in flight per pipeline stage are carried by the
        # channels' backlogs; delivery fraction is tracked here.
        self._stage_bytes = 0.0
        self._datagram_residual = 0.0
        #: Optional observers ``(bytes) -> None`` — the packet-world
        #: counters (generator sent counter, sink rx tally) hook here.
        self.on_offered = None
        self.on_delivered = None

    @property
    def hops(self) -> int:
        return len(self.channels)

    @property
    def dropped_bytes(self) -> float:
        return sum(c.dropped_bytes for c in self.channels)

    def duty_fraction(self, t0: float, t1: float) -> float:
        """Fraction of [t0, t1] the on/off envelope is 'on'."""
        if self.on_time is None:
            return 1.0
        period = self.on_time + self.off_time
        total = 0.0
        t = t0
        while t < t1 - 1e-15:
            phase = (t - self._phase_start) % period
            if phase < self.on_time:
                step = min(self.on_time - phase, t1 - t)
            else:
                step = min(period - phase, t1 - t)
                t += step
                continue
            total += step
            t += step
        return total / (t1 - t0) if t1 > t0 else 0.0

    def advance(self, t0: float, t1: float):
        """Push one tick of the envelope down the path. Returns
        ``(delivered_bytes, credited_events)`` for this tick, where
        credited events count the per-packet chains packet mode would
        have processed: ``2*hops + 2`` per delivered
        datagram-equivalent and ``2*i + 1`` per datagram dropped at
        hop ``i`` (send plus two events per hop already crossed)."""
        dt = t1 - t0
        in_bytes = 0.0
        if self.running:
            in_bytes = self.rate / 8.0 * dt * self.duty_fraction(t0, t1)
            self.offered_bytes += in_bytes
            if self.on_offered is not None and in_bytes:
                self.on_offered(in_bytes)
        flow = in_bytes
        credit = 0.0
        packet_bytes = self.packet_bytes
        for i, channel in enumerate(self.channels):
            dropped_before = channel.dropped_bytes
            flow = channel.advance(dt, flow)
            dropped = channel.dropped_bytes - dropped_before
            if dropped > 0.0:
                credit += dropped / packet_bytes * (2 * i + 1)
        if flow > 0.0:
            self.delivered_bytes += flow
            credit += flow / packet_bytes * (2 * len(self.channels) + 2)
            grams = (flow + self._datagram_residual) / packet_bytes
            whole = int(grams)
            self._datagram_residual = (grams - whole) * packet_bytes
            self.delivered_datagrams += whole
            if self.on_delivered is not None:
                self.on_delivered(flow)
        return flow, credit


class FluidEngine:
    """Owns the registered aggregates and the periodic sync tick."""

    __slots__ = (
        "sim",
        "interval",
        "aggregates",
        "_ticking",
        "_last_tick",
        "_credit_residual",
        "ticks",
    )

    def __init__(self, sim, interval: float = SYNC_INTERVAL) -> None:
        if interval <= 0:
            raise ValueError("sync interval must be positive")
        self.sim = sim
        self.interval = interval
        self.aggregates: List[FluidAggregate] = []
        self._ticking = False
        self._last_tick = sim._now
        self._credit_residual = 0.0
        self.ticks = 0

    def register(self, aggregate: FluidAggregate) -> FluidAggregate:
        self.aggregates.append(aggregate)
        if not self._ticking:
            self._ticking = True
            self._last_tick = self.sim._now
            self.sim.call_fast(self.interval, self._tick, None)
        return aggregate

    def _tick(self, _arg) -> None:
        sim = self.sim
        now = sim._now
        t0 = self._last_tick
        self._last_tick = now
        self.ticks += 1
        credit = self._credit_residual
        for aggregate in self.aggregates:
            _delivered, tick_credit = aggregate.advance(t0, now)
            credit += tick_credit
        whole = int(credit)
        self._credit_residual = credit - whole
        sim.events_credited += whole
        sim.call_fast(self.interval, self._tick, None)

    def stats(self) -> dict:
        return {
            "interval": self.interval,
            "ticks": self.ticks,
            "aggregates": [
                {
                    "name": a.name,
                    "running": a.running,
                    "offered_bytes": a.offered_bytes,
                    "delivered_bytes": a.delivered_bytes,
                    "delivered_datagrams": a.delivered_datagrams,
                    "dropped_bytes": a.dropped_bytes,
                    "hops": a.hops,
                }
                for a in self.aggregates
            ],
        }
