"""Output-queue disciplines (qdiscs).

A qdisc sits on the egress side of an interface. The base discipline
here is drop-tail FIFO; the DiffServ priority-queuing discipline lives
in :mod:`repro.diffserv.phb` and implements the same interface.
"""

from __future__ import annotations

from collections import deque
from typing import Callable, Deque, List, Optional

from .packet import Packet

__all__ = ["Qdisc", "DropTailQueue"]


class Qdisc:
    """Interface all queue disciplines implement.

    Drop accounting contract: every discipline exposes ``drops`` (the
    packets it refused or discarded, *including* any internal policer
    or AQM losses) and ``total_drops``, the figure telemetry and
    experiments consume. The default ``total_drops`` simply mirrors
    ``drops``; disciplines that keep finer-grained counters (tail vs
    early vs policer) must make sure the two stay consistent — a
    packet handed to ``enqueue`` is either *eventually* dequeued, or
    counted in ``drops`` exactly once. (Dequeue-time droppers such as
    CoDel discard packets they previously accepted; the conservation
    law is therefore ``enqueued == dequeued + queued + total_drops``,
    not ``accepted == dequeued + queued``.)

    Peek contract: ``peek()`` returns, without removing it, exactly
    the packet the next ``dequeue()`` will return (or None). For
    disciplines that decide drops at dequeue time, peek must run the
    drop machinery and *commit* to its answer — the conventional
    implementation pulls the head through ``dequeue()`` and stashes it
    for the next dequeue call, with ``__len__``/``backlog_bytes``
    still counting the stashed packet. Schedulers (DRR, priority) must
    peek children through this method, never through a child's private
    backlog storage.
    """

    #: Packets this discipline dropped (tail, early, or policed).
    drops: int = 0

    def enqueue(self, packet: Packet) -> bool:
        """Queue ``packet``; return False if it was dropped instead."""
        raise NotImplementedError

    def dequeue(self) -> Optional[Packet]:
        """Remove and return the next packet to transmit, or None."""
        raise NotImplementedError

    def peek(self) -> Optional[Packet]:
        """The packet the next ``dequeue()`` will return, not removed.

        May mutate internal state (run dequeue-time drops, stash the
        head) but must stay consistent: repeated peeks return the same
        packet, and the following dequeue returns it too.
        """
        raise NotImplementedError

    def dequeue_batch(self, limit: int) -> List[Packet]:
        """Dequeue up to ``limit`` packets in one call.

        Burst contract: the returned list is *exactly* what ``limit``
        sequential :meth:`dequeue` calls would have produced with no
        interleaved enqueues or clock advances — same packets, same
        order, same drop/mark decisions, same sojourn stamps, same
        backlog afterwards. The default implementation guarantees this
        by construction (it loops ``dequeue``); disciplines may
        override it with a faster drain but must preserve the
        equivalence (property-tested over every registered discipline).
        The batched egress path (:class:`repro.net.node.Interface` in
        batch/hybrid modes) is the only kernel-side caller.
        """
        out: List[Packet] = []
        append = out.append
        dequeue = self.dequeue
        while len(out) < limit:
            packet = dequeue()
            if packet is None:
                break
            append(packet)
        return out

    def __len__(self) -> int:
        raise NotImplementedError

    @property
    def backlog_bytes(self) -> int:
        """Bytes currently queued."""
        raise NotImplementedError

    @property
    def total_drops(self) -> int:
        """All losses at this discipline — the unified figure
        telemetry and experiments use. Equals ``drops`` unless a
        subclass documents otherwise."""
        return self.drops


class DropTailQueue(Qdisc):
    """Bounded FIFO that drops arrivals when full.

    The bound may be expressed in packets, bytes, or both; a packet is
    dropped if admitting it would exceed either bound.
    """

    def __init__(
        self,
        limit_packets: Optional[int] = 1000,
        limit_bytes: Optional[int] = None,
    ) -> None:
        if limit_packets is None and limit_bytes is None:
            raise ValueError("at least one of the limits must be set")
        if limit_packets is not None and limit_packets <= 0:
            raise ValueError("limit_packets must be positive")
        if limit_bytes is not None and limit_bytes <= 0:
            raise ValueError("limit_bytes must be positive")
        self.limit_packets = limit_packets
        self.limit_bytes = limit_bytes
        # Sentinel copies keep the per-packet admission test free of
        # None checks.
        self._limit_p = limit_packets if limit_packets is not None else float("inf")
        self._limit_b = limit_bytes if limit_bytes is not None else float("inf")
        self._queue: Deque[Packet] = deque()
        self._bytes = 0
        #: Total packets dropped at this queue.
        self.drops = 0
        self.drop_bytes = 0
        #: Optional drop observer ``(packet) -> None`` — telemetry and
        #: tests hook here instead of subclassing the queue.
        self.on_drop: Optional[Callable[[Packet], None]] = None

    def _dropped(self, packet: Packet) -> bool:
        self.drops += 1
        self.drop_bytes += packet.size
        if self.on_drop is not None:
            self.on_drop(packet)
        return False

    def enqueue(self, packet: Packet) -> bool:
        if (
            len(self._queue) >= self._limit_p
            or self._bytes + packet.size > self._limit_b
        ):
            return self._dropped(packet)
        self._queue.append(packet)
        self._bytes += packet.size
        return True

    def dequeue(self) -> Optional[Packet]:
        if not self._queue:
            return None
        packet = self._queue.popleft()
        self._bytes -= packet.size
        return packet

    def peek(self) -> Optional[Packet]:
        return self._queue[0] if self._queue else None

    def dequeue_batch(self, limit: int) -> List[Packet]:
        # Inlined drain: one bounds check and one byte-sum for the
        # whole burst instead of a method dispatch per packet.
        queue = self._queue
        if not queue:
            return []
        n = min(limit, len(queue))
        popleft = queue.popleft
        out = [popleft() for _ in range(n)]
        self._bytes -= sum(p.size for p in out)
        return out

    def __len__(self) -> int:
        return len(self._queue)

    @property
    def backlog_bytes(self) -> int:
        return self._bytes
