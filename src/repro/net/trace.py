"""Packet tracing: tcpdump for the simulated network.

A :class:`PacketTracer` taps an interface's egress (post-qdisc, i.e.
what actually goes on the wire) and/or ingress, records compact
per-packet records, and answers the questions experiments keep asking:
how many bytes of which DSCP crossed this port, when, for which flow.
Figure-style analyses (e.g. the Fig 7 sequence views) can be rebuilt
from a trace without touching protocol internals.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Optional, Tuple

import numpy as np

from .node import Interface
from .packet import FlowKey, Packet

__all__ = ["PacketTracer", "TraceRecord"]


@dataclass(frozen=True)
class TraceRecord:
    """One observed packet."""

    time: float
    src: int
    dst: int
    sport: int
    dport: int
    proto: int
    dscp: int
    size: int

    @property
    def flow_key(self) -> FlowKey:
        return FlowKey(self.src, self.dst, self.sport, self.dport, self.proto)


class PacketTracer:
    """Records packets transmitted by one interface.

    The tap wraps the interface's ``_tx_done`` (egress) so only packets
    that survived the qdisc are recorded. An optional ``predicate``
    narrows the capture (e.g. one flow).
    """

    def __init__(
        self,
        iface: Interface,
        predicate: Optional[Callable[[Packet], bool]] = None,
    ) -> None:
        self.iface = iface
        self.predicate = predicate
        self.records: List[TraceRecord] = []
        self._original_tx_done = None
        self._tap = None
        self._installed = False
        self.install()

    # -- tap management ----------------------------------------------------

    def install(self) -> None:
        if self._installed:
            return
        # Capture the downstream callable at install time (it may itself
        # be another tracer's tap — taps stack like nested decorators).
        self._original_tx_done = self.iface._tx_done

        def tap(packet: Packet) -> None:
            if self.predicate is None or self.predicate(packet):
                self.records.append(
                    TraceRecord(
                        time=self.iface.sim.now,
                        src=packet.src,
                        dst=packet.dst,
                        sport=packet.sport,
                        dport=packet.dport,
                        proto=packet.proto,
                        dscp=packet.dscp,
                        size=packet.size,
                    )
                )
            self._original_tx_done(packet)

        tap._tracer = self
        self._tap = tap
        self.iface._tx_done = tap
        self._installed = True

    def uninstall(self) -> None:
        """Remove this tracer's tap, in any order relative to other
        stacked tracers.

        Naively restoring the ``_tx_done`` captured at install time
        breaks when a tracer installed *later* is still active: that
        tracer's tap (which chains through ours) would be clobbered by
        our stale snapshot, silently disconnecting it. Instead we splice
        ourselves out of the tap chain wherever we sit.
        """
        if not self._installed:
            return
        if self.iface._tx_done is self._tap:
            # We are the top of the chain: restore our downstream.
            self.iface._tx_done = self._original_tx_done
        else:
            # Walk the chain of stacked taps to find whoever chains
            # through us, and point them at our downstream instead.
            current = self.iface._tx_done
            while current is not None:
                owner = getattr(current, "_tracer", None)
                if owner is None:
                    break  # chain broken by a foreign wrapper; give up
                if owner._original_tx_done is self._tap:
                    owner._original_tx_done = self._original_tx_done
                    break
                current = owner._original_tx_done
        self._installed = False
        self._tap = None

    # -- analysis ----------------------------------------------------------

    def __len__(self) -> int:
        return len(self.records)

    def total_bytes(self, dscp: Optional[int] = None) -> int:
        return sum(
            r.size for r in self.records if dscp is None or r.dscp == dscp
        )

    def flows(self) -> List[FlowKey]:
        """Distinct 5-tuples observed, in first-seen order."""
        seen, out = set(), []
        for r in self.records:
            key = r.flow_key
            if key not in seen:
                seen.add(key)
                out.append(key)
        return out

    def bytes_by_dscp(self) -> dict:
        out: dict = {}
        for r in self.records:
            out[r.dscp] = out.get(r.dscp, 0) + r.size
        return out

    def cumulative_bytes(
        self, flow: Optional[FlowKey] = None
    ) -> Tuple[np.ndarray, np.ndarray]:
        """``(times, running byte totals)`` — a wire-level sequence view."""
        selected = [
            r for r in self.records if flow is None or r.flow_key == flow
        ]
        times = np.asarray([r.time for r in selected])
        sizes = np.asarray([r.size for r in selected])
        return times, np.cumsum(sizes)

    def rate_series(
        self, binsize: float, t_start: float = 0.0,
        t_end: Optional[float] = None,
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Binned wire bandwidth (bytes/second)."""
        if t_end is None:
            t_end = self.iface.sim.now
        if t_end <= t_start:
            return np.array([]), np.array([])
        n_bins = max(1, int(np.ceil((t_end - t_start) / binsize)))
        edges = t_start + np.arange(n_bins + 1) * binsize
        times = np.asarray([r.time for r in self.records])
        sizes = np.asarray([r.size for r in self.records])
        if times.size == 0:
            return (edges[:-1] + edges[1:]) / 2, np.zeros(n_bins)
        sums, _ = np.histogram(times, bins=edges, weights=sizes)
        return (edges[:-1] + edges[1:]) / 2, sums / binsize
