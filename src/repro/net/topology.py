"""Network container, link wiring, and static routing.

A :class:`Network` owns the nodes and the link graph; after wiring,
:meth:`Network.build_routes` computes delay-weighted shortest paths
(via networkx) and installs next-hop tables on every node.

:func:`garnet` builds the paper's GARNET testbed (Fig 4): premium and
competitive source hosts behind an edge router, a core router, and a
second edge router in front of the destination hosts.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Tuple

import networkx as nx

from ..kernel import Simulator
from .node import Host, Interface, Node, Router
from .queues import DropTailQueue, Qdisc
from .units import mbps

__all__ = [
    "Network",
    "LinkRecord",
    "RouteError",
    "GarnetTestbed",
    "garnet",
    "partition_topology",
]


@dataclass
class LinkRecord:
    """Bookkeeping for one full-duplex point-to-point link."""

    node_a: Node
    node_b: Node
    iface_ab: Interface  # egress of node_a towards node_b
    iface_ba: Interface  # egress of node_b towards node_a
    bandwidth: float
    delay: float

    def egress_towards(self, node: Node) -> Interface:
        """The interface transmitting *towards* ``node``."""
        if node is self.node_b:
            return self.iface_ab
        if node is self.node_a:
            return self.iface_ba
        raise ValueError(f"{node!r} is not an endpoint of this link")

    @property
    def up(self) -> bool:
        return self.iface_ab.up and self.iface_ba.up

    def fail(self) -> None:
        """Take both directions down; in-flight packets are lost."""
        self.iface_ab.up = False
        self.iface_ba.up = False

    def restore(self) -> None:
        self.iface_ab.up = True
        self.iface_ba.up = True

    @property
    def interfaces(self) -> Tuple[Interface, Interface]:
        return (self.iface_ab, self.iface_ba)


class RouteError(RuntimeError):
    """No working path exists between two nodes."""


class Network:
    """Container wiring hosts, routers, and links into one topology."""

    def __init__(self, sim: Simulator) -> None:
        self.sim = sim
        self.nodes: Dict[str, Node] = {}
        self.by_addr: Dict[int, Node] = {}
        self.links: List[LinkRecord] = []
        self.graph = nx.Graph()
        self._next_addr = 1
        self._routes_built = False
        #: Failed edges as frozenset({name_a, name_b}) pairs.
        self._failed: set = set()
        #: Observers called after every route recomputation caused by a
        #: link failure/restore (the lease layer subscribes here).
        self.topology_listeners: List[Callable[[], None]] = []
        # Memoized path_interfaces results keyed (src, dst) name pair.
        # The admission control plane resolves the same few paths per
        # reservation; without this every admission pays a Dijkstra.
        # Invalidated whenever the working topology changes.
        self._path_cache: Dict[Tuple[str, str], List[Interface]] = {}

    # -- construction ---------------------------------------------------

    def _register(self, node: Node) -> None:
        if node.name in self.nodes:
            raise ValueError(f"duplicate node name {node.name!r}")
        self.nodes[node.name] = node
        self.by_addr[node.addr] = node
        self.graph.add_node(node.name)

    def add_host(self, name: str) -> Host:
        host = Host(self.sim, name, self._next_addr)
        self._next_addr += 1
        self._register(host)
        return host

    def add_router(self, name: str) -> Router:
        router = Router(self.sim, name, self._next_addr)
        self._next_addr += 1
        self._register(router)
        return router

    def connect(
        self,
        a: Node,
        b: Node,
        bandwidth: float,
        delay: float,
        qdisc_factory: Optional[Callable[[], Qdisc]] = None,
    ) -> LinkRecord:
        """Create a full-duplex link between ``a`` and ``b``.

        ``qdisc_factory`` builds the egress queue for each direction
        (default: 100-packet drop-tail, roughly a late-90s router port).
        """
        factory = qdisc_factory or (lambda: DropTailQueue(limit_packets=100))
        iface_ab = a.add_interface(bandwidth, delay, factory())
        iface_ba = b.add_interface(bandwidth, delay, factory())
        iface_ab.peer = iface_ba
        iface_ba.peer = iface_ab
        record = LinkRecord(a, b, iface_ab, iface_ba, bandwidth, delay)
        self.links.append(record)
        self.graph.add_edge(a.name, b.name, delay=delay, record=record)
        self._routes_built = False
        self._path_cache.clear()
        return record

    # -- link failure ----------------------------------------------------

    def _resolve(self, node) -> Node:
        if not isinstance(node, str):
            return node
        resolved = self.nodes.get(node)
        if resolved is None:
            raise ValueError(f"no node named {node!r} in this network")
        return resolved

    def find_link(self, a, b) -> LinkRecord:
        """The link between ``a`` and ``b`` (nodes or names)."""
        a, b = self._resolve(a), self._resolve(b)
        data = self.graph.get_edge_data(a.name, b.name)
        if data is None:
            raise ValueError(f"no link between {a.name!r} and {b.name!r}")
        return data["record"]

    def fail_link(self, a, b) -> LinkRecord:
        """Take the a--b link down and reroute around it.

        In-flight and queued packets on the link are lost; traffic with
        an alternate path is rerouted, the rest is blackholed until
        :meth:`restore_link`.
        """
        record = self.find_link(a, b)
        record.fail()
        self._failed.add(frozenset((record.node_a.name, record.node_b.name)))
        self.build_routes()
        return record

    def restore_link(self, a, b) -> LinkRecord:
        """Bring the a--b link back and reroute onto it."""
        record = self.find_link(a, b)
        record.restore()
        self._failed.discard(frozenset((record.node_a.name, record.node_b.name)))
        self.build_routes()
        return record

    def link_failed(self, a, b) -> bool:
        a, b = self._resolve(a), self._resolve(b)
        return frozenset((a.name, b.name)) in self._failed

    def _working_graph(self):
        """A read-only view of the graph without failed edges."""
        if not self._failed:
            return self.graph
        failed = self._failed

        def edge_ok(u, v):
            return frozenset((u, v)) not in failed

        return nx.subgraph_view(self.graph, filter_edge=edge_ok)

    # -- routing ----------------------------------------------------------

    def build_routes(self) -> None:
        """Compute delay-weighted shortest paths over the *working*
        links and install next hops. Destinations with no surviving
        path get no route (traffic to them counts as no_route_drops)."""
        self._path_cache.clear()
        graph = self._working_graph()
        paths = dict(nx.all_pairs_dijkstra_path(graph, weight="delay"))
        for src_name in self.graph.nodes:
            src = self.nodes[src_name]
            src.routes.clear()
            for dst_name, path in paths.get(src_name, {}).items():
                if dst_name == src_name or len(path) < 2:
                    continue
                next_hop = self.nodes[path[1]]
                record: LinkRecord = self.graph.edges[src_name, path[1]]["record"]
                src.routes[self.nodes[dst_name].addr] = record.egress_towards(next_hop)
        self._routes_built = True
        for listener in list(self.topology_listeners):
            listener()

    def has_path(self, src: Node, dst: Node) -> bool:
        """True if a working path currently exists."""
        return nx.has_path(self._working_graph(), src.name, dst.name)

    def path(self, src: Node, dst: Node) -> List[Node]:
        """The node sequence from ``src`` to ``dst`` over working links."""
        try:
            names = nx.dijkstra_path(
                self._working_graph(), src.name, dst.name, weight="delay"
            )
        except nx.NetworkXNoPath:
            raise RouteError(
                f"no working path from {src.name} to {dst.name}"
            ) from None
        return [self.nodes[n] for n in names]

    def path_interfaces(self, src: Node, dst: Node) -> List[Interface]:
        """Egress interfaces traversed from ``src`` to ``dst``, in order.

        This is what a network reservation must be installed on: the
        first entry is the source's own egress; subsequent entries are
        the routers' egress ports along the path.

        Results are memoized until the working topology changes (a
        link is added, fails, or is restored), so sustained admission
        load pays one Dijkstra per (src, dst) pair, not per call.
        """
        key = (src.name, dst.name)
        cached = self._path_cache.get(key)
        if cached is None:
            nodes = self.path(src, dst)
            cached = []
            for here, there in zip(nodes, nodes[1:]):
                record: LinkRecord = self.graph.edges[
                    here.name, there.name
                ]["record"]
                cached.append(record.egress_towards(there))
            self._path_cache[key] = cached
        return list(cached)

    def round_trip_delay(self, src: Node, dst: Node) -> float:
        """Sum of propagation delays along the path, both directions."""
        try:
            length = nx.dijkstra_path_length(
                self._working_graph(), src.name, dst.name, weight="delay"
            )
        except nx.NetworkXNoPath:
            raise RouteError(
                f"no working path from {src.name} to {dst.name}"
            ) from None
        return 2.0 * length

    def node(self, name: str) -> Node:
        return self.nodes[name]


def partition_topology(
    network: Network,
    n_shards: int,
    hint: Optional[Dict[str, int]] = None,
) -> Dict[str, int]:
    """Partition a topology's nodes into ``n_shards`` groups at link
    boundaries, preferring cuts through *high-delay* links.

    Returns a deterministic mapping ``node name -> shard index``. The
    conservative-PDES lookahead is the minimum propagation delay over
    the links the partition cuts, so a good partition cuts the slowest
    links: shards synchronize less often and ship fewer boundary
    messages. The algorithm is single-linkage agglomeration (Kruskal
    order): starting from one cluster per node, merge across links in
    ascending delay order — ties broken by sorted endpoint names — so
    tightly-coupled low-delay neighborhoods coalesce first and the
    surviving inter-shard links are the high-delay ones. A size cap
    (relaxed only when merging stalls) keeps the shards balanced, and
    disconnected components are folded together smallest-first as a
    last resort.

    ``hint`` short-circuits everything: an explicit full
    ``name -> shard`` mapping (topology generators that know their own
    best cut, like the grid generator's row stripes, pass one).

    Shard indices are stable: shards are numbered by the insertion
    order of their earliest-registered node, so shard 0 always holds
    the first node added to the network.
    """
    if n_shards < 1:
        raise ValueError(f"n_shards must be >= 1, got {n_shards}")
    names = list(network.nodes)  # insertion order
    if not names:
        raise ValueError("cannot partition an empty network")
    if hint is not None:
        missing = [n for n in names if n not in hint]
        if missing:
            raise ValueError(f"partition hint is missing nodes: {missing[:5]}")
        used = sorted({hint[n] for n in names})
        if used != list(range(n_shards)):
            raise ValueError(
                f"partition hint uses shard ids {used}, expected 0..{n_shards - 1}"
            )
        return {n: hint[n] for n in names}
    if n_shards > len(names):
        raise ValueError(
            f"n_shards={n_shards} exceeds node count {len(names)}"
        )
    if n_shards == 1:
        return {n: 0 for n in names}

    order = {name: i for i, name in enumerate(names)}
    # Union-find over node names.
    parent = {n: n for n in names}

    def find(x: str) -> str:
        while parent[x] != x:
            parent[x] = parent[parent[x]]
            x = parent[x]
        return x

    size = {n: 1 for n in names}
    count = len(names)
    edges = sorted(
        (link.delay, *sorted((link.node_a.name, link.node_b.name)))
        for link in network.links
    )
    cap = -(-len(names) // n_shards)  # ceil
    while count > n_shards:
        merged = 0
        for _delay, a, b in edges:
            if count <= n_shards:
                break
            ra, rb = find(a), find(b)
            if ra == rb or size[ra] + size[rb] > cap:
                continue
            # Attach to the earlier-registered root for stable numbering.
            if order[rb] < order[ra]:
                ra, rb = rb, ra
            parent[rb] = ra
            size[ra] += size[rb]
            count -= 1
            merged += 1
        if count <= n_shards:
            break
        if merged == 0:
            if cap < len(names):
                cap = max(cap + 1, cap * 5 // 4)
            else:
                # Disconnected components: fold the two smallest
                # clusters together (ties by insertion order).
                roots = sorted(
                    (r for r in names if find(r) == r),
                    key=lambda r: (size[r], order[r]),
                )
                ra, rb = roots[0], roots[1]
                if order[rb] < order[ra]:
                    ra, rb = rb, ra
                parent[rb] = ra
                size[ra] += size[rb]
                count -= 1
    # Number shards by insertion order of their earliest node.
    roots = sorted((r for r in names if find(r) == r), key=lambda r: order[r])
    shard_of_root = {r: i for i, r in enumerate(roots)}
    return {n: shard_of_root[find(n)] for n in names}


@dataclass
class GarnetTestbed:
    """The GARNET laboratory testbed of the paper (Fig 4).

    Two edge routers around a core router; premium and competitive
    (contention-generating) hosts on each side. The edge-to-core and
    core-to-edge links form the congestible backbone.
    """

    network: Network
    premium_src: Host
    premium_dst: Host
    competitive_src: Host
    competitive_dst: Host
    edge1: Router
    core: Router
    edge2: Router
    backbone_bandwidth: float
    #: Egress interfaces on the forward (src->dst) backbone path.
    forward_backbone: List[Interface] = field(default_factory=list)
    #: Standby core router of the redundant backbone, if built.
    core_b: Optional[Router] = None

    def routers(self) -> List[Router]:
        out = [self.edge1, self.core, self.edge2]
        if self.core_b is not None:
            out.append(self.core_b)
        return out

    @property
    def sim(self) -> Simulator:
        return self.network.sim

    def hosts(self) -> List[Host]:
        return [
            self.premium_src,
            self.premium_dst,
            self.competitive_src,
            self.competitive_dst,
        ]


def garnet(
    sim: Simulator,
    access_bandwidth: float = mbps(100.0),
    access_delay: float = 0.05e-3,
    backbone_bandwidth: float = mbps(155.0),
    backbone_delay: float = 0.5e-3,
    queue_packets: int = 100,
    redundant_backbone: bool = False,
) -> GarnetTestbed:
    """Build the GARNET topology.

    Defaults mirror the paper's hardware: switched Fast Ethernet access
    links (100 Mb/s) and OC3 (155 Mb/s) backbone with millisecond-scale
    round-trip delay ("on the order of a millisecond or two", §4.3).
    Experiments that need a tighter bottleneck pass a smaller
    ``backbone_bandwidth``.

    ``redundant_backbone`` adds a standby core router (``core_b``) on a
    slightly longer edge1--core_b--edge2 path, so backbone link failures
    have an alternate route (the fault-injection scenarios).
    """
    net = Network(sim)
    psrc = net.add_host("premium_src")
    pdst = net.add_host("premium_dst")
    csrc = net.add_host("competitive_src")
    cdst = net.add_host("competitive_dst")
    edge1 = net.add_router("edge1")
    core = net.add_router("core")
    edge2 = net.add_router("edge2")

    qf = lambda: DropTailQueue(limit_packets=queue_packets)  # noqa: E731
    a1 = net.connect(psrc, edge1, access_bandwidth, access_delay, qf)
    a2 = net.connect(csrc, edge1, access_bandwidth, access_delay, qf)
    l1 = net.connect(edge1, core, backbone_bandwidth, backbone_delay, qf)
    l2 = net.connect(core, edge2, backbone_bandwidth, backbone_delay, qf)
    a3 = net.connect(edge2, pdst, access_bandwidth, access_delay, qf)
    a4 = net.connect(edge2, cdst, access_bandwidth, access_delay, qf)
    core_b = None
    if redundant_backbone:
        # Longer delay keeps the primary path preferred until it fails.
        core_b = net.add_router("core_b")
        net.connect(edge1, core_b, backbone_bandwidth, backbone_delay * 2, qf)
        net.connect(core_b, edge2, backbone_bandwidth, backbone_delay * 2, qf)
    # Hosts get deep egress buffers: end-system kernels backpressure
    # TCP rather than dropping on the local queue.
    for link, host in ((a1, psrc), (a2, csrc), (a3, pdst), (a4, cdst)):
        link.egress_towards(
            link.node_b if host is link.node_a else link.node_a
        ).qdisc = DropTailQueue(limit_packets=2000)
    net.build_routes()

    return GarnetTestbed(
        network=net,
        premium_src=psrc,
        premium_dst=pdst,
        competitive_src=csrc,
        competitive_dst=cdst,
        edge1=edge1,
        core=core,
        edge2=edge2,
        backbone_bandwidth=backbone_bandwidth,
        forward_backbone=[l1.egress_towards(core), l2.egress_towards(edge2)],
        core_b=core_b,
    )


@dataclass
class WideAreaTestbed:
    """GARNET with its wide-area extensions (Fig 4, upper half).

    The laboratory testbed "is connected to a number of remote sites"
    through the ESnet and MREN/EMERGE clouds; "the wide area extensions
    allow for more realistic operation, albeit with a small number of
    sites". Sites here: ANL (the GARNET lab), plus LBNL and SNL behind
    an ESnet cloud router and UChicago and UIUC behind an MREN cloud
    router, each site with one host and one edge router.
    """

    network: Network
    #: Site name -> the site's single end host.
    hosts: Dict[str, Host]
    #: Site name -> the site's edge router.
    edges: Dict[str, Router]
    #: The two wide-area cloud routers.
    esnet: Router
    mren: Router
    #: All routers, in a stable order (for DiffServ deployment).
    routers: List[Router] = field(default_factory=list)

    @property
    def sim(self) -> Simulator:
        return self.network.sim

    @property
    def site_names(self) -> List[str]:
        return sorted(self.hosts)


def garnet_wide(
    sim: Simulator,
    access_bandwidth: float = mbps(100.0),
    access_delay: float = 0.05e-3,
    lab_bandwidth: float = mbps(155.0),
    lab_delay: float = 0.5e-3,
    esnet_bandwidth: float = mbps(45.0),  # "VCs of varying capacity"
    esnet_delay: float = 12e-3,
    mren_bandwidth: float = mbps(34.0),
    mren_delay: float = 4e-3,
) -> WideAreaTestbed:
    """Build the wide-area GARNET (Fig 4): the ANL lab plus four remote
    sites reached through ESnet and MREN cloud routers, with WAN links
    slower and much longer-delay than the lab backbone."""
    net = Network(sim)
    esnet = net.add_router("esnet")
    mren = net.add_router("mren")
    sites = {
        "anl": (esnet, lab_bandwidth, lab_delay),
        "lbnl": (esnet, esnet_bandwidth, esnet_delay),
        "snl": (esnet, esnet_bandwidth, esnet_delay * 1.5),
        "uchicago": (mren, mren_bandwidth, mren_delay),
        "uiuc": (mren, mren_bandwidth, mren_delay * 2),
    }
    hosts: Dict[str, Host] = {}
    edges: Dict[str, Router] = {}
    for name, (cloud, wan_bw, wan_delay) in sites.items():
        host = net.add_host(f"{name}_host")
        edge = net.add_router(f"{name}_edge")
        access = net.connect(host, edge, access_bandwidth, access_delay)
        access.egress_towards(edge).qdisc = DropTailQueue(limit_packets=2000)
        net.connect(edge, cloud, wan_bw, wan_delay)
        hosts[name] = host
        edges[name] = edge
    # The two clouds peer (ANL sits on both in reality; one peering
    # link keeps the graph simple and the paths deterministic).
    net.connect(esnet, mren, mbps(155.0), 2e-3)
    net.build_routes()
    return WideAreaTestbed(
        network=net,
        hosts=hosts,
        edges=edges,
        esnet=esnet,
        mren=mren,
        routers=[*edges.values(), esnet, mren],
    )
