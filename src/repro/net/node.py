"""Nodes (hosts and routers) and their interfaces.

The data path is callback-scheduled, not process-based, because packet
forwarding is the simulation's hot loop: an interface transmits by
scheduling a completion timer and the link delivers by scheduling an
arrival at the peer node.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional

from heapq import heappush as _heappush

from ..kernel import Simulator
from ..kernel.events import NORMAL as _NORMAL
from ..kernel.simulator import _FAST
from .packet import Packet
from .queues import DropTailQueue, Qdisc

__all__ = ["Interface", "Node", "Host", "Router", "BATCH_MAX_PACKETS"]

#: Upper bound on one egress burst in batch/hybrid modes. Bounds how
#: long a drained-but-not-yet-transmitted burst can defer a mid-burst
#: high-priority arrival (the batch-granularity approximation), and
#: keeps per-burst arrival scheduling cache-friendly.
BATCH_MAX_PACKETS = 32


class Interface:
    """One attachment point of a node to a point-to-point link.

    Egress packets pass through the interface's :class:`Qdisc`; the
    interface serialises them at the link bandwidth and hands them to
    the peer interface's node after the propagation delay.
    """

    # The tx chain reads these per packet; a fixed layout keeps the
    # lookups dict-free. Qdisc classes deliberately do NOT get slots:
    # tests patch ``enqueue`` on qdisc instances.
    __slots__ = (
        "node", "sim", "name", "_bandwidth", "_sec_per_byte", "delay",
        "_qdisc", "_dequeue", "peer", "ingress", "up", "impairments",
        "_busy", "_batch", "fluid_channel", "_tx_done", "remote_egress",
        "tx_packets", "tx_bytes", "rx_packets", "rx_bytes",
        "ingress_drops", "link_down_drops", "impairment_drops",
    )

    def __init__(
        self,
        node: "Node",
        name: str,
        bandwidth: float,
        delay: float,
        qdisc: Optional[Qdisc] = None,
    ) -> None:
        if delay < 0:
            raise ValueError("delay cannot be negative")
        self.node = node
        self.sim = node.sim
        self.name = name
        self.bandwidth = bandwidth
        self.delay = delay
        self.qdisc: Qdisc = qdisc if qdisc is not None else DropTailQueue()
        #: The interface at the other end of the link (set when linked).
        self.peer: Optional["Interface"] = None
        #: Ingress traffic conditioners (classify/police/mark), applied
        #: to every packet arriving *into* the node via this interface.
        #: Each is a callable ``(packet) -> bool``; False drops.
        self.ingress: List[Callable[[Packet], bool]] = []
        #: Link state: a down interface silently blackholes egress
        #: traffic and discards deliveries (in-flight packets are lost).
        self.up = True
        #: Egress fault injectors (loss/corruption), applied after
        #: serialisation. Each is a callable ``(packet) -> bool``; True
        #: means the injector destroyed the packet.
        self.impairments: List[Callable[[Packet], bool]] = []
        self._busy = False
        # A prebound slot instead of a per-packet method binding; also
        # the tap point PacketTracer splices into (instance assignment
        # must stay possible, hence the method lives under _tx_done_impl
        # and this slot holds the active callable).
        self._tx_done = self._tx_done_impl
        # Batched egress is a per-simulator mode decision fixed at
        # construction; the packet-mode transmit path stays exactly the
        # historical (byte-identical) event chain.
        self._batch = node.sim.batch_egress
        #: Fluid background channel sharing this egress line
        #: (:class:`repro.net.fluid.FluidChannel`), hybrid mode only.
        self.fluid_channel = None
        #: Cross-shard egress hook (conservative PDES). When set, the
        #: link's far end lives on another shard: instead of scheduling
        #: ``peer._deliver_arrival`` locally, the tx path calls
        #: ``remote_egress(arrival_time, packet)`` and the PDES runtime
        #: ships the packet as a timestamped event message. None (one
        #: slot load + branch) on every non-sharded run.
        self.remote_egress = None
        # Counters.
        self.tx_packets = 0
        self.tx_bytes = 0
        self.rx_packets = 0
        self.rx_bytes = 0
        self.ingress_drops = 0
        self.link_down_drops = 0
        self.impairment_drops = 0

    @property
    def qdisc(self) -> Qdisc:
        """The egress queue discipline."""
        return self._qdisc

    @qdisc.setter
    def qdisc(self, value: Qdisc) -> None:
        self._qdisc = value
        # dequeue is resolved once per assignment; the TX path calls it
        # per packet. enqueue stays a dynamic lookup because tests
        # patch it on qdisc instances.
        self._dequeue = value.dequeue

    @property
    def bandwidth(self) -> float:
        """Link rate in bits/s."""
        return self._bandwidth

    @bandwidth.setter
    def bandwidth(self, value: float) -> None:
        if value <= 0:
            raise ValueError("bandwidth must be positive")
        self._bandwidth = value
        # Per-byte serialization time, precomputed so the per-packet
        # transmit path is one multiply instead of a division.
        self._sec_per_byte = 8.0 / value

    def send(self, packet: Packet) -> bool:
        """Queue ``packet`` for transmission; False if the qdisc dropped it."""
        if self.peer is None:
            raise RuntimeError(f"{self!r} is not connected to a link")
        if not self.up:
            # A dead link blackholes silently: the sender learns nothing
            # (exactly like a cable pull — only timeouts reveal it).
            self.link_down_drops += 1
            return False
        if not self.qdisc.enqueue(packet):
            tel = self.sim.telemetry
            if tel is not None and tel.trace is not None:
                tel.trace.emit(
                    self.sim.now, "net", "qdisc_drop",
                    node=self.node.name, iface=self.name,
                    src=packet.src, dst=packet.dst,
                    sport=packet.sport, dport=packet.dport,
                    dscp=packet.dscp, size=packet.size,
                )
            return False
        if not self._busy:
            if self._batch:
                # Batch/hybrid modes: the burst drain owns the
                # transmitter until the whole burst is on the wire.
                self._busy = True
                self._drain_batch()
                return True
            # Inlined _transmit_next — starting an idle transmitter is
            # the common case on lightly-loaded host NICs.
            packet = self._dequeue()
            if packet is not None:
                self._busy = True
                sim = self.sim
                _heappush(
                    sim._queue,
                    (
                        sim._now + packet.size * self._sec_per_byte,
                        _NORMAL,
                        next(sim._seq),
                        _FAST,
                        self._tx_done,
                        packet,
                    ),
                )
        return True

    def _drain_batch(self) -> None:
        """Batched egress (batch/hybrid modes): drain one qdisc burst
        and put it on the wire in a single kernel callback.

        Serialization times are summed analytically — packet *k* of the
        burst finishes at ``now + sum(size[0..k]) / rate`` and arrives
        at the peer exactly one propagation delay later, so arrival
        times are identical to the per-packet event chain. What is
        approximated is burst-granularity preemption: a higher-priority
        packet enqueued mid-burst waits for the in-flight burst (at
        most :data:`BATCH_MAX_PACKETS` serializations) where packet
        mode would let it jump ahead at the next packet boundary, and
        link-down/impairment state is sampled once per burst. Each
        collapsed per-packet tx-done event is credited to
        ``sim.events_credited``.
        """
        while True:
            # Lone-packet fast path first: most drains start with an
            # idle transmitter and a single queued packet (host NICs,
            # paced flows), where allocating a burst list and
            # rescanning bands per packet would cost more than the
            # per-packet event chain it replaces.
            qdisc = self._qdisc
            head = self._dequeue()
            if head is None:
                self._busy = False
                return
            sim = self.sim
            if not self.up:
                # A dead link drains instantly in packet mode too (each
                # tx-done counts a loss and immediately dequeues the
                # next); keep looping until the queue is empty.
                self.link_down_drops += 1
                sim.events_credited += 1
                continue
            if len(qdisc):
                batch = qdisc.dequeue_batch(BATCH_MAX_PACKETS - 1)
                batch.insert(0, head)
            else:
                batch = [head]
            queue = sim._queue
            seq = sim._seq
            spb = self._sec_per_byte
            delay = self.delay
            finish = sim._now
            fluid = self.fluid_channel
            if fluid is not None:
                # Share the line with the background envelope: fluid
                # backlog that would be serviced ahead of this burst
                # (same or higher band) delays its first serialization.
                finish += fluid.on_foreground_burst(sim._now, batch)
            peer_deliver = self.peer._deliver_arrival
            remote = self.remote_egress
            tel = sim.telemetry
            want_tx = (
                tel is not None
                and tel.trace is not None
                and tel.trace.wants("net", "tx")
            )
            impairments = self.impairments
            for packet in batch:
                # Serialization is spent even on packets an impairment
                # destroys afterwards, exactly as in packet mode.
                finish += packet.size * spb
                if impairments:
                    destroyed = False
                    for impair in impairments:
                        if impair(packet):
                            self.impairment_drops += 1
                            destroyed = True
                            break
                    if destroyed:
                        continue
                self.tx_packets += 1
                self.tx_bytes += packet.size
                if want_tx:
                    tel.trace.emit(
                        sim.now, "net", "tx",
                        node=self.node.name, iface=self.name,
                        src=packet.src, dst=packet.dst,
                        sport=packet.sport, dport=packet.dport,
                        dscp=packet.dscp, size=packet.size,
                        backlog=len(self.qdisc),
                    )
                if remote is None:
                    _heappush(
                        queue,
                        (finish + delay, _NORMAL, next(seq), _FAST,
                         peer_deliver, packet),
                    )
                else:
                    remote(finish + delay, packet)
            sim.events_credited += len(batch) - 1
            _heappush(
                queue,
                (finish, _NORMAL, next(seq), _FAST, self._batch_done, None),
            )
            return

    def _batch_done(self, _arg) -> None:
        """End of one egress burst: drain the next or go idle."""
        self._drain_batch()

    def _transmit_next(self) -> None:
        packet = self._dequeue()
        if packet is None:
            self._busy = False
            return
        self._busy = True
        # Inlined sim.call_fast — this push runs once per packet per hop.
        sim = self.sim
        _heappush(
            sim._queue,
            (
                sim._now + packet.size * self._sec_per_byte,
                _NORMAL,
                next(sim._seq),
                _FAST,
                self._tx_done,
                packet,
            ),
        )

    def _tx_done_impl(self, packet: Packet) -> None:
        if not self.up:
            # The link died while this packet was on the wire.
            self.link_down_drops += 1
            self._transmit_next()
            return
        if self.impairments:
            for impair in self.impairments:
                if impair(packet):
                    self.impairment_drops += 1
                    self._transmit_next()
                    return
        self.tx_packets += 1
        self.tx_bytes += packet.size
        tel = self.sim.telemetry
        if (
            tel is not None
            and tel.trace is not None
            and tel.trace.wants("net", "tx")
        ):
            tel.trace.emit(
                self.sim.now, "net", "tx",
                node=self.node.name, iface=self.name,
                src=packet.src, dst=packet.dst,
                sport=packet.sport, dport=packet.dport,
                dscp=packet.dscp, size=packet.size,
                backlog=len(self.qdisc),
            )
        # Inlined sim.call_fast — propagation arrival at the peer.
        sim = self.sim
        remote = self.remote_egress
        if remote is None:
            _heappush(
                sim._queue,
                (
                    sim._now + self.delay,
                    _NORMAL,
                    next(sim._seq),
                    _FAST,
                    self.peer._deliver_arrival,
                    packet,
                ),
            )
        else:
            # Peer lives on another shard: hand the packet to the PDES
            # runtime stamped with its physical arrival time.
            remote(sim._now + self.delay, packet)
        # Inlined _transmit_next: this tail runs once per transmitted
        # packet, so the extra call is worth eliding.
        packet = self._dequeue()
        if packet is None:
            self._busy = False
            return
        _heappush(
            sim._queue,
            (
                sim._now + packet.size * self._sec_per_byte,
                _NORMAL,
                next(sim._seq),
                _FAST,
                self._tx_done,
                packet,
            ),
        )

    def _deliver_arrival(self, packet: Packet) -> None:
        if not self.up:
            # In flight when the link went down: lost in propagation.
            self.link_down_drops += 1
            return
        self.rx_packets += 1
        self.rx_bytes += packet.size
        if self.ingress:
            for conditioner in self.ingress:
                if not conditioner(packet):
                    self.ingress_drops += 1
                    return
        self.node.receive(packet, self)

    def __repr__(self) -> str:
        return f"<Interface {self.node.name}.{self.name}>"


class Node:
    """Base class for hosts and routers."""

    def __init__(self, sim: Simulator, name: str, addr: int) -> None:
        self.sim = sim
        self.name = name
        self.addr = addr
        self.interfaces: List[Interface] = []
        #: Static routing: destination address -> egress interface.
        self.routes: Dict[int, Interface] = {}
        self.ttl_drops = 0
        self.no_route_drops = 0

    def add_interface(
        self,
        bandwidth: float,
        delay: float,
        qdisc: Optional[Qdisc] = None,
    ) -> Interface:
        iface = Interface(
            self, f"eth{len(self.interfaces)}", bandwidth, delay, qdisc
        )
        self.interfaces.append(iface)
        return iface

    def receive(self, packet: Packet, iface: Interface) -> None:
        """Handle a packet arriving at this node."""
        if packet.dst == self.addr:
            self.deliver(packet)
        else:
            self.forward(packet)

    def forward(self, packet: Packet) -> None:
        """Route a transit packet out the next-hop interface."""
        packet.ttl -= 1
        if packet.ttl <= 0:
            self.ttl_drops += 1
            return
        egress = self.routes.get(packet.dst)
        if egress is None:
            self.no_route_drops += 1
            return
        egress.send(packet)

    def deliver(self, packet: Packet) -> None:
        """Pass a locally-addressed packet up the stack."""
        raise NotImplementedError(f"{self.name} cannot terminate packets")

    def __repr__(self) -> str:
        return f"<{type(self).__name__} {self.name} addr={self.addr}>"


class Host(Node):
    """An end system: terminates transport protocols, owns a CPU.

    Protocol layers (TCP, UDP) register themselves in
    :attr:`protocols`, keyed by IP protocol number. The CPU model is
    attached lazily by :class:`repro.cpu.scheduler.Cpu`.
    """

    def __init__(self, sim: Simulator, name: str, addr: int) -> None:
        super().__init__(sim, name, addr)
        self.protocols: Dict[int, "object"] = {}
        self.unknown_proto_drops = 0
        #: Set by repro.cpu.Cpu when a CPU model is attached.
        self.cpu = None

    def register_protocol(self, proto: int, layer: "object") -> None:
        if proto in self.protocols:
            raise ValueError(f"protocol {proto} already registered on {self.name}")
        self.protocols[proto] = layer

    def deliver(self, packet: Packet) -> None:
        layer = self.protocols.get(packet.proto)
        if layer is None:
            self.unknown_proto_drops += 1
            return
        layer.receive(packet)

    def default_interface(self) -> Interface:
        """The host's (single) attachment; hosts are single-homed here."""
        if not self.interfaces:
            raise RuntimeError(f"{self.name} has no interfaces")
        return self.interfaces[0]

    #: Loopback latency for self-addressed packets.
    LOOPBACK_DELAY = 5e-6

    def send_packet(self, packet: Packet) -> bool:
        """Transport-layer egress: loopback for self-addressed packets,
        the default interface otherwise."""
        if packet.dst == self.addr:
            self.sim.call_fast(self.LOOPBACK_DELAY, self.deliver, packet)
            return True
        try:
            iface = self.interfaces[0]
        except IndexError:
            raise RuntimeError(f"{self.name} has no interfaces") from None
        return iface.send(packet)


class Router(Node):
    """A store-and-forward router.

    QoS behaviour comes from what is installed on it: ingress
    conditioners on its interfaces and (priority) qdiscs on its egress
    ports — see :mod:`repro.diffserv`.
    """

    def receive(self, packet: Packet, iface: Interface) -> None:
        # Specialised copy of Node.receive: a transit packet skips one
        # level of dispatch on the router hot path.
        if packet.dst == self.addr:
            self.deliver(packet)
            return
        packet.ttl -= 1
        if packet.ttl <= 0:
            self.ttl_drops += 1
            return
        egress = self.routes.get(packet.dst)
        if egress is None:
            self.no_route_drops += 1
            return
        egress.send(packet)

    def deliver(self, packet: Packet) -> None:
        # Routers do not terminate transport flows in this model.
        self.no_route_drops += 1
