"""Large-scale GARNET grids: parameterized mesh/torus topologies.

The paper's GARNET testbed is seven nodes; scaling experiments (the
"digital twin of a large-scale DiffServ network" target) need
thousands. :func:`garnet_grid` builds an R x C router mesh (optionally
a torus) with one host hanging off every router, using **algorithmic
dimension-ordered routing** instead of routing tables: a 1,000-router
grid would need ~2M next-hop entries per process under
:meth:`Network.build_routes`, while :class:`GridRouter` computes the
next hop from address arithmetic in O(1) with no per-node state.

Node creation order is fixed (router then host, row-major), so
coordinates are recoverable from addresses alone::

    idx  = (addr - 1) // 2        # cell index, row-major
    row, col = divmod(idx, cols)
    is_host = (addr % 2 == 0)

:func:`plan_flows` draws a deterministic flow plan (sources,
destinations with locality bias, DiffServ class mix, start times)
from a caller-supplied RNG — pass a named ``sim.rng_stream`` so the
plan is identical no matter how the grid is sharded.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, NamedTuple, Optional, Tuple

import numpy as np

from ..kernel import Simulator
from .node import Host, Interface, Router
from .queues import DropTailQueue
from .topology import Network
from .units import mbps

__all__ = ["GridRouter", "GridTestbed", "GridFlow", "garnet_grid", "plan_flows"]


class GridRouter(Router):
    """A mesh router with dimension-ordered (column-first) routing.

    Next hops come from coordinate arithmetic on the destination
    address — ``routes`` stays empty. Ports are the egress interfaces
    toward each neighbor; a port is None at a mesh edge (non-torus).
    """

    def __init__(self, sim: Simulator, name: str, addr: int) -> None:
        super().__init__(sim, name, addr)
        self.row = 0
        self.col = 0
        self.rows = 1
        self.cols = 1
        self.torus = False
        self.port_e: Optional[Interface] = None
        self.port_w: Optional[Interface] = None
        self.port_n: Optional[Interface] = None
        self.port_s: Optional[Interface] = None
        self.port_host: Optional[Interface] = None

    def receive(self, packet, iface) -> None:
        # Hot path: one address decode + at most two comparisons per
        # hop. Column is corrected first, then row (dimension order
        # keeps the mesh deadlock-free and the paths deterministic).
        if packet.dst == self.addr:
            self.deliver(packet)
            return
        packet.ttl -= 1
        if packet.ttl <= 0:
            self.ttl_drops += 1
            return
        idx = (packet.dst - 1) >> 1
        dst_r, dst_c = divmod(idx, self.cols)
        col = self.col
        if dst_c != col:
            if self.torus:
                dc = (dst_c - col) % self.cols
                egress = self.port_e if dc <= self.cols - dc else self.port_w
            else:
                egress = self.port_e if dst_c > col else self.port_w
        elif dst_r != self.row:
            if self.torus:
                dr = (dst_r - self.row) % self.rows
                egress = self.port_s if dr <= self.rows - dr else self.port_n
            else:
                egress = self.port_s if dst_r > self.row else self.port_n
        else:
            egress = self.port_host
        if egress is None:
            self.no_route_drops += 1
            return
        egress.send(packet)


@dataclass
class GridTestbed:
    """An R x C GARNET grid: routers in a mesh/torus, one host each."""

    network: Network
    rows: int
    cols: int
    torus: bool
    link_delay: float
    access_delay: float
    #: Routers and hosts in row-major cell order (index = row*cols+col).
    routers: List[GridRouter] = field(default_factory=list)
    hosts: List[Host] = field(default_factory=list)

    @property
    def sim(self) -> Simulator:
        return self.network.sim

    @property
    def n_cells(self) -> int:
        return self.rows * self.cols

    def router_at(self, row: int, col: int) -> GridRouter:
        return self.routers[row * self.cols + col]

    def host_at(self, row: int, col: int) -> Host:
        return self.hosts[row * self.cols + col]

    def coord_of_addr(self, addr: int) -> Tuple[int, int]:
        return divmod((addr - 1) >> 1, self.cols)

    def partition_hint(self, n_shards: int) -> Dict[str, int]:
        """Row-stripe partition: contiguous row bands, one per shard.

        The optimal link-boundary cut for a row-major grid: only
        vertical (south) links between adjacent stripes — and the torus
        wrap column — are cut, every cut link has the uniform mesh
        ``link_delay``, and each host stays with its router, so the
        PDES lookahead equals the mesh link delay for every shard
        count. Feed this to :func:`repro.net.topology.partition_topology`
        via its ``hint`` parameter.
        """
        if not 1 <= n_shards <= self.rows:
            raise ValueError(
                f"n_shards must be in 1..{self.rows} (rows), got {n_shards}"
            )
        hint: Dict[str, int] = {}
        for r in range(self.rows):
            shard = r * n_shards // self.rows
            for c in range(self.cols):
                cell = r * self.cols + c
                hint[self.routers[cell].name] = shard
                hint[self.hosts[cell].name] = shard
        return hint


def garnet_grid(
    sim: Simulator,
    rows: int,
    cols: int,
    torus: bool = False,
    link_bandwidth: float = mbps(155.0),
    link_delay: float = 0.5e-3,
    access_bandwidth: float = mbps(100.0),
    access_delay: float = 0.05e-3,
    queue_packets: int = 100,
    qdisc_factory=None,
) -> GridTestbed:
    """Build an ``rows x cols`` router grid with one host per router.

    Mesh links default to the GARNET OC3 backbone parameters; access
    links to switched Fast Ethernet. ``qdisc_factory`` (if given)
    builds the egress queue for every mesh-link direction — pass a
    :class:`repro.diffserv.PriorityQdisc` factory for DiffServ grids.
    Host egress gets a deep drop-tail buffer, as in :func:`garnet`.

    The network is **not** given routing tables —
    :class:`GridRouter` routes algorithmically and hosts are
    single-homed — so construction stays O(nodes + links) at any
    scale. Do not call ``build_routes`` on the result.
    """
    if rows < 1 or cols < 1:
        raise ValueError("grid needs rows >= 1 and cols >= 1")
    if torus and (rows < 3 or cols < 3):
        # A 2-wide torus would create parallel links between the same
        # router pair, which Network's simple graph cannot represent.
        raise ValueError("torus grids need rows >= 3 and cols >= 3")
    net = Network(sim)
    qf = qdisc_factory or (lambda: DropTailQueue(limit_packets=queue_packets))
    routers: List[GridRouter] = []
    hosts: List[Host] = []
    # Creation order is the addressing contract (see module docstring):
    # router then host, row-major.
    for r in range(rows):
        for c in range(cols):
            router = GridRouter(sim, f"r{r}_{c}", net._next_addr)
            net._next_addr += 1
            net._register(router)
            router.row, router.col = r, c
            router.rows, router.cols = rows, cols
            router.torus = torus
            routers.append(router)
            hosts.append(net.add_host(f"h{r}_{c}"))
    for r in range(rows):
        for c in range(cols):
            cell = r * cols + c
            router = routers[cell]
            # East link (wraps on a torus).
            if c + 1 < cols or (torus and cols > 1):
                east = routers[r * cols + (c + 1) % cols]
                rec = net.connect(router, east, link_bandwidth, link_delay, qf)
                router.port_e = rec.iface_ab
                east.port_w = rec.iface_ba
            # South link (wraps on a torus).
            if r + 1 < rows or (torus and rows > 1):
                south = routers[((r + 1) % rows) * cols + c]
                rec = net.connect(router, south, link_bandwidth, link_delay, qf)
                router.port_s = rec.iface_ab
                south.port_n = rec.iface_ba
            # Access link; the host side gets the deep end-system buffer.
            host = hosts[cell]
            rec = net.connect(router, host, access_bandwidth, access_delay, qf)
            router.port_host = rec.iface_ab
            rec.iface_ba.qdisc = DropTailQueue(limit_packets=2000)
    return GridTestbed(
        network=net,
        rows=rows,
        cols=cols,
        torus=torus,
        link_delay=link_delay,
        access_delay=access_delay,
        routers=routers,
        hosts=hosts,
    )


class GridFlow(NamedTuple):
    """One planned flow: a short datagram burst between two grid hosts."""

    src_cell: int   # row-major cell index of the source host
    dst_cell: int   # row-major cell index of the destination host
    dscp: int       # DiffServ codepoint carried by every packet
    start: float    # simulation time of the first send
    size: int       # datagram size in bytes
    count: int      # datagrams sent back-to-back


#: Default per-class mix: (dscp, fraction). EF=46 premium, AF21=18
#: assured, BE=0 best effort — the GARNET service classes.
DEFAULT_CLASS_MIX: Tuple[Tuple[int, float], ...] = (
    (46, 0.10),
    (18, 0.30),
    (0, 0.60),
)


def plan_flows(
    testbed: GridTestbed,
    n_flows: int,
    rng: np.random.Generator,
    t_start: float = 0.05,
    t_end: float = 1.0,
    class_mix: Tuple[Tuple[int, float], ...] = DEFAULT_CLASS_MIX,
    locality: int = 4,
    size_range: Tuple[int, int] = (256, 1400),
    count_range: Tuple[int, int] = (1, 3),
) -> List[GridFlow]:
    """Draw a deterministic plan of ``n_flows`` host-to-host flows.

    Destinations are locality-biased: the destination cell is the
    source cell displaced by a uniform offset in
    ``[-locality, +locality]^2`` (excluding zero; coordinates wrap), so
    most traffic stays within a few hops, as in real grid sites.
    Class fractions come from ``class_mix``; start times are uniform
    in ``[t_start, t_end)``.

    Pass a *named* stream (``sim.rng_stream("flows")``): every shard
    of a partitioned run computes the identical plan and installs only
    the flows whose source host it owns.
    """
    if t_end < t_start:
        raise ValueError("t_end must be >= t_start")
    rows, cols = testbed.rows, testbed.cols
    n_cells = rows * cols
    src = rng.integers(0, n_cells, n_flows)
    dr = rng.integers(-locality, locality + 1, n_flows)
    dc = rng.integers(-locality, locality + 1, n_flows)
    # A zero offset would make a flow loop back to its source; nudge it
    # one column east (deterministically).
    zero = (dr == 0) & (dc == 0)
    dc = np.where(zero, 1, dc)
    src_r, src_c = np.divmod(src, cols)
    dst = ((src_r + dr) % rows) * cols + (src_c + dc) % cols
    u = rng.random(n_flows)
    dscps = np.zeros(n_flows, dtype=np.int64)
    edge = 0.0
    assigned = np.zeros(n_flows, dtype=bool)
    for dscp, fraction in class_mix:
        edge += fraction
        pick = (~assigned) & (u < edge)
        dscps[pick] = dscp
        assigned |= pick
    if not assigned.all():
        # Mix fractions that sum below 1.0 leave a remainder: it rides
        # in the last class.
        dscps[~assigned] = class_mix[-1][0]
    starts = rng.uniform(t_start, t_end, n_flows)
    sizes = rng.integers(size_range[0], size_range[1] + 1, n_flows)
    counts = rng.integers(count_range[0], count_range[1] + 1, n_flows)
    return [
        GridFlow(
            int(src[i]), int(dst[i]), int(dscps[i]),
            float(starts[i]), int(sizes[i]), int(counts[i]),
        )
        for i in range(n_flows)
    ]
