"""Struct-of-arrays hot state for the packet datapath.

The per-packet fields the datapath touches on every hop — wire size,
DiffServ codepoint, ECN field, sojourn stamp, flow identity — live in
preallocated parallel arrays (:class:`PacketPool`), indexed by a
recycled *slot*. A :class:`SlabPacket` is a thin view over one slot:
it subclasses :class:`~repro.net.packet.Packet` so every consumer of
the ordinary packet interface keeps working, but its hot attributes
are properties that read and write the pool's arrays, and the view
object itself is recycled together with its slot — steady-state
traffic allocates no packet objects at all.

Analytics read the arrays wholesale instead of walking packet objects:
:meth:`PacketPool.sizes_view` and friends hand out zero-copy NumPy
views (when NumPy is available), and :meth:`PacketPool.flow_bytes`
aggregates in-flight bytes per flow with one vectorised pass.

Slot lifecycle contract
-----------------------
``acquire()`` hands out a live view; ``release()`` returns its slot to
the free list, after which the view may be *reissued with different
contents* — callers must not keep references across a release. The
pool is therefore only wired into datapaths whose packet lifetime is
provably bracketed (the UDP datapath: created in ``sendto``, released
when the receiving :class:`~repro.transport.udp.UdpLayer` has
demultiplexed the datagram). Packets that die mid-network (qdisc
drops, TTL, impairments) intentionally *leak* their slot rather than
risk a premature recycle under a telemetry or tracer reference; a
drained pool degrades gracefully — ``acquire()`` falls back to plain
heap :class:`Packet` objects and counts the overflow.

The pool is active only in batch/hybrid simulator modes
(``Simulator(mode="batch"|"hybrid")``); packet mode keeps the historic
allocation behaviour byte-for-byte.
"""

from __future__ import annotations

from array import array
from typing import Any, Dict, List, Optional

from .packet import (
    DEFAULT_TTL,
    ECN_NOT_ECT,
    FlowKey,
    Packet,
    _uid_counter,
)

try:  # pragma: no cover - exercised on both paths in CI images
    import numpy as _np
except ImportError:  # pragma: no cover
    _np = None

__all__ = ["PacketPool", "SlabPacket", "DEFAULT_POOL_SLOTS"]

#: Default slot count — sized so fig1-scale workloads (≲ a few hundred
#: packets in flight, plus drop leakage) never overflow in practice.
DEFAULT_POOL_SLOTS = 16384


class SlabPacket(Packet):
    """A packet whose hot fields live in a :class:`PacketPool` slot.

    The cold fields (addresses, ports, payload, ttl, uid) stay ordinary
    instance slots inherited from :class:`Packet`; ``size``, ``dscp``,
    ``ecn`` and ``enqueued_at`` are properties over the pool arrays, so
    array readers and attribute readers always agree.
    """

    __slots__ = ("pool", "slot")

    def __init__(self, *args, **kwargs) -> None:  # pragma: no cover
        raise TypeError("SlabPacket is created via PacketPool.acquire()")

    # -- hot fields: array-backed -----------------------------------------

    @property
    def size(self) -> int:
        return self.pool.sizes[self.slot]

    @size.setter
    def size(self, value: int) -> None:
        self.pool.sizes[self.slot] = value

    @property
    def dscp(self) -> int:
        return self.pool.dscps[self.slot]

    @dscp.setter
    def dscp(self, value: int) -> None:
        self.pool.dscps[self.slot] = value

    @property
    def ecn(self) -> int:
        return self.pool.ecns[self.slot]

    @ecn.setter
    def ecn(self, value: int) -> None:
        self.pool.ecns[self.slot] = value

    @property
    def enqueued_at(self) -> float:
        return self.pool.enqueued_ats[self.slot]

    @enqueued_at.setter
    def enqueued_at(self, value: float) -> None:
        self.pool.enqueued_ats[self.slot] = value

    @property
    def flow_id(self) -> int:
        """The pool-interned small-integer flow identity."""
        return self.pool.flow_ids[self.slot]


class PacketPool:
    """Preallocated parallel arrays of per-packet hot state.

    Typecodes are fixed-width so the NumPy views are portable:
    ``q`` (int64) for sizes and flow ids, ``b`` (int8) for the 6-bit
    DSCP and 2-bit ECN fields, ``d`` (float64) for sojourn stamps.
    """

    __slots__ = (
        "capacity",
        "sizes",
        "dscps",
        "ecns",
        "enqueued_ats",
        "flow_ids",
        "in_use",
        "_free",
        "_views",
        "_flow_intern",
        "_flow_keys",
        "acquired",
        "released",
        "recycled_views",
        "overflow",
    )

    def __init__(self, capacity: int = DEFAULT_POOL_SLOTS) -> None:
        if capacity <= 0:
            raise ValueError("pool capacity must be positive")
        self.capacity = capacity
        zero_q = array("q", [0]) * capacity
        self.sizes = array("q", zero_q)
        self.flow_ids = array("q", zero_q)
        self.dscps = array("b", bytes(capacity))
        self.ecns = array("b", bytes(capacity))
        self.in_use = array("b", bytes(capacity))
        self.enqueued_ats = array("d", [0.0]) * capacity
        # Popping from the tail hands out low slots first, keeping the
        # live region of the arrays dense (cache-friendly scans).
        self._free: List[int] = list(range(capacity - 1, -1, -1))
        self._views: List[Optional[SlabPacket]] = [None] * capacity
        self._flow_intern: Dict[FlowKey, int] = {}
        self._flow_keys: List[FlowKey] = []
        #: Lifetime counters for the allocation audit.
        self.acquired = 0
        self.released = 0
        self.recycled_views = 0
        self.overflow = 0

    # -- flow interning ---------------------------------------------------

    def intern_flow(self, key: FlowKey) -> int:
        """Map a 5-tuple to a dense small-integer flow id."""
        fid = self._flow_intern.get(key)
        if fid is None:
            fid = len(self._flow_keys)
            self._flow_intern[key] = fid
            self._flow_keys.append(key)
        return fid

    def flow_key_of(self, flow_id: int) -> FlowKey:
        return self._flow_keys[flow_id]

    @property
    def flow_count(self) -> int:
        return len(self._flow_keys)

    # -- slot lifecycle ---------------------------------------------------

    def acquire(
        self,
        src: int,
        dst: int,
        sport: int,
        dport: int,
        proto: int,
        size: int,
        payload: Any = None,
        dscp: int = 0,
        ttl: int = DEFAULT_TTL,
        created_at: float = 0.0,
        ecn: int = ECN_NOT_ECT,
    ) -> Packet:
        """A live packet for one datagram — slab-backed when a slot is
        free, a plain heap :class:`Packet` otherwise."""
        if size <= 0:
            raise ValueError(f"packet size must be positive, got {size}")
        free = self._free
        if not free:
            self.overflow += 1
            return Packet(
                src, dst, sport, dport, proto, size,
                payload, dscp, ttl, created_at, ecn,
            )
        slot = free.pop()
        self.sizes[slot] = size
        self.dscps[slot] = dscp
        self.ecns[slot] = ecn
        self.enqueued_ats[slot] = 0.0
        self.flow_ids[slot] = self.intern_flow(
            FlowKey(src, dst, sport, dport, proto)
        )
        self.in_use[slot] = 1
        view = self._views[slot]
        if view is None:
            view = SlabPacket.__new__(SlabPacket)
            view.pool = self
            view.slot = slot
            self._views[slot] = view
        else:
            self.recycled_views += 1
        view.src = src
        view.dst = dst
        view.sport = sport
        view.dport = dport
        view.proto = proto
        view.payload = payload
        view.ttl = ttl
        view.uid = next(_uid_counter)
        view.created_at = created_at
        self.acquired += 1
        return view

    def release(self, packet: Packet) -> None:
        """Return ``packet``'s slot to the free list.

        Plain packets (overflow fallbacks, foreign construction) are
        ignored, so callers may release unconditionally.
        """
        if type(packet) is not SlabPacket or packet.pool is not self:
            return
        slot = packet.slot
        if not self.in_use[slot]:
            return  # double release — already back on the free list
        packet.payload = None  # drop the reference; the slot may idle
        self.in_use[slot] = 0
        self._free.append(slot)
        self.released += 1

    @property
    def in_flight(self) -> int:
        """Slots currently out (live packets plus leaked drop slots)."""
        return self.capacity - len(self._free)

    # -- array readers ----------------------------------------------------

    def sizes_view(self):
        """Zero-copy int64 view of the size column (NumPy required)."""
        return _np.frombuffer(self.sizes, dtype=_np.int64)

    def dscps_view(self):
        return _np.frombuffer(self.dscps, dtype=_np.int8)

    def ecns_view(self):
        return _np.frombuffer(self.ecns, dtype=_np.int8)

    def enqueued_ats_view(self):
        return _np.frombuffer(self.enqueued_ats, dtype=_np.float64)

    def flow_ids_view(self):
        return _np.frombuffer(self.flow_ids, dtype=_np.int64)

    def in_use_view(self):
        return _np.frombuffer(self.in_use, dtype=_np.int8)

    @staticmethod
    def numpy_available() -> bool:
        return _np is not None

    def flow_bytes(self) -> Dict[FlowKey, int]:
        """In-flight bytes per flow, one vectorised pass over the slab
        (pure-python fallback when NumPy is absent)."""
        if _np is not None:
            used = self.in_use_view().astype(bool)
            if not used.any():
                return {}
            totals = _np.bincount(
                self.flow_ids_view()[used],
                weights=self.sizes_view()[used],
                minlength=len(self._flow_keys),
            )
            return {
                self._flow_keys[fid]: int(total)
                for fid, total in enumerate(totals)
                if total
            }
        totals: Dict[int, int] = {}
        for slot in range(self.capacity):
            if self.in_use[slot]:
                fid = self.flow_ids[slot]
                totals[fid] = totals.get(fid, 0) + self.sizes[slot]
        return {self._flow_keys[fid]: b for fid, b in totals.items()}

    def stats(self) -> dict:
        """JSON-ready counters for telemetry snapshots and the
        allocation audit."""
        return {
            "capacity": self.capacity,
            "in_flight": self.in_flight,
            "acquired": self.acquired,
            "released": self.released,
            "recycled_views": self.recycled_views,
            "overflow": self.overflow,
            "flows": len(self._flow_keys),
        }
