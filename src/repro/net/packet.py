"""Packets and flow identification.

A :class:`Packet` models one IP datagram on the wire. Payload bytes are
never materialised — ``size`` carries the wire length (headers
included) and ``payload`` carries the protocol control object (a TCP
segment or UDP datagram descriptor).
"""

from __future__ import annotations

import itertools
from typing import Any, NamedTuple, Optional

__all__ = [
    "Packet",
    "FlowKey",
    "PROTO_TCP",
    "PROTO_UDP",
    "IP_HEADER_BYTES",
    "TCP_HEADER_BYTES",
    "UDP_HEADER_BYTES",
    "DEFAULT_TTL",
]

PROTO_TCP = 6
PROTO_UDP = 17

#: Header sizes used for wire-length accounting (no options).
IP_HEADER_BYTES = 20
TCP_HEADER_BYTES = 20
UDP_HEADER_BYTES = 8

DEFAULT_TTL = 64

_uid_counter = itertools.count(1)


class FlowKey(NamedTuple):
    """The classic 5-tuple identifying a transport flow."""

    src: int
    dst: int
    sport: int
    dport: int
    proto: int

    def reversed(self) -> "FlowKey":
        """The key of the reverse-direction flow."""
        return FlowKey(self.dst, self.src, self.dport, self.sport, self.proto)


class Packet:
    """One simulated IP packet.

    Attributes
    ----------
    src, dst:
        Integer node addresses.
    sport, dport:
        Transport ports.
    proto:
        ``PROTO_TCP`` or ``PROTO_UDP``.
    dscp:
        DiffServ codepoint (see :mod:`repro.diffserv.dscp`).
    size:
        Total wire length in bytes, headers included.
    payload:
        Protocol control object (opaque to the network layer).
    """

    __slots__ = (
        "src",
        "dst",
        "sport",
        "dport",
        "proto",
        "dscp",
        "size",
        "payload",
        "ttl",
        "uid",
        "created_at",
    )

    def __init__(
        self,
        src: int,
        dst: int,
        sport: int,
        dport: int,
        proto: int,
        size: int,
        payload: Any = None,
        dscp: int = 0,
        ttl: int = DEFAULT_TTL,
        created_at: float = 0.0,
    ) -> None:
        if size <= 0:
            raise ValueError(f"packet size must be positive, got {size}")
        self.src = src
        self.dst = dst
        self.sport = sport
        self.dport = dport
        self.proto = proto
        self.dscp = dscp
        self.size = size
        self.payload = payload
        self.ttl = ttl
        self.uid = next(_uid_counter)
        self.created_at = created_at

    @property
    def flow_key(self) -> FlowKey:
        return FlowKey(self.src, self.dst, self.sport, self.dport, self.proto)

    def __repr__(self) -> str:
        proto = {PROTO_TCP: "tcp", PROTO_UDP: "udp"}.get(self.proto, self.proto)
        return (
            f"<Packet #{self.uid} {proto} {self.src}:{self.sport}->"
            f"{self.dst}:{self.dport} {self.size}B dscp={self.dscp}>"
        )
