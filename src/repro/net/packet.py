"""Packets and flow identification.

A :class:`Packet` models one IP datagram on the wire. Payload bytes are
never materialised — ``size`` carries the wire length (headers
included) and ``payload`` carries the protocol control object (a TCP
segment or UDP datagram descriptor).
"""

from __future__ import annotations

import itertools
from typing import Any, NamedTuple, Optional

__all__ = [
    "Packet",
    "FlowKey",
    "PROTO_TCP",
    "PROTO_UDP",
    "IP_HEADER_BYTES",
    "TCP_HEADER_BYTES",
    "UDP_HEADER_BYTES",
    "DEFAULT_TTL",
    "ECN_NOT_ECT",
    "ECN_ECT1",
    "ECN_ECT0",
    "ECN_CE",
]

PROTO_TCP = 6
PROTO_UDP = 17

#: Header sizes used for wire-length accounting (no options).
IP_HEADER_BYTES = 20
TCP_HEADER_BYTES = 20
UDP_HEADER_BYTES = 8

DEFAULT_TTL = 64

# ECN field codepoints (RFC 3168, the two low bits of the IP TOS byte).
ECN_NOT_ECT = 0  # transport is not ECN-capable
ECN_ECT1 = 1  # ECN-capable transport, codepoint 1
ECN_ECT0 = 2  # ECN-capable transport, codepoint 0 (the common one)
ECN_CE = 3  # congestion experienced — set by an AQM instead of dropping

_uid_counter = itertools.count(1)


class FlowKey(NamedTuple):
    """The classic 5-tuple identifying a transport flow."""

    src: int
    dst: int
    sport: int
    dport: int
    proto: int

    def reversed(self) -> "FlowKey":
        """The key of the reverse-direction flow."""
        return FlowKey(self.dst, self.src, self.dport, self.sport, self.proto)


class Packet:
    """One simulated IP packet.

    Attributes
    ----------
    src, dst:
        Integer node addresses.
    sport, dport:
        Transport ports.
    proto:
        ``PROTO_TCP`` or ``PROTO_UDP``.
    dscp:
        DiffServ codepoint (see :mod:`repro.diffserv.dscp`).
    ecn:
        ECN field (``ECN_NOT_ECT``/``ECN_ECT0``/``ECN_ECT1``/``ECN_CE``).
        Routers may rewrite ECT to CE in place of an early drop.
    enqueued_at:
        Sojourn stamp: the sim time this packet entered the queue it is
        currently waiting in. Written by delay-measuring qdiscs (CoDel,
        PIE, DualPI2, WRED) on enqueue and read back at dequeue; it is
        per-hop scratch state, not an end-to-end timestamp.
    size:
        Total wire length in bytes, headers included.
    payload:
        Protocol control object (opaque to the network layer).
    """

    __slots__ = (
        "src",
        "dst",
        "sport",
        "dport",
        "proto",
        "dscp",
        "size",
        "payload",
        "ttl",
        "uid",
        "created_at",
        "ecn",
        "enqueued_at",
    )

    def __init__(
        self,
        src: int,
        dst: int,
        sport: int,
        dport: int,
        proto: int,
        size: int,
        payload: Any = None,
        dscp: int = 0,
        ttl: int = DEFAULT_TTL,
        created_at: float = 0.0,
        ecn: int = ECN_NOT_ECT,
    ) -> None:
        if size <= 0:
            raise ValueError(f"packet size must be positive, got {size}")
        self.src = src
        self.dst = dst
        self.sport = sport
        self.dport = dport
        self.proto = proto
        self.dscp = dscp
        self.size = size
        self.payload = payload
        self.ttl = ttl
        self.uid = next(_uid_counter)
        self.created_at = created_at
        self.ecn = ecn
        self.enqueued_at = 0.0

    @property
    def flow_key(self) -> FlowKey:
        return FlowKey(self.src, self.dst, self.sport, self.dport, self.proto)

    def __repr__(self) -> str:
        proto = {PROTO_TCP: "tcp", PROTO_UDP: "udp"}.get(self.proto, self.proto)
        return (
            f"<Packet #{self.uid} {proto} {self.src}:{self.sport}->"
            f"{self.dst}:{self.dport} {self.size}B dscp={self.dscp}>"
        )
