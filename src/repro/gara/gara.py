"""The GARA facade: uniform reservation calls over typed managers.

"GARA defines APIs that allows users and applications to manipulate
reservations of different resources in uniform ways. For example,
essentially the same calls are used to make an immediate or advance
reservation of a network or CPU resource" (§4.2). Co-reservation is
all-or-nothing across resource types, run as a two-phase commit
(prepare every branch, then commit every branch) so a crashed manager
mid-transaction cannot strand claims, and idempotency keys make
retries after a lost acknowledgement safe.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Tuple

from ..kernel import Simulator
from ..resilience.twophase import TwoPhaseCoordinator
from .cpu_manager import CpuReservationSpec, DsrtCpuManager
from .manager import ResourceManager
from .network_manager import DiffServNetworkManager, NetworkReservationSpec
from .reservation import Reservation, ReservationError
from .storage_manager import DpssStorageManager, StorageReservationSpec

__all__ = ["Gara"]

_SPEC_TYPES = {
    NetworkReservationSpec: "network",
    CpuReservationSpec: "cpu",
    StorageReservationSpec: "storage",
}


class Gara:
    """Entry point applications (and the MPI QoS agent) talk to."""

    def __init__(self, sim: Simulator) -> None:
        self.sim = sim
        self._managers: Dict[str, ResourceManager] = {}
        #: Two-phase commit driver for co-reservations.
        self.coordinator = TwoPhaseCoordinator(self)

    def register_manager(self, manager: ResourceManager) -> None:
        if manager.resource_type in self._managers:
            raise ValueError(
                f"manager for {manager.resource_type!r} already registered"
            )
        self._managers[manager.resource_type] = manager

    def manager(self, resource_type: str) -> ResourceManager:
        try:
            return self._managers[resource_type]
        except KeyError:
            raise ReservationError(
                f"no resource manager for {resource_type!r}"
            ) from None

    def manager_for_spec(self, spec: Any) -> ResourceManager:
        for klass, rtype in _SPEC_TYPES.items():
            if isinstance(spec, klass):
                return self.manager(rtype)
        raise ReservationError(f"unknown reservation spec type: {type(spec)}")

    # Backwards-compatible private alias.
    _manager_for_spec = manager_for_spec

    # -- uniform API -----------------------------------------------------

    def reserve(
        self,
        spec: Any,
        start: Optional[float] = None,
        duration: Optional[float] = None,
    ) -> Reservation:
        """Immediate (``start=None``) or advance reservation of any
        registered resource type."""
        return self.manager_for_spec(spec).request(spec, start, duration)

    def reserve_many(
        self,
        requests: List[Tuple[Any, Optional[float], Optional[float]]],
        idempotency_key: Optional[str] = None,
    ) -> List[Reservation]:
        """Co-reservation: each item is ``(spec, start, duration)``.

        All-or-nothing via two-phase commit: every branch is prepared
        (capacity claimed, nothing enabled), then every branch is
        committed. Any veto — admission failure or a manager that does
        not answer within the coordinator's phase timeout — aborts the
        transaction with zero residual claims, and the error
        propagates. With ``idempotency_key``, retrying a transaction
        whose acknowledgement was lost returns the recorded outcome
        instead of double-booking the resources.
        """
        return self.coordinator.co_reserve(
            requests, idempotency_key=idempotency_key
        )

    def cancel(self, reservation: Reservation) -> None:
        reservation.manager.cancel(reservation)

    def modify(self, reservation: Reservation, **changes: Any) -> None:
        reservation.manager.modify(reservation, **changes)

    def bind(self, reservation: Reservation, binding: Any) -> None:
        reservation.manager.bind(reservation, binding)


def build_standard_gara(
    sim: Simulator,
    domain=None,
    broker=None,
) -> Gara:
    """Convenience: a Gara with CPU + storage managers, plus a network
    manager when a DiffServ domain and broker are supplied."""
    gara = Gara(sim)
    if domain is not None and broker is not None:
        gara.register_manager(DiffServNetworkManager(sim, domain, broker))
    gara.register_manager(DsrtCpuManager(sim))
    gara.register_manager(DpssStorageManager(sim))
    return gara
