"""The GARA facade: uniform reservation calls over typed managers.

"GARA defines APIs that allows users and applications to manipulate
reservations of different resources in uniform ways. For example,
essentially the same calls are used to make an immediate or advance
reservation of a network or CPU resource" (§4.2). Co-reservation is
all-or-nothing across resource types.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Tuple

from ..kernel import Simulator
from .cpu_manager import CpuReservationSpec, DsrtCpuManager
from .manager import ResourceManager
from .network_manager import DiffServNetworkManager, NetworkReservationSpec
from .reservation import Reservation, ReservationError
from .storage_manager import DpssStorageManager, StorageReservationSpec

__all__ = ["Gara"]

_SPEC_TYPES = {
    NetworkReservationSpec: "network",
    CpuReservationSpec: "cpu",
    StorageReservationSpec: "storage",
}


class Gara:
    """Entry point applications (and the MPI QoS agent) talk to."""

    def __init__(self, sim: Simulator) -> None:
        self.sim = sim
        self._managers: Dict[str, ResourceManager] = {}

    def register_manager(self, manager: ResourceManager) -> None:
        if manager.resource_type in self._managers:
            raise ValueError(
                f"manager for {manager.resource_type!r} already registered"
            )
        self._managers[manager.resource_type] = manager

    def manager(self, resource_type: str) -> ResourceManager:
        try:
            return self._managers[resource_type]
        except KeyError:
            raise ReservationError(
                f"no resource manager for {resource_type!r}"
            ) from None

    def _manager_for_spec(self, spec: Any) -> ResourceManager:
        for klass, rtype in _SPEC_TYPES.items():
            if isinstance(spec, klass):
                return self.manager(rtype)
        raise ReservationError(f"unknown reservation spec type: {type(spec)}")

    # -- uniform API -----------------------------------------------------

    def reserve(
        self,
        spec: Any,
        start: Optional[float] = None,
        duration: Optional[float] = None,
    ) -> Reservation:
        """Immediate (``start=None``) or advance reservation of any
        registered resource type."""
        return self._manager_for_spec(spec).request(spec, start, duration)

    def reserve_many(
        self, requests: List[Tuple[Any, Optional[float], Optional[float]]]
    ) -> List[Reservation]:
        """Co-reservation: each item is ``(spec, start, duration)``.

        All-or-nothing — on any admission failure, reservations already
        granted in this call are cancelled and the error propagates.
        """
        granted: List[Reservation] = []
        try:
            for spec, start, duration in requests:
                granted.append(self.reserve(spec, start, duration))
        except ReservationError:
            for reservation in granted:
                reservation.cancel()
            raise
        return granted

    def cancel(self, reservation: Reservation) -> None:
        reservation.manager.cancel(reservation)

    def modify(self, reservation: Reservation, **changes: Any) -> None:
        reservation.manager.modify(reservation, **changes)

    def bind(self, reservation: Reservation, binding: Any) -> None:
        reservation.manager.bind(reservation, binding)


def build_standard_gara(
    sim: Simulator,
    domain=None,
    broker=None,
) -> Gara:
    """Convenience: a Gara with CPU + storage managers, plus a network
    manager when a DiffServ domain and broker are supplied."""
    gara = Gara(sim)
    if domain is not None and broker is not None:
        gara.register_manager(DiffServNetworkManager(sim, domain, broker))
    gara.register_manager(DsrtCpuManager(sim))
    gara.register_manager(DpssStorageManager(sim))
    return gara
