"""The local resource manager (LRAM) skeleton.

"Requests to this resource manager are made via an internal local
resource manager API and result in calls to functions that add, modify,
or delete slot table entries; timer-based callbacks generate call-outs
to resource-specific routines to enable and cancel reservations. Note
that only certain elements of this resource manager need to be replaced
to instantiate a new resource interface" (§4.2).

Concrete managers (DiffServ network, DSRT CPU, DPSS storage) override
the four ``_do_*`` hooks.
"""

from __future__ import annotations

from typing import Any, Dict, Optional

from ..kernel import Simulator
from .reservation import (
    ACTIVE,
    CANCELLED,
    EXPIRED,
    PENDING,
    Reservation,
    ReservationError,
)

__all__ = ["ResourceManager"]


class ResourceManager:
    """Base class: admission via slot tables + timer-driven enforcement."""

    #: Resource-type tag used by the Gara facade for dispatch.
    resource_type = "abstract"

    def __init__(self, sim: Simulator) -> None:
        self.sim = sim
        self._reservations: Dict[int, Reservation] = {}
        self._timers: Dict[int, list] = {}

    # ------------------------------------------------------------------
    # Hooks for concrete resource managers
    # ------------------------------------------------------------------

    def _do_admit(self, spec: Any, start: float, end: float, reservation: Reservation) -> None:
        """Claim slot-table capacity; raise ReservationError if full."""
        raise NotImplementedError

    def _do_release(self, reservation: Reservation) -> None:
        """Release whatever ``_do_admit`` claimed."""
        raise NotImplementedError

    def _do_enable(self, reservation: Reservation) -> None:
        """Install enforcement (router rules, scheduler settings...)."""
        raise NotImplementedError

    def _do_disable(self, reservation: Reservation) -> None:
        """Remove enforcement."""
        raise NotImplementedError

    def _do_bind(self, reservation: Reservation, binding: Any) -> None:
        """Attach a flow/process binding (may be called while active)."""
        raise NotImplementedError

    def _do_modify(self, reservation: Reservation, changes: Dict[str, Any]) -> None:
        """Apply a parameter change to an admitted reservation."""
        raise NotImplementedError

    # ------------------------------------------------------------------
    # Public API
    # ------------------------------------------------------------------

    def request(
        self,
        spec: Any,
        start: Optional[float] = None,
        duration: Optional[float] = None,
    ) -> Reservation:
        """Make an immediate (``start=None``) or advance reservation.

        ``duration=None`` holds the reservation until cancelled.
        """
        now = self.sim.now
        start_t = now if start is None else float(start)
        if start_t < now:
            raise ReservationError(f"start {start_t} is in the past (now={now})")
        end_t = float("inf") if duration is None else start_t + float(duration)
        if end_t <= start_t:
            raise ReservationError("duration must be positive")
        reservation = Reservation(self, spec, start_t, end_t)
        self._do_admit(spec, start_t, end_t, reservation)  # may raise
        self._reservations[reservation.reservation_id] = reservation
        timers = []
        if start_t <= now:
            self._enable(reservation)
        else:
            timers.append(self.sim.call_at(start_t, self._enable, reservation))
        if end_t != float("inf"):
            timers.append(self.sim.call_at(end_t, self._expire, reservation))
        self._timers[reservation.reservation_id] = timers
        return reservation

    def cancel(self, reservation: Reservation) -> None:
        if reservation.state in (CANCELLED, EXPIRED):
            return
        if reservation.state == ACTIVE:
            self._do_disable(reservation)
        self._do_release(reservation)
        self._drop(reservation)
        reservation._transition(CANCELLED)

    def modify(self, reservation: Reservation, **changes: Any) -> None:
        if reservation.state in (CANCELLED, EXPIRED):
            raise ReservationError(f"cannot modify {reservation.state} reservation")
        self._do_modify(reservation, changes)

    def bind(self, reservation: Reservation, binding: Any) -> None:
        """Bind a flow/process to the reservation (claim step)."""
        if reservation.state in (CANCELLED, EXPIRED):
            raise ReservationError(f"cannot bind to {reservation.state} reservation")
        reservation.bindings.append(binding)
        self._do_bind(reservation, binding)

    def reservations(self) -> list:
        return list(self._reservations.values())

    # ------------------------------------------------------------------
    # Timer callbacks
    # ------------------------------------------------------------------

    def _enable(self, reservation: Reservation) -> None:
        if reservation.state != PENDING:
            return
        self._do_enable(reservation)
        reservation._transition(ACTIVE)

    def _expire(self, reservation: Reservation) -> None:
        if reservation.state != ACTIVE:
            return
        self._do_disable(reservation)
        self._do_release(reservation)
        self._drop(reservation)
        reservation._transition(EXPIRED)

    def _drop(self, reservation: Reservation) -> None:
        self._reservations.pop(reservation.reservation_id, None)
        for timer in self._timers.pop(reservation.reservation_id, ()):
            timer.cancel()
