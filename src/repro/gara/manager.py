"""The local resource manager (LRAM) skeleton.

"Requests to this resource manager are made via an internal local
resource manager API and result in calls to functions that add, modify,
or delete slot table entries; timer-based callbacks generate call-outs
to resource-specific routines to enable and cancel reservations. Note
that only certain elements of this resource manager need to be replaced
to instantiate a new resource interface" (§4.2).

Concrete managers (DiffServ network, DSRT CPU, DPSS storage) override
the four ``_do_*`` hooks.

Two-phase participation: a manager is also a branch participant in
two-phase co-reservations (:class:`~repro.resilience.TwoPhaseCoordinator`).
:meth:`prepare` admits against the slot table *without* registering or
enabling anything; :meth:`commit` finalises (registers, arms timers,
installs enforcement) and :meth:`abort` releases the claim. A plain
:meth:`request` is simply prepare immediately followed by commit.

Crash model: :meth:`crash` marks the manager's control session dead —
every control call then raises :class:`ManagerUnavailable` until
:meth:`restart`. The manager's slot tables are modelled as durable
(they survive the restart); only its availability is interrupted. The
broker demonstrates the full lose-state-and-replay recovery path.
"""

from __future__ import annotations

from typing import Any, Dict, Optional

from ..kernel import Simulator
from .reservation import (
    ACTIVE,
    CANCELLED,
    EXPIRED,
    PENDING,
    Reservation,
    ReservationError,
)

__all__ = ["ManagerUnavailable", "PreparedReservation", "ResourceManager"]


class ManagerUnavailable(ReservationError):
    """The resource manager is down; the control call never ran."""


class PreparedReservation:
    """Phase-one branch of a two-phase co-reservation.

    Holds the admitted-but-dormant reservation between prepare and
    commit/abort. States: ``prepared`` -> ``committed`` | ``aborted``.
    """

    __slots__ = ("manager", "reservation", "state")

    def __init__(self, manager: "ResourceManager", reservation: Reservation) -> None:
        self.manager = manager
        self.reservation = reservation
        self.state = "prepared"

    def __repr__(self) -> str:
        return (
            f"<PreparedReservation {self.state} "
            f"{self.manager.resource_type} #{self.reservation.reservation_id}>"
        )


class ResourceManager:
    """Base class: admission via slot tables + timer-driven enforcement."""

    #: Resource-type tag used by the Gara facade for dispatch.
    resource_type = "abstract"

    def __init__(self, sim: Simulator) -> None:
        self.sim = sim
        #: False while the control session is crashed.
        self.alive = True
        # Recovery statistics (scraped by repro.telemetry).
        self.crashes = 0
        self.restarts = 0
        self._reservations: Dict[int, Reservation] = {}
        self._timers: Dict[int, list] = {}

    # ------------------------------------------------------------------
    # Hooks for concrete resource managers
    # ------------------------------------------------------------------

    def _do_admit(self, spec: Any, start: float, end: float, reservation: Reservation) -> None:
        """Claim slot-table capacity; raise ReservationError if full."""
        raise NotImplementedError

    def _do_release(self, reservation: Reservation) -> None:
        """Release whatever ``_do_admit`` claimed."""
        raise NotImplementedError

    def _do_enable(self, reservation: Reservation) -> None:
        """Install enforcement (router rules, scheduler settings...)."""
        raise NotImplementedError

    def _do_disable(self, reservation: Reservation) -> None:
        """Remove enforcement."""
        raise NotImplementedError

    def _do_bind(self, reservation: Reservation, binding: Any) -> None:
        """Attach a flow/process binding (may be called while active)."""
        raise NotImplementedError

    def _do_modify(self, reservation: Reservation, changes: Dict[str, Any]) -> None:
        """Apply a parameter change to an admitted reservation."""
        raise NotImplementedError

    # ------------------------------------------------------------------
    # Public API
    # ------------------------------------------------------------------

    def request(
        self,
        spec: Any,
        start: Optional[float] = None,
        duration: Optional[float] = None,
    ) -> Reservation:
        """Make an immediate (``start=None``) or advance reservation.

        ``duration=None`` holds the reservation until cancelled.
        """
        return self.commit(self.prepare(spec, start, duration))

    def prepare(
        self,
        spec: Any,
        start: Optional[float] = None,
        duration: Optional[float] = None,
    ) -> PreparedReservation:
        """Phase one: admit against the slot table without registering,
        arming timers, or enabling enforcement. The claimed capacity is
        held until :meth:`commit` or :meth:`abort`."""
        self._require_alive()
        now = self.sim.now
        start_t = now if start is None else float(start)
        if start_t < now:
            raise ReservationError(f"start {start_t} is in the past (now={now})")
        end_t = float("inf") if duration is None else start_t + float(duration)
        if end_t <= start_t:
            raise ReservationError("duration must be positive")
        reservation = Reservation(self, spec, start_t, end_t)
        self._do_admit(spec, start_t, end_t, reservation)  # may raise
        return PreparedReservation(self, reservation)

    def commit(self, prepared: PreparedReservation) -> Reservation:
        """Phase two: finalise a prepared branch — register the
        reservation, arm its start/expiry timers, and enable
        enforcement if the start time has arrived."""
        self._require_alive()
        if prepared.state != "prepared":
            raise ReservationError(
                f"cannot commit a {prepared.state} transaction branch"
            )
        prepared.state = "committed"
        reservation = prepared.reservation
        self._reservations[reservation.reservation_id] = reservation
        now = self.sim.now
        timers = []
        if reservation.start <= now:
            self._enable(reservation)
        else:
            timers.append(
                self.sim.call_at(reservation.start, self._enable, reservation)
            )
        if reservation.end != float("inf"):
            # A branch committed after its window closed (e.g. a slow
            # two-phase round) expires immediately rather than raising.
            timers.append(
                self.sim.call_at(
                    max(now, reservation.end), self._expire, reservation
                )
            )
        self._timers[reservation.reservation_id] = timers
        return reservation

    def abort(self, prepared: PreparedReservation) -> None:
        """Roll a prepared branch back, releasing its claim. Idempotent
        — aborting a committed or already-aborted branch is a no-op
        (a committed branch is rolled back via :meth:`cancel`)."""
        if prepared.state != "prepared":
            return
        prepared.state = "aborted"
        self._do_release(prepared.reservation)
        prepared.reservation._transition(CANCELLED)

    def cancel(self, reservation: Reservation) -> None:
        self._require_alive()
        if reservation.state in (CANCELLED, EXPIRED):
            return
        if reservation.state == ACTIVE:
            self._do_disable(reservation)
        self._do_release(reservation)
        self._drop(reservation)
        reservation._transition(CANCELLED)

    def modify(self, reservation: Reservation, **changes: Any) -> None:
        self._require_alive()
        if reservation.state in (CANCELLED, EXPIRED):
            raise ReservationError(f"cannot modify {reservation.state} reservation")
        self._do_modify(reservation, changes)

    def bind(self, reservation: Reservation, binding: Any) -> None:
        """Bind a flow/process to the reservation (claim step)."""
        self._require_alive()
        if reservation.state in (CANCELLED, EXPIRED):
            raise ReservationError(f"cannot bind to {reservation.state} reservation")
        reservation.bindings.append(binding)
        self._do_bind(reservation, binding)

    # ------------------------------------------------------------------
    # Crash model
    # ------------------------------------------------------------------

    def _require_alive(self) -> None:
        if not self.alive:
            raise ManagerUnavailable(
                f"{self.resource_type} resource manager is down"
            )

    def crash(self) -> None:
        """Kill the control session: every control call raises
        :class:`ManagerUnavailable` until :meth:`restart`. Enforcement
        already installed in the data plane keeps running. Idempotent."""
        if not self.alive:
            return
        self.alive = False
        self.crashes += 1

    def restart(self) -> None:
        """Bring the control session back (slot-table state is modelled
        as durable for managers). Idempotent."""
        if self.alive:
            return
        self.alive = True
        self.restarts += 1

    def reservations(self) -> list:
        return list(self._reservations.values())

    # ------------------------------------------------------------------
    # Timer callbacks
    # ------------------------------------------------------------------

    def _enable(self, reservation: Reservation) -> None:
        if reservation.state != PENDING:
            return
        self._do_enable(reservation)
        reservation._transition(ACTIVE)

    def _expire(self, reservation: Reservation) -> None:
        if reservation.state != ACTIVE:
            return
        self._do_disable(reservation)
        self._do_release(reservation)
        self._drop(reservation)
        reservation._transition(EXPIRED)

    def _drop(self, reservation: Reservation) -> None:
        self._reservations.pop(reservation.reservation_id, None)
        for timer in self._timers.pop(reservation.reservation_id, ()):
            timer.cancel()
