"""The DiffServ network resource manager.

Translates GARA network reservations into edge-router configuration:
"The GARA DS module incorporates configuration rules that allow it to
set these values correctly. In brief, we configure the token bucket
depth to be depth = bandwidth * delay ... However, to allow for larger
bursts in traffic, we currently use bandwidth/40" (§4.3).

A reservation is made for a ``(src, dst, bandwidth)`` triple; actual
5-tuples are *bound* to it afterwards ("MPICH-GQ can use GARA
mechanisms to reserve shared resources ... and then bind specific flows
(sockets) and processes to those reservations", §4.2). All bound flows
of one reservation share the same token bucket per edge.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Optional

from ..diffserv import DiffServDomain, FlowSpec, paper_bucket_depth
from ..diffserv.token_bucket import NORMAL_DEPTH_DIVISOR
from ..kernel import Simulator
from ..net.node import Host
from .broker import BandwidthBroker
from .manager import ResourceManager
from .reservation import ACTIVE, Reservation, ReservationError

__all__ = ["NetworkReservationSpec", "DiffServNetworkManager"]


@dataclass
class NetworkReservationSpec:
    """What an application asks the network manager for.

    ``bucket_divisor`` selects the paper's depth rule variants:
    40 = "normal", 4 = "large" (Table 1).
    """

    src: Host
    dst: Host
    bandwidth: float  # bits/second of premium service
    bucket_divisor: float = NORMAL_DEPTH_DIVISOR
    #: Explicit bucket depth in bytes (overrides the divisor rule).
    bucket_depth_bytes: Optional[float] = None
    #: Principal charged against broker policy quotas (None = unbound).
    owner: Optional[str] = None

    @property
    def depth_bytes(self) -> float:
        if self.bucket_depth_bytes is not None:
            return self.bucket_depth_bytes
        return paper_bucket_depth(self.bandwidth, self.bucket_divisor)

    def __repr__(self) -> str:
        return (
            f"NetworkReservationSpec({self.src.name}->{self.dst.name} "
            f"{self.bandwidth / 1e3:.0f}Kb/s depth={self.depth_bytes:.0f}B)"
        )


class DiffServNetworkManager(ResourceManager):
    """Admission via the bandwidth broker; enforcement via DiffServ."""

    resource_type = "network"

    def __init__(
        self,
        sim: Simulator,
        domain: DiffServDomain,
        broker: BandwidthBroker,
    ) -> None:
        super().__init__(sim)
        self.domain = domain
        self.broker = broker
        self._claims: Dict[int, list] = {}
        self._handles: Dict[int, Any] = {}
        # Releases that found the broker dead, queued write-behind and
        # flushed when the broker re-registers us via restart_listeners.
        self._pending_releases: list = []
        broker.restart_listeners.append(self._on_broker_restart)

    # -- ResourceManager hooks ---------------------------------------------

    def _do_admit(self, spec, start, end, reservation) -> None:
        if not isinstance(spec, NetworkReservationSpec):
            raise ReservationError(f"not a network spec: {spec!r}")
        claims = self.broker.admit_path(
            spec.src, spec.dst, spec.bandwidth, start, end, owner=spec.owner
        )
        self._claims[reservation.reservation_id] = claims

    def _do_release(self, reservation) -> None:
        claims = self._claims.pop(reservation.reservation_id, None)
        if not claims:
            return
        if self.broker.alive:
            self.broker.release(claims)
        else:
            # The broker lost these entries with its in-memory state,
            # but journal replay will resurrect them at restart; queue
            # the release so the flush (not the orphan GC grace) frees
            # the capacity.
            self._pending_releases.append(claims)

    def _on_broker_restart(self, broker) -> None:
        """Claim-holder half of broker recovery: flush write-behind
        releases, then prove liveness for every claim still held. A
        crashed manager cannot answer — its claims stay orphan
        candidates and the GC expunges them after the grace window."""
        if not self.alive:
            return
        pending, self._pending_releases = self._pending_releases, []
        for claims in pending:
            broker.release(claims)
        for claims in self._claims.values():
            broker.reregister(claims)

    def _do_enable(self, reservation) -> None:
        spec: NetworkReservationSpec = reservation.spec
        flows = [b for b in reservation.bindings if isinstance(b, FlowSpec)]
        if not flows:
            # Enforcement waits for the first flow binding; nothing to
            # mark yet, but the capacity is held.
            return
        handle = self.domain.install_premium_flow(
            flows, rate=spec.bandwidth, depth=spec.depth_bytes
        )
        self._handles[reservation.reservation_id] = handle

    def _do_disable(self, reservation) -> None:
        handle = self._handles.pop(reservation.reservation_id, None)
        if handle is not None:
            self.domain.remove_premium_flow(handle)

    def _do_bind(self, reservation, binding) -> None:
        if not isinstance(binding, FlowSpec):
            raise ReservationError(f"network bindings are FlowSpecs, got {binding!r}")
        if reservation.state != ACTIVE:
            return  # installed lazily at enable time
        handle = self._handles.get(reservation.reservation_id)
        if handle is None:
            handle = self.domain.install_premium_flow(
                [binding],
                rate=reservation.spec.bandwidth,
                depth=reservation.spec.depth_bytes,
            )
            self._handles[reservation.reservation_id] = handle
        else:
            self.domain.add_flow_to_aggregate(handle, binding)

    def _do_modify(self, reservation, changes) -> None:
        """Supported changes: ``bandwidth``, ``bucket_divisor``, and/or
        an explicit ``bucket_depth_bytes`` (None reverts to the divisor
        rule) — the latter is what the dynamic bucket sizer adjusts."""
        spec: NetworkReservationSpec = reservation.spec
        new_bw = changes.pop("bandwidth", spec.bandwidth)
        new_div = changes.pop("bucket_divisor", spec.bucket_divisor)
        if "bucket_depth_bytes" in changes:
            spec.bucket_depth_bytes = changes.pop("bucket_depth_bytes")
        if changes:
            raise ReservationError(f"unsupported modifications: {sorted(changes)}")
        # Re-admit at the new bandwidth (old claim released on success).
        old_claims = self._claims[reservation.reservation_id]
        self.broker.release(old_claims)
        try:
            new_claims = self.broker.admit_path(
                spec.src, spec.dst, new_bw, self.sim.now, reservation.end,
                owner=spec.owner,
            )
        except ReservationError:
            # Roll back to the old bandwidth.
            self._claims[reservation.reservation_id] = self.broker.admit_path(
                spec.src, spec.dst, spec.bandwidth, self.sim.now,
                reservation.end, owner=spec.owner,
            )
            raise
        self._claims[reservation.reservation_id] = new_claims
        spec.bandwidth = new_bw
        spec.bucket_divisor = new_div
        handle = self._handles.get(reservation.reservation_id)
        if handle is not None:
            self.domain.modify_premium_flow(
                handle, rate=new_bw, depth=spec.depth_bytes
            )

    # -- convenience ----------------------------------------------------------

    def handle_of(self, reservation: Reservation):
        """The installed :class:`PremiumFlowHandle`, if enforcement is live."""
        return self._handles.get(reservation.reservation_id)

    def claims_of(self, reservation: Reservation) -> list:
        """The broker claim records currently held for ``reservation``
        (empty once released). The lease layer uses this to detect
        claims stranded on a failed path."""
        return self._claims.get(reservation.reservation_id, [])
