"""Slot-table admission control for advance reservations.

GARA's resource manager "uses a slot table to keep track of
reservations" (§4.2, citing Degermark et al.). A :class:`SlotTable`
tracks capacity commitments over time intervals; a new reservation is
admitted iff, at every instant of its interval, the sum of overlapping
commitments plus the new amount stays within capacity.
"""

from __future__ import annotations

import itertools
from typing import Dict, List, Tuple

__all__ = ["SlotTable", "SlotEntry", "AdmissionError"]

_ids = itertools.count(1)


class AdmissionError(Exception):
    """The requested interval/amount does not fit within capacity."""


class SlotEntry:
    """One committed reservation interval.

    A ``__slots__`` class (not a dataclass): one is allocated per
    admission on the broker's fast path, where frozen-dataclass field
    assignment costs more than the admission check itself. Treat
    instances as immutable.
    """

    __slots__ = ("entry_id", "start", "end", "amount")

    def __init__(
        self, entry_id: int, start: float, end: float, amount: float
    ) -> None:
        self.entry_id = entry_id
        self.start = start
        self.end = end  # may be inf for indefinite reservations
        self.amount = amount

    def __repr__(self) -> str:
        return (
            f"SlotEntry(entry_id={self.entry_id}, start={self.start}, "
            f"end={self.end}, amount={self.amount})"
        )


class SlotTable:
    """Capacity commitments over time for one resource."""

    def __init__(self, capacity: float, name: str = "") -> None:
        if capacity <= 0:
            raise ValueError("capacity must be positive")
        self.capacity = capacity
        self.name = name
        self._entries: Dict[int, SlotEntry] = {}
        # Admission statistics (scraped by repro.telemetry).
        self.admitted_total = 0
        self.rejected_total = 0

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, entry_id: int) -> bool:
        return entry_id in self._entries

    @property
    def entries(self) -> List[SlotEntry]:
        return list(self._entries.values())

    def snapshot(self) -> Tuple:
        """Canonical value of the committed state (capacity plus every
        entry), used to assert recovery equivalence: a journal replay
        must reproduce this exactly."""
        return (
            self.name,
            self.capacity,
            tuple(
                sorted(
                    (e.entry_id, e.start, e.end, e.amount)
                    for e in self._entries.values()
                )
            ),
        )

    def usage_at(self, time: float) -> float:
        """Total committed amount at instant ``time``."""
        return sum(
            e.amount for e in self._entries.values() if e.start <= time < e.end
        )

    def max_usage(self, start: float, end: float) -> float:
        """Peak committed amount over ``[start, end)``."""
        if end <= start:
            raise ValueError("empty interval")
        if not self._entries:
            return 0.0
        overlapping = [
            e
            for e in self._entries.values()
            if e.start < end and e.end > start
        ]
        if not overlapping:
            return 0.0
        # Sweep over interval boundaries inside the window.
        points = {start}
        for e in overlapping:
            if start < e.start < end:
                points.add(e.start)
        return max(
            sum(e.amount for e in overlapping if e.start <= t < e.end)
            for t in points
        )

    def available(self, start: float, end: float) -> float:
        """Headroom over ``[start, end)``."""
        return self.capacity - self.max_usage(start, end)

    def add(self, start: float, end: float, amount: float) -> int:
        """Admit a commitment or raise :class:`AdmissionError`."""
        if amount <= 0:
            raise ValueError("amount must be positive")
        if end <= start:
            raise ValueError("empty interval")
        if self.max_usage(start, end) + amount > self.capacity + 1e-9:
            self.rejected_total += 1
            raise AdmissionError(
                f"{self.name or 'slot table'}: {amount} over [{start}, {end}) "
                f"exceeds capacity {self.capacity} "
                f"(peak usage {self.max_usage(start, end)})"
            )
        entry_id = next(_ids)
        self._entries[entry_id] = SlotEntry(entry_id, start, end, amount)
        self.admitted_total += 1
        return entry_id

    def restore(self, entry: SlotEntry) -> None:
        """Re-insert a previously granted entry during journal replay.

        No admission check runs — the entry was admitted when first
        granted and replay must reconstruct that decision verbatim,
        preserving the original entry id so claim records held by
        resource managers stay valid across the restart.
        """
        if entry.entry_id in self._entries:
            raise ValueError(
                f"{self.name or 'slot table'}: entry {entry.entry_id} "
                "already present"
            )
        self._entries[entry.entry_id] = entry
        self.admitted_total += 1

    def remove(self, entry_id: int) -> None:
        if entry_id not in self._entries:
            raise KeyError(f"no slot entry {entry_id}")
        del self._entries[entry_id]

    def modify(self, entry_id: int, start: float, end: float, amount: float) -> int:
        """Atomically replace an entry (old capacity doesn't count
        against the new request). Returns the new entry id."""
        old = self._entries.pop(entry_id, None)
        if old is None:
            raise KeyError(f"no slot entry {entry_id}")
        try:
            return self.add(start, end, amount)
        except (AdmissionError, ValueError):
            self._entries[entry_id] = old
            raise
