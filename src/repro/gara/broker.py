"""Bandwidth broker: per-link admission control for premium traffic.

"Normally, admission control is performed not by the router but by an
external QoS system, usually referred to as a bandwidth broker" (§2).
GARA adds "policy-driven management of a variety of resource types"
(§4.2): here, per-owner quotas bounding how much of the EF capacity any
one principal may hold.

Each directed link egress gets a slot table whose capacity is the EF
share of the link (premium traffic must be "carefully limited" to avoid
starving best effort). A path admission claims the same interval/amount
on every egress along the path, transactionally.

Crash tolerance
---------------
The broker is a process, and processes die. With a
:class:`~repro.resilience.Journal` attached, every committed mutation
(path admission, release, quota change, orphan collection) is logged
before the caller sees the result; :meth:`crash` wipes all in-memory
state and makes every control call fail with :class:`BrokerUnavailable`,
and :meth:`restart` replays the journal to reconstruct the exact
pre-crash slot tables, owner usage, and quotas — entry ids included, so
claim records held by resource managers stay valid across the restart.

Entries resurrected by replay are *orphan candidates* until their
holder re-registers them (:meth:`reregister`, normally from a
``restart_listeners`` callback): a claim whose owner never comes back
within ``gc_grace`` seconds is expunged by the orphan GC so a dead
client cannot strand premium capacity forever. Releasing a claim the GC
already expunged is a counted no-op (``stale_releases``), never an
error — the capacity is simply already free.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Tuple

from ..net.node import Interface, Node
from ..net.topology import Network, RouteError
from .reservation import ReservationError
from .slot_table import AdmissionError, SlotEntry, SlotTable

__all__ = ["BandwidthBroker", "BrokerUnavailable", "DEFAULT_EF_SHARE"]

#: Fraction of each link's bandwidth admissible as EF traffic.
DEFAULT_EF_SHARE = 0.7


class BrokerUnavailable(ReservationError):
    """The broker is down; the control call was never processed."""


class BandwidthBroker:
    """Admission control over the paths of a :class:`Network`.

    Parameters
    ----------
    network:
        The topology whose link egresses are brokered.
    ef_share:
        Fraction of each link's bandwidth admissible as premium.
    journal:
        Optional :class:`~repro.resilience.Journal`; when given, every
        committed mutation is logged and :meth:`restart` replays it.
    gc_grace:
        Seconds after a restart before unre-registered (orphaned)
        claims are expunged.
    """

    def __init__(
        self,
        network: Network,
        ef_share: float = DEFAULT_EF_SHARE,
        journal=None,
        gc_grace: float = 2.0,
    ) -> None:
        if not 0 < ef_share <= 1:
            raise ValueError("ef_share must be in (0, 1]")
        if gc_grace < 0:
            raise ValueError("gc_grace must be non-negative")
        self.network = network
        self.sim = network.sim
        self.ef_share = ef_share
        self.journal = journal
        self.gc_grace = gc_grace
        #: False while crashed; every control call then raises
        #: :class:`BrokerUnavailable` (releases become deaf no-ops).
        self.alive = True
        #: Called with the broker after every restart's journal replay;
        #: claim holders use this to flush write-behind releases and
        #: re-register live claims before the orphan GC grace expires.
        self.restart_listeners: List[Callable[["BandwidthBroker"], None]] = []
        # Admission statistics (scraped by repro.telemetry). The
        # journal-derivable ones (admissions/releases/orphans) are
        # volatile process state: a crash zeroes them and replay
        # restores them; rejections are not journaled and reset to 0.
        self.admissions = 0
        self.rejections = 0
        self.releases = 0
        # Recovery statistics (observer-side; survive crashes).
        self.crashes = 0
        self.restarts = 0
        self.journal_replays = 0
        self.stale_releases = 0
        self.deaf_releases = 0
        self.reregistrations = 0
        self.orphans_collected = 0
        self.orphan_paths_collected = 0
        self._tables: Dict[Interface, SlotTable] = {}
        # Policy: owner -> max fraction of any link's EF capacity.
        self._quotas: Dict[str, float] = {}
        self._owner_usage: Dict[Tuple[str, Interface], float] = {}
        # Provenance of every live entry, keyed (iface, entry_id) ->
        # (owner, bandwidth, admit_lsn). Feeds checkpoints (journal
        # compaction) and the post-replay orphan-candidate set.
        self._entry_meta: Dict[
            Tuple[Interface, int], Tuple[Optional[str], float, int]
        ] = {}
        # Entries resurrected by replay, keyed (iface, entry_id) ->
        # (owner, bandwidth, admit_lsn); awaiting re-registration.
        self._orphan_candidates: Dict[
            Tuple[Interface, int], Tuple[Optional[str], float, int]
        ] = {}
        self._gc_timer = None
        #: Snapshot taken immediately after the latest replay, before
        #: restart listeners run (recovery-equivalence checks).
        self.last_replay_snapshot = None

    def _require_alive(self) -> None:
        if not self.alive:
            raise BrokerUnavailable("bandwidth broker is down")

    def table_for(self, iface: Interface) -> SlotTable:
        table = self._tables.get(iface)
        if table is None:
            table = SlotTable(
                capacity=iface.bandwidth * self.ef_share,
                name=f"EF:{iface.node.name}.{iface.name}",
            )
            self._tables[iface] = table
        return table

    def path_available(
        self, src: Node, dst: Node, start: float, end: float
    ) -> float:
        """Admissible premium bandwidth over the path for the interval
        (0.0 if no working path currently exists or the broker is
        down)."""
        if not self.alive:
            return 0.0
        try:
            ifaces = self.network.path_interfaces(src, dst)
        except RouteError:
            return 0.0
        return min(
            self.table_for(iface).available(start, end) for iface in ifaces
        )

    def claims_valid(self, claimed) -> bool:
        """True while every claimed egress still sits on a working link.

        A claim on a downed interface reserves capacity on a path that
        no longer exists — the holder must release it and re-admit on
        the rerouted path. A dead broker validates nothing.
        """
        if not self.alive:
            return False
        return all(iface.up for iface, _entry, _owner, _bw in claimed)

    # -- policy ----------------------------------------------------------

    def set_quota(self, owner: str, fraction: float) -> None:
        """Cap ``owner`` at ``fraction`` of any link's EF capacity
        (policy-driven management). Owners without a quota are bounded
        only by the capacity itself."""
        self._require_alive()
        if not 0 < fraction <= 1:
            raise ValueError("quota fraction must be in (0, 1]")
        self._quotas[owner] = fraction
        if self.journal is not None:
            self.journal.append("quota", owner=owner, fraction=fraction)

    def quota_of(self, owner: Optional[str]) -> Optional[float]:
        return None if owner is None else self._quotas.get(owner)

    def _check_quota(
        self, owner: Optional[str], iface: Interface, bandwidth: float
    ) -> None:
        quota = self.quota_of(owner)
        if quota is None:
            return
        limit = self.table_for(iface).capacity * quota
        used = self._owner_usage.get((owner, iface), 0.0)
        if used + bandwidth > limit + 1e-9:
            raise ReservationError(
                f"policy: owner {owner!r} would hold "
                f"{(used + bandwidth) / 1e6:.1f} Mb/s on "
                f"{iface.node.name}.{iface.name}, quota is "
                f"{limit / 1e6:.1f} Mb/s"
            )

    # -- admission ----------------------------------------------------------

    def admit_path(
        self,
        src: Node,
        dst: Node,
        bandwidth: float,
        start: float,
        end: float,
        owner: Optional[str] = None,
    ) -> List[Tuple[Interface, int, Optional[str], float]]:
        """Claim ``bandwidth`` on every egress from ``src`` to ``dst``.

        All-or-nothing: on any failure (capacity or policy quota),
        already-claimed entries are rolled back — per-owner usage is
        restored to its *exact* prior value, not arithmetically
        decremented, so repeated-link paths and adversarial float
        magnitudes cannot leave residue — and
        :class:`ReservationError` is raised. Returns the claim records
        for later release.
        """
        self._require_alive()
        claimed: List[Tuple[Interface, int, Optional[str], float]] = []
        # Exact-rollback snapshot of every (owner, iface) usage value
        # this admission touches (None = key absent before).
        usage_before: Dict[Tuple[str, Interface], Optional[float]] = {}
        try:
            ifaces = self.network.path_interfaces(src, dst)
        except RouteError as exc:
            raise ReservationError(str(exc)) from exc
        try:
            for iface in ifaces:
                if owner is not None:
                    self._check_quota(owner, iface, bandwidth)
                entry = self.table_for(iface).add(start, end, bandwidth)
                if owner is not None:
                    key = (owner, iface)
                    if key not in usage_before:
                        usage_before[key] = self._owner_usage.get(key)
                    self._owner_usage[key] = (
                        self._owner_usage.get(key, 0.0) + bandwidth
                    )
                claimed.append((iface, entry, owner, bandwidth))
        except (AdmissionError, ReservationError) as exc:
            for iface, entry, _owner, _bw in claimed:
                self.table_for(iface).remove(entry)
            for key, value in usage_before.items():
                if value is None:
                    self._owner_usage.pop(key, None)
                else:
                    self._owner_usage[key] = value
            self.rejections += 1
            self._emit_admission("reject", src, dst, bandwidth, error=str(exc))
            if isinstance(exc, ReservationError):
                raise
            raise ReservationError(str(exc)) from exc
        self.admissions += 1
        lsn = 0
        if self.journal is not None:
            lsn = self.journal.append(
                "admit",
                owner=owner,
                bandwidth=bandwidth,
                start=start,
                end=end,
                claims=tuple(
                    [
                        (iface.node.name, iface.name, entry)
                        for iface, entry, _o, _bw in claimed
                    ]
                ),
            ).lsn
        for iface, entry, _o, _bw in claimed:
            self._entry_meta[(iface, entry)] = (owner, bandwidth, lsn)
        if self.sim.telemetry is not None:
            self._emit_admission(
                "admit", src, dst, bandwidth, hops=len(claimed)
            )
        return claimed

    def _emit_admission(
        self, name: str, src: Node, dst: Node, bandwidth: float, **fields
    ) -> None:
        sim = self.network.sim
        tel = sim.telemetry
        if tel is not None and tel.trace is not None:
            tel.trace.emit(
                sim.now, "gara", name,
                src=src.name, dst=dst.name, bandwidth=bandwidth, **fields,
            )

    def _emit(self, name: str, **fields) -> None:
        tel = self.sim.telemetry
        if tel is not None and tel.trace is not None:
            tel.trace.emit(self.sim.now, "gara", name, **fields)

    def release(self, claimed, count: bool = True) -> None:
        """Free the given claim records.

        Crash-safe semantics: claims the orphan GC already expunged are
        counted no-ops (``stale_releases``), and a release sent to a
        dead broker is a deaf no-op (``deaf_releases``) — the caller's
        resource manager queues it and flushes on restart.
        """
        if not claimed:
            return
        if not self.alive:
            self.deaf_releases += 1
            return
        removed = []
        stale = 0
        for iface, entry, owner, bandwidth in claimed:
            if self._forget_claim(iface, entry, owner, bandwidth):
                removed.append(
                    (iface.node.name, iface.name, entry, owner, bandwidth)
                )
            else:
                stale += 1
        self.stale_releases += stale
        counted = bool(count and removed)
        if counted:
            self.releases += 1
        if removed and self.journal is not None:
            self.journal.append(
                "release", entries=tuple(removed), counted=counted
            )

    def _forget_claim(
        self,
        iface: Interface,
        entry_id: int,
        owner: Optional[str],
        bandwidth: float,
    ) -> bool:
        """Remove one claim entry and its usage; False if already gone.

        Shared by live release, journal replay, and the orphan GC so
        all three produce bit-identical float accounting.
        """
        table = self.table_for(iface)
        if entry_id not in table:
            return False
        table.remove(entry_id)
        self._entry_meta.pop((iface, entry_id), None)
        if owner is not None:
            key = (owner, iface)
            remaining = self._owner_usage.get(key, 0.0) - bandwidth
            if remaining <= 1e-9:
                self._owner_usage.pop(key, None)
            else:
                self._owner_usage[key] = remaining
        return True

    # -- crash / recovery ----------------------------------------------------

    def snapshot(self):
        """Canonical committed state (non-empty slot tables, per-owner
        usage, quotas) for recovery-equivalence checks."""
        tables = tuple(
            sorted(
                table.snapshot()
                for table in self._tables.values()
                if len(table)
            )
        )
        usage = tuple(
            sorted(
                (owner, iface.node.name, iface.name, value)
                for (owner, iface), value in self._owner_usage.items()
            )
        )
        quotas = tuple(sorted(self._quotas.items()))
        return (tables, usage, quotas)

    def checkpoint(self):
        """Serialize the full committed state for journal compaction.

        Unlike :meth:`snapshot` (a canonical value for equality
        checks), a checkpoint preserves *exact process state* — entry
        insertion order, float accounting values, provenance LSNs, and
        the journal-derivable counters — so restoring it and folding
        the post-checkpoint journal suffix is byte-identical to
        replaying the full log.
        """
        self._require_alive()
        entries = []
        for iface, table in self._tables.items():
            for e in table.entries:
                owner, bandwidth, lsn = self._entry_meta[
                    (iface, e.entry_id)
                ]
                entries.append((
                    iface.node.name, iface.name,
                    e.entry_id, e.start, e.end, e.amount,
                    owner, bandwidth, lsn,
                ))
        usage = tuple(
            (owner, iface.node.name, iface.name, value)
            for (owner, iface), value in self._owner_usage.items()
        )
        return (
            "broker-v1",
            tuple(entries),
            usage,
            tuple(self._quotas.items()),
            (
                self.admissions,
                self.releases,
                self.orphans_collected,
                self.orphan_paths_collected,
            ),
        )

    def _restore_checkpoint(self, payload) -> None:
        """Install a :meth:`checkpoint` payload (start of replay)."""
        version, entries, usage, quotas, counters = payload
        if version != "broker-v1":  # pragma: no cover - future-proofing
            raise ValueError(f"unknown checkpoint version {version!r}")
        for node_name, iface_name, entry_id, start, end, amount, owner, \
                bandwidth, lsn in entries:
            iface = self._iface(node_name, iface_name)
            self.table_for(iface).restore(
                SlotEntry(entry_id, start, end, amount)
            )
            self._entry_meta[(iface, entry_id)] = (owner, bandwidth, lsn)
        for owner, node_name, iface_name, value in usage:
            self._owner_usage[
                (owner, self._iface(node_name, iface_name))
            ] = value
        self._quotas.update(quotas)
        (
            self.admissions,
            self.releases,
            self.orphans_collected,
            self.orphan_paths_collected,
        ) = counters

    def compact_journal(self) -> int:
        """Checkpoint the live state into the journal and truncate the
        records it subsumes, bounding future replay work; returns the
        number of records truncated. No-op without a journal."""
        self._require_alive()
        if self.journal is None:
            return 0
        return self.journal.compact(self.checkpoint())

    def crash(self) -> None:
        """Kill the broker process: all in-memory state (slot tables,
        owner usage, quotas, journal-derivable statistics) is lost; the
        journal, being stable storage, survives. Idempotent."""
        if not self.alive:
            return
        self.alive = False
        self.crashes += 1
        self._tables.clear()
        self._quotas.clear()
        self._owner_usage.clear()
        self._entry_meta.clear()
        self._orphan_candidates.clear()
        self.admissions = 0
        self.rejections = 0
        self.releases = 0
        self.orphans_collected = 0
        self.orphan_paths_collected = 0
        if self._gc_timer is not None:
            self._gc_timer.cancel()
            self._gc_timer = None
        self._emit("broker_crash")

    def restart(self) -> None:
        """Bring the broker back: restore the journal's checkpoint (if
        one was taken by :meth:`compact_journal`), fold the remaining
        records to reconstruct the exact pre-crash state, notify
        ``restart_listeners`` (who flush queued releases and
        re-register live claims), then start the orphan-GC grace window
        for whatever nobody re-registered."""
        if self.alive:
            return
        self.alive = True
        self.restarts += 1
        replayed = 0
        if self.journal is not None:
            if self.journal.snapshot_payload is not None:
                self._restore_checkpoint(self.journal.snapshot_payload)
            for record in self.journal.records:
                self._replay(record)
                replayed += 1
        self.journal_replays += replayed
        # Every entry live after replay was resurrected from stable
        # storage; each is an orphan until its holder re-registers.
        self._orphan_candidates = dict(self._entry_meta)
        self.last_replay_snapshot = self.snapshot()
        self._emit(
            "broker_restart",
            replayed=replayed,
            resurrected=len(self._orphan_candidates),
        )
        for listener in list(self.restart_listeners):
            listener(self)
        if self._orphan_candidates:
            self._gc_timer = self.sim.call_in(
                self.gc_grace, self._collect_orphans
            )

    def reregister(self, claimed) -> int:
        """A claim holder proves liveness for its claim records after a
        restart; re-registered entries are no longer orphan candidates.
        Returns how many candidate entries this call rescued."""
        self._require_alive()
        rescued = 0
        for iface, entry, _owner, _bw in claimed:
            if self._orphan_candidates.pop((iface, entry), None) is not None:
                rescued += 1
        self.reregistrations += rescued
        return rescued

    def _iface(self, node_name: str, iface_name: str) -> Interface:
        node = self.network._resolve(node_name)
        for iface in node.interfaces:
            if iface.name == iface_name:
                return iface
        raise KeyError(f"no interface {iface_name!r} on node {node_name!r}")

    def _replay(self, record) -> None:
        op, fields = record.op, record.fields
        if op == "quota":
            self._quotas[fields["owner"]] = fields["fraction"]
        elif op == "admit":
            owner = fields["owner"]
            bandwidth = fields["bandwidth"]
            for node_name, iface_name, entry_id in fields["claims"]:
                iface = self._iface(node_name, iface_name)
                self.table_for(iface).restore(
                    SlotEntry(
                        entry_id, fields["start"], fields["end"], bandwidth
                    )
                )
                if owner is not None:
                    key = (owner, iface)
                    self._owner_usage[key] = (
                        self._owner_usage.get(key, 0.0) + bandwidth
                    )
                self._entry_meta[(iface, entry_id)] = (
                    owner, bandwidth, record.lsn
                )
            self.admissions += 1
        elif op in ("release", "gc"):
            for node_name, iface_name, entry_id, owner, bandwidth in fields[
                "entries"
            ]:
                iface = self._iface(node_name, iface_name)
                self._forget_claim(iface, entry_id, owner, bandwidth)
            if op == "release":
                if fields["counted"]:
                    self.releases += 1
            else:
                self.orphans_collected += len(fields["entries"])
                self.orphan_paths_collected += fields["paths"]
        else:  # pragma: no cover - future-proofing
            raise ValueError(f"unknown journal record op {op!r}")

    def _collect_orphans(self) -> None:
        self._gc_timer = None
        candidates, self._orphan_candidates = self._orphan_candidates, {}
        if not self.alive or not candidates:
            return
        expunged = []
        paths = set()
        for (iface, entry_id), (owner, bandwidth, lsn) in candidates.items():
            if self._forget_claim(iface, entry_id, owner, bandwidth):
                expunged.append(
                    (iface.node.name, iface.name, entry_id, owner, bandwidth)
                )
                paths.add(lsn)
        if not expunged:
            return
        self.orphans_collected += len(expunged)
        self.orphan_paths_collected += len(paths)
        if self.journal is not None:
            self.journal.append(
                "gc", entries=tuple(expunged), paths=len(paths)
            )
        self._emit("orphan_gc", entries=len(expunged), paths=len(paths))
