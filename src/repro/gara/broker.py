"""Bandwidth broker: per-link admission control for premium traffic.

"Normally, admission control is performed not by the router but by an
external QoS system, usually referred to as a bandwidth broker" (§2).
GARA adds "policy-driven management of a variety of resource types"
(§4.2): here, per-owner quotas bounding how much of the EF capacity any
one principal may hold.

Each directed link egress gets a slot table whose capacity is the EF
share of the link (premium traffic must be "carefully limited" to avoid
starving best effort). A path admission claims the same interval/amount
on every egress along the path, transactionally.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from ..net.node import Interface, Node
from ..net.topology import Network, RouteError
from .reservation import ReservationError
from .slot_table import AdmissionError, SlotTable

__all__ = ["BandwidthBroker", "DEFAULT_EF_SHARE"]

#: Fraction of each link's bandwidth admissible as EF traffic.
DEFAULT_EF_SHARE = 0.7


class BandwidthBroker:
    """Admission control over the paths of a :class:`Network`."""

    def __init__(self, network: Network, ef_share: float = DEFAULT_EF_SHARE) -> None:
        if not 0 < ef_share <= 1:
            raise ValueError("ef_share must be in (0, 1]")
        self.network = network
        self.ef_share = ef_share
        # Admission statistics (scraped by repro.telemetry).
        self.admissions = 0
        self.rejections = 0
        self.releases = 0
        self._tables: Dict[Interface, SlotTable] = {}
        # Policy: owner -> max fraction of any link's EF capacity.
        self._quotas: Dict[str, float] = {}
        self._owner_usage: Dict[Tuple[str, Interface], float] = {}

    def table_for(self, iface: Interface) -> SlotTable:
        table = self._tables.get(iface)
        if table is None:
            table = SlotTable(
                capacity=iface.bandwidth * self.ef_share,
                name=f"EF:{iface.node.name}.{iface.name}",
            )
            self._tables[iface] = table
        return table

    def path_available(
        self, src: Node, dst: Node, start: float, end: float
    ) -> float:
        """Admissible premium bandwidth over the path for the interval
        (0.0 if no working path currently exists)."""
        try:
            ifaces = self.network.path_interfaces(src, dst)
        except RouteError:
            return 0.0
        return min(
            self.table_for(iface).available(start, end) for iface in ifaces
        )

    def claims_valid(self, claimed) -> bool:
        """True while every claimed egress still sits on a working link.

        A claim on a downed interface reserves capacity on a path that
        no longer exists — the holder must release it and re-admit on
        the rerouted path.
        """
        return all(iface.up for iface, _entry, _owner, _bw in claimed)

    # -- policy ----------------------------------------------------------

    def set_quota(self, owner: str, fraction: float) -> None:
        """Cap ``owner`` at ``fraction`` of any link's EF capacity
        (policy-driven management). Owners without a quota are bounded
        only by the capacity itself."""
        if not 0 < fraction <= 1:
            raise ValueError("quota fraction must be in (0, 1]")
        self._quotas[owner] = fraction

    def quota_of(self, owner: Optional[str]) -> Optional[float]:
        return None if owner is None else self._quotas.get(owner)

    def _check_quota(
        self, owner: Optional[str], iface: Interface, bandwidth: float
    ) -> None:
        quota = self.quota_of(owner)
        if quota is None:
            return
        limit = self.table_for(iface).capacity * quota
        used = self._owner_usage.get((owner, iface), 0.0)
        if used + bandwidth > limit + 1e-9:
            raise ReservationError(
                f"policy: owner {owner!r} would hold "
                f"{(used + bandwidth) / 1e6:.1f} Mb/s on "
                f"{iface.node.name}.{iface.name}, quota is "
                f"{limit / 1e6:.1f} Mb/s"
            )

    # -- admission ----------------------------------------------------------

    def admit_path(
        self,
        src: Node,
        dst: Node,
        bandwidth: float,
        start: float,
        end: float,
        owner: Optional[str] = None,
    ) -> List[Tuple[Interface, int, Optional[str], float]]:
        """Claim ``bandwidth`` on every egress from ``src`` to ``dst``.

        All-or-nothing: on any failure (capacity or policy quota),
        already-claimed entries are rolled back and
        :class:`ReservationError` is raised. Returns the claim records
        for later release.
        """
        claimed: List[Tuple[Interface, int, Optional[str], float]] = []
        try:
            ifaces = self.network.path_interfaces(src, dst)
        except RouteError as exc:
            raise ReservationError(str(exc)) from exc
        try:
            for iface in ifaces:
                self._check_quota(owner, iface, bandwidth)
                entry = self.table_for(iface).add(start, end, bandwidth)
                if owner is not None:
                    key = (owner, iface)
                    self._owner_usage[key] = (
                        self._owner_usage.get(key, 0.0) + bandwidth
                    )
                claimed.append((iface, entry, owner, bandwidth))
        except (AdmissionError, ReservationError) as exc:
            self.release(claimed, count=False)
            self.rejections += 1
            self._emit_admission("reject", src, dst, bandwidth, error=str(exc))
            if isinstance(exc, ReservationError):
                raise
            raise ReservationError(str(exc)) from exc
        self.admissions += 1
        self._emit_admission(
            "admit", src, dst, bandwidth, hops=len(claimed)
        )
        return claimed

    def _emit_admission(
        self, name: str, src: Node, dst: Node, bandwidth: float, **fields
    ) -> None:
        sim = self.network.sim
        tel = sim.telemetry
        if tel is not None and tel.trace is not None:
            tel.trace.emit(
                sim.now, "gara", name,
                src=src.name, dst=dst.name, bandwidth=bandwidth, **fields,
            )

    def release(self, claimed, count: bool = True) -> None:
        if count and claimed:
            self.releases += 1
        for iface, entry, owner, bandwidth in claimed:
            self.table_for(iface).remove(entry)
            if owner is not None:
                key = (owner, iface)
                remaining = self._owner_usage.get(key, 0.0) - bandwidth
                if remaining <= 1e-9:
                    self._owner_usage.pop(key, None)
                else:
                    self._owner_usage[key] = remaining
