"""GARA: the General-purpose Architecture for Reservation and
Allocation — slot-table admission, reservation handles with lifecycle
callbacks, typed resource managers, and a bandwidth broker."""

from .broker import BandwidthBroker, BrokerUnavailable, DEFAULT_EF_SHARE
from .cpu_manager import CpuReservationSpec, DsrtCpuManager
from .gara import Gara, build_standard_gara
from .manager import ManagerUnavailable, PreparedReservation, ResourceManager
from .network_manager import DiffServNetworkManager, NetworkReservationSpec
from .reservation import (
    ACTIVE,
    CANCELLED,
    EXPIRED,
    PENDING,
    Reservation,
    ReservationError,
)
from .slot_table import AdmissionError, SlotEntry, SlotTable
from .storage_manager import (
    DpssStorageManager,
    StorageReservationSpec,
    StorageServer,
)

__all__ = [
    "ACTIVE",
    "AdmissionError",
    "BandwidthBroker",
    "BrokerUnavailable",
    "CANCELLED",
    "CpuReservationSpec",
    "DEFAULT_EF_SHARE",
    "DiffServNetworkManager",
    "DpssStorageManager",
    "DsrtCpuManager",
    "EXPIRED",
    "Gara",
    "ManagerUnavailable",
    "NetworkReservationSpec",
    "PENDING",
    "PreparedReservation",
    "Reservation",
    "ReservationError",
    "ResourceManager",
    "SlotEntry",
    "SlotTable",
    "StorageReservationSpec",
    "StorageServer",
    "build_standard_gara",
]
