"""Reservation handles and lifecycle.

"Once a reservation is made, an opaque object called a reservation
handle is returned that allows the calling program to modify, cancel,
and monitor the reservation. Other functions allow reservations to be
monitored by polling or through a callback mechanism in which a user's
function is called every time the state of the reservation changes"
(§4.2).
"""

from __future__ import annotations

import itertools
from typing import Any, Callable, List, Optional

__all__ = [
    "Reservation",
    "ReservationError",
    "PENDING",
    "ACTIVE",
    "EXPIRED",
    "CANCELLED",
]

PENDING = "PENDING"  # admitted; start time not yet reached
ACTIVE = "ACTIVE"  # enforcement in effect
EXPIRED = "EXPIRED"  # end time passed
CANCELLED = "CANCELLED"

_ids = itertools.count(1)


class ReservationError(Exception):
    """Request could not be satisfied (admission or misuse)."""


class Reservation:
    """An opaque handle for one granted reservation."""

    def __init__(self, manager, spec: Any, start: float, end: float) -> None:
        self.reservation_id = next(_ids)
        self.manager = manager
        self.spec = spec
        self.start = start
        self.end = end
        self.state = PENDING
        self._callbacks: List[Callable[["Reservation", str, str], None]] = []
        #: Resource-specific bindings (flow specs, CPU tasks, ...).
        self.bindings: List[Any] = []
        #: Slot-table entry ids held on behalf of this reservation.
        self.slot_entries: List[tuple] = []

    # -- monitoring -------------------------------------------------------

    def register_callback(
        self, fn: Callable[["Reservation", str, str], None]
    ) -> None:
        """``fn(reservation, old_state, new_state)`` on every transition."""
        self._callbacks.append(fn)

    def _transition(self, new_state: str) -> None:
        old, self.state = self.state, new_state
        for fn in list(self._callbacks):
            fn(self, old, new_state)

    @property
    def active(self) -> bool:
        return self.state == ACTIVE

    @property
    def finished(self) -> bool:
        """True once the reservation reached a terminal state."""
        return self.state in (CANCELLED, EXPIRED)

    # -- control (delegates to the owning manager) --------------------------

    def cancel(self) -> None:
        """Cancel the reservation; idempotent — cancelling an already
        cancelled or expired reservation is a no-op (the slot-table
        claims were released exactly once at the first transition)."""
        if self.finished:
            return
        self.manager.cancel(self)

    def modify(self, **changes: Any) -> None:
        self.manager.modify(self, **changes)

    def bind(self, binding: Any) -> None:
        self.manager.bind(self, binding)

    def __repr__(self) -> str:
        return (
            f"<Reservation #{self.reservation_id} {self.state} "
            f"[{self.start:.3f}, {self.end if self.end != float('inf') else 'inf'}) "
            f"{self.spec!r}>"
        )
