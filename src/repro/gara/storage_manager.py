"""The DPSS storage resource manager.

The paper lists the Distributed Parallel Storage System among the
resource managers GARA drives (§4.2). We model the relevant property —
a storage server whose aggregate read bandwidth can be partially
reserved for specific clients — with a :class:`StorageServer` fluid
rate allocator (same discipline as the CPU model: reserved clients get
their rate, best-effort clients share the remainder).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Set

from ..kernel import Event, Simulator, TimerHandle
from .manager import ResourceManager
from .reservation import ACTIVE, ReservationError
from .slot_table import AdmissionError, SlotTable

__all__ = ["StorageServer", "StorageReservationSpec", "DpssStorageManager"]

_EPS = 1e-12


class StorageServer:
    """A storage system serving reads at a bounded aggregate rate."""

    def __init__(self, sim: Simulator, name: str, bandwidth: float) -> None:
        if bandwidth <= 0:
            raise ValueError("bandwidth must be positive")
        self.sim = sim
        self.name = name
        self.bandwidth = bandwidth  # bits/second aggregate
        self._reserved: Dict[str, float] = {}  # client -> bits/second
        self._jobs: list = []  # [client, remaining_bits, event, rate]
        self._last = 0.0
        self._timer: TimerHandle | None = None

    def set_client_reservation(self, client: str, rate: float) -> None:
        self._advance()
        if rate <= 0:
            self._reserved.pop(client, None)
        else:
            self._reserved[client] = rate
        self._reallocate()

    def read(self, client: str, nbytes: int) -> Event:
        """Stream ``nbytes`` off storage; event triggers when done."""
        if nbytes <= 0:
            raise ValueError("read size must be positive")
        event = Event(self.sim)
        self._advance()
        self._jobs.append([client, nbytes * 8.0, event, 0.0])
        self._reallocate()
        return event

    # -- fluid allocation (mirrors repro.cpu) -----------------------------

    def _advance(self) -> None:
        dt = self.sim.now - self._last
        if dt > 0:
            for job in self._jobs:
                job[1] -= dt * job[3]
        self._last = self.sim.now

    def _reallocate(self) -> None:
        done = [j for j in self._jobs if j[1] <= _EPS]
        self._jobs = [j for j in self._jobs if j[1] > _EPS]
        for job in done:
            job[2].succeed()
        jobs = self._jobs
        if jobs:
            total_reserved = sum(
                self._reserved.get(j[0], 0.0) for j in jobs
            )
            scale = min(1.0, self.bandwidth / total_reserved) if total_reserved else 1.0
            best_effort = [j for j in jobs if self._reserved.get(j[0], 0.0) == 0.0]
            used = min(total_reserved * scale, self.bandwidth)
            leftover = self.bandwidth - used
            for job in jobs:
                job[3] = self._reserved.get(job[0], 0.0) * scale
            if best_effort:
                share = leftover / len(best_effort)
                for job in best_effort:
                    job[3] = share
            elif leftover > 0 and total_reserved > 0:
                for job in jobs:
                    job[3] += leftover * self._reserved.get(job[0], 0.0) / total_reserved
        if self._timer is not None:
            self._timer.cancel()
            self._timer = None
        horizon = min(
            (j[1] / j[3] for j in jobs if j[3] > 0), default=float("inf")
        )
        if horizon != float("inf"):
            # Floor the horizon: a float-residue remaining would
            # otherwise schedule a tick at now + ~1e-17, which does not
            # advance float time and spins the simulator forever.
            self._timer = self.sim.call_in(max(horizon, 1e-9), self._tick)

    def _tick(self) -> None:
        self._timer = None
        self._advance()
        self._reallocate()


@dataclass
class StorageReservationSpec:
    """Request for guaranteed read bandwidth from a storage server."""

    server: StorageServer
    bandwidth: float  # bits/second

    def __repr__(self) -> str:
        return (
            f"StorageReservationSpec({self.server.name} "
            f"{self.bandwidth / 1e6:.1f}Mb/s)"
        )


class DpssStorageManager(ResourceManager):
    """Slot-table admission + per-client rate enforcement."""

    resource_type = "storage"

    def __init__(self, sim: Simulator, reservable_share: float = 0.9) -> None:
        super().__init__(sim)
        self.reservable_share = reservable_share
        self._tables: Dict[StorageServer, SlotTable] = {}
        self._entries: Dict[int, tuple] = {}

    def table_for(self, server: StorageServer) -> SlotTable:
        table = self._tables.get(server)
        if table is None:
            table = SlotTable(
                server.bandwidth * self.reservable_share,
                name=f"DPSS:{server.name}",
            )
            self._tables[server] = table
        return table

    def _do_admit(self, spec, start, end, reservation) -> None:
        if not isinstance(spec, StorageReservationSpec):
            raise ReservationError(f"not a storage spec: {spec!r}")
        try:
            entry = self.table_for(spec.server).add(start, end, spec.bandwidth)
        except AdmissionError as exc:
            raise ReservationError(str(exc)) from exc
        self._entries[reservation.reservation_id] = (spec.server, entry)

    def _do_release(self, reservation) -> None:
        item = self._entries.pop(reservation.reservation_id, None)
        if item is not None:
            server, entry = item
            self.table_for(server).remove(entry)

    def _do_enable(self, reservation) -> None:
        spec: StorageReservationSpec = reservation.spec
        for client in reservation.bindings:
            spec.server.set_client_reservation(client, spec.bandwidth)

    def _do_disable(self, reservation) -> None:
        spec: StorageReservationSpec = reservation.spec
        for client in reservation.bindings:
            spec.server.set_client_reservation(client, 0.0)

    def _do_bind(self, reservation, binding) -> None:
        if not isinstance(binding, str):
            raise ReservationError("storage bindings are client-id strings")
        if reservation.state == ACTIVE:
            reservation.spec.server.set_client_reservation(
                binding, reservation.spec.bandwidth
            )

    def _do_modify(self, reservation, changes) -> None:
        spec: StorageReservationSpec = reservation.spec
        new_bw = changes.pop("bandwidth", spec.bandwidth)
        if changes:
            raise ReservationError(f"unsupported modifications: {sorted(changes)}")
        server, entry = self._entries[reservation.reservation_id]
        try:
            new_entry = self.table_for(server).modify(
                entry, self.sim.now, reservation.end, new_bw
            )
        except AdmissionError as exc:
            raise ReservationError(str(exc)) from exc
        self._entries[reservation.reservation_id] = (server, new_entry)
        spec.bandwidth = new_bw
        if reservation.state == ACTIVE:
            for client in reservation.bindings:
                server.set_client_reservation(client, new_bw)
