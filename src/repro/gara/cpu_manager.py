"""The DSRT CPU resource manager.

"In order to create and enforce CPU reservations we are using the
Dynamic Soft Real-Time CPU Scheduler. DSRT works by overriding the Unix
scheduler and performing soft real-time scheduling of select processes"
(§5.5). Here the enforcement target is :class:`repro.cpu.Cpu`; a
reservation grants a fractional share, bound to one or more CPU tasks.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

from ..cpu import Cpu, CpuTask
from ..kernel import Simulator
from .manager import ResourceManager
from .reservation import ACTIVE, ReservationError
from .slot_table import AdmissionError, SlotTable

__all__ = ["CpuReservationSpec", "DsrtCpuManager"]

#: DSRT never hands out the whole CPU: the OS and best-effort work
#: keep a minimum share.
MAX_RESERVABLE_FRACTION = 0.95


@dataclass
class CpuReservationSpec:
    """Request for a guaranteed CPU fraction on one host's CPU."""

    cpu: Cpu
    fraction: float

    def __repr__(self) -> str:
        return f"CpuReservationSpec({self.cpu.name} {self.fraction:.0%})"


class DsrtCpuManager(ResourceManager):
    """Slot-table admission + fractional enforcement per CPU."""

    resource_type = "cpu"

    def __init__(self, sim: Simulator) -> None:
        super().__init__(sim)
        self._tables: Dict[Cpu, SlotTable] = {}
        self._entries: Dict[int, tuple] = {}

    def table_for(self, cpu: Cpu) -> SlotTable:
        table = self._tables.get(cpu)
        if table is None:
            table = SlotTable(MAX_RESERVABLE_FRACTION, name=f"DSRT:{cpu.name}")
            self._tables[cpu] = table
        return table

    # -- hooks ---------------------------------------------------------------

    def _do_admit(self, spec, start, end, reservation) -> None:
        if not isinstance(spec, CpuReservationSpec):
            raise ReservationError(f"not a CPU spec: {spec!r}")
        if not 0 < spec.fraction <= MAX_RESERVABLE_FRACTION:
            raise ReservationError(
                f"fraction must be in (0, {MAX_RESERVABLE_FRACTION}]"
            )
        try:
            entry = self.table_for(spec.cpu).add(start, end, spec.fraction)
        except AdmissionError as exc:
            raise ReservationError(str(exc)) from exc
        self._entries[reservation.reservation_id] = (spec.cpu, entry)

    def _do_release(self, reservation) -> None:
        item = self._entries.pop(reservation.reservation_id, None)
        if item is not None:
            cpu, entry = item
            self.table_for(cpu).remove(entry)

    def _do_enable(self, reservation) -> None:
        spec: CpuReservationSpec = reservation.spec
        for task in reservation.bindings:
            spec.cpu.set_reservation(task, spec.fraction)

    def _do_disable(self, reservation) -> None:
        spec: CpuReservationSpec = reservation.spec
        for task in reservation.bindings:
            spec.cpu.clear_reservation(task)

    def _do_bind(self, reservation, binding) -> None:
        if not isinstance(binding, CpuTask):
            raise ReservationError(f"CPU bindings are CpuTasks, got {binding!r}")
        if reservation.state == ACTIVE:
            reservation.spec.cpu.set_reservation(binding, reservation.spec.fraction)

    def _do_modify(self, reservation, changes) -> None:
        spec: CpuReservationSpec = reservation.spec
        new_fraction = changes.pop("fraction", spec.fraction)
        if changes:
            raise ReservationError(f"unsupported modifications: {sorted(changes)}")
        if not 0 < new_fraction <= MAX_RESERVABLE_FRACTION:
            raise ReservationError("invalid fraction")
        cpu, entry = self._entries[reservation.reservation_id]
        new_entry = self.table_for(cpu).modify(
            entry, self.sim.now, reservation.end, new_fraction
        )  # raises AdmissionError -> caller sees ReservationError below
        self._entries[reservation.reservation_id] = (cpu, new_entry)
        spec.fraction = new_fraction
        if reservation.state == ACTIVE:
            for task in reservation.bindings:
                cpu.set_reservation(task, new_fraction)
