"""Adaptation-loop chaos soak: crash the broker mid-renegotiation.

Runs the closed loop under sustained SLO-violation pressure against a
deliberately capacity-starved broker, with scheduled broker crash/
restart cycles timed to land while renegotiations are in flight, and
asserts the control-plane invariants the loop promises:

* **no double-booked bandwidth** — after every broker restart, each
  interface's committed slot-table capacity equals exactly the sum of
  the network manager's live claims on it (journal replay plus claim
  re-registration and write-behind release flushing must agree);
* **no lost or leaked reservation** — at the end, with every session
  closed, all slot tables are empty;
* **bounded flapping** — rung changes stay within the documented
  ``1 + floor(T / cooldown)`` bound;
* the ladder is actually exercised: the run must include real
  renegotiations, broker retries, degradations, and restores.

Usage (the ``adaptation-soak`` CI job)::

    python -m repro.slo.chaos --seed 0 --cycles 3

Exits non-zero on any invariant violation. Fully deterministic per
seed: the pressure feed, fault schedule, and retry jitter all run off
the one simulator clock and RNG.
"""

from __future__ import annotations

import argparse
import sys
from typing import List

from ..core import MpichGQ
from ..faults import ChaosSchedule
from ..kernel import Simulator
from ..net import garnet, mbps
from .controller import RUNG_PREMIUM, AdaptationController
from .monitor import SloMonitor
from .spec import SloSpec

__all__ = ["run_soak", "main"]


class SoakFailure(AssertionError):
    """An adaptation-soak invariant did not hold."""


def _conservation_errors(broker, manager) -> List[str]:
    """Committed capacity vs live claims, per interface."""
    held = {}
    for claims in manager._claims.values():
        for iface, _entry, _owner, bandwidth in claims:
            held[iface] = held.get(iface, 0.0) + bandwidth
    errors = []
    for iface, table in broker._tables.items():
        committed = sum(entry.amount for entry in table.entries)
        expected = held.pop(iface, 0.0)
        if abs(committed - expected) > 1e-6:
            errors.append(
                f"{table.name}: broker has {committed / 1e6:.3f} Mb/s "
                f"committed but claim holders hold {expected / 1e6:.3f}"
            )
    for iface, expected in held.items():
        errors.append(
            f"{iface.node.name}.{iface.name}: {expected / 1e6:.3f} Mb/s "
            "claimed with no broker table entry"
        )
    return errors


def run_soak(
    seed: int = 0,
    cycles: int = 3,
    cycle_seconds: float = 20.0,
    verbose: bool = False,
) -> dict:
    """One seeded soak; returns the stats dict or raises SoakFailure."""
    sim = Simulator(seed=seed)
    testbed = garnet(sim, backbone_bandwidth=mbps(30.0))
    # resilient=True attaches the broker's write-ahead journal; without
    # it a crash is unrecoverable data loss, not a fault to ride out.
    gq = MpichGQ.on_garnet(testbed, resilient=True)
    broker = gq.broker
    manager = gq.gara.manager("network")

    # A standing reservation eats most of the EF capacity (21 Mb/s at
    # the default 0.7 share) so the controller's upward boosts hit
    # *real* admission denials and the degradation ladder engages.
    blocker = gq.agent.reserve_flows(0, 1, mbps(12.0))

    slo = SloSpec(
        p95_latency_s=0.050,
        goodput_floor_bps=mbps(4.0),
        name=f"soak-{seed}",
    )
    monitor = SloMonitor(
        sim, slo, window=0.5, n_windows=4, k_violations=2, clear_windows=2
    )
    controller = AdaptationController(
        gq.agent, 0, 1, mbps(5.0),
        upgrade_interval=1.0,
        monitor=monitor,
        boost_factor=1.6,
        max_bps=mbps(15.0),
        cooldown=2.0,
        denials_before_degrade=2,
        renegotiation_window=3.0,
        max_broker_retries=3,
        backoff_base=0.25,
        backoff_cap=1.5,
    )

    # Sustained violation pressure: latency far over target, goodput
    # far under the floor, fed on the sim clock (deterministic).
    def pressure():
        while True:
            monitor.record_latency(0.200)
            monitor.record_sent(1)
            monitor.record_delivered(1_000)
            yield sim.timeout(0.25)

    sim.process(pressure(), name="slo-pressure")

    horizon = cycles * cycle_seconds
    chaos = ChaosSchedule(sim, testbed.network)
    conservation_errors: List[str] = []

    def check_conservation():
        if not broker.alive:
            return
        conservation_errors.extend(_conservation_errors(broker, manager))

    for k in range(cycles):
        t0 = k * cycle_seconds
        # The pressure loop keeps renegotiations in flight essentially
        # continuously, so a crash at any point lands mid-flight; the
        # restart is late enough that backoff retries span the outage.
        chaos.at(t0 + 6.0).crash(broker)
        chaos.at(t0 + 9.5).restart(broker)
        sim.call_at(t0 + 9.6, check_conservation)
        sim.call_at(t0 + 15.0, check_conservation)

    # Free the blocker for the tail of the run so the final restore
    # climb succeeds and the loop ends back at premium.
    sim.call_at(horizon - cycle_seconds / 2.0, blocker.cancel)

    sim.run(until=horizon)

    if conservation_errors:
        raise SoakFailure(
            "double-booked/leaked bandwidth after restart:\n  "
            + "\n  ".join(conservation_errors)
        )

    bound = controller.flap_bound(horizon)
    stats = {
        "seed": seed,
        "horizon": horizon,
        "flaps": controller.flaps,
        "flap_bound": bound,
        "renegotiations": controller.renegotiations,
        "broker_retries": controller.broker_retries,
        "denials": controller.denials,
        "degradations": controller.degradations,
        "restores": controller.restores,
        "final_rung": controller.rung_name,
        "final_state": controller.state,
        "violation_windows": monitor.violation_windows,
    }

    if controller.flaps > bound:
        raise SoakFailure(
            f"flap bound violated: {controller.flaps} > {bound} "
            f"(cooldown {controller.cooldown}s over {horizon}s)"
        )
    # The soak must actually exercise the machinery it claims to test.
    if controller.renegotiations == 0:
        raise SoakFailure("no renegotiations — pressure feed is broken")
    if controller.broker_retries == 0:
        raise SoakFailure("no broker retries — crashes missed every boost")
    if controller.degradations == 0:
        raise SoakFailure("ladder never engaged — no degradations")
    if controller.restores == 0:
        raise SoakFailure("ladder never climbed back — no restores")
    if controller.rung != RUNG_PREMIUM:
        raise SoakFailure(
            f"loop did not recover premium by the end "
            f"(rung={controller.rung_name})"
        )

    # Orderly teardown, then nothing may remain booked anywhere.
    controller.close()
    monitor.stop()
    blocker.cancel()
    sim.run(until=horizon + 5.0)
    leaked = [
        f"{table.name}: {len(table)} entries"
        for table in broker._tables.values()
        if len(table)
    ]
    if leaked:
        raise SoakFailure(
            "lost reservations: slot tables not empty after close:\n  "
            + "\n  ".join(leaked)
        )

    if verbose:
        print(f"  {stats}")
    return stats


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--cycles", type=int, default=3,
                        help="crash/restart cycles (default 3)")
    parser.add_argument("--cycle-seconds", type=float, default=20.0,
                        help="simulated seconds per cycle (default 20)")
    parser.add_argument("--verbose", action="store_true")
    args = parser.parse_args(argv)
    try:
        stats = run_soak(
            seed=args.seed,
            cycles=args.cycles,
            cycle_seconds=args.cycle_seconds,
            verbose=args.verbose,
        )
    except SoakFailure as exc:
        print(f"FAIL (seed {args.seed}): {exc}")
        return 1
    print(
        f"OK seed={stats['seed']}: flaps={stats['flaps']}/"
        f"bound {stats['flap_bound']}, "
        f"renegotiations={stats['renegotiations']}, "
        f"broker_retries={stats['broker_retries']}, "
        f"degradations={stats['degradations']}, "
        f"restores={stats['restores']}, "
        f"recovered={stats['final_rung']}"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
