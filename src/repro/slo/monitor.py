"""Windowed SLO supervision with K-of-N voting and hysteresis.

The monitor samples the flow (latency observations, delivered/sent
bytes, losses) into a :class:`~repro.telemetry.WindowedHistogram` and
evaluates the :class:`~repro.slo.SloSpec` once per window against the
window that just closed. A single bad window does nothing: the monitor
votes over the last N verdicts and declares a *violation episode* only
when K of them are bad, then requires ``clear_windows`` consecutive
clean windows before declaring recovery. Both thresholds together are
the hysteresis that keeps transient spikes from triggering adaptation
(and adaptation's own transients from immediately re-triggering it).

The monitor owns its instruments outright — nothing here routes
through ``sim.telemetry``, so supervised experiments measure the same
whether the optional telemetry session is installed or not.
"""

from __future__ import annotations

from collections import deque
from typing import Callable, List, Optional

from ..telemetry.windowed import WindowedHistogram
from .spec import SloSpec, WindowStats

__all__ = ["SloMonitor"]


class SloMonitor:
    """Judges one flow against one SLO, window by window.

    Parameters
    ----------
    sim:
        The simulator whose clock drives evaluation.
    slo:
        The :class:`SloSpec` to enforce.
    window:
        Evaluation period, seconds; each evaluation judges the window
        that just ended.
    n_windows, k_violations:
        Vote over the last N window verdicts; >= K bad verdicts opens
        a violation episode.
    clear_windows:
        Consecutive clean windows required to close an episode.
    on_violation:
        ``fn(monitor, violations)`` invoked at every evaluation while
        an episode is open (``violations`` is the current window's
        violated-dimension list, possibly empty inside an episode).
    on_clear:
        ``fn(monitor)`` invoked once when an episode closes.
    """

    def __init__(
        self,
        sim,
        slo: SloSpec,
        *,
        window: float = 1.0,
        n_windows: int = 5,
        k_violations: int = 3,
        clear_windows: int = 3,
        on_violation: Optional[Callable] = None,
        on_clear: Optional[Callable] = None,
    ) -> None:
        if window <= 0:
            raise ValueError("window must be positive")
        if not 1 <= k_violations <= n_windows:
            raise ValueError("need 1 <= k_violations <= n_windows")
        if clear_windows < 1:
            raise ValueError("clear_windows must be >= 1")
        self.sim = sim
        self.slo = slo
        self.window = float(window)
        self.n_windows = n_windows
        self.k_violations = k_violations
        self.clear_windows = clear_windows
        self.on_violation = on_violation
        self.on_clear = on_clear

        self.latency = WindowedHistogram(
            f"slo.{slo.name}.latency",
            bucket_s=self.window,
            n_buckets=max(2 * n_windows, 8),
        )
        self._delivered_bytes = 0.0
        self._sent_frames = 0
        self._lost_frames = 0
        # Totals at the close of the previous window, to difference.
        self._delivered_mark = 0.0
        self._sent_mark = 0
        self._lost_mark = 0

        self._verdicts: deque = deque(maxlen=n_windows)
        self._clean_streak = 0
        #: True while a violation episode is open.
        self.violating = False
        #: The current window's violated dimensions (diagnostics).
        self.last_violations: List[str] = []
        self.last_stats: Optional[WindowStats] = None

        # Compliance accounting (the fig_adaptation outputs).
        self.evaluations = 0
        self.violation_windows = 0
        self.episodes = 0
        self._timer = None
        self._started = False

    # -- feeding -----------------------------------------------------------

    def record_latency(self, seconds: float) -> None:
        self.latency.observe(self.sim.now, seconds)

    def record_delivered(self, nbytes: int) -> None:
        self._delivered_bytes += nbytes

    def record_sent(self, frames: int = 1) -> None:
        self._sent_frames += frames

    def record_lost(self, frames: int = 1) -> None:
        self._lost_frames += frames

    # -- lifecycle ---------------------------------------------------------

    def start(self) -> None:
        if self._started:
            return
        self._started = True
        self._timer = self.sim.call_in(self.window, self._evaluate)

    def stop(self) -> None:
        self._started = False
        if self._timer is not None:
            self._timer.cancel()
            self._timer = None

    # -- evaluation --------------------------------------------------------

    def _window_stats(self) -> WindowStats:
        now = self.sim.now
        # Judge exactly the bucket that just closed. The histogram's
        # trailing-window query includes every *overlapping* bucket, so
        # a full-width window here would also pull in the previous one
        # (making every latency spike count against two verdicts);
        # shaving an epsilon off t_now and halving the query width
        # selects the closed bucket alone (bucket_s == self.window).
        t_q = now - 1e-9
        w_q = self.window / 2.0
        samples = self.latency.count_over(t_q, w_q)
        p95 = p99 = None
        if samples:
            p95 = self.latency.quantile(95, t_q, w_q)
            p99 = self.latency.quantile(99, t_q, w_q)
        delivered = self._delivered_bytes - self._delivered_mark
        sent = self._sent_frames - self._sent_mark
        lost = self._lost_frames - self._lost_mark
        self._delivered_mark = self._delivered_bytes
        self._sent_mark = self._sent_frames
        self._lost_mark = self._lost_frames
        loss = lost / sent if sent else (1.0 if lost else 0.0)
        return WindowStats(
            p95_latency_s=p95,
            p99_latency_s=p99,
            goodput_bps=delivered * 8.0 / self.window,
            loss_fraction=loss,
            samples=samples,
        )

    def _evaluate(self) -> None:
        stats = self._window_stats()
        violations = self.slo.evaluate(stats)
        self.last_stats = stats
        self.last_violations = violations
        self.evaluations += 1
        bad = bool(violations)
        if bad:
            self.violation_windows += 1
        self._verdicts.append(bad)

        if not self.violating:
            if sum(self._verdicts) >= self.k_violations:
                self.violating = True
                self.episodes += 1
                self._clean_streak = 0
        else:
            if bad:
                self._clean_streak = 0
            else:
                self._clean_streak += 1
                if self._clean_streak >= self.clear_windows:
                    self.violating = False
                    self._verdicts.clear()
                    self._clean_streak = 0
                    if self.on_clear is not None:
                        self.on_clear(self)
        if self.violating and self.on_violation is not None:
            self.on_violation(self, violations)
        if self._started:
            self._timer = self.sim.call_in(self.window, self._evaluate)

    # -- reporting ---------------------------------------------------------

    @property
    def violation_seconds(self) -> float:
        """Total simulated time spent in violating windows."""
        return self.violation_windows * self.window

    @property
    def compliance_fraction(self) -> float:
        """Fraction of evaluated windows that met the SLO."""
        if not self.evaluations:
            return 1.0
        return 1.0 - self.violation_windows / self.evaluations

    def __repr__(self) -> str:
        state = "VIOLATING" if self.violating else "meeting"
        return (
            f"<SloMonitor {self.slo.name!r} {state} "
            f"{self.violation_windows}/{self.evaluations} bad windows>"
        )
