"""Closed-loop SLO supervision and adaptation.

The paper's §4.2/§5 adaptation story, end to end: state what the
application needs (:class:`SloSpec`), measure whether it is getting it
(:class:`SloMonitor`, windowed quantiles with K-of-N voting and
hysteresis), and act when it is not (:class:`AdaptationController` —
renegotiate upward through GARA, degrade premium → AF → best-effort on
repeated denial, restore with cooldown-bounded flap rate).

Quickstart::

    from repro import slo

    spec = slo.SloSpec(p95_latency_s=0.050, goodput_floor_bps=2e6)
    monitor = slo.SloMonitor(sim, spec, window=1.0,
                             n_windows=5, k_violations=3)
    ctl = slo.AdaptationController(
        gq.agent, 0, 1, desired_bps=4e6, monitor=monitor,
    )
    # feed the monitor from the application:
    #   monitor.record_latency(rtt); monitor.record_delivered(nbytes)
    ...run...
    print(monitor.compliance_fraction, ctl.state, ctl.flaps)
    ctl.close()

Determinism contract: the loop runs entirely on the simulator clock
and draws jitter only from ``sim.rng``; monitors own their instruments
directly (nothing routes through the optional telemetry session), so a
supervised run measures the same with telemetry on or off — and code
that never constructs these objects is byte-identical to before the
subsystem existed.
"""

from .controller import (
    CLOSED,
    DEGRADED,
    MEETING,
    RENEGOTIATING,
    RESTORING,
    RUNG_AF,
    RUNG_BEST_EFFORT,
    RUNG_NAMES,
    RUNG_PREMIUM,
    VIOLATING,
    AdaptationController,
    BrokerClientChannel,
)
from .monitor import SloMonitor
from .spec import SloSpec, WindowStats

__all__ = [
    "AdaptationController",
    "BrokerClientChannel",
    "CLOSED",
    "DEGRADED",
    "MEETING",
    "RENEGOTIATING",
    "RESTORING",
    "RUNG_AF",
    "RUNG_BEST_EFFORT",
    "RUNG_NAMES",
    "RUNG_PREMIUM",
    "SloMonitor",
    "SloSpec",
    "VIOLATING",
    "WindowStats",
]
