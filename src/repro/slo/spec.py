"""Service-level objectives for one flow.

A :class:`SloSpec` states what the application *needs* — tail latency,
goodput, loss — as opposed to what it *reserved*. The two are related
but distinct: a premium reservation sized below the offered load meets
neither, and an over-provisioned one meets both with slack. The SLO is
the ground truth the adaptation loop steers by.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Optional

__all__ = ["SloSpec", "WindowStats"]


@dataclass
class WindowStats:
    """What one evaluation window actually measured.

    Latency quantiles are ``None`` when the window carried no latency
    samples (then only the goodput/loss dimensions are judged — an
    entirely silent flow is a goodput violation, not a latency one).
    """

    p95_latency_s: Optional[float] = None
    p99_latency_s: Optional[float] = None
    goodput_bps: float = 0.0
    loss_fraction: float = 0.0
    samples: int = 0


@dataclass(frozen=True)
class SloSpec:
    """Targets for one flow; any ``None`` dimension is unconstrained."""

    p95_latency_s: Optional[float] = None
    p99_latency_s: Optional[float] = None
    goodput_floor_bps: Optional[float] = None
    loss_ceiling: Optional[float] = None
    name: str = "slo"

    def __post_init__(self) -> None:
        for attr in ("p95_latency_s", "p99_latency_s", "goodput_floor_bps"):
            value = getattr(self, attr)
            if value is not None and value <= 0:
                raise ValueError(f"{attr} must be positive or None")
        if self.loss_ceiling is not None and not 0 <= self.loss_ceiling <= 1:
            raise ValueError("loss_ceiling must be in [0, 1] or None")
        if all(
            getattr(self, attr) is None
            for attr in (
                "p95_latency_s", "p99_latency_s",
                "goodput_floor_bps", "loss_ceiling",
            )
        ):
            raise ValueError("an SloSpec needs at least one dimension")

    def evaluate(self, stats: WindowStats) -> List[str]:
        """Violated dimensions for one window, as human-readable
        strings; an empty list means the window met the SLO."""
        violations: List[str] = []
        if (
            self.p95_latency_s is not None
            and stats.p95_latency_s is not None
            and not math.isnan(stats.p95_latency_s)
            and stats.p95_latency_s > self.p95_latency_s
        ):
            violations.append(
                f"p95 latency {stats.p95_latency_s * 1e3:.1f}ms > "
                f"{self.p95_latency_s * 1e3:.1f}ms"
            )
        if (
            self.p99_latency_s is not None
            and stats.p99_latency_s is not None
            and not math.isnan(stats.p99_latency_s)
            and stats.p99_latency_s > self.p99_latency_s
        ):
            violations.append(
                f"p99 latency {stats.p99_latency_s * 1e3:.1f}ms > "
                f"{self.p99_latency_s * 1e3:.1f}ms"
            )
        if (
            self.goodput_floor_bps is not None
            and stats.goodput_bps < self.goodput_floor_bps
        ):
            violations.append(
                f"goodput {stats.goodput_bps / 1e3:.0f}Kb/s < floor "
                f"{self.goodput_floor_bps / 1e3:.0f}Kb/s"
            )
        if (
            self.loss_ceiling is not None
            and stats.loss_fraction > self.loss_ceiling
        ):
            violations.append(
                f"loss {stats.loss_fraction:.2%} > "
                f"ceiling {self.loss_ceiling:.2%}"
            )
        return violations

    def __repr__(self) -> str:
        dims = []
        if self.p95_latency_s is not None:
            dims.append(f"p95<{self.p95_latency_s * 1e3:.0f}ms")
        if self.p99_latency_s is not None:
            dims.append(f"p99<{self.p99_latency_s * 1e3:.0f}ms")
        if self.goodput_floor_bps is not None:
            dims.append(f"goodput>{self.goodput_floor_bps / 1e3:.0f}Kb/s")
        if self.loss_ceiling is not None:
            dims.append(f"loss<{self.loss_ceiling:.1%}")
        return f"SloSpec({self.name}: {', '.join(dims)})"
