"""The closed-loop adaptation controller (§4.2/§5's adaptation story).

"An MPI program can select from among alternative resources, according
to their availability, and adapt execution strategies or change
reservations if reservations cannot be satisfied in full or are
preempted." The :class:`AdaptationController` closes that loop for one
flow direction:

* an :class:`~repro.slo.SloMonitor` (optional) judges the flow against
  its :class:`~repro.slo.SloSpec`, window by window, with K-of-N
  voting and hysteresis;
* while an episode is open the controller renegotiates the premium
  reservation *upward* through ``gara.modify`` (make-before-break in
  the network manager, so a denied boost keeps the old grant);
* a dead broker is retried with the shared capped-exponential backoff
  (``repro.faults.backoff_delay``, jittered from ``sim.rng``), and the
  held reservation is never cancelled-and-reacquired around an outage
  — journal replay plus claim re-registration guarantee the old grant
  survives the restart, so re-reserving would double-book;
* repeated admission denial (or retry exhaustion) walks a degradation
  ladder premium → AF (low-latency marking, no admission control) →
  best-effort, one rung per cooldown;
* a periodic restore tick climbs back up the ladder, also one rung per
  cooldown, so the flap rate is provably bounded: every rung change
  after the first requires ``cooldown`` elapsed simulated seconds,
  hence ``flaps(T) <= 1 + floor(T / cooldown)``.

State machine (terminal state in caps on the right):

    MEETING -> VIOLATING -> RENEGOTIATING -> MEETING
                   |              |
                   +-- denials ---+--> DEGRADED <-> RESTORING
                                            |
    any state ------------------------------+----> CLOSED

Without a monitor the controller is exactly the legacy
:class:`~repro.core.AdaptiveQosSession` availability loop (negotiate
down to what the broker offers, renegotiate on expiry/preemption,
background-upgrade toward the desired rate), which is why that class
is now a thin shim over this one.
"""

from __future__ import annotations

from typing import Callable, List, Optional

from ..faults.lease import backoff_delay
from ..gara import ReservationError
from ..gara.broker import BrokerUnavailable
from .monitor import SloMonitor

__all__ = [
    "AdaptationController",
    "BrokerClientChannel",
    "MEETING",
    "VIOLATING",
    "RENEGOTIATING",
    "DEGRADED",
    "RESTORING",
    "CLOSED",
    "RUNG_PREMIUM",
    "RUNG_AF",
    "RUNG_BEST_EFFORT",
    "RUNG_NAMES",
]

MEETING = "MEETING"  # SLO met (or no monitor attached)
VIOLATING = "VIOLATING"  # violation episode open, between actions
RENEGOTIATING = "RENEGOTIATING"  # boost in flight (incl. broker retries)
DEGRADED = "DEGRADED"  # running below premium (AF or best-effort)
RESTORING = "RESTORING"  # climbing back up the ladder
CLOSED = "CLOSED"  # terminal; no transition leaves it

RUNG_PREMIUM = 0
RUNG_AF = 1
RUNG_BEST_EFFORT = 2
RUNG_NAMES = {
    RUNG_PREMIUM: "premium",
    RUNG_AF: "low-latency",
    RUNG_BEST_EFFORT: "best-effort",
}


class AdaptationController:
    """Keeps one rank-to-rank direction meeting its SLO.

    The first seven parameters are the legacy
    :class:`~repro.core.AdaptiveQosSession` surface and behave
    identically when ``monitor`` is None. The rest tune the closed
    loop; all times are simulated seconds.
    """

    def __init__(
        self,
        agent,
        src_rank: int,
        dst_rank: int,
        desired_bps: float,
        minimum_bps: float = 0.0,
        renegotiate: bool = True,
        upgrade_interval: Optional[float] = 5.0,
        *,
        monitor: Optional[SloMonitor] = None,
        boost_factor: float = 1.5,
        max_bps: Optional[float] = None,
        max_renegotiations_per_window: int = 3,
        renegotiation_window: float = 5.0,
        denials_before_degrade: int = 2,
        cooldown: float = 3.0,
        backoff_base: float = 0.25,
        backoff_cap: float = 2.0,
        backoff_jitter: float = 0.1,
        max_broker_retries: int = 4,
    ) -> None:
        if desired_bps <= 0:
            raise ValueError("desired bandwidth must be positive")
        if not 0 <= minimum_bps <= desired_bps:
            raise ValueError("need 0 <= minimum <= desired")
        if upgrade_interval is not None and upgrade_interval <= 0:
            raise ValueError("upgrade_interval must be positive or None")
        if boost_factor <= 1.0:
            raise ValueError("boost_factor must exceed 1")
        if max_bps is not None and max_bps < desired_bps:
            raise ValueError("max_bps must be >= desired_bps")
        if cooldown <= 0:
            raise ValueError("cooldown must be positive")
        if max_renegotiations_per_window < 1 or renegotiation_window <= 0:
            raise ValueError("renegotiation budget must be positive")
        if denials_before_degrade < 1:
            raise ValueError("denials_before_degrade must be >= 1")
        if max_broker_retries < 0:
            raise ValueError("max_broker_retries must be >= 0")
        self.agent = agent
        self.sim = agent.world.sim
        self.src_rank = src_rank
        self.dst_rank = dst_rank
        self.desired_bps = desired_bps
        self.minimum_bps = minimum_bps
        self.renegotiate = renegotiate
        self.upgrade_interval = upgrade_interval
        self.monitor = monitor
        self.boost_factor = boost_factor
        self.max_bps = 2.0 * desired_bps if max_bps is None else max_bps
        self.max_renegotiations_per_window = max_renegotiations_per_window
        self.renegotiation_window = renegotiation_window
        self.denials_before_degrade = denials_before_degrade
        self.cooldown = cooldown
        self.backoff_base = backoff_base
        self.backoff_cap = backoff_cap
        self.backoff_jitter = backoff_jitter
        self.max_broker_retries = max_broker_retries

        self.reservation = None
        self.granted_bps = 0.0
        #: ``fn(controller)`` invoked after every (re)negotiation and
        #: rung change. A raising listener is counted, not propagated.
        self.listeners: List[Callable] = []

        # Counters (scraped by repro.telemetry's collector).
        self.negotiations = 0
        self.upgrades = 0
        self.renegotiations = 0
        self.denials = 0
        self.degradations = 0
        self.restores = 0
        self.flaps = 0
        self.violations = 0
        self.broker_retries = 0
        self.listener_errors = 0

        self.state = MEETING
        self.rung = RUNG_PREMIUM
        self._closed = False
        self._af_handle = None
        self._denial_streak = 0
        self._rung_violation_streak = 0
        self._reneg_window_start = self.sim.now
        self._reneg_in_window = 0
        self._last_rung_change = float("-inf")
        self._upgrade_timer = None
        self._retry_timer = None

        self.negotiate()
        if upgrade_interval is not None:
            self._upgrade_timer = self.sim.call_in(
                upgrade_interval, self._upgrade_tick
            )
        if monitor is not None:
            monitor.on_violation = self._on_violation
            monitor.on_clear = self._on_clear
            monitor.start()

    # ------------------------------------------------------------------
    # Negotiation (the legacy availability loop)
    # ------------------------------------------------------------------

    def _available_now(self) -> float:
        src = self.agent.world.procs[self.src_rank].host
        dst = self.agent.world.procs[self.dst_rank].host
        broker = self.agent.gara.manager("network").broker
        horizon = self.sim.now + 1.0
        return broker.path_available(src, dst, self.sim.now, horizon)

    def negotiate(self) -> float:
        """(Re)acquire the best available bandwidth; returns it (bps)."""
        if self._closed:
            return 0.0
        self.negotiations += 1
        for attempt_bps in self._candidates():
            try:
                reservation = self.agent.reserve_flows(
                    self.src_rank, self.dst_rank, attempt_bps
                )
            except ReservationError:
                continue
            self.reservation = reservation
            self.granted_bps = attempt_bps
            reservation.register_callback(self._on_reservation_change)
            self._notify()
            return attempt_bps
        # Nothing obtainable above the floor: run best effort.
        self.reservation = None
        self.granted_bps = 0.0
        self._notify()
        return 0.0

    def _candidates(self):
        yield self.desired_bps
        available = self._available_now()
        # Leave a sliver so concurrent requesters are not starved by
        # exact-fit rounding.
        fallback = min(self.desired_bps, available * 0.99)
        if fallback >= max(self.minimum_bps, 1.0) and fallback < self.desired_bps:
            yield fallback

    def _on_reservation_change(self, reservation, old, new) -> None:
        if new in ("EXPIRED", "CANCELLED") and reservation is self.reservation:
            self.reservation = None
            self.granted_bps = 0.0
            if self.renegotiate and not self._closed:
                self.negotiate()
            else:
                self._notify()

    def _notify(self) -> None:
        for listener in list(self.listeners):
            try:
                listener(self)
            except Exception:
                # One broken listener must not abort dispatch for the
                # rest (or unwind the kernel's event loop).
                self.listener_errors += 1

    # ------------------------------------------------------------------
    # SLO violation handling
    # ------------------------------------------------------------------

    def _on_violation(self, monitor, violations) -> None:
        if self._closed:
            return
        self.violations += 1
        if self.state == RENEGOTIATING:
            return  # a boost (or its broker-retry backoff) is in flight
        if self.rung == RUNG_AF:
            # AF has no admission control to renegotiate, so after the
            # same streak threshold there are two ways out: premium may
            # be obtainable again (capacity freed, broker restarted) —
            # try that first, it is the only rung that can actually fix
            # the violation — and only if the climb fails stop
            # pretending and drop to plain best-effort.
            self._rung_violation_streak += 1
            if self._rung_violation_streak >= self.denials_before_degrade:
                self._try_restore()
                if self.rung != RUNG_PREMIUM:
                    self._degrade()
            return
        if self.rung == RUNG_BEST_EFFORT:
            return  # bottom of the ladder; the restore tick climbs
        self.state = VIOLATING
        self._attempt_boost()

    def _on_clear(self, monitor) -> None:
        if self._closed:
            return
        self._denial_streak = 0
        self._rung_violation_streak = 0
        if self._retry_timer is not None:
            # The SLO recovered while we were waiting out a broker
            # outage: the boost is moot.
            self._retry_timer.cancel()
            self._retry_timer = None
        if self.rung == RUNG_PREMIUM:
            self.state = MEETING

    def _attempt_boost(self, attempt: int = 0) -> None:
        """One renegotiation toward more premium bandwidth. First
        attempts consume the per-window budget; broker-outage retries
        of the same boost do not."""
        if self._closed or self.rung != RUNG_PREMIUM:
            return
        if attempt == 0:
            now = self.sim.now
            if now - self._reneg_window_start >= self.renegotiation_window:
                self._reneg_window_start = now
                self._reneg_in_window = 0
            if self._reneg_in_window >= self.max_renegotiations_per_window:
                return  # budget exhausted; wait for the window to roll
            self._reneg_in_window += 1
            self.renegotiations += 1
        if self.reservation is None:
            # Initial admission failed outright; retake the legacy path.
            if self.negotiate() <= 0.0 and attempt == 0:
                self._note_denial()
            return
        target = min(self.max_bps, self.granted_bps * self.boost_factor)
        if target <= self.granted_bps:
            return  # at the ceiling; more bandwidth is not the answer
        self.state = RENEGOTIATING
        try:
            # Make-before-break in the network manager: a denial rolls
            # back to the old grant, so failure costs nothing.
            self.agent.gara.modify(self.reservation, bandwidth=target)
        except BrokerUnavailable:
            self._schedule_broker_retry(attempt)
            return
        except ReservationError:
            self.state = VIOLATING
            self._note_denial()
            return
        self.granted_bps = target
        self._denial_streak = 0
        self.state = VIOLATING  # the episode closes via the monitor
        self._notify()

    def _note_denial(self) -> None:
        self.denials += 1
        self._denial_streak += 1
        if self._denial_streak >= self.denials_before_degrade:
            self._degrade()

    def _schedule_broker_retry(self, attempt: int) -> None:
        """The broker never processed the boost — the reservation is
        intact (journal replay + claim re-registration restore it on
        restart), so we must retry the *modify*, never cancel and
        re-reserve: a re-reserve racing the replayed grant would
        double-book the path."""
        self.broker_retries += 1
        if attempt >= self.max_broker_retries:
            self.state = VIOLATING
            self._note_denial()
            return
        delay = backoff_delay(
            attempt, self.backoff_base, self.backoff_cap,
            self.backoff_jitter, self.sim.rng,
        )
        self._retry_timer = self.sim.call_in(
            delay, lambda: self._broker_retry(attempt + 1)
        )

    def _broker_retry(self, attempt: int) -> None:
        self._retry_timer = None
        if self._closed or self.state != RENEGOTIATING:
            return
        self._attempt_boost(attempt)

    # ------------------------------------------------------------------
    # The degradation ladder
    # ------------------------------------------------------------------

    def _cooldown_passed(self) -> bool:
        return self.sim.now - self._last_rung_change >= self.cooldown

    def _set_rung(self, rung: int) -> None:
        self.rung = rung
        self.flaps += 1
        self._last_rung_change = self.sim.now
        self._rung_violation_streak = 0

    def _install_af(self) -> None:
        if self._af_handle is None:
            specs = self.agent._flow_specs(self.src_rank, self.dst_rank)
            self._af_handle = self.agent.domain.install_low_latency_flow(specs)

    def _remove_af(self) -> None:
        if self._af_handle is not None:
            handle, self._af_handle = self._af_handle, None
            self.agent.domain.remove_premium_flow(handle)

    def _degrade(self) -> bool:
        """One rung down (cooldown-gated). Returns True on a change."""
        if self.rung >= RUNG_BEST_EFFORT or not self._cooldown_passed():
            return False
        if self.rung == RUNG_PREMIUM:
            if self.reservation is not None:
                reservation, self.reservation = self.reservation, None
                self.granted_bps = 0.0
                reservation.cancel()
            self._install_af()
            self._set_rung(RUNG_AF)
        else:
            self._remove_af()
            self._set_rung(RUNG_BEST_EFFORT)
        self.degradations += 1
        self._denial_streak = 0
        self.state = DEGRADED
        self._notify()
        return True

    def _try_restore(self) -> None:
        """One rung up (cooldown-gated), driven by the upgrade tick."""
        if not self._cooldown_passed():
            return
        if self.rung == RUNG_BEST_EFFORT:
            self.state = RESTORING
            self._install_af()
            self._set_rung(RUNG_AF)
            self.restores += 1
            self.state = DEGRADED
            self._notify()
            return
        # AF -> premium needs admission back.
        self.state = RESTORING
        for attempt_bps in self._candidates():
            try:
                reservation = self.agent.reserve_flows(
                    self.src_rank, self.dst_rank, attempt_bps
                )
            except BrokerUnavailable:
                self.state = DEGRADED
                return  # outage; the next tick retries
            except ReservationError:
                continue
            self._remove_af()
            self.reservation = reservation
            self.granted_bps = attempt_bps
            reservation.register_callback(self._on_reservation_change)
            self._set_rung(RUNG_PREMIUM)
            self.restores += 1
            self.state = (
                VIOLATING
                if self.monitor is not None and self.monitor.violating
                else MEETING
            )
            self._notify()
            return
        self.denials += 1
        self.state = DEGRADED

    # ------------------------------------------------------------------
    # Background tick: legacy upgrades at premium, restores below it
    # ------------------------------------------------------------------

    def _upgrade_tick(self) -> None:
        """Periodically claw back toward the desired service (capacity
        may have been freed by other reservations expiring)."""
        if self._closed:
            return
        if self.rung != RUNG_PREMIUM:
            self._try_restore()
        elif self.granted_bps < self.desired_bps:
            if self.reservation is None:
                self.negotiate()
            else:
                try:
                    # Transactional: the network manager re-admits at
                    # the new bandwidth and rolls back on failure.
                    self.agent.gara.modify(
                        self.reservation, bandwidth=self.desired_bps
                    )
                    self.granted_bps = self.desired_bps
                    self.upgrades += 1
                    self._notify()
                except ReservationError:
                    pass
        self._upgrade_timer = self.sim.call_in(
            self.upgrade_interval, self._upgrade_tick
        )

    # ------------------------------------------------------------------
    # Reporting
    # ------------------------------------------------------------------

    @property
    def rung_name(self) -> str:
        return RUNG_NAMES[self.rung]

    def flap_bound(self, horizon: float) -> int:
        """The provable ceiling on rung changes over ``horizon``
        simulated seconds: the first change is free, every further one
        needs ``cooldown`` elapsed since the previous."""
        if horizon < 0:
            return 0
        return 1 + int(horizon / self.cooldown)

    # ------------------------------------------------------------------
    # Teardown
    # ------------------------------------------------------------------

    def close(self) -> None:
        """Cancel the held service and stop every loop. Terminal: no
        event — violation, clear, timer, callback — transitions a
        CLOSED controller."""
        if self._closed:
            return
        self._closed = True
        self.state = CLOSED
        for timer in (self._upgrade_timer, self._retry_timer):
            if timer is not None:
                timer.cancel()
        self._upgrade_timer = self._retry_timer = None
        if self.monitor is not None:
            self.monitor.stop()
        self._remove_af()
        if self.reservation is not None:
            reservation, self.reservation = self.reservation, None
            reservation.cancel()
        self.granted_bps = 0.0

    def __repr__(self) -> str:
        return (
            f"<{type(self).__name__} {self.src_rank}->{self.dst_rank} "
            f"{self.state} rung={self.rung_name} "
            f"granted={self.granted_bps / 1e3:.0f}Kb/s "
            f"of {self.desired_bps / 1e3:.0f}Kb/s>"
        )


class BrokerClientChannel:
    """Renegotiation over the wire: adapts the PR 6 asyncio
    :class:`~repro.broker_service.BrokerClient` to the controller's
    acquire/boost/release shape, inheriting the client's capped-
    exponential retries, journaled idempotency keys, and
    degrade-to-best-effort semantics wholesale."""

    def __init__(self, client) -> None:
        self.client = client

    async def acquire(
        self, src: str, dst: str, bandwidth: float, start: float, end: float,
        **kwargs,
    ):
        return await self.client.reserve(
            src, dst, bandwidth, start, end,
            key=self.client.new_key(), **kwargs,
        )

    async def boost(self, reservation, bandwidth: float):
        return await self.client.modify(reservation, bandwidth=bandwidth)

    async def release(self, reservation) -> int:
        return await self.client.cancel(reservation)
