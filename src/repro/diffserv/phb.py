"""Per-hop behaviours: the priority-queuing egress discipline.

The paper's testbed uses priority queuing on egress ports: "all packets
associated with reservations are sent before any other packets. When
there are no packets in the priority queue, other packets are allowed
to use the entire available bandwidth" (§5.1). This realises the EF PHB.

:class:`PriorityQdisc` holds one drop-tail queue per service class
(EF > AF > BE) and always dequeues from the highest non-empty class.
An optional aggregate EF policer at a domain-ingress port limits the
total expedited traffic, "to prevent starvation of nonexpedited flows"
(§2).
"""

from __future__ import annotations

from typing import List, Optional

from ..net.packet import Packet
from ..net.queues import DropTailQueue, Qdisc
from .dscp import (
    AF_LOW_LATENCY as _AF_LOW_LATENCY,
    CLASS_AF,
    CLASS_BE,
    CLASS_EF,
    EF as _EF,
)
from .token_bucket import TokenBucket

__all__ = ["PriorityQdisc"]


class PriorityQdisc(Qdisc):
    """Strict-priority scheduling over per-class drop-tail queues.

    Parameters
    ----------
    ef_limit_packets, af_limit_packets, be_limit_packets:
        Per-class queue bounds. The EF queue is generously sized — with
        admission control it should never grow; drops there indicate a
        broken reservation rather than normal congestion.
    ef_aggregate_policer:
        Optional :class:`TokenBucket` policing the *aggregate* EF
        arrivals at this port (used at domain-ingress routers).
    """

    N_CLASSES = 3

    def __init__(
        self,
        ef_limit_packets: int = 400,
        af_limit_packets: int = 200,
        be_limit_packets: int = 100,
        ef_aggregate_policer: Optional[TokenBucket] = None,
        sim=None,
    ) -> None:
        self._queues: List[DropTailQueue] = [
            DropTailQueue(limit_packets=ef_limit_packets),
            DropTailQueue(limit_packets=af_limit_packets),
            DropTailQueue(limit_packets=be_limit_packets),
        ]
        self.ef_aggregate_policer = ef_aggregate_policer
        self.sim = sim
        if ef_aggregate_policer is not None and sim is None:
            raise ValueError("an aggregate policer needs the sim for timestamps")
        self.ef_policer_drops = 0

    # -- class accessors (for tests and monitoring) ----------------------

    @property
    def ef_queue(self) -> DropTailQueue:
        return self._queues[CLASS_EF]

    @property
    def af_queue(self) -> DropTailQueue:
        return self._queues[CLASS_AF]

    @property
    def be_queue(self) -> DropTailQueue:
        return self._queues[CLASS_BE]

    @property
    def drops(self) -> int:
        return sum(q.drops for q in self._queues) + self.ef_policer_drops

    # -- qdisc interface --------------------------------------------------

    def enqueue(self, packet: Packet) -> bool:
        # Inlined service_class_of: this runs once per packet per hop.
        dscp = packet.dscp
        klass = (
            CLASS_EF if dscp == _EF
            else CLASS_AF if dscp == _AF_LOW_LATENCY
            else CLASS_BE
        )
        if klass == CLASS_EF and self.ef_aggregate_policer is not None:
            if not self.ef_aggregate_policer.consume(packet.size, self.sim.now):
                self.ef_policer_drops += 1
                tel = self.sim.telemetry
                if tel is not None and tel.trace is not None:
                    tel.trace.emit(
                        self.sim.now, "diffserv", "ef_policer_drop",
                        src=packet.src, dst=packet.dst,
                        sport=packet.sport, dport=packet.dport,
                        size=packet.size,
                    )
                return False
        # Inlined DropTailQueue.enqueue for the band queue (nothing
        # patches the inner bands' enqueue; the *qdisc*-level enqueue —
        # this method — is the supported hook point).
        queue = self._queues[klass]
        if (
            len(queue._queue) >= queue._limit_p
            or queue._bytes + packet.size > queue._limit_b
        ):
            return queue._dropped(packet)
        queue._queue.append(packet)
        queue._bytes += packet.size
        return True

    def dequeue(self) -> Optional[Packet]:
        for queue in self._queues:
            # Peek and pop the band's deque directly: the scan skips
            # (usually empty) higher-priority bands without a call, and
            # the hit avoids a second method dispatch.
            if queue._queue:
                packet = queue._queue.popleft()
                queue._bytes -= packet.size
                return packet
        return None

    def __len__(self) -> int:
        return sum(len(q) for q in self._queues)

    @property
    def backlog_bytes(self) -> int:
        return sum(q.backlog_bytes for q in self._queues)
