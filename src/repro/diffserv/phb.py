"""Per-hop behaviours: the priority-queuing egress discipline.

The paper's testbed uses priority queuing on egress ports: "all packets
associated with reservations are sent before any other packets. When
there are no packets in the priority queue, other packets are allowed
to use the entire available bandwidth" (§5.1). This realises the EF PHB.

:class:`PriorityQdisc` holds one queue per service class (EF > AF > BE)
and always dequeues from the highest non-empty class. An optional
aggregate EF policer at a domain-ingress port limits the total
expedited traffic, "to prevent starvation of nonexpedited flows" (§2).

Band queues default to drop-tail but are pluggable: any
:class:`~repro.net.queues.Qdisc` can serve as a band — the scheduler
talks to overrides only through ``enqueue``/``dequeue``/``peek``, which
is how WRED (or CoDel) drops into the AF band without touching the
scheduler. Plain drop-tail bands keep the historical inlined fast path
(byte-identical datapath, no extra dispatch).
"""

from __future__ import annotations

from typing import List, Optional

from ..net.packet import Packet
from ..net.queues import DropTailQueue, Qdisc
from .dscp import (
    AF_CODEPOINTS as _AF_CODEPOINTS,
    CLASS_AF,
    CLASS_BE,
    CLASS_EF,
    EF as _EF,
)
from .token_bucket import TokenBucket

__all__ = ["PriorityQdisc"]


class PriorityQdisc(Qdisc):
    """Strict-priority scheduling over per-class queues.

    Parameters
    ----------
    ef_limit_packets, af_limit_packets, be_limit_packets:
        Per-class queue bounds. The EF queue is generously sized — with
        admission control it should never grow; drops there indicate a
        broken reservation rather than normal congestion.
    ef_aggregate_policer:
        Optional :class:`TokenBucket` policing the *aggregate* EF
        arrivals at this port (used at domain-ingress routers).
    ef_qdisc, af_qdisc, be_qdisc:
        Optional band-queue overrides (e.g. a WRED queue on the AF
        band). Overrides are served through the ordinary
        ``enqueue``/``dequeue``/``peek`` qdisc interface (so
        dequeue-time droppers compose); only genuine
        :class:`DropTailQueue` bands take the inlined fast path.
    """

    N_CLASSES = 3

    def __init__(
        self,
        ef_limit_packets: int = 400,
        af_limit_packets: int = 200,
        be_limit_packets: int = 100,
        ef_aggregate_policer: Optional[TokenBucket] = None,
        sim=None,
        ef_qdisc: Optional[Qdisc] = None,
        af_qdisc: Optional[Qdisc] = None,
        be_qdisc: Optional[Qdisc] = None,
    ) -> None:
        self._queues: List[Qdisc] = [
            ef_qdisc or DropTailQueue(limit_packets=ef_limit_packets),
            af_qdisc or DropTailQueue(limit_packets=af_limit_packets),
            be_qdisc or DropTailQueue(limit_packets=be_limit_packets),
        ]
        # Per-band enqueue override: None selects the inlined drop-tail
        # fast path; anything else is dispatched dynamically.
        self._band_enqueue = [
            None if type(q) is DropTailQueue else q.enqueue
            for q in self._queues
        ]
        # Per-band dequeue plan, same gate: a genuine DropTailQueue is
        # popped inline; any other discipline is served through its own
        # dequeue so idle stamps and dequeue-time drops actually run.
        self._deq_bands = [
            (q, None if type(q) is DropTailQueue else q.dequeue)
            for q in self._queues
        ]
        self.ef_aggregate_policer = ef_aggregate_policer
        self.sim = sim
        if ef_aggregate_policer is not None and sim is None:
            raise ValueError("an aggregate policer needs the sim for timestamps")
        self.ef_policer_drops = 0

    # -- class accessors (for tests and monitoring) ----------------------

    @property
    def ef_queue(self) -> Qdisc:
        return self._queues[CLASS_EF]

    @property
    def af_queue(self) -> Qdisc:
        return self._queues[CLASS_AF]

    @property
    def be_queue(self) -> Qdisc:
        return self._queues[CLASS_BE]

    @property
    def drops(self) -> int:
        """All losses at this port: band-queue drops (tail *and* AQM
        early drops) plus aggregate-policer drops. ``total_drops``
        (the telemetry figure) mirrors this, so policer losses are
        never invisible in queue stats."""
        return sum(q.total_drops for q in self._queues) + self.ef_policer_drops

    # -- qdisc interface --------------------------------------------------

    def enqueue(self, packet: Packet) -> bool:
        # Inlined service_class_of: this runs once per packet per hop.
        # Any AF codepoint (AF11..AF43) selects the AF band — only
        # AF11 used to, silently demoting the other eleven to BE.
        dscp = packet.dscp
        klass = (
            CLASS_EF if dscp == _EF
            else CLASS_AF if dscp in _AF_CODEPOINTS
            else CLASS_BE
        )
        if klass == CLASS_EF and self.ef_aggregate_policer is not None:
            if not self.ef_aggregate_policer.consume(packet.size, self.sim.now):
                self.ef_policer_drops += 1
                tel = self.sim.telemetry
                if tel is not None and tel.trace is not None:
                    tel.trace.emit(
                        self.sim.now, "diffserv", "ef_policer_drop",
                        src=packet.src, dst=packet.dst,
                        sport=packet.sport, dport=packet.dport,
                        size=packet.size,
                    )
                return False
        band_enqueue = self._band_enqueue[klass]
        if band_enqueue is not None:
            # Custom band discipline (e.g. WRED on the AF band).
            return band_enqueue(packet)
        # Inlined DropTailQueue.enqueue for the band queue (nothing
        # patches the inner bands' enqueue; the *qdisc*-level enqueue —
        # this method — is the supported hook point).
        queue = self._queues[klass]
        if (
            len(queue._queue) >= queue._limit_p
            or queue._bytes + packet.size > queue._limit_b
        ):
            return queue._dropped(packet)
        queue._queue.append(packet)
        queue._bytes += packet.size
        return True

    def dequeue(self) -> Optional[Packet]:
        for queue, band_dequeue in self._deq_bands:
            if band_dequeue is None:
                # Inlined drop-tail pop: the scan skips (usually empty)
                # higher-priority bands without a call, and the hit
                # avoids a second method dispatch.
                if queue._queue:
                    packet = queue._queue.popleft()
                    queue._bytes -= packet.size
                    return packet
            elif len(queue):
                # Custom band (WRED, CoDel, …) — its dequeue may drop
                # the whole backlog and come back empty-handed, in
                # which case service falls to the next band.
                packet = band_dequeue()
                if packet is not None:
                    return packet
        return None

    def dequeue_batch(self, limit: int) -> List[Packet]:
        # Exactly `limit` sequential dequeue() calls with the method
        # dispatch hoisted out: each iteration rescans the bands from
        # the top, so a custom band that comes back empty-handed
        # (dropped its backlog at dequeue time) falls through to the
        # next band this packet and is retried for the next, precisely
        # as repeated dequeue() calls would.
        out: List[Packet] = []
        deq_bands = self._deq_bands
        while len(out) < limit:
            packet = None
            for queue, band_dequeue in deq_bands:
                if band_dequeue is None:
                    inner = queue._queue
                    if inner:
                        packet = inner.popleft()
                        queue._bytes -= packet.size
                        break
                elif len(queue):
                    packet = band_dequeue()
                    if packet is not None:
                        break
            if packet is None:
                break
            out.append(packet)
        return out

    def peek(self) -> Optional[Packet]:
        for queue, band_dequeue in self._deq_bands:
            packet = (
                (queue._queue[0] if queue._queue else None)
                if band_dequeue is None
                else queue.peek()
            )
            if packet is not None:
                return packet
        return None

    def __len__(self) -> int:
        return sum(len(q) for q in self._queues)

    @property
    def backlog_bytes(self) -> int:
        return sum(q.backlog_bytes for q in self._queues)
