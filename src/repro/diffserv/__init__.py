"""Differentiated-services mechanisms: classify, meter, mark, police,
and the EF per-hop behaviour (priority queuing)."""

from .classifier import Classifier, FlowSpec
from .conditioner import (
    EXCEED_DROP,
    EXCEED_REMARK,
    PolicedMarking,
    TrafficConditioner,
)
from .dscp import (
    AF_CODEPOINTS,
    AF_LOW_LATENCY,
    BEST_EFFORT,
    CLASS_AF,
    CLASS_BE,
    CLASS_EF,
    DSCP_NAMES,
    EF,
    af_class_of,
    af_dscp,
    drop_precedence_of,
    is_af,
    service_class_of,
)
from .mqc import DiffServDomain, PremiumFlowHandle
from .phb import PriorityQdisc
from .token_bucket import (
    LARGE_DEPTH_DIVISOR,
    NORMAL_DEPTH_DIVISOR,
    TokenBucket,
    paper_bucket_depth,
)

__all__ = [
    "AF_CODEPOINTS",
    "AF_LOW_LATENCY",
    "BEST_EFFORT",
    "CLASS_AF",
    "CLASS_BE",
    "CLASS_EF",
    "Classifier",
    "DSCP_NAMES",
    "DiffServDomain",
    "EF",
    "EXCEED_DROP",
    "EXCEED_REMARK",
    "FlowSpec",
    "LARGE_DEPTH_DIVISOR",
    "NORMAL_DEPTH_DIVISOR",
    "PolicedMarking",
    "PremiumFlowHandle",
    "PriorityQdisc",
    "TokenBucket",
    "TrafficConditioner",
    "af_class_of",
    "af_dscp",
    "drop_precedence_of",
    "is_af",
    "paper_bucket_depth",
    "service_class_of",
]
