"""Token-bucket meter, the basic DiffServ policing/shaping primitive.

Tokens are measured in bytes. The bucket refills continuously at
``rate`` (bits/second, matching the unit conventions) up to ``depth``
bytes. A packet conforms if the bucket currently holds at least its
size in tokens.

The paper's edge-router configuration rule (§4.3)::

    depth = bandwidth * delay

with a safety factor, "currently bandwidth/40" — exposed here as
:func:`paper_bucket_depth`.
"""

from __future__ import annotations

__all__ = ["TokenBucket", "paper_bucket_depth", "NORMAL_DEPTH_DIVISOR", "LARGE_DEPTH_DIVISOR"]

#: The paper's "normal" token bucket: depth = bandwidth/40 (§4.3, §5.4).
NORMAL_DEPTH_DIVISOR = 40.0
#: The paper's "large" token bucket: depth = bandwidth/4 (§5.4, Table 1).
LARGE_DEPTH_DIVISOR = 4.0


def paper_bucket_depth(bandwidth_bps: float, divisor: float = NORMAL_DEPTH_DIVISOR) -> float:
    """Bucket depth in **bytes** from the paper's bandwidth/divisor rule.

    ``depth_bytes = bandwidth_bps / divisor``. The paper's own Table 1
    arithmetic pins the units down: at 400 Kb/s the "normal" (bw/40)
    bucket admits a 10 fps burst (5 KB frames) but not a 1 fps burst
    (50 KB frames), while the "large" (bw/4) bucket admits both —
    which holds for 10 KB / 100 KB depths, i.e. bytes = bits-per-second
    divided by the divisor.
    """
    if bandwidth_bps <= 0:
        raise ValueError("bandwidth must be positive")
    if divisor <= 0:
        raise ValueError("divisor must be positive")
    return bandwidth_bps / divisor


class TokenBucket:
    """Continuous-refill token bucket.

    Parameters
    ----------
    rate:
        Token refill rate in bits/second.
    depth:
        Bucket capacity in bytes. The bucket starts full.
    """

    __slots__ = ("rate", "depth", "tokens", "_last")

    def __init__(self, rate: float, depth: float) -> None:
        if rate <= 0:
            raise ValueError("rate must be positive")
        if depth <= 0:
            raise ValueError("depth must be positive")
        self.rate = rate
        self.depth = float(depth)
        self.tokens = float(depth)
        self._last = 0.0

    def _refill(self, now: float) -> None:
        if now > self._last:
            self.tokens = min(
                self.depth, self.tokens + (now - self._last) * self.rate / 8.0
            )
            self._last = now

    def peek(self, now: float) -> float:
        """Tokens (bytes) available at time ``now`` without consuming."""
        self._refill(now)
        return self.tokens

    #: Absolute tolerance (bytes) absorbing float residue from
    #: wait-then-consume patterns (shapers computing exact wait times).
    _TOLERANCE = 1e-6

    def consume(self, nbytes: int, now: float) -> bool:
        """Try to take ``nbytes`` tokens; True if the packet conforms."""
        self._refill(now)
        if self.tokens + self._TOLERANCE >= nbytes:
            self.tokens = max(0.0, self.tokens - nbytes)
            return True
        return False

    def time_until_conforming(self, nbytes: int, now: float) -> float:
        """Seconds until ``nbytes`` tokens will be available (0 if now).

        Used by the end-host shaper: rather than dropping, wait this
        long before releasing the packet.
        """
        if nbytes > self.depth:
            raise ValueError(
                f"packet of {nbytes}B can never conform to depth {self.depth}B"
            )
        self._refill(now)
        deficit = nbytes - self.tokens
        # Tolerance matters: a residual deficit of ~1e-10 bytes would
        # yield a wait so small that now + wait == now in floats, and a
        # wait-then-retry shaper would spin forever at one timestamp.
        if deficit <= self._TOLERANCE:
            return 0.0
        return deficit * 8.0 / self.rate

    def reconfigure(
        self, rate: float = None, depth: float = None, *, now: float
    ) -> None:
        """Change rate and/or depth in place (reservation modify).

        ``now`` is keyword-only and required: the bucket must be
        refilled *at the true current time* before the rate changes,
        otherwise tokens accrued since ``_last`` would later be
        credited at the new rate — a reservation upgrade would
        retroactively inflate (or deflate) the burst allowance.
        """
        self._refill(now)
        if rate is not None:
            if rate <= 0:
                raise ValueError("rate must be positive")
            self.rate = rate
        if depth is not None:
            if depth <= 0:
                raise ValueError("depth must be positive")
            self.depth = float(depth)
            self.tokens = min(self.tokens, self.depth)

    def __repr__(self) -> str:
        return f"<TokenBucket rate={self.rate:.0f}b/s depth={self.depth:.0f}B>"
