"""Multi-field packet classification (edge-router function).

Edge devices classify packets "based on information in the header,
such as source and destination addresses and ports" (§2). A
:class:`FlowSpec` is a 5-tuple pattern with wildcards; a
:class:`Classifier` is an ordered rule list mapping flow specs to
actions.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Iterator, List, Optional, Tuple

from ..net.packet import Packet

__all__ = ["FlowSpec", "Classifier"]


@dataclass(frozen=True)
class FlowSpec:
    """A 5-tuple pattern; ``None`` fields are wildcards."""

    src: Optional[int] = None
    dst: Optional[int] = None
    sport: Optional[int] = None
    dport: Optional[int] = None
    proto: Optional[int] = None

    def matches(self, packet: Packet) -> bool:
        return (
            (self.src is None or self.src == packet.src)
            and (self.dst is None or self.dst == packet.dst)
            and (self.sport is None or self.sport == packet.sport)
            and (self.dport is None or self.dport == packet.dport)
            and (self.proto is None or self.proto == packet.proto)
        )

    def reversed(self) -> "FlowSpec":
        """The spec matching the reverse direction of this flow."""
        return FlowSpec(
            src=self.dst, dst=self.src, sport=self.dport, dport=self.sport,
            proto=self.proto,
        )

    def __str__(self) -> str:
        def show(x):
            return "*" if x is None else str(x)

        return (
            f"{show(self.src)}:{show(self.sport)}->"
            f"{show(self.dst)}:{show(self.dport)}/{show(self.proto)}"
        )


class Classifier:
    """Ordered first-match rule table: FlowSpec -> action object."""

    def __init__(self) -> None:
        self._rules: List[Tuple[FlowSpec, Any]] = []

    def add(self, spec: FlowSpec, action: Any) -> None:
        self._rules.append((spec, action))

    def remove(self, spec: FlowSpec) -> bool:
        """Remove the first rule with exactly this spec; True if found."""
        for i, (s, _a) in enumerate(self._rules):
            if s == spec:
                del self._rules[i]
                return True
        return False

    def lookup(self, packet: Packet) -> Optional[Any]:
        """Action of the first matching rule, or None."""
        for spec, action in self._rules:
            if spec.matches(packet):
                return action
        return None

    def __len__(self) -> int:
        return len(self._rules)

    def __iter__(self) -> Iterator[Tuple[FlowSpec, Any]]:
        return iter(self._rules)
