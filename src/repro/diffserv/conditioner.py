"""Edge traffic conditioning: classify, meter, mark, police.

A :class:`TrafficConditioner` is installed on the ingress side of an
edge-router interface (``Interface.ingress``). For every arriving
packet it looks up the classifier:

* **match** → the rule's :class:`PolicedMarking` meters the packet
  against its token bucket; conforming packets are marked with the
  rule's codepoint, excess packets are dropped (policed) or remarked
  down, per the rule's ``exceed_action``;
* **no match** → the packet is remarked to the conditioner's
  ``default_dscp`` (best effort), so hosts cannot self-promote.
"""

from __future__ import annotations

from typing import Optional

from ..kernel import Simulator
from ..net.packet import Packet
from .classifier import Classifier, FlowSpec
from .dscp import BEST_EFFORT
from .token_bucket import TokenBucket

__all__ = ["PolicedMarking", "TrafficConditioner", "EXCEED_DROP", "EXCEED_REMARK"]

EXCEED_DROP = "drop"
EXCEED_REMARK = "remark"


class PolicedMarking:
    """One conditioning rule: mark ``dscp`` up to the bucket's profile."""

    def __init__(
        self,
        sim: Simulator,
        dscp: int,
        bucket: Optional[TokenBucket],
        exceed_action: str = EXCEED_DROP,
        exceed_dscp: int = BEST_EFFORT,
    ) -> None:
        if exceed_action not in (EXCEED_DROP, EXCEED_REMARK):
            raise ValueError(f"unknown exceed action {exceed_action!r}")
        self.sim = sim
        self.dscp = dscp
        self.bucket = bucket
        self.exceed_action = exceed_action
        self.exceed_dscp = exceed_dscp
        self.conforming_packets = 0
        self.conforming_bytes = 0
        self.exceeding_packets = 0
        self.exceeding_bytes = 0

    def reconfigure(
        self,
        rate: Optional[float] = None,
        depth: Optional[float] = None,
        *,
        now: float,
    ) -> None:
        """Reservation-modify hook (mark-only rules ignore it); the
        same interface :class:`repro.aqm.TcmMarking` implements, so
        the domain can modify either rule kind uniformly."""
        if self.bucket is not None:
            self.bucket.reconfigure(rate=rate, depth=depth, now=now)

    def apply(self, packet: Packet) -> bool:
        """Mark/police ``packet``; returns False if it must be dropped."""
        if self.bucket is None or self.bucket.consume(packet.size, self.sim._now):
            packet.dscp = self.dscp
            self.conforming_packets += 1
            self.conforming_bytes += packet.size
            return True
        self.exceeding_packets += 1
        self.exceeding_bytes += packet.size
        if self.exceed_action == EXCEED_REMARK:
            packet.dscp = self.exceed_dscp
            return True
        return False


class TrafficConditioner:
    """The per-interface ingress conditioning block.

    Callable with the ``(packet) -> bool`` signature that
    :attr:`repro.net.node.Interface.ingress` expects.
    """

    def __init__(
        self,
        sim: Simulator,
        default_dscp: int = BEST_EFFORT,
        name: str = "edge",
    ) -> None:
        self.sim = sim
        self.classifier = Classifier()
        self.default_dscp = default_dscp
        #: Where this conditioner sits (``<router>.<iface>``), used as
        #: the telemetry name component.
        self.name = name
        self.policed_drops = 0

    def add_rule(
        self,
        spec: FlowSpec,
        dscp: int,
        rate: Optional[float] = None,
        depth: Optional[float] = None,
        exceed_action: str = EXCEED_DROP,
    ) -> PolicedMarking:
        """Install a mark+police rule; rate/depth None means mark-only."""
        bucket = None
        if rate is not None:
            if depth is None:
                raise ValueError("depth required when rate is given")
            bucket = TokenBucket(rate, depth)
            bucket._last = self.sim.now
        rule = PolicedMarking(self.sim, dscp, bucket, exceed_action)
        self.classifier.add(spec, rule)
        return rule

    def remove_rule(self, spec: FlowSpec) -> bool:
        return self.classifier.remove(spec)

    def __call__(self, packet: Packet) -> bool:
        # Inlined Classifier.lookup: this runs for every packet
        # entering a conditioned port.
        rule = None
        for spec, action in self.classifier._rules:
            if spec.matches(packet):
                rule = action
                break
        if rule is None:
            packet.dscp = self.default_dscp
            return True
        ok = rule.apply(packet)
        if not ok:
            self.policed_drops += 1
        tel = self.sim.telemetry
        if tel is not None and tel.trace is not None:
            event = "mark" if ok else "police_drop"
            if tel.trace.wants("diffserv", event):
                tel.trace.emit(
                    self.sim.now, "diffserv", event,
                    conditioner=self.name, dscp=packet.dscp,
                    src=packet.src, dst=packet.dst,
                    sport=packet.sport, dport=packet.dport,
                    size=packet.size,
                )
        return ok
