"""Domain-level DiffServ configuration (Cisco MQC-style facade).

The testbed description (§5.1) lists three mechanisms per router:
a packet classifier on each interface, token-bucket mark/police on
edge-ingress ports, and priority queuing on egress ports.
:class:`DiffServDomain` installs exactly that configuration over a set of
routers and then offers the two operations GARA's network resource
manager needs: install and remove a policed premium flow.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from ..kernel import Simulator
from ..net.node import Host, Interface, Router
from .classifier import FlowSpec
from .conditioner import EXCEED_DROP, PolicedMarking, TrafficConditioner
from .dscp import AF_LOW_LATENCY, BEST_EFFORT, EF
from .phb import PriorityQdisc
from .token_bucket import TokenBucket

__all__ = ["DiffServDomain", "PremiumFlowHandle"]


@dataclass
class PremiumFlowHandle:
    """Handle for one installed premium flow aggregate.

    ``specs`` may hold several 5-tuples (e.g. every socket pair of an
    MPI communicator) that share one policing profile per edge.
    """

    specs: List[FlowSpec]
    rate: float
    depth: float
    rules: List[PolicedMarking] = field(default_factory=list)
    conditioners: List[TrafficConditioner] = field(default_factory=list)
    removed: bool = False

    @property
    def spec(self) -> FlowSpec:
        """The first (often only) flow spec, for convenience."""
        return self.specs[0]

    @property
    def conforming_bytes(self) -> int:
        return sum(r.conforming_bytes for r in self.rules)

    @property
    def policed_drops(self) -> int:
        return sum(r.exceeding_packets for r in self.rules)


class DiffServDomain:
    """A set of routers operated as one DiffServ domain.

    On construction this rewrites every router egress qdisc to
    :class:`PriorityQdisc` (the EF PHB) and installs a
    :class:`TrafficConditioner` on every edge-ingress interface (an
    interface whose link peer is a host). Unmatched traffic is remarked
    best-effort so end systems cannot self-promote.
    """

    def __init__(
        self,
        sim: Simulator,
        routers: List[Router],
        ef_limit_packets: int = 400,
        be_limit_packets: int = 100,
        ef_aggregate_share: Optional[float] = None,
    ) -> None:
        """``ef_aggregate_share`` (e.g. 0.7) additionally installs an
        aggregate EF policer on every *core-facing* egress port — the
        §5.1 "police the premium aggregate" mechanism guarding against
        broken admission control."""
        if ef_aggregate_share is not None and not 0 < ef_aggregate_share <= 1:
            raise ValueError("ef_aggregate_share must be in (0, 1]")
        self.sim = sim
        self.routers = list(routers)
        self.ef_aggregate_share = ef_aggregate_share
        self.conditioners: Dict[Interface, TrafficConditioner] = {}
        self.priority_qdiscs: List[PriorityQdisc] = []
        for router in self.routers:
            for iface in router.interfaces:
                aggregate = None
                if (
                    ef_aggregate_share is not None
                    and not isinstance(iface.peer.node, Host)
                ):
                    rate = iface.bandwidth * ef_aggregate_share
                    aggregate = TokenBucket(rate, depth=rate / 40.0)
                    aggregate._last = sim.now
                qdisc = PriorityQdisc(
                    ef_limit_packets=ef_limit_packets,
                    be_limit_packets=be_limit_packets,
                    ef_aggregate_policer=aggregate,
                    sim=sim,
                )
                iface.qdisc = qdisc
                self.priority_qdiscs.append(qdisc)
                if isinstance(iface.peer.node, Host):
                    conditioner = TrafficConditioner(
                        sim,
                        default_dscp=BEST_EFFORT,
                        name=f"{router.name}.{iface.name}",
                    )
                    iface.ingress.append(conditioner)
                    self.conditioners[iface] = conditioner

    # -- premium flows ----------------------------------------------------

    def install_premium_flow(
        self,
        spec,
        rate: float,
        depth: float,
        exceed_action: str = EXCEED_DROP,
    ) -> PremiumFlowHandle:
        """Police+mark flow(s) as EF at every edge-ingress conditioner.

        ``spec`` is a :class:`FlowSpec` or a list of them; a list forms
        an *aggregate*: all its flows share one token bucket per edge.
        A flow physically enters the domain at exactly one edge, so only
        one edge's rule ever meters it; installing at all edges avoids
        needing topology knowledge here (GARA's bandwidth broker does
        the per-path admission control).
        """
        specs = [spec] if isinstance(spec, FlowSpec) else list(spec)
        if not specs:
            raise ValueError("at least one flow spec required")
        handle = PremiumFlowHandle(specs=specs, rate=rate, depth=depth)
        for conditioner in self.conditioners.values():
            bucket = TokenBucket(rate, depth)
            bucket._last = self.sim.now
            rule = PolicedMarking(self.sim, EF, bucket, exceed_action)
            for s in specs:
                conditioner.classifier.add(s, rule)
            handle.rules.append(rule)
            handle.conditioners.append(conditioner)
        return handle

    def install_low_latency_flow(self, spec) -> PremiumFlowHandle:
        """Mark flow(s) as the AF low-latency class (no policing)."""
        specs = [spec] if isinstance(spec, FlowSpec) else list(spec)
        handle = PremiumFlowHandle(specs=specs, rate=0.0, depth=0.0)
        for conditioner in self.conditioners.values():
            rule = PolicedMarking(self.sim, AF_LOW_LATENCY, None)
            for s in specs:
                conditioner.classifier.add(s, rule)
            handle.rules.append(rule)
            handle.conditioners.append(conditioner)
        return handle

    def modify_premium_flow(
        self, handle: PremiumFlowHandle, rate: float, depth: float
    ) -> None:
        """Change the policing profile of an installed flow in place."""
        if handle.removed:
            raise ValueError("flow has been removed")
        for rule in handle.rules:
            if rule.bucket is not None:
                rule.bucket.reconfigure(rate=rate, depth=depth, now=self.sim.now)
        handle.rate = rate
        handle.depth = depth

    def remove_premium_flow(self, handle: PremiumFlowHandle) -> None:
        """Remove the flow's rules; its packets revert to best effort."""
        if handle.removed:
            return
        for conditioner in handle.conditioners:
            for spec in handle.specs:
                conditioner.remove_rule(spec)
        handle.removed = True

    def add_flow_to_aggregate(
        self, handle: PremiumFlowHandle, spec: FlowSpec
    ) -> None:
        """Bind one more flow to an existing premium aggregate."""
        if handle.removed:
            raise ValueError("flow has been removed")
        handle.specs.append(spec)
        for conditioner, rule in zip(handle.conditioners, handle.rules):
            conditioner.classifier.add(spec, rule)

    def ef_backlog_packets(self) -> int:
        """Total packets sitting in EF queues (diagnostic)."""
        return sum(len(q.ef_queue) for q in self.priority_qdiscs)
