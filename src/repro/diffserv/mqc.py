"""Domain-level DiffServ configuration (Cisco MQC-style facade).

The testbed description (§5.1) lists three mechanisms per router:
a packet classifier on each interface, token-bucket mark/police on
edge-ingress ports, and priority queuing on egress ports.
:class:`DiffServDomain` installs exactly that configuration over a set of
routers and then offers the two operations GARA's network resource
manager needs: install and remove a policed premium flow.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from ..kernel import Simulator
from ..net.node import Host, Interface, Router
from ..net.queues import Qdisc
from .classifier import FlowSpec
from .conditioner import EXCEED_DROP, PolicedMarking, TrafficConditioner
from .dscp import AF_LOW_LATENCY, BEST_EFFORT, EF
from .phb import PriorityQdisc
from .token_bucket import TokenBucket

__all__ = ["DiffServDomain", "PremiumFlowHandle"]


@dataclass
class PremiumFlowHandle:
    """Handle for one installed premium flow aggregate.

    ``specs`` may hold several 5-tuples (e.g. every socket pair of an
    MPI communicator) that share one policing profile per edge.
    """

    specs: List[FlowSpec]
    rate: float
    depth: float
    rules: List[PolicedMarking] = field(default_factory=list)
    conditioners: List[TrafficConditioner] = field(default_factory=list)
    removed: bool = False

    @property
    def spec(self) -> FlowSpec:
        """The first (often only) flow spec, for convenience."""
        return self.specs[0]

    @property
    def conforming_bytes(self) -> int:
        return sum(r.conforming_bytes for r in self.rules)

    @property
    def policed_drops(self) -> int:
        return sum(r.exceeding_packets for r in self.rules)


class _AggregatePolicerFilter:
    """EF-band admission filter wrapping the aggregate policer, for
    DRR-based egress ports (PriorityQdisc inlines the same logic)."""

    def __init__(self, sim: Simulator, bucket: TokenBucket) -> None:
        self.sim = sim
        self.bucket = bucket

    def __call__(self, packet) -> bool:
        if self.bucket.consume(packet.size, self.sim.now):
            return True
        tel = self.sim.telemetry
        if tel is not None and tel.trace is not None:
            tel.trace.emit(
                self.sim.now, "diffserv", "ef_policer_drop",
                src=packet.src, dst=packet.dst,
                sport=packet.sport, dport=packet.dport,
                size=packet.size,
            )
        return False


class DiffServDomain:
    """A set of routers operated as one DiffServ domain.

    On construction this rewrites every router egress qdisc to
    :class:`PriorityQdisc` (the EF PHB) and installs a
    :class:`TrafficConditioner` on every edge-ingress interface (an
    interface whose link peer is a host). Unmatched traffic is remarked
    best-effort so end systems cannot self-promote.
    """

    def __init__(
        self,
        sim: Simulator,
        routers: List[Router],
        ef_limit_packets: int = 400,
        be_limit_packets: int = 100,
        ef_aggregate_share: Optional[float] = None,
        aqm=None,
    ) -> None:
        """``ef_aggregate_share`` (e.g. 0.7) additionally installs an
        aggregate EF policer on every *core-facing* egress port — the
        §5.1 "police the premium aggregate" mechanism guarding against
        broken admission control.

        ``aqm`` is an optional :class:`repro.aqm.AqmPolicy`. In its
        AQM modes router egress ports get EF-strict DRR with a WRED
        assured band, and premium flows are conditioned by three-color
        markers instead of a drop policer. ``None`` (or a droptail
        policy) leaves every mechanism exactly as the paper configures
        it."""
        if ef_aggregate_share is not None and not 0 < ef_aggregate_share <= 1:
            raise ValueError("ef_aggregate_share must be in (0, 1]")
        self.sim = sim
        self.routers = list(routers)
        self.ef_aggregate_share = ef_aggregate_share
        self.aqm = aqm if aqm is not None and aqm.active else None
        self.conditioners: Dict[Interface, TrafficConditioner] = {}
        self.priority_qdiscs: List[Qdisc] = []
        for router in self.routers:
            for iface in router.interfaces:
                aggregate = None
                if (
                    ef_aggregate_share is not None
                    and not isinstance(iface.peer.node, Host)
                ):
                    rate = iface.bandwidth * ef_aggregate_share
                    aggregate = TokenBucket(rate, depth=rate / 40.0)
                    aggregate._last = sim.now
                if self.aqm is not None:
                    ef_filter = None
                    if aggregate is not None:
                        ef_filter = _AggregatePolicerFilter(sim, aggregate)
                    qdisc = self.aqm.build_router_qdisc(
                        sim,
                        ef_limit_packets=ef_limit_packets,
                        be_limit_packets=be_limit_packets,
                        ef_filter=ef_filter,
                    )
                else:
                    qdisc = PriorityQdisc(
                        ef_limit_packets=ef_limit_packets,
                        be_limit_packets=be_limit_packets,
                        ef_aggregate_policer=aggregate,
                        sim=sim,
                    )
                self.set_egress_qdisc(iface, qdisc)
                if isinstance(iface.peer.node, Host):
                    conditioner = TrafficConditioner(
                        sim,
                        default_dscp=BEST_EFFORT,
                        name=f"{router.name}.{iface.name}",
                    )
                    iface.ingress.append(conditioner)
                    self.conditioners[iface] = conditioner

    # -- per-interface configuration (MQC service-policy analogues) --------

    def set_egress_qdisc(self, iface: Interface, qdisc: Qdisc) -> None:
        """Attach ``qdisc`` to one egress port (``service-policy out``).

        Replaces whatever this domain previously installed there and
        keeps the domain's qdisc inventory (telemetry walks it)
        consistent."""
        old = iface.qdisc
        iface.qdisc = qdisc
        if old in self.priority_qdiscs:
            self.priority_qdiscs[self.priority_qdiscs.index(old)] = qdisc
        else:
            self.priority_qdiscs.append(qdisc)

    def attach_marker(self, iface: Interface, spec: FlowSpec, rule) -> None:
        """Bind a marking rule (e.g. :class:`repro.aqm.TcmMarking`) to
        ``spec`` on one conditioned edge interface (``service-policy
        in`` with a ``police ... conform/exceed/violate`` clause)."""
        conditioner = self.conditioners.get(iface)
        if conditioner is None:
            raise ValueError(f"{iface!r} has no edge conditioner")
        conditioner.classifier.add(spec, rule)

    # -- premium flows ----------------------------------------------------

    def install_premium_flow(
        self,
        spec,
        rate: float,
        depth: float,
        exceed_action: str = EXCEED_DROP,
    ) -> PremiumFlowHandle:
        """Police+mark flow(s) as EF at every edge-ingress conditioner.

        ``spec`` is a :class:`FlowSpec` or a list of them; a list forms
        an *aggregate*: all its flows share one token bucket per edge.
        A flow physically enters the domain at exactly one edge, so only
        one edge's rule ever meters it; installing at all edges avoids
        needing topology knowledge here (GARA's bandwidth broker does
        the per-path admission control).

        Under an active AQM policy the edge rule is a three-color
        marker instead: conforming traffic still becomes EF, but the
        excess is remarked to AF drop precedences (and the handle's
        ``policed_drops`` counts *red-metered* packets, which WRED may
        or may not actually drop downstream).
        """
        specs = [spec] if isinstance(spec, FlowSpec) else list(spec)
        if not specs:
            raise ValueError("at least one flow spec required")
        handle = PremiumFlowHandle(specs=specs, rate=rate, depth=depth)
        for conditioner in self.conditioners.values():
            if self.aqm is not None:
                rule = self.aqm.build_premium_rule(self.sim, rate, depth)
            else:
                bucket = TokenBucket(rate, depth)
                bucket._last = self.sim.now
                rule = PolicedMarking(self.sim, EF, bucket, exceed_action)
            for s in specs:
                conditioner.classifier.add(s, rule)
            handle.rules.append(rule)
            handle.conditioners.append(conditioner)
        return handle

    def install_af_flow(
        self, spec, rate: float, depth: float
    ) -> PremiumFlowHandle:
        """Mark flow(s) into the assured class: three-color metered to
        AFx1/AFx2/AFx3 at every edge. Requires an active AQM policy
        (the paper's strict-priority configuration has no assured
        service to offer)."""
        if self.aqm is None:
            raise ValueError("install_af_flow requires an active AQM policy")
        specs = [spec] if isinstance(spec, FlowSpec) else list(spec)
        if not specs:
            raise ValueError("at least one flow spec required")
        handle = PremiumFlowHandle(specs=specs, rate=rate, depth=depth)
        for conditioner in self.conditioners.values():
            rule = self.aqm.build_af_rule(self.sim, rate, depth)
            for s in specs:
                conditioner.classifier.add(s, rule)
            handle.rules.append(rule)
            handle.conditioners.append(conditioner)
        return handle

    def install_low_latency_flow(self, spec) -> PremiumFlowHandle:
        """Mark flow(s) as the AF low-latency class (no policing)."""
        specs = [spec] if isinstance(spec, FlowSpec) else list(spec)
        handle = PremiumFlowHandle(specs=specs, rate=0.0, depth=0.0)
        for conditioner in self.conditioners.values():
            rule = PolicedMarking(self.sim, AF_LOW_LATENCY, None)
            for s in specs:
                conditioner.classifier.add(s, rule)
            handle.rules.append(rule)
            handle.conditioners.append(conditioner)
        return handle

    def modify_premium_flow(
        self, handle: PremiumFlowHandle, rate: float, depth: float
    ) -> None:
        """Change the policing profile of an installed flow in place."""
        if handle.removed:
            raise ValueError("flow has been removed")
        for rule in handle.rules:
            rule.reconfigure(rate=rate, depth=depth, now=self.sim.now)
        handle.rate = rate
        handle.depth = depth

    def remove_premium_flow(self, handle: PremiumFlowHandle) -> None:
        """Remove the flow's rules; its packets revert to best effort."""
        if handle.removed:
            return
        for conditioner in handle.conditioners:
            for spec in handle.specs:
                conditioner.remove_rule(spec)
        handle.removed = True

    def add_flow_to_aggregate(
        self, handle: PremiumFlowHandle, spec: FlowSpec
    ) -> None:
        """Bind one more flow to an existing premium aggregate."""
        if handle.removed:
            raise ValueError("flow has been removed")
        handle.specs.append(spec)
        for conditioner, rule in zip(handle.conditioners, handle.rules):
            conditioner.classifier.add(spec, rule)

    def ef_backlog_packets(self) -> int:
        """Total packets sitting in EF queues (diagnostic)."""
        total = 0
        for q in self.priority_qdiscs:
            ef = getattr(q, "ef_queue", None)
            total += len(ef) if ef is not None else len(q.bands[0])
        return total
