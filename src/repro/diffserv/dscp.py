"""DiffServ codepoints and service classes.

The paper uses three application-visible QoS classes (§4.1): premium
(built on the EF per-hop behaviour), low-latency (for small-message
traffic such as collectives — we map it to an AF-style class), and
best-effort.

The full Assured Forwarding matrix (RFC 2597) is spelled out here
because the AQM layer needs it: an AF codepoint encodes a *class*
(AF1x–AF4x, which queue) and a *drop precedence* (AFx1–AFx3, which
WRED curve). Three-color markers remark a flow's packets between the
precedences of one class; WRED then discriminates among them under
congestion.
"""

from __future__ import annotations

__all__ = [
    "BEST_EFFORT",
    "AF_LOW_LATENCY",
    "EF",
    "AF_CODEPOINTS",
    "DSCP_NAMES",
    "af_dscp",
    "af_class_of",
    "drop_precedence_of",
    "is_af",
    "service_class_of",
    "CLASS_EF",
    "CLASS_AF",
    "CLASS_BE",
]

#: Default forwarding — codepoint 0.
BEST_EFFORT = 0
#: Expedited Forwarding (RFC 2598): strict-priority service.
EF = 46


def af_dscp(af_class: int, precedence: int) -> int:
    """The RFC 2597 codepoint for AF<class><precedence>.

    ``dscp = 8 * class + 2 * precedence`` with class in 1..4 and drop
    precedence in 1..3 (1 = lowest, dropped last).
    """
    if not 1 <= af_class <= 4:
        raise ValueError(f"AF class must be 1..4, got {af_class}")
    if not 1 <= precedence <= 3:
        raise ValueError(f"drop precedence must be 1..3, got {precedence}")
    return 8 * af_class + 2 * precedence


#: Every RFC 2597 codepoint: AF11..AF43.
AF_CODEPOINTS = frozenset(
    af_dscp(klass, prec) for klass in range(1, 5) for prec in range(1, 4)
)

#: Assured-forwarding-style class used for the "low-latency" QoS class.
AF_LOW_LATENCY = af_dscp(1, 1)  # AF11

DSCP_NAMES = {BEST_EFFORT: "BE", EF: "EF"}
for _klass in range(1, 5):
    for _prec in range(1, 4):
        DSCP_NAMES[af_dscp(_klass, _prec)] = f"AF{_klass}{_prec}"
del _klass, _prec

# Internal service-class indices used by the priority qdisc
# (lower index = higher priority).
CLASS_EF = 0
CLASS_AF = 1
CLASS_BE = 2


def is_af(dscp: int) -> bool:
    """True for any RFC 2597 assured-forwarding codepoint."""
    return dscp in AF_CODEPOINTS


def af_class_of(dscp: int) -> int:
    """AF class (1..4) of an AF codepoint."""
    if dscp not in AF_CODEPOINTS:
        raise ValueError(f"{dscp} is not an AF codepoint")
    return dscp // 8


def drop_precedence_of(dscp: int) -> int:
    """Drop precedence (1..3) of an AF codepoint; 1 for anything else.

    Non-AF traffic sharing an AF queue is treated as lowest drop
    precedence (the most protected curve), the conventional WRED
    default for unmarked packets.
    """
    if dscp in AF_CODEPOINTS:
        return (dscp % 8) // 2
    return 1


def service_class_of(dscp: int) -> int:
    """Map a codepoint to its scheduling class.

    Every AF codepoint (AF11–AF43) lands in the AF band — classes
    beyond AF1x used to fall through to best effort, silently demoting
    marked traffic.
    """
    if dscp == EF:
        return CLASS_EF
    if dscp in AF_CODEPOINTS:
        return CLASS_AF
    return CLASS_BE
