"""DiffServ codepoints and service classes.

The paper uses three application-visible QoS classes (§4.1): premium
(built on the EF per-hop behaviour), low-latency (for small-message
traffic such as collectives — we map it to an AF-style class), and
best-effort.
"""

from __future__ import annotations

__all__ = [
    "BEST_EFFORT",
    "AF_LOW_LATENCY",
    "EF",
    "DSCP_NAMES",
    "service_class_of",
    "CLASS_EF",
    "CLASS_AF",
    "CLASS_BE",
]

#: Default forwarding — codepoint 0.
BEST_EFFORT = 0
#: Assured-forwarding-style class used for the "low-latency" QoS class.
AF_LOW_LATENCY = 10  # AF11
#: Expedited Forwarding (RFC 2598): strict-priority service.
EF = 46

DSCP_NAMES = {BEST_EFFORT: "BE", AF_LOW_LATENCY: "AF11", EF: "EF"}

# Internal service-class indices used by the priority qdisc
# (lower index = higher priority).
CLASS_EF = 0
CLASS_AF = 1
CLASS_BE = 2


def service_class_of(dscp: int) -> int:
    """Map a codepoint to its scheduling class."""
    if dscp == EF:
        return CLASS_EF
    if dscp == AF_LOW_LATENCY:
        return CLASS_AF
    return CLASS_BE
