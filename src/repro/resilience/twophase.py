"""Two-phase commit for co-reservations.

GARA's co-reservations span resource managers (network + CPU +
storage). The original facade granted them sequentially and cancelled
on failure — safe only while every manager is immortal: a manager that
dies after granting leaves claims stranded, and a caller that retries
after a lost acknowledgement double-books capacity.

:class:`TwoPhaseCoordinator` makes co-reservation a transaction:

1. **Prepare** — every branch manager admits the request against its
   slot table (claiming capacity) but does *not* enable enforcement or
   register the reservation. A branch that cannot admit, or whose
   manager does not answer within ``prepare_timeout``, vetoes the
   transaction.
2. **Commit** — once every branch is prepared, each branch is
   committed: the reservation registers, timers arm, enforcement
   installs.
3. **Abort** — on any veto, every prepared branch releases its claim;
   the conservation invariant is that an aborted transaction leaves
   zero residual claims on any manager.

Control calls are synchronous in the simulation (the control plane
answers within one event), so an *unresponsive* manager is modelled by
its ``alive`` flag: a dead manager never answers, the coordinator's
per-phase timeout budget expires, and the branch counts as a veto
(``prepare_timeouts``/``commit_timeouts``).

**Idempotency keys** make retries safe: a caller that never saw the
commit acknowledgement retries with the same key and receives the
recorded outcome instead of booking the links twice. Aborted keys are
forgotten (the abort left no claims, so a retry may genuinely try
again).
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Tuple

from ..gara.reservation import Reservation, ReservationError

__all__ = ["TwoPhaseCoordinator"]


class TwoPhaseCoordinator:
    """Prepare/commit/abort orchestration over a Gara facade."""

    def __init__(
        self,
        gara: Any,
        prepare_timeout: float = 0.5,
        commit_timeout: float = 0.5,
    ) -> None:
        if prepare_timeout <= 0 or commit_timeout <= 0:
            raise ValueError("phase timeouts must be positive")
        self.gara = gara
        self.sim = gara.sim
        self.prepare_timeout = prepare_timeout
        self.commit_timeout = commit_timeout
        # Statistics (scraped by repro.telemetry).
        self.transactions = 0
        self.committed = 0
        self.aborted = 0
        self.prepare_timeouts = 0
        self.commit_timeouts = 0
        self.idempotent_replays = 0
        self._outcomes: Dict[str, List[Reservation]] = {}

    def co_reserve(
        self,
        requests: List[Tuple[Any, Optional[float], Optional[float]]],
        idempotency_key: Optional[str] = None,
    ) -> List[Reservation]:
        """Atomically reserve every ``(spec, start, duration)`` branch.

        Raises :class:`ReservationError` when any branch vetoes; the
        abort leaves no residual claims. With ``idempotency_key``, a
        retry of an already-committed transaction returns the recorded
        reservations without re-admitting anything.
        """
        if idempotency_key is not None and idempotency_key in self._outcomes:
            self.idempotent_replays += 1
            self._emit("2pc_replay", key=idempotency_key)
            return list(self._outcomes[idempotency_key])
        self.transactions += 1
        prepared = []
        try:
            for spec, start, duration in requests:
                manager = self.gara.manager_for_spec(spec)
                if not getattr(manager, "alive", True):
                    self.prepare_timeouts += 1
                    raise ReservationError(
                        f"{manager.resource_type} manager did not answer "
                        f"prepare within {self.prepare_timeout}s"
                    )
                prepared.append(manager.prepare(spec, start, duration))
        except ReservationError as exc:
            self._abort(prepared, phase="prepare", error=str(exc))
            raise
        committed: List[Reservation] = []
        for branch in prepared:
            if not getattr(branch.manager, "alive", True):
                self.commit_timeouts += 1
                error = (
                    f"{branch.manager.resource_type} manager did not answer "
                    f"commit within {self.commit_timeout}s"
                )
                for reservation in committed:
                    reservation.cancel()
                self._abort(
                    [b for b in prepared if b.state == "prepared"],
                    phase="commit",
                    error=error,
                )
                raise ReservationError(error)
            committed.append(branch.manager.commit(branch))
        self.committed += 1
        if idempotency_key is not None:
            self._outcomes[idempotency_key] = list(committed)
        self._emit(
            "2pc_commit", branches=len(committed), key=idempotency_key
        )
        return committed

    # -- internals ---------------------------------------------------------

    def _abort(self, prepared, phase: str, error: str) -> None:
        for branch in prepared:
            branch.manager.abort(branch)
        self.aborted += 1
        self._emit("2pc_abort", phase=phase, branches=len(prepared), error=error)

    def _emit(self, name: str, **fields: Any) -> None:
        tel = self.sim.telemetry
        if tel is not None and tel.trace is not None:
            tel.trace.emit(self.sim.now, "gara", name, **fields)

    def __repr__(self) -> str:
        return (
            f"<TwoPhaseCoordinator committed={self.committed} "
            f"aborted={self.aborted}>"
        )
