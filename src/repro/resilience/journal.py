"""Write-ahead journal for control-plane state.

The GARA control plane (broker, resource managers) is the only place
where reservation state lives; the paper's architecture assumes it
never dies. :class:`Journal` models the durable log such a service
would keep: every committed slot-table mutation (admission, release,
quota change, orphan collection) is appended as a :class:`JournalRecord`
before the caller observes the result, and a restarted component
replays the log to reconstruct the exact pre-crash state.

Design notes
------------
* Records are append-only and totally ordered by an LSN (log sequence
  number). Replay is a pure left fold over ``records``.
* Only *committed* mutations are journaled. A failed multi-link
  admission rolls its partial claims back to the exact prior state
  (see :meth:`repro.gara.BandwidthBroker.admit_path`), so omitting it
  from the log keeps log replay and live execution convergent.
* The journal survives a :meth:`crash` of its owner by construction —
  it is a separate object, the simulation analogue of a write-ahead
  log on stable storage.
* Long-running services compact the log: :meth:`Journal.snapshot`
  stores an owner-provided checkpoint payload covering everything up
  to the current LSN, and :meth:`Journal.truncate_below` drops the
  records the checkpoint subsumes. Replay then becomes "restore the
  checkpoint, fold the suffix" — bounded by work since the last
  checkpoint instead of service lifetime, and byte-identical to a
  full-log replay (the broker's checkpoint stores its float accounting
  values verbatim rather than recomputing them).
"""

from __future__ import annotations

from typing import Any, Callable, List, Mapping, Tuple

__all__ = ["Journal", "JournalRecord"]


class JournalRecord:
    """One committed control-plane mutation.

    ``op`` is the record type (``"admit"``, ``"release"``, ``"quota"``,
    ``"gc"``); ``fields`` holds the op-specific payload with plain
    (string/number/tuple) values so a record never pins live simulation
    objects — interfaces are named ``(node, iface)`` and re-resolved at
    replay time.

    A ``__slots__`` class rather than a dataclass: journal appends sit
    on the broker's admission fast path, and the frozen-dataclass
    ``object.__setattr__`` per field costs more than the rest of the
    append combined. Records are conceptually immutable — never mutate
    one after :meth:`Journal.append` returns it.
    """

    __slots__ = ("lsn", "op", "fields")

    def __init__(self, lsn: int, op: str, fields: Mapping[str, Any]) -> None:
        self.lsn = lsn
        self.op = op
        self.fields = fields

    def __repr__(self) -> str:
        return f"<JournalRecord #{self.lsn} {self.op} {dict(self.fields)!r}>"


class Journal:
    """An append-only, replayable log of control-plane mutations."""

    def __init__(self, name: str = "") -> None:
        self.name = name
        self._records: List[JournalRecord] = []
        self._next_lsn = 1
        #: Total records ever appended (scraped by repro.telemetry).
        self.appends_total = 0
        #: Checkpoint payload covering every mutation with
        #: ``lsn <= snapshot_lsn`` (None = no checkpoint taken).
        self.snapshot_payload: Any = None
        #: LSN the checkpoint covers through (0 = no checkpoint).
        self.snapshot_lsn = 0
        #: Compaction statistics (scraped by repro.telemetry).
        self.snapshots_total = 0
        self.records_truncated = 0

    def append(self, op: str, **fields: Any) -> JournalRecord:
        """Durably log one committed mutation and return its record."""
        record = JournalRecord(self._next_lsn, op, fields)
        self._next_lsn += 1
        self._records.append(record)
        self.appends_total += 1
        return record

    @property
    def records(self) -> Tuple[JournalRecord, ...]:
        """The log in LSN order."""
        return tuple(self._records)

    @property
    def last_lsn(self) -> int:
        """LSN of the newest mutation the log covers: the newest
        retained record, or the checkpoint LSN when everything since
        the checkpoint has been truncated."""
        return self._records[-1].lsn if self._records else self.snapshot_lsn

    # -- compaction ---------------------------------------------------------

    def snapshot(self, payload: Any) -> int:
        """Store a checkpoint covering every mutation logged so far.

        ``payload`` is an owner-defined value (the broker stores its
        full slot-table/usage/quota/counter state) that a restart
        restores *before* folding the remaining records. Returns the
        LSN the checkpoint covers through. Taking a snapshot does not
        drop any records — call :meth:`truncate_below` with
        ``snapshot_lsn + 1`` for that.
        """
        self.snapshot_payload = payload
        self.snapshot_lsn = self.last_lsn
        self.snapshots_total += 1
        return self.snapshot_lsn

    def truncate_below(self, lsn: int) -> int:
        """Drop records with ``record.lsn < lsn``; returns how many.

        Refuses to discard records newer than the checkpoint covers
        (that would lose committed mutations).
        """
        if lsn > self.snapshot_lsn + 1:
            raise ValueError(
                f"truncate_below({lsn}) would drop records after the "
                f"checkpoint (snapshot_lsn={self.snapshot_lsn})"
            )
        keep = [r for r in self._records if r.lsn >= lsn]
        dropped = len(self._records) - len(keep)
        self._records = keep
        self.records_truncated += dropped
        return dropped

    def compact(self, payload: Any) -> int:
        """:meth:`snapshot` then :meth:`truncate_below` in one step;
        returns the number of records truncated."""
        lsn = self.snapshot(payload)
        return self.truncate_below(lsn + 1)

    def replay(self, apply: Callable[[JournalRecord], None]) -> int:
        """Left-fold ``apply`` over the log; returns records replayed."""
        for record in self._records:
            apply(record)
        return len(self._records)

    def __len__(self) -> int:
        return len(self._records)

    def __iter__(self):
        return iter(self._records)

    def __repr__(self) -> str:
        return (
            f"<Journal {self.name or 'unnamed'} {len(self._records)} records "
            f"last_lsn={self.last_lsn}>"
        )
