"""Write-ahead journal for control-plane state.

The GARA control plane (broker, resource managers) is the only place
where reservation state lives; the paper's architecture assumes it
never dies. :class:`Journal` models the durable log such a service
would keep: every committed slot-table mutation (admission, release,
quota change, orphan collection) is appended as a :class:`JournalRecord`
before the caller observes the result, and a restarted component
replays the log to reconstruct the exact pre-crash state.

Design notes
------------
* Records are append-only and totally ordered by an LSN (log sequence
  number). Replay is a pure left fold over ``records``.
* Only *committed* mutations are journaled. A failed multi-link
  admission rolls its partial claims back to the exact prior state
  (see :meth:`repro.gara.BandwidthBroker.admit_path`), so omitting it
  from the log keeps log replay and live execution convergent.
* The journal survives a :meth:`crash` of its owner by construction —
  it is a separate object, the simulation analogue of a write-ahead
  log on stable storage.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, List, Mapping, Tuple

__all__ = ["Journal", "JournalRecord"]


@dataclass(frozen=True)
class JournalRecord:
    """One committed control-plane mutation.

    ``op`` is the record type (``"admit"``, ``"release"``, ``"quota"``,
    ``"gc"``); ``fields`` holds the op-specific payload with plain
    (string/number/tuple) values so a record never pins live simulation
    objects — interfaces are named ``(node, iface)`` and re-resolved at
    replay time.
    """

    lsn: int
    op: str
    fields: Mapping[str, Any]

    def __repr__(self) -> str:
        return f"<JournalRecord #{self.lsn} {self.op} {dict(self.fields)!r}>"


class Journal:
    """An append-only, replayable log of control-plane mutations."""

    def __init__(self, name: str = "") -> None:
        self.name = name
        self._records: List[JournalRecord] = []
        self._next_lsn = 1
        #: Total records ever appended (scraped by repro.telemetry).
        self.appends_total = 0

    def append(self, op: str, **fields: Any) -> JournalRecord:
        """Durably log one committed mutation and return its record."""
        record = JournalRecord(self._next_lsn, op, fields)
        self._next_lsn += 1
        self._records.append(record)
        self.appends_total += 1
        return record

    @property
    def records(self) -> Tuple[JournalRecord, ...]:
        """The log in LSN order."""
        return tuple(self._records)

    @property
    def last_lsn(self) -> int:
        """LSN of the newest record (0 when the log is empty)."""
        return self._records[-1].lsn if self._records else 0

    def replay(self, apply: Callable[[JournalRecord], None]) -> int:
        """Left-fold ``apply`` over the log; returns records replayed."""
        for record in self._records:
            apply(record)
        return len(self._records)

    def __len__(self) -> int:
        return len(self._records)

    def __iter__(self):
        return iter(self._records)

    def __repr__(self) -> str:
        return (
            f"<Journal {self.name or 'unnamed'} {len(self._records)} records "
            f"last_lsn={self.last_lsn}>"
        )
