"""Crash-tolerant GARA control plane.

PR 1 (``repro.faults``) made the *data plane* survive faults — link
flaps, loss, lease-based re-admission. This package does the same for
the *control plane*, whose components (bandwidth broker, resource
managers, the MPI QoS agent's control session) were previously immortal
by assumption:

``repro.resilience.journal``
    :class:`Journal`: a write-ahead log of committed slot-table
    mutations; replaying it after a crash reconstructs the exact
    pre-crash broker state.
``repro.resilience.detector``
    :class:`FailureDetector`: timeout-based heartbeat supervision with
    seeded-deterministic timing; drives the lease machinery's
    degrade-to-best-effort / re-admit-on-recovery transitions.
``repro.resilience.twophase``
    :class:`TwoPhaseCoordinator`: prepare/commit/abort co-reservations
    across resource managers with per-phase timeouts, rollback on
    partial failure, and idempotency keys.

Crash/restart of the components themselves lives with the components
(``BandwidthBroker.crash()``/``restart()``, ``ResourceManager.crash()``,
``MpiQosAgent.crash()``) and is scripted through
:class:`repro.faults.ChaosSchedule`'s ``at(t).crash(component)``.
"""

from .detector import FailureDetector, Watch, WATCH_DOWN, WATCH_UP
from .journal import Journal, JournalRecord
from .twophase import TwoPhaseCoordinator

__all__ = [
    "FailureDetector",
    "Journal",
    "JournalRecord",
    "TwoPhaseCoordinator",
    "WATCH_DOWN",
    "WATCH_UP",
    "Watch",
]
