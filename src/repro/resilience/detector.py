"""Timeout-based heartbeat failure detection for control-plane peers.

MPICH-G2's wide-area setting makes component failure the norm, so the
QoS layer cannot assume the broker answers. A :class:`FailureDetector`
models the standard heartbeat protocol in two flavours:

* **poll mode** (a ``component`` with an ``alive`` flag): every watched
  component is polled on a (seeded-jittered) interval — each poll of a
  live component counts as a received heartbeat;
* **push mode** (``component=None``): the peer itself reports liveness
  via :meth:`Watch.heartbeat` (the broker service's clients do this
  over the wire); the detector only checks staleness on its poll tick.

Either way, a peer whose last heartbeat is older than ``timeout`` is
*suspected* (marked DOWN) exactly once until it heartbeats again, at
which point it is marked UP and the recovery callback fires.

``last_heartbeat`` is monotonic: a heartbeat carrying an older
observation than one already recorded can never move it backwards.
Each registration of a peer name opens a fresh *epoch*; after a watch
is evicted (:meth:`FailureDetector.evict` or :meth:`Watch.close`), a
re-registration of the same name gets the next epoch, and heartbeats
stamped with a stale epoch are counted and dropped — a delayed message
from a dead incarnation can never resurrect the peer.

All jitter is drawn from the simulator's seeded RNG, so suspicion and
recovery timestamps are reproducible for a fixed seed. The lease-aware
MPI QoS agent wires ``on_down``/``on_up`` into the lease machinery:
suspicion triggers the degrade-to-best-effort path immediately (rather
than waiting for each lease's own heartbeat) and recovery collapses the
leases' exponential backoff so re-admission happens promptly.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, List, Optional

from ..kernel import Simulator

__all__ = ["FailureDetector", "Watch", "WATCH_UP", "WATCH_DOWN"]

WATCH_UP = "UP"
WATCH_DOWN = "DOWN"


class Watch:
    """One monitored peer.

    ``component`` is anything exposing an ``alive`` flag (poll mode),
    or None for push mode, where liveness arrives only through
    :meth:`heartbeat`.
    """

    def __init__(
        self,
        detector: "FailureDetector",
        name: str,
        component: Any,
        on_down: Optional[Callable[["Watch"], None]],
        on_up: Optional[Callable[["Watch"], None]],
        epoch: int = 1,
    ) -> None:
        self.detector = detector
        self.name = name
        self.component = component
        self.on_down = on_down
        self.on_up = on_up
        #: Registration epoch of this incarnation of the peer (bumped
        #: each time the same name is re-registered after eviction).
        self.epoch = epoch
        self.state = WATCH_UP
        #: Simulation time of the newest accepted heartbeat. Monotone
        #: non-decreasing for the lifetime of the watch.
        self.last_heartbeat = detector.sim.now
        #: Simulation time of the most recent suspicion (None = never).
        self.suspected_at: Optional[float] = None
        # Statistics (scraped by repro.telemetry).
        self.suspicions = 0
        self.recoveries = 0
        #: Heartbeats dropped because they carried a stale epoch.
        self.stale_heartbeats = 0
        self._timer = None
        self._closed = False
        self._arm()

    @property
    def suspected(self) -> bool:
        return self.state == WATCH_DOWN

    @property
    def closed(self) -> bool:
        return self._closed

    def heartbeat(self, epoch: Optional[int] = None) -> bool:
        """Record a pushed liveness report from the peer.

        ``epoch``, when given, must match this watch's registration
        epoch: a heartbeat from an evicted incarnation is counted in
        ``stale_heartbeats`` and dropped (it must not resurrect the
        peer). Returns True iff the heartbeat was accepted. Marks a
        suspected peer UP again (firing ``on_up``) like a poll-mode
        recovery would.
        """
        if self._closed:
            return False
        if epoch is not None and epoch != self.epoch:
            self.stale_heartbeats += 1
            self.detector.stale_heartbeats += 1
            return False
        now = self.detector.sim.now
        if now > self.last_heartbeat:
            self.last_heartbeat = now
        if self.state == WATCH_DOWN:
            self._mark_up()
        return True

    def close(self) -> None:
        """Stop monitoring this component."""
        self._closed = True
        if self._timer is not None:
            self._timer.cancel()
            self._timer = None

    # -- internals ---------------------------------------------------------

    def _mark_up(self) -> None:
        self.state = WATCH_UP
        self.recoveries += 1
        self.detector.recoveries += 1
        self.detector._emit("peer_up", peer=self.name)
        if self.on_up is not None:
            self.on_up(self)

    def _arm(self) -> None:
        self._timer = self.detector.sim.call_in(
            self.detector._poll_delay(), self._tick
        )

    def _tick(self) -> None:
        self._timer = None
        if self._closed:
            return
        sim = self.detector.sim
        component = self.component
        alive = (
            bool(getattr(component, "alive", True))
            if component is not None
            else None
        )
        if alive:
            # Polling a live component counts as a heartbeat.
            if sim.now > self.last_heartbeat:
                self.last_heartbeat = sim.now
            if self.state == WATCH_DOWN:
                self._mark_up()
        elif (
            self.state == WATCH_UP
            and sim.now - self.last_heartbeat >= self.detector.timeout - 1e-12
        ):
            self.state = WATCH_DOWN
            self.suspected_at = sim.now
            self.suspicions += 1
            self.detector.suspicions += 1
            self.detector._emit(
                "peer_down", peer=self.name,
                silent_for=sim.now - self.last_heartbeat,
            )
            if self.on_down is not None:
                self.on_down(self)
        self._arm()

    def __repr__(self) -> str:
        return (
            f"<Watch {self.name}#{self.epoch} {self.state} "
            f"suspicions={self.suspicions}>"
        )


class FailureDetector:
    """Heartbeat supervision over a set of control-plane components.

    Parameters
    ----------
    sim:
        The simulator whose clock and seeded RNG drive polling.
    interval:
        Seconds between heartbeat polls of each watch.
    timeout:
        A component silent for at least this long is suspected. Must
        exceed ``interval`` or a single missed poll trips the detector.
    jitter:
        Uniform ±fraction applied to each poll delay (decorrelates
        watches; drawn from the simulator RNG for reproducibility).
    """

    def __init__(
        self,
        sim: Simulator,
        interval: float = 0.25,
        timeout: float = 0.8,
        jitter: float = 0.1,
    ) -> None:
        if interval <= 0:
            raise ValueError("interval must be positive")
        if timeout < interval:
            raise ValueError("timeout must be at least the poll interval")
        if not 0 <= jitter < 1:
            raise ValueError("jitter must be in [0, 1)")
        self.sim = sim
        self.interval = interval
        self.timeout = timeout
        self.jitter = jitter
        self.watches: List[Watch] = []
        # Latest registration epoch handed out per peer name.
        self._epochs: Dict[str, int] = {}
        # Statistics (scraped by repro.telemetry).
        self.suspicions = 0
        self.recoveries = 0
        self.stale_heartbeats = 0
        self.evictions = 0

    def watch(
        self,
        name: str,
        component: Any = None,
        on_down: Optional[Callable[[Watch], None]] = None,
        on_up: Optional[Callable[[Watch], None]] = None,
    ) -> Watch:
        """Supervise a peer.

        ``component`` is anything with an ``alive`` flag (poll mode)
        or None (push mode — liveness arrives via
        :meth:`Watch.heartbeat`). Registering a name again after its
        watch was evicted or closed opens a fresh epoch.
        """
        epoch = self._epochs.get(name, 0) + 1
        self._epochs[name] = epoch
        watch = Watch(self, name, component, on_down, on_up, epoch=epoch)
        self.watches.append(watch)
        return watch

    def lookup(self, name: str) -> Optional[Watch]:
        """The live (non-closed) watch for ``name``, if any."""
        for watch in reversed(self.watches):
            if watch.name == name and not watch.closed:
                return watch
        return None

    def evict(self, watch: Watch) -> None:
        """Expel a peer: stop its watch and retire its epoch.

        A later :meth:`watch` of the same name starts a fresh epoch, so
        in-flight heartbeats stamped by the evicted incarnation are
        rejected as stale rather than resurrecting the peer.
        """
        if watch.closed:
            return
        watch.close()
        if watch in self.watches:
            self.watches.remove(watch)
        self.evictions += 1
        self._emit("peer_evicted", peer=watch.name, epoch=watch.epoch)

    def close(self) -> None:
        """Stop all watches."""
        for watch in self.watches:
            watch.close()

    # -- internals ---------------------------------------------------------

    def _poll_delay(self) -> float:
        delay = self.interval
        if self.jitter:
            delay *= 1.0 + self.jitter * (2.0 * self.sim.rng.random() - 1.0)
        return delay

    def _emit(self, name: str, **fields: Any) -> None:
        tel = self.sim.telemetry
        if tel is not None and tel.trace is not None:
            tel.trace.emit(self.sim.now, "gara", name, **fields)

    def __repr__(self) -> str:
        return (
            f"<FailureDetector {len(self.watches)} watches "
            f"interval={self.interval}s timeout={self.timeout}s>"
        )
