"""PIE — Proportional Integral controller Enhanced (RFC 8033).

PIE keeps a drop probability ``p`` and steers it with a classic PI
controller on the *queueing latency*:

    p += alpha * (qdelay - target) + beta * (qdelay - qdelay_old)

evaluated every ``t_update``. The latency estimate comes from packet
timestamps (the RFC 8033 §4.3 alternative to the departure-rate
estimator): the head packet's sojourn time is the delay the next
departure will experience, and an empty queue means zero delay. The
increment is auto-scaled down while ``p`` is small (the RFC's staged
divisor table) so the controller is stable across many orders of
magnitude, and ``p`` decays multiplicatively when the queue stays
empty. A burst allowance admits everything for the first
``max_burst`` seconds after an idle period.

Unlike CoDel, PIE makes its decision at *enqueue* time (a coin flip
against ``p`` from ``sim.rng``), so ``peek`` is a plain non-mutating
head read. Rather than running a perpetual sim timer for the
``t_update`` tick (which would inflate pinned event counts even for
idle queues), the controller catches up lazily: every enqueue/dequeue
first replays any update epochs that have elapsed — same arithmetic,
same determinism, zero standing events.
"""

from __future__ import annotations

from collections import deque
from typing import Callable, Deque, Optional

from ..net.packet import ECN_CE, ECN_ECT0, ECN_ECT1, Packet
from ..net.queues import Qdisc

__all__ = ["PieQdisc"]

# RFC 8033 §5.1: scale the PI increment down while drop_prob is small.
_SCALE_TABLE = (
    (0.000001, 1.0 / 2048.0),
    (0.00001, 1.0 / 512.0),
    (0.0001, 1.0 / 128.0),
    (0.001, 1.0 / 32.0),
    (0.01, 1.0 / 8.0),
    (0.1, 1.0 / 2.0),
)

# Catch-up bound: after this many empty-queue update epochs the
# controller has decayed to dust (0.98**256 ~ 0.006), so the lazy
# replay snaps forward instead of spinning through a long idle gap.
_MAX_CATCHUP = 256


class PieQdisc(Qdisc):
    """RFC 8033 PIE over a FIFO backlog.

    Parameters
    ----------
    sim:
        The simulator (clock + seeded rng for the drop coin flips).
    target:
        Latency reference the controller steers to (RFC default 15 ms).
    t_update:
        Probability update period (RFC default 15 ms).
    alpha, beta:
        PI gains in 1/s (RFC defaults 0.125 and 1.25).
    limit_packets:
        Hard tail-drop bound.
    ecn:
        Mark ECN-capable packets instead of dropping while
        ``p < ecn_threshold`` (RFC 8033 §5.1 optional ECN support).
    ecn_threshold:
        Marking ceiling — above it even ECT packets are dropped.
    max_burst:
        Seconds of burst admitted unconditionally after idle.
    mean_pkt_size:
        Backlog floor (bytes): at or below ``2 * mean_pkt_size`` PIE
        never drops (work-conservation safeguard).
    """

    def __init__(
        self,
        sim,
        target: float = 0.015,
        t_update: float = 0.015,
        alpha: float = 0.125,
        beta: float = 1.25,
        limit_packets: int = 1000,
        ecn: bool = False,
        ecn_threshold: float = 0.1,
        max_burst: float = 0.15,
        mean_pkt_size: int = 1000,
    ) -> None:
        if target <= 0 or t_update <= 0:
            raise ValueError("target and t_update must be positive")
        if limit_packets <= 0:
            raise ValueError("limit_packets must be positive")
        if not 0 < ecn_threshold <= 1:
            raise ValueError("ecn_threshold must be in (0, 1]")
        self.sim = sim
        self.target = target
        self.t_update = t_update
        self.alpha = alpha
        self.beta = beta
        self.limit_packets = limit_packets
        self.ecn = ecn
        self.ecn_threshold = ecn_threshold
        self.max_burst = max_burst
        self.mean_pkt_size = mean_pkt_size
        self._queue: Deque[Packet] = deque()
        self._bytes = 0
        #: Current drop probability (the controller's output).
        self.drop_prob = 0.0
        self._qdelay_old = 0.0
        self._burst_allowance = max_burst
        self._t_next = t_update  # next update epoch (sim time)
        # Counters.
        self.drops = 0
        self.drop_bytes = 0
        self.tail_drops = 0
        self.early_drops = 0
        self.ecn_marks = 0
        self.sojourn_sum = 0.0
        self.sojourn_count = 0
        self.on_drop: Optional[Callable[[Packet], None]] = None

    # -- internals ---------------------------------------------------------

    def _dropped(self, packet: Packet, tail: bool) -> bool:
        self.drops += 1
        self.drop_bytes += packet.size
        if tail:
            self.tail_drops += 1
        else:
            self.early_drops += 1
        if self.on_drop is not None:
            self.on_drop(packet)
        tel = self.sim.telemetry
        if tel is not None and tel.trace is not None:
            event = "tail_drop" if tail else "early_drop"
            if tel.trace.wants("aqm", event):
                tel.trace.emit(
                    self.sim.now, "aqm", event,
                    src=packet.src, dst=packet.dst,
                    sport=packet.sport, dport=packet.dport,
                    dscp=packet.dscp, size=packet.size,
                    drop_prob=round(self.drop_prob, 6),
                )
        return False

    def _marked(self, packet: Packet) -> None:
        packet.ecn = ECN_CE
        self.ecn_marks += 1
        tel = self.sim.telemetry
        if tel is not None and tel.trace is not None:
            if tel.trace.wants("aqm", "ecn_mark"):
                tel.trace.emit(
                    self.sim.now, "aqm", "ecn_mark",
                    src=packet.src, dst=packet.dst,
                    sport=packet.sport, dport=packet.dport,
                    dscp=packet.dscp, size=packet.size,
                    drop_prob=round(self.drop_prob, 6),
                )

    def _qdelay(self, now: float) -> float:
        """Timestamp-based latency estimate: the head's sojourn.

        Clamped at zero — a lazy catch-up may evaluate an epoch that
        predates the current head's arrival.
        """
        if not self._queue:
            return 0.0
        delay = now - self._queue[0].enqueued_at
        return delay if delay > 0.0 else 0.0

    def _update_prob(self, qdelay: float) -> None:
        p = self.alpha * (qdelay - self.target) + self.beta * (
            qdelay - self._qdelay_old
        )
        drop_prob = self.drop_prob
        for ceiling, scale in _SCALE_TABLE:
            if drop_prob < ceiling:
                p *= scale
                break
        drop_prob += p
        if qdelay == 0.0 and self._qdelay_old == 0.0:
            drop_prob *= 0.98  # exponential decay while idle
        if drop_prob < 0.0:
            drop_prob = 0.0
        elif drop_prob > 1.0:
            drop_prob = 1.0
        self.drop_prob = drop_prob
        self._qdelay_old = qdelay
        if self._burst_allowance > 0.0:
            self._burst_allowance = max(
                0.0, self._burst_allowance - self.t_update
            )

    def _catch_up(self, now: float) -> None:
        if now < self._t_next:
            return
        steps = 0
        while now >= self._t_next and steps < _MAX_CATCHUP:
            self._update_prob(self._qdelay(self._t_next))
            self._t_next += self.t_update
            steps += 1
        if now >= self._t_next:
            # Still behind after the bound: the queue has been empty
            # that whole stretch (every elapsed epoch decayed p), so
            # snap the phase forward.
            self.drop_prob = 0.0
            self._qdelay_old = 0.0
            self._t_next = now + self.t_update

    # -- qdisc interface ---------------------------------------------------

    def enqueue(self, packet: Packet) -> bool:
        now = self.sim.now
        self._catch_up(now)
        if len(self._queue) >= self.limit_packets:
            return self._dropped(packet, tail=True)
        if self._should_act(packet):
            if (
                self.ecn
                and self.drop_prob < self.ecn_threshold
                and packet.ecn in (ECN_ECT0, ECN_ECT1)
            ):
                self._marked(packet)
            else:
                return self._dropped(packet, tail=False)
        packet.enqueued_at = now
        self._queue.append(packet)
        self._bytes += packet.size
        return True

    def _should_act(self, packet: Packet) -> bool:
        """RFC 8033 §4.1 enqueue decision (with safeguards)."""
        if self._burst_allowance > 0.0:
            return False
        if self.drop_prob == 0.0:
            # Fresh idle exit: re-arm the burst allowance.
            if (
                self._qdelay_old < self.target / 2.0
                and self._qdelay(self.sim.now) < self.target / 2.0
            ):
                self._burst_allowance = self.max_burst
                return False
        # Work-conservation safeguards.
        if self._qdelay_old < self.target / 2.0 and self.drop_prob < 0.2:
            return False
        if self._bytes <= 2 * self.mean_pkt_size:
            return False
        return self.sim.rng.random() < self.drop_prob

    def dequeue(self) -> Optional[Packet]:
        now = self.sim.now
        self._catch_up(now)
        if not self._queue:
            return None
        packet = self._queue.popleft()
        self._bytes -= packet.size
        self.sojourn_sum += now - packet.enqueued_at
        self.sojourn_count += 1
        return packet

    def peek(self) -> Optional[Packet]:
        return self._queue[0] if self._queue else None

    def __len__(self) -> int:
        return len(self._queue)

    @property
    def backlog_bytes(self) -> int:
        return self._bytes
