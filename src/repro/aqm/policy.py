"""AQM deployment policy: what the MQC config API consumes.

:class:`AqmPolicy` describes how a DiffServ domain's routers signal
congestion. ``mode="droptail"`` (the default everywhere) is the
paper's configuration and leaves every code path byte-identical to a
domain built without a policy. The AQM modes change two things:

* **egress qdiscs** become EF-strict DRR over an AQM'd AF band and a
  BE drop-tail band, so excess premium traffic gets a *bounded* share
  of each link instead of strict-priority starvation or a hard drop;
* **edge conditioning** of premium flows becomes three-color marking
  (srTCM or trTCM): conforming traffic is still EF, bursts are
  remarked to AF drop precedences and survive unless the AF AQM says
  otherwise.

The AF-band discipline is chosen by ``mode``: the 1998-era family
(``"wred"`` drops early, ``"wred+ecn"`` marks CE when the transport
negotiated ECN) and the modern congestion-signaling family (``"codel"``
RFC 8289, ``"pie"`` RFC 8033, ``"dualpi2"`` RFC 9332 L4S) — the modern
three all mark ECN-capable packets, so :attr:`ecn` is True for them.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional

from ..diffserv.dscp import EF, af_dscp, service_class_of
from ..net.queues import DropTailQueue, Qdisc
from .codel import CoDelQdisc
from .drr import DrrQdisc
from .dualpi2 import DualPi2Qdisc
from .marker import SrTcmMarker, TcmMarking, TrTcmMarker
from .pie import PieQdisc
from .red import RedCurve, WredQueue

__all__ = ["AqmPolicy", "AQM_MODES"]

AQM_MODES = ("droptail", "wred", "wred+ecn", "codel", "pie", "dualpi2")

#: Modes whose AF-band discipline marks ECN-capable packets.
_ECN_MODES = ("wred+ecn", "codel", "pie", "dualpi2")


@dataclass
class AqmPolicy:
    """Per-domain AQM configuration (Cisco MQC ``policy-map`` analogue).

    Attributes
    ----------
    mode:
        One of :data:`AQM_MODES` — ``"droptail"``, the WRED pair
        (``"wred"`` / ``"wred+ecn"``), or the modern family
        (``"codel"`` / ``"pie"`` / ``"dualpi2"``).
    marker:
        ``"srtcm"`` (RFC 2697) or ``"trtcm"`` (RFC 2698) for premium
        edge conditioning in the AQM modes.
    af_class:
        AF class (1..4) that carries remarked premium excess.
    af_share:
        AF band's DRR weight on router egress ports. Small by design:
        the assured class is an excess channel, not a second premium.
    ebs_factor:
        srTCM excess burst = ``ebs_factor * committed burst``.
    pir_factor:
        trTCM peak rate = ``pir_factor * committed rate``.
    quantum_bytes:
        DRR base quantum split between AF and BE by ``af_share``.
    wred_curves:
        Drop-precedence → :class:`RedCurve`; defaults to
        :attr:`WredQueue.DEFAULT_CURVES`.
    wred_limit_packets, wred_wq, idle_pkt_time:
        WRED queue bound and EWMA tuning. ``wred_limit_packets``
        doubles as the AF-band hard bound for the modern modes.
    codel_target, codel_interval:
        CoDel tuning (RFC 8289 defaults 5 ms / 100 ms).
    pie_target, pie_t_update:
        PIE tuning (RFC 8033 defaults 15 ms / 15 ms).
    dualpi2_target, dualpi2_step_threshold:
        DualPI2 classic-queue PI target and L-queue step-mark
        threshold (RFC 9332 defaults 15 ms / 1 ms).
    """

    mode: str = "droptail"
    marker: str = "srtcm"
    af_class: int = 1
    af_share: float = 0.05
    ebs_factor: float = 2.0
    pir_factor: float = 2.0
    quantum_bytes: int = 6000
    wred_curves: Optional[Dict[int, RedCurve]] = None
    wred_limit_packets: int = 100
    wred_wq: float = 0.002
    idle_pkt_time: float = field(default=1e-3)
    codel_target: float = 0.005
    codel_interval: float = 0.1
    pie_target: float = 0.015
    pie_t_update: float = 0.015
    dualpi2_target: float = 0.015
    dualpi2_step_threshold: float = 0.001

    def __post_init__(self) -> None:
        if self.mode not in AQM_MODES:
            raise ValueError(
                f"unknown AQM mode {self.mode!r} (one of {AQM_MODES})"
            )
        if self.marker not in ("srtcm", "trtcm"):
            raise ValueError(f"unknown marker {self.marker!r}")
        if not 0 < self.af_share < 1:
            raise ValueError("af_share must be in (0, 1)")
        if not 1 <= self.af_class <= 4:
            raise ValueError("af_class must be 1..4")

    @property
    def active(self) -> bool:
        """True when this policy changes anything at all."""
        return self.mode != "droptail"

    @property
    def ecn(self) -> bool:
        """True when the AF-band AQM marks ECN-capable packets."""
        return self.mode in _ECN_MODES

    # -- factories (one per router egress port / edge rule) -----------------

    def build_router_qdisc(
        self,
        sim,
        ef_limit_packets: int = 400,
        be_limit_packets: int = 100,
        ef_filter=None,
    ) -> Qdisc:
        """One egress discipline: EF strict over DRR{AF: AQM, BE}.

        The AF band carries the mode's discipline (WRED, CoDel, PIE,
        or DualPI2). ``ef_filter`` optionally gates EF admissions (the
        domain's aggregate policer hook).
        """
        af_quantum = max(64.0, self.af_share * self.quantum_bytes)
        be_quantum = max(64.0, (1.0 - self.af_share) * self.quantum_bytes)
        af_band = self.build_af_qdisc(sim)
        filters = {0: ef_filter} if ef_filter is not None else None
        return DrrQdisc(
            bands=[
                (DropTailQueue(limit_packets=ef_limit_packets), 0.0),
                (af_band, af_quantum),
                (DropTailQueue(limit_packets=be_limit_packets), be_quantum),
            ],
            classify=lambda packet: service_class_of(packet.dscp),
            strict_bands=1,
            band_filters=filters,
        )

    def build_af_qdisc(self, sim) -> Qdisc:
        """The AF-band discipline for this mode (WRED/CoDel/PIE/DualPI2)."""
        if self.mode in ("wred", "wred+ecn"):
            return WredQueue(
                sim,
                curves=self.wred_curves,
                limit_packets=self.wred_limit_packets,
                wq=self.wred_wq,
                ecn=self.ecn,
                idle_pkt_time=self.idle_pkt_time,
            )
        if self.mode == "codel":
            return CoDelQdisc(
                sim,
                target=self.codel_target,
                interval=self.codel_interval,
                limit_packets=self.wred_limit_packets,
                ecn=True,
            )
        if self.mode == "pie":
            return PieQdisc(
                sim,
                target=self.pie_target,
                t_update=self.pie_t_update,
                limit_packets=self.wred_limit_packets,
                ecn=True,
            )
        if self.mode == "dualpi2":
            return DualPi2Qdisc(
                sim,
                target=self.dualpi2_target,
                step_threshold=self.dualpi2_step_threshold,
                limit_packets=self.wred_limit_packets,
            )
        raise ValueError(f"mode {self.mode!r} has no AF-band discipline")

    def build_meter(self, rate: float, depth: float):
        """A three-color meter committed to ``rate``/``depth``."""
        if self.marker == "srtcm":
            return SrTcmMarker(
                cir=rate, cbs=depth, ebs=self.ebs_factor * depth
            )
        return TrTcmMarker(
            cir=rate,
            cbs=depth,
            pir=self.pir_factor * rate,
            pbs=self.pir_factor * depth,
        )

    def build_premium_rule(self, sim, rate: float, depth: float) -> TcmMarking:
        """Edge rule for a premium flow: green stays EF, excess rides
        the AF drop precedences."""
        return TcmMarking(
            sim,
            self.build_meter(rate, depth),
            dscp_by_color={
                "green": EF,
                "yellow": af_dscp(self.af_class, 2),
                "red": af_dscp(self.af_class, 3),
            },
        )

    def build_af_rule(self, sim, rate: float, depth: float) -> TcmMarking:
        """Edge rule for a pure assured-forwarding flow: AFx1/x2/x3."""
        return TcmMarking(
            sim,
            self.build_meter(rate, depth),
            dscp_by_color={
                "green": af_dscp(self.af_class, 1),
                "yellow": af_dscp(self.af_class, 2),
                "red": af_dscp(self.af_class, 3),
            },
        )
