"""AQM deployment policy: what the MQC config API consumes.

:class:`AqmPolicy` describes how a DiffServ domain's routers signal
congestion. ``mode="droptail"`` (the default everywhere) is the
paper's configuration and leaves every code path byte-identical to a
domain built without a policy. The AQM modes change two things:

* **egress qdiscs** become EF-strict DRR over an AF WRED band and a
  BE drop-tail band, so excess premium traffic gets a *bounded* share
  of each link instead of strict-priority starvation or a hard drop;
* **edge conditioning** of premium flows becomes three-color marking
  (srTCM or trTCM): conforming traffic is still EF, bursts are
  remarked to AF drop precedences and survive unless WRED says
  otherwise. With ``mode="wred+ecn"`` WRED marks CE instead of
  dropping when the transport negotiated ECN.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional

from ..diffserv.dscp import EF, af_dscp, service_class_of
from ..net.queues import DropTailQueue, Qdisc
from .drr import DrrQdisc
from .marker import SrTcmMarker, TcmMarking, TrTcmMarker
from .red import RedCurve, WredQueue

__all__ = ["AqmPolicy", "AQM_MODES"]

AQM_MODES = ("droptail", "wred", "wred+ecn")


@dataclass
class AqmPolicy:
    """Per-domain AQM configuration (Cisco MQC ``policy-map`` analogue).

    Attributes
    ----------
    mode:
        ``"droptail"`` | ``"wred"`` | ``"wred+ecn"``.
    marker:
        ``"srtcm"`` (RFC 2697) or ``"trtcm"`` (RFC 2698) for premium
        edge conditioning in the AQM modes.
    af_class:
        AF class (1..4) that carries remarked premium excess.
    af_share:
        AF band's DRR weight on router egress ports. Small by design:
        the assured class is an excess channel, not a second premium.
    ebs_factor:
        srTCM excess burst = ``ebs_factor * committed burst``.
    pir_factor:
        trTCM peak rate = ``pir_factor * committed rate``.
    quantum_bytes:
        DRR base quantum split between AF and BE by ``af_share``.
    wred_curves:
        Drop-precedence → :class:`RedCurve`; defaults to
        :attr:`WredQueue.DEFAULT_CURVES`.
    wred_limit_packets, wred_wq, idle_pkt_time:
        WRED queue bound and EWMA tuning.
    """

    mode: str = "droptail"
    marker: str = "srtcm"
    af_class: int = 1
    af_share: float = 0.05
    ebs_factor: float = 2.0
    pir_factor: float = 2.0
    quantum_bytes: int = 6000
    wred_curves: Optional[Dict[int, RedCurve]] = None
    wred_limit_packets: int = 100
    wred_wq: float = 0.002
    idle_pkt_time: float = field(default=1e-3)

    def __post_init__(self) -> None:
        if self.mode not in AQM_MODES:
            raise ValueError(
                f"unknown AQM mode {self.mode!r} (one of {AQM_MODES})"
            )
        if self.marker not in ("srtcm", "trtcm"):
            raise ValueError(f"unknown marker {self.marker!r}")
        if not 0 < self.af_share < 1:
            raise ValueError("af_share must be in (0, 1)")
        if not 1 <= self.af_class <= 4:
            raise ValueError("af_class must be 1..4")

    @property
    def active(self) -> bool:
        """True when this policy changes anything at all."""
        return self.mode != "droptail"

    @property
    def ecn(self) -> bool:
        return self.mode == "wred+ecn"

    # -- factories (one per router egress port / edge rule) -----------------

    def build_router_qdisc(
        self,
        sim,
        ef_limit_packets: int = 400,
        be_limit_packets: int = 100,
        ef_filter=None,
    ) -> Qdisc:
        """One egress discipline: EF strict over DRR{AF: WRED, BE}.

        ``ef_filter`` optionally gates EF admissions (the domain's
        aggregate policer hook).
        """
        af_quantum = max(64.0, self.af_share * self.quantum_bytes)
        be_quantum = max(64.0, (1.0 - self.af_share) * self.quantum_bytes)
        wred = WredQueue(
            sim,
            curves=self.wred_curves,
            limit_packets=self.wred_limit_packets,
            wq=self.wred_wq,
            ecn=self.ecn,
            idle_pkt_time=self.idle_pkt_time,
        )
        filters = {0: ef_filter} if ef_filter is not None else None
        return DrrQdisc(
            bands=[
                (DropTailQueue(limit_packets=ef_limit_packets), 0.0),
                (wred, af_quantum),
                (DropTailQueue(limit_packets=be_limit_packets), be_quantum),
            ],
            classify=lambda packet: service_class_of(packet.dscp),
            strict_bands=1,
            band_filters=filters,
        )

    def build_meter(self, rate: float, depth: float):
        """A three-color meter committed to ``rate``/``depth``."""
        if self.marker == "srtcm":
            return SrTcmMarker(
                cir=rate, cbs=depth, ebs=self.ebs_factor * depth
            )
        return TrTcmMarker(
            cir=rate,
            cbs=depth,
            pir=self.pir_factor * rate,
            pbs=self.pir_factor * depth,
        )

    def build_premium_rule(self, sim, rate: float, depth: float) -> TcmMarking:
        """Edge rule for a premium flow: green stays EF, excess rides
        the AF drop precedences."""
        return TcmMarking(
            sim,
            self.build_meter(rate, depth),
            dscp_by_color={
                "green": EF,
                "yellow": af_dscp(self.af_class, 2),
                "red": af_dscp(self.af_class, 3),
            },
        )

    def build_af_rule(self, sim, rate: float, depth: float) -> TcmMarking:
        """Edge rule for a pure assured-forwarding flow: AFx1/x2/x3."""
        return TcmMarking(
            sim,
            self.build_meter(rate, depth),
            dscp_by_color={
                "green": af_dscp(self.af_class, 1),
                "yellow": af_dscp(self.af_class, 2),
                "red": af_dscp(self.af_class, 3),
            },
        )
