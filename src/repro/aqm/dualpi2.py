"""DualPI2 — the L4S coupled dual-queue AQM (RFC 9332).

Two queues share one link. Packets carrying ECT(1) or CE — the L4S
identifier (RFC 9331) — enter the low-latency **L queue**; everything
else enters the **classic C queue**. One PI controller runs on the
*classic* queue's delay and produces a base probability ``p'``; the
coupling law then derives both signals:

* classic queue: drop (or classic-ECN mark) with ``p_C = p'²`` — the
  square matches a Reno/CUBIC-style halving response;
* L queue: CE-mark with ``p_CL = min(k · p', 1)`` (``k = 2``), plus an
  instantaneous *step* mark whenever the L sojourn exceeds
  ``step_threshold`` — the shallow immediate signal a DCTCP-style
  scalable sender needs.

Because ``p_C = (p_CL / k)²``, a scalable flow and a classic flow
sharing the link converge to roughly equal windows — the coupling is
the fairness mechanism, not a scheduler share.

Service order is a time-shifted FIFO: the L head wins whenever its
sojourn plus ``l_shift`` exceeds the C head's sojourn, giving L
priority in the short term without starving C. Classic drops happen at
*dequeue* (drop-on-dequeue keeps the PI estimate honest under bursts),
so this qdisc uses the stash-based ``peek`` like CoDel. The PI tick is
replayed lazily (see :mod:`repro.aqm.pie`) instead of holding a
standing sim timer.
"""

from __future__ import annotations

from collections import deque
from typing import Callable, Deque, Optional

from ..net.packet import ECN_CE, ECN_ECT0, ECN_ECT1, Packet
from ..net.queues import Qdisc

__all__ = ["DualPi2Qdisc"]

_MAX_CATCHUP = 256


class DualPi2Qdisc(Qdisc):
    """RFC 9332 coupled dual queue.

    Parameters
    ----------
    sim:
        The simulator (clock + seeded rng for the coin flips).
    target:
        PI latency reference for the classic queue (default 15 ms).
    t_update:
        PI update period (RFC 9332 default 16 ms).
    alpha, beta:
        Per-tick PI gains on the *base* probability ``p'`` (defaults
        0.16 / 3.2 — the RFC 9332 derivation with RTT_max = 100 ms
        and ``t_update`` = 16 ms folded in).
    k:
        Coupling factor between classic and L4S signals (default 2).
    step_threshold:
        L-queue sojourn above which every L packet is CE-marked
        (default 1 ms).
    l_shift:
        Time-shift favouring the L queue in the FIFO comparison
        (default 1 ms).
    limit_packets:
        Shared hard bound across both queues (tail drop at enqueue).
    classic_ecn:
        Treat ECT(0) classic packets as markable with ``p_C`` instead
        of dropping (RFC 3168 coexistence; default False → drop).
    """

    def __init__(
        self,
        sim,
        target: float = 0.015,
        t_update: float = 0.016,
        alpha: float = 0.16,
        beta: float = 3.2,
        k: float = 2.0,
        step_threshold: float = 0.001,
        l_shift: float = 0.001,
        limit_packets: int = 1000,
        classic_ecn: bool = False,
    ) -> None:
        if target <= 0 or t_update <= 0:
            raise ValueError("target and t_update must be positive")
        if k <= 0:
            raise ValueError("coupling factor k must be positive")
        if limit_packets <= 0:
            raise ValueError("limit_packets must be positive")
        self.sim = sim
        self.target = target
        self.t_update = t_update
        self.alpha = alpha
        self.beta = beta
        self.k = k
        self.step_threshold = step_threshold
        self.l_shift = l_shift
        self.limit_packets = limit_packets
        self.classic_ecn = classic_ecn
        self._lq: Deque[Packet] = deque()
        self._cq: Deque[Packet] = deque()
        self._bytes = 0
        #: PI base probability p' (the coupled signals derive from it).
        self.p_base = 0.0
        self._qdelay_old = 0.0
        self._t_next = t_update
        self._head: Optional[Packet] = None  # peek stash
        # Counters.
        self.drops = 0
        self.drop_bytes = 0
        self.tail_drops = 0
        self.early_drops = 0  # classic dequeue-time drops
        self.ecn_marks = 0  # all CE marks (L prob + L step + classic)
        self.step_marks = 0
        self.l_packets = 0
        self.c_packets = 0
        self.sojourn_sum = 0.0
        self.sojourn_count = 0
        self.l_sojourn_sum = 0.0
        self.l_sojourn_count = 0
        self.on_drop: Optional[Callable[[Packet], None]] = None

    # -- internals ---------------------------------------------------------

    def _dropped(self, packet: Packet, tail: bool) -> bool:
        self.drops += 1
        self.drop_bytes += packet.size
        if tail:
            self.tail_drops += 1
        else:
            self.early_drops += 1
        if self.on_drop is not None:
            self.on_drop(packet)
        tel = self.sim.telemetry
        if tel is not None and tel.trace is not None:
            event = "tail_drop" if tail else "early_drop"
            if tel.trace.wants("aqm", event):
                tel.trace.emit(
                    self.sim.now, "aqm", event,
                    src=packet.src, dst=packet.dst,
                    sport=packet.sport, dport=packet.dport,
                    dscp=packet.dscp, size=packet.size,
                    p_base=round(self.p_base, 6),
                )
        return False

    def _marked(self, packet: Packet, step: bool) -> None:
        packet.ecn = ECN_CE
        self.ecn_marks += 1
        if step:
            self.step_marks += 1
        tel = self.sim.telemetry
        if tel is not None and tel.trace is not None:
            if tel.trace.wants("aqm", "ecn_mark"):
                tel.trace.emit(
                    self.sim.now, "aqm", "ecn_mark",
                    src=packet.src, dst=packet.dst,
                    sport=packet.sport, dport=packet.dport,
                    dscp=packet.dscp, size=packet.size,
                    p_base=round(self.p_base, 6),
                )

    def _c_qdelay(self, now: float) -> float:
        if not self._cq:
            return 0.0
        delay = now - self._cq[0].enqueued_at
        return delay if delay > 0.0 else 0.0

    def _update_prob(self, qdelay: float) -> None:
        # alpha/beta are per-tick gains (the RFC 9332 defaults already
        # fold Tupdate in: alpha = 0.1*Tupdate/RTT_max², beta =
        # 0.3/RTT_max with RTT_max = 100 ms).
        delta = self.alpha * (qdelay - self.target) + self.beta * (
            qdelay - self._qdelay_old
        )
        p = self.p_base + delta
        if p < 0.0:
            p = 0.0
        elif p > 1.0:
            p = 1.0
        self.p_base = p
        self._qdelay_old = qdelay

    def _catch_up(self, now: float) -> None:
        if now < self._t_next:
            return
        steps = 0
        while now >= self._t_next and steps < _MAX_CATCHUP:
            self._update_prob(self._c_qdelay(self._t_next))
            self._t_next += self.t_update
            steps += 1
        if now >= self._t_next:
            # Long idle stretch: the controller has integrated an
            # empty queue the whole way down.
            self.p_base = 0.0
            self._qdelay_old = 0.0
            self._t_next = now + self.t_update

    def _select_queue(self, now: float) -> Optional[Deque[Packet]]:
        """Time-shifted FIFO: earliest effective arrival wins, with
        the L head credited ``l_shift`` of extra waiting."""
        lq, cq = self._lq, self._cq
        if not lq:
            return cq if cq else None
        if not cq:
            return lq
        if lq[0].enqueued_at - self.l_shift <= cq[0].enqueued_at:
            return lq
        return cq

    def _deque_machine(self) -> Optional[Packet]:
        now = self.sim.now
        self._catch_up(now)
        rng = self.sim.rng
        while True:
            queue = self._select_queue(now)
            if queue is None:
                return None
            packet = queue.popleft()
            self._bytes -= packet.size
            sojourn = now - packet.enqueued_at
            if queue is self._lq:
                # L4S: step mark on instantaneous sojourn, else the
                # coupled probability p_CL = min(k * p', 1).
                p_cl = self.k * self.p_base
                if sojourn > self.step_threshold or (
                    p_cl > 0.0 and rng.random() < p_cl
                ):
                    self._marked(packet, step=sojourn > self.step_threshold)
                self.l_sojourn_sum += sojourn
                self.l_sojourn_count += 1
            else:
                # Classic: squared coupling. Drop recycles the loop so
                # the link never goes idle while backlog remains.
                p_c = self.p_base * self.p_base
                if p_c > 0.0 and rng.random() < p_c:
                    if self.classic_ecn and packet.ecn == ECN_ECT0:
                        self._marked(packet, step=False)
                    else:
                        self._dropped(packet, tail=False)
                        continue
            self.sojourn_sum += sojourn
            self.sojourn_count += 1
            return packet

    # -- qdisc interface ---------------------------------------------------

    def enqueue(self, packet: Packet) -> bool:
        now = self.sim.now
        self._catch_up(now)
        if len(self._lq) + len(self._cq) >= self.limit_packets:
            return self._dropped(packet, tail=True)
        packet.enqueued_at = now
        if packet.ecn in (ECN_ECT1, ECN_CE):
            self._lq.append(packet)
            self.l_packets += 1
        else:
            self._cq.append(packet)
            self.c_packets += 1
        self._bytes += packet.size
        return True

    def dequeue(self) -> Optional[Packet]:
        head = self._head
        if head is not None:
            self._head = None
            return head
        return self._deque_machine()

    def peek(self) -> Optional[Packet]:
        if self._head is None:
            self._head = self._deque_machine()
        return self._head

    def __len__(self) -> int:
        n = len(self._lq) + len(self._cq)
        return n + 1 if self._head is not None else n

    @property
    def backlog_bytes(self) -> int:
        total = self._bytes
        if self._head is not None:
            total += self._head.size
        return total
