"""CoDel — Controlled Delay AQM (RFC 8289).

CoDel abandons queue-*length* thresholds entirely: it watches each
packet's *sojourn time* (``now - packet.enqueued_at``, stamped at
enqueue) and enters a dropping state only when the minimum sojourn has
stayed above ``target`` for a full ``interval`` (so a standing queue is
distinguished from a good burst). While dropping, the next drop is
scheduled at ``drop_next = t + interval / sqrt(count)`` — the control
law that drives a TCP toward the target delay — and the state unwinds
as soon as the sojourn falls below target or the queue drains.

Unlike RED/PIE, all the intelligence runs at *dequeue* time (head
drop), which is exactly why this PR gave :class:`repro.net.queues.Qdisc`
a real ``peek`` contract: a scheduler asking for CoDel's head must let
the drop machinery run, so ``peek`` pulls the head through ``dequeue``
and stashes it (still counted in ``__len__``/``backlog_bytes``).

With ``ecn=True`` an action on an ECN-capable packet (ECT0/ECT1) sets
CE and *delivers* the marked packet instead of dropping it, matching
the Linux implementation; the control-law schedule advances the same
way. CoDel itself is deterministic — there is no coin flip.
"""

from __future__ import annotations

from collections import deque
from math import sqrt
from typing import Callable, Deque, Optional

from ..net.packet import ECN_CE, ECN_ECT0, ECN_ECT1, Packet
from ..net.queues import Qdisc

__all__ = ["CoDelQdisc"]


class CoDelQdisc(Qdisc):
    """RFC 8289 CoDel over a FIFO backlog.

    Parameters
    ----------
    sim:
        The simulator (sojourn clock; no randomness is used).
    target:
        Acceptable standing queue delay in seconds (RFC default 5 ms).
    interval:
        Sliding window over which the minimum sojourn must exceed
        ``target`` before dropping starts (RFC default 100 ms).
    limit_packets:
        Hard tail-drop bound at enqueue.
    ecn:
        Mark ECN-capable packets CE (and deliver them) instead of
        dropping on a CoDel action. Tail drops are never converted.
    """

    def __init__(
        self,
        sim,
        target: float = 0.005,
        interval: float = 0.1,
        limit_packets: int = 1000,
        ecn: bool = False,
    ) -> None:
        if target <= 0 or interval <= 0:
            raise ValueError("target and interval must be positive")
        if limit_packets <= 0:
            raise ValueError("limit_packets must be positive")
        self.sim = sim
        self.target = target
        self.interval = interval
        self.limit_packets = limit_packets
        self.ecn = ecn
        self._queue: Deque[Packet] = deque()
        self._bytes = 0
        # RFC 8289 state machine.
        self._first_above_time = 0.0
        self._drop_next = 0.0
        self._count = 0  # drops since entering the current dropping state
        self._dropping = False
        self._maxpacket = 0  # largest packet seen (backlog floor check)
        # Peek stash (qdisc_peek_dequeued): a packet pulled through the
        # drop machinery by peek(), owed to the next dequeue().
        self._head: Optional[Packet] = None
        # Counters (Qdisc contract: drops == all losses here).
        self.drops = 0
        self.drop_bytes = 0
        self.tail_drops = 0
        self.early_drops = 0  # CoDel action drops (at dequeue)
        self.ecn_marks = 0
        self.sojourn_sum = 0.0
        self.sojourn_count = 0
        self.on_drop: Optional[Callable[[Packet], None]] = None

    # -- internals ---------------------------------------------------------

    def _dropped(self, packet: Packet, tail: bool) -> None:
        self.drops += 1
        self.drop_bytes += packet.size
        if tail:
            self.tail_drops += 1
        else:
            self.early_drops += 1
        if self.on_drop is not None:
            self.on_drop(packet)
        tel = self.sim.telemetry
        if tel is not None and tel.trace is not None:
            event = "tail_drop" if tail else "early_drop"
            if tel.trace.wants("aqm", event):
                tel.trace.emit(
                    self.sim.now, "aqm", event,
                    src=packet.src, dst=packet.dst,
                    sport=packet.sport, dport=packet.dport,
                    dscp=packet.dscp, size=packet.size,
                    sojourn=round(self.sim.now - packet.enqueued_at, 6),
                )

    def _marked(self, packet: Packet) -> None:
        packet.ecn = ECN_CE
        self.ecn_marks += 1
        tel = self.sim.telemetry
        if tel is not None and tel.trace is not None:
            if tel.trace.wants("aqm", "ecn_mark"):
                tel.trace.emit(
                    self.sim.now, "aqm", "ecn_mark",
                    src=packet.src, dst=packet.dst,
                    sport=packet.sport, dport=packet.dport,
                    dscp=packet.dscp, size=packet.size,
                    sojourn=round(self.sim.now - packet.enqueued_at, 6),
                )

    def _control_law(self, t: float, count: int) -> float:
        return t + self.interval / sqrt(count)

    def _dodeque(self, now: float):
        """Pop the head and judge it: ``(packet, ok_to_drop)``."""
        if not self._queue:
            self._first_above_time = 0.0
            return None, False
        packet = self._queue.popleft()
        self._bytes -= packet.size
        ok_to_drop = False
        sojourn = now - packet.enqueued_at
        if sojourn < self.target or self._bytes <= self._maxpacket:
            # Went (or stayed) below target — restart the observation
            # window; a sub-MTU backlog can never be a standing queue.
            self._first_above_time = 0.0
        elif self._first_above_time == 0.0:
            # Just crossed target from below: give it one interval.
            self._first_above_time = now + self.interval
        elif now >= self._first_above_time:
            ok_to_drop = True
        return packet, ok_to_drop

    def _action(self, packet: Packet) -> bool:
        """One CoDel action on ``packet``; True if it was *delivered*
        (ECN-marked) rather than dropped."""
        if self.ecn and packet.ecn in (ECN_ECT0, ECN_ECT1):
            self._marked(packet)
            return True
        self._dropped(packet, tail=False)
        return False

    def _deque_machine(self) -> Optional[Packet]:
        now = self.sim.now
        packet, ok_to_drop = self._dodeque(now)
        if packet is None:
            self._dropping = False
            return None
        if self._dropping:
            if not ok_to_drop:
                self._dropping = False
            elif now >= self._drop_next:
                while now >= self._drop_next and self._dropping:
                    self._count += 1
                    if self._action(packet):
                        # Marked instead of dropped: deliver it, but
                        # keep the cadence for the next dequeue.
                        self._drop_next = self._control_law(
                            self._drop_next, self._count
                        )
                        break
                    packet, ok_to_drop = self._dodeque(now)
                    if packet is None:
                        self._dropping = False
                    elif not ok_to_drop:
                        self._dropping = False
                    else:
                        self._drop_next = self._control_law(
                            self._drop_next, self._count
                        )
        elif ok_to_drop:
            # Enter dropping state. If we were dropping recently, the
            # drop rate that controlled the queue last cycle is a good
            # starting point (RFC 8289 §5.3 re-entry heuristic).
            delivered = self._action(packet)
            if not delivered:
                packet, _ = self._dodeque(now)
            self._dropping = True
            self._count = (
                self._count - 2
                if self._count > 2 and now - self._drop_next < 8 * self.interval
                else 1
            )
            self._drop_next = self._control_law(now, self._count)
        if packet is not None:
            self.sojourn_sum += now - packet.enqueued_at
            self.sojourn_count += 1
        return packet

    # -- qdisc interface ---------------------------------------------------

    def enqueue(self, packet: Packet) -> bool:
        if len(self._queue) >= self.limit_packets:
            self._dropped(packet, tail=True)
            return False
        if packet.size > self._maxpacket:
            self._maxpacket = packet.size
        packet.enqueued_at = self.sim.now
        self._queue.append(packet)
        self._bytes += packet.size
        return True

    def dequeue(self) -> Optional[Packet]:
        head = self._head
        if head is not None:
            self._head = None
            return head
        return self._deque_machine()

    def peek(self) -> Optional[Packet]:
        if self._head is None:
            self._head = self._deque_machine()
        return self._head

    def __len__(self) -> int:
        n = len(self._queue)
        return n + 1 if self._head is not None else n

    @property
    def backlog_bytes(self) -> int:
        total = self._bytes
        if self._head is not None:
            total += self._head.size
        return total
