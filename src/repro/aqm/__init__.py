"""Active queue management: RED/WRED, three-color markers, DRR, ECN.

This layer replaces drop-tail-only congestion signaling:

* :class:`RedQueue` — Random Early Detection over an EWMA average
  queue, marking ECN-capable packets instead of dropping them;
* :class:`WredQueue` — per-drop-precedence RED curves (Cisco-style
  WRED over the RFC 2597 AF matrix);
* :class:`SrTcmMarker` / :class:`TrTcmMarker` — RFC 2697/2698
  three-color meters; :class:`TcmMarking` remarks metered packets to
  AF drop precedences at the domain edge;
* :class:`DrrQdisc` — deficit-round-robin scheduling as an
  alternative to strict priority (bounds each band's share);
* :class:`AqmPolicy` — the MQC-facing configuration object
  :class:`repro.diffserv.DiffServDomain` consumes.

Everything implements the :class:`repro.net.queues.Qdisc` interface
and is deterministic under a fixed simulator seed (RED's coin flips
draw from ``sim.rng``).
"""

from .drr import DrrQdisc
from .marker import (
    COLOR_GREEN,
    COLOR_RED,
    COLOR_YELLOW,
    SrTcmMarker,
    TcmMarking,
    TrTcmMarker,
)
from .policy import AQM_MODES, AqmPolicy
from .red import RedCurve, RedQueue, WredQueue

__all__ = [
    "AQM_MODES",
    "AqmPolicy",
    "COLOR_GREEN",
    "COLOR_RED",
    "COLOR_YELLOW",
    "DrrQdisc",
    "RedCurve",
    "RedQueue",
    "SrTcmMarker",
    "TcmMarking",
    "TrTcmMarker",
    "WredQueue",
]
