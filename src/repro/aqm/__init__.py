"""Active queue management: RED/WRED, CoDel/PIE/DualPI2, markers, DRR.

This layer replaces drop-tail-only congestion signaling:

* :class:`RedQueue` — Random Early Detection over an EWMA average
  queue, marking ECN-capable packets instead of dropping them;
* :class:`WredQueue` — per-drop-precedence RED curves (Cisco-style
  WRED over the RFC 2597 AF matrix);
* :class:`CoDelQdisc` — RFC 8289 sojourn-time AQM with head drop at
  dequeue and the ``interval/sqrt(count)`` control law;
* :class:`PieQdisc` — RFC 8033 proportional-integral probability
  controller on queueing latency;
* :class:`DualPi2Qdisc` — RFC 9332 L4S coupled dual queue (ECT(1)
  classification, squared coupling, step marking);
* :class:`SrTcmMarker` / :class:`TrTcmMarker` — RFC 2697/2698
  three-color meters; :class:`TcmMarking` remarks metered packets to
  AF drop precedences at the domain edge;
* :class:`DrrQdisc` — deficit-round-robin scheduling as an
  alternative to strict priority (bounds each band's share);
* :class:`AqmPolicy` — the MQC-facing configuration object
  :class:`repro.diffserv.DiffServDomain` consumes.

Everything implements the :class:`repro.net.queues.Qdisc` interface
(including the ``peek`` contract, which is what lets dequeue-time
droppers compose under DRR/priority schedulers) and is deterministic
under a fixed simulator seed (all coin flips draw from ``sim.rng``).
"""

from .codel import CoDelQdisc
from .drr import DrrQdisc
from .dualpi2 import DualPi2Qdisc
from .marker import (
    COLOR_GREEN,
    COLOR_RED,
    COLOR_YELLOW,
    SrTcmMarker,
    TcmMarking,
    TrTcmMarker,
)
from .pie import PieQdisc
from .policy import AQM_MODES, AqmPolicy
from .red import RedCurve, RedQueue, WredQueue

__all__ = [
    "AQM_MODES",
    "AqmPolicy",
    "COLOR_GREEN",
    "COLOR_RED",
    "COLOR_YELLOW",
    "CoDelQdisc",
    "DrrQdisc",
    "DualPi2Qdisc",
    "PieQdisc",
    "RedCurve",
    "RedQueue",
    "SrTcmMarker",
    "TcmMarking",
    "TrTcmMarker",
    "WredQueue",
    "registered_qdisc_factories",
]


def registered_qdisc_factories():
    """``name -> factory(sim)`` covering every shipped discipline.

    The generic qdisc test suites iterate this registry so a new
    discipline gets the conservation/backlog property checks for free
    the moment it is registered here. Factories build small instances
    (tight limits) so property tests actually exercise the drop paths.
    """
    from ..diffserv.dscp import service_class_of
    from ..diffserv.phb import PriorityQdisc
    from ..net.queues import DropTailQueue

    return {
        "droptail": lambda sim: DropTailQueue(limit_packets=16),
        "red": lambda sim: RedQueue(sim, limit_packets=32),
        "wred": lambda sim: WredQueue(sim, limit_packets=32),
        "codel": lambda sim: CoDelQdisc(sim, limit_packets=32),
        "codel+ecn": lambda sim: CoDelQdisc(sim, limit_packets=32, ecn=True),
        "pie": lambda sim: PieQdisc(sim, limit_packets=32),
        "dualpi2": lambda sim: DualPi2Qdisc(sim, limit_packets=32),
        "drr": lambda sim: DrrQdisc(
            bands=[
                (DropTailQueue(limit_packets=16), 0.0),
                (WredQueue(sim, limit_packets=32), 1500.0),
                (CoDelQdisc(sim, limit_packets=32), 1500.0),
            ],
            classify=lambda packet: service_class_of(packet.dscp),
            strict_bands=1,
        ),
        "priority": lambda sim: PriorityQdisc(
            ef_limit_packets=16,
            af_limit_packets=16,
            be_limit_packets=16,
        ),
        "priority+aqm": lambda sim: PriorityQdisc(
            ef_limit_packets=16,
            af_qdisc=CoDelQdisc(sim, limit_packets=32),
            be_limit_packets=16,
        ),
    }
