"""RED and WRED queues (Floyd & Jacobson 1993, Cisco-style WRED).

Both disciplines keep a FIFO backlog and apply their intelligence at
enqueue time only; the head is exposed through :meth:`Qdisc.peek`, so
they compose under schedulers (:class:`repro.aqm.DrrQdisc`,
:class:`repro.diffserv.PriorityQdisc`) as well as standing alone.

The average queue is an EWMA in *packets*, updated at every arrival:

    avg <- (1 - wq) * avg + wq * len(queue)

with the idle-period correction from the RED paper: on arrival to an
empty queue the average decays as if ``m`` small packets had departed
(``m = idle_time / idle_pkt_time``) — the decay *replaces* the EWMA
step for that arrival, it does not stack on top of one. On
``min_th <= avg < max_th`` the drop/mark probability ramps linearly to
``p_max`` and is inflated by the count of packets admitted since the
last action (the uniform-spacing trick from the paper; WRED keeps one
such counter *per drop precedence*, as Cisco dscp-based WRED does —
a burst of red-marked actions must not inflate green packets' drop
probability); at or above ``max_th`` every arrival is dropped (not
marked — RFC 3168 §7 treats persistent overload as loss).

Determinism: the only randomness is ``sim.rng.random()``, the
simulator's seeded generator, so runs are bit-reproducible and
independent of process layout (each deployment owns its simulator).
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Callable, Deque, Dict, Optional

from ..diffserv.dscp import drop_precedence_of
from ..net.packet import ECN_CE, ECN_ECT0, ECN_ECT1, Packet
from ..net.queues import Qdisc

__all__ = ["RedCurve", "RedQueue", "WredQueue"]


@dataclass(frozen=True)
class RedCurve:
    """One RED drop curve: thresholds in average *packets*."""

    min_th: float
    max_th: float
    p_max: float

    def __post_init__(self) -> None:
        if not 0 <= self.min_th < self.max_th:
            raise ValueError(
                f"need 0 <= min_th < max_th, got {self.min_th}/{self.max_th}"
            )
        if not 0 < self.p_max <= 1:
            raise ValueError(f"p_max must be in (0, 1], got {self.p_max}")


class RedQueue(Qdisc):
    """Random Early Detection with optional ECN marking.

    Parameters
    ----------
    sim:
        The simulator (timestamps for idle decay, ``sim.rng`` for the
        early-action coin flips).
    curve:
        The RED thresholds/probability (defaults to min 5 / max 15
        packets at 10% — sized for the testbed's shallow 100-packet
        ports).
    limit_packets:
        Hard tail-drop bound.
    wq:
        EWMA weight (RED paper default 0.002).
    ecn:
        When True, an early action on an ECN-capable packet (ECT0 or
        ECT1) sets CE instead of dropping. Tail drops and over-max
        drops are never converted to marks.
    idle_pkt_time:
        Assumed per-packet service time used to decay the average
        across idle periods.
    """

    def __init__(
        self,
        sim,
        curve: Optional[RedCurve] = None,
        limit_packets: int = 100,
        wq: float = 0.002,
        ecn: bool = False,
        idle_pkt_time: float = 1e-3,
    ) -> None:
        if limit_packets <= 0:
            raise ValueError("limit_packets must be positive")
        if not 0 < wq <= 1:
            raise ValueError("wq must be in (0, 1]")
        if idle_pkt_time <= 0:
            raise ValueError("idle_pkt_time must be positive")
        self.sim = sim
        self.curve = curve if curve is not None else RedCurve(5.0, 15.0, 0.1)
        self.limit_packets = limit_packets
        self.wq = wq
        self.ecn = ecn
        self.idle_pkt_time = idle_pkt_time
        self._queue: Deque[Packet] = deque()
        self._bytes = 0
        #: EWMA average queue length in packets.
        self.avg = 0.0
        self._idle_since: Optional[float] = 0.0
        # Packets since the last early action, keyed by count key
        # (plain RED has one key; WRED keys by drop precedence).
        self._counts: Dict[int, int] = {0: -1}
        # Counters (the Qdisc drop contract: drops == all losses).
        self.drops = 0
        self.drop_bytes = 0
        self.tail_drops = 0
        self.early_drops = 0
        self.ecn_marks = 0
        #: Aggregate time-in-queue of dequeued packets (seconds) — the
        #: queue-delay figure experiments report as sojourn_sum/count.
        self.sojourn_sum = 0.0
        self.sojourn_count = 0
        self.on_drop: Optional[Callable[[Packet], None]] = None

    # -- internals ---------------------------------------------------------

    def _dropped(self, packet: Packet, tail: bool) -> bool:
        self.drops += 1
        self.drop_bytes += packet.size
        if tail:
            self.tail_drops += 1
        else:
            self.early_drops += 1
        if self.on_drop is not None:
            self.on_drop(packet)
        tel = self.sim.telemetry
        if tel is not None and tel.trace is not None:
            event = "tail_drop" if tail else "early_drop"
            if tel.trace.wants("aqm", event):
                tel.trace.emit(
                    self.sim.now, "aqm", event,
                    src=packet.src, dst=packet.dst,
                    sport=packet.sport, dport=packet.dport,
                    dscp=packet.dscp, size=packet.size,
                    avg=round(self.avg, 3),
                )
        return False

    def _marked(self, packet: Packet) -> None:
        packet.ecn = ECN_CE
        self.ecn_marks += 1
        tel = self.sim.telemetry
        if tel is not None and tel.trace is not None:
            if tel.trace.wants("aqm", "ecn_mark"):
                tel.trace.emit(
                    self.sim.now, "aqm", "ecn_mark",
                    src=packet.src, dst=packet.dst,
                    sport=packet.sport, dport=packet.dport,
                    dscp=packet.dscp, size=packet.size,
                    avg=round(self.avg, 3),
                )

    def _update_avg(self) -> float:
        if self._queue:
            self.avg += self.wq * (len(self._queue) - self.avg)
        else:
            # Queue is idle: decay as if m packets had drained. The
            # RED paper applies the decay *alone* on arrival to an
            # empty queue — no additional EWMA step with sample 0.
            if self._idle_since is not None:
                m = (self.sim.now - self._idle_since) / self.idle_pkt_time
                if m > 0:
                    self.avg *= (1.0 - self.wq) ** m
                self._idle_since = None
        return self.avg

    def _early_action(self, curve: RedCurve, avg: float, key: int) -> bool:
        """True if this arrival should be marked/dropped early."""
        count = self._counts[key] + 1
        self._counts[key] = count
        p_b = curve.p_max * (avg - curve.min_th) / (curve.max_th - curve.min_th)
        denom = 1.0 - count * p_b
        p_a = 1.0 if denom <= 0 else p_b / denom
        if self.sim.rng.random() < p_a:
            self._counts[key] = 0
            return True
        return False

    def _select(self, packet: Packet) -> "tuple[RedCurve, int]":
        """The drop curve for ``packet`` and its count key."""
        return self.curve, 0

    def _curve_for(self, packet: Packet) -> RedCurve:
        return self._select(packet)[0]

    # -- qdisc interface ---------------------------------------------------

    def enqueue(self, packet: Packet) -> bool:
        avg = self._update_avg()
        curve, key = self._select(packet)
        if avg >= curve.max_th or len(self._queue) >= self.limit_packets:
            self._counts[key] = -1
            return self._dropped(packet, tail=True)
        if avg >= curve.min_th:
            if self._early_action(curve, avg, key):
                if self.ecn and packet.ecn in (ECN_ECT0, ECN_ECT1):
                    self._marked(packet)
                else:
                    return self._dropped(packet, tail=False)
        else:
            self._counts[key] = -1
        packet.enqueued_at = self.sim.now
        self._queue.append(packet)
        self._bytes += packet.size
        return True

    def dequeue(self) -> Optional[Packet]:
        if not self._queue:
            return None
        packet = self._queue.popleft()
        self._bytes -= packet.size
        self.sojourn_sum += self.sim.now - packet.enqueued_at
        self.sojourn_count += 1
        if not self._queue:
            self._idle_since = self.sim.now
        return packet

    def peek(self) -> Optional[Packet]:
        return self._queue[0] if self._queue else None

    def __len__(self) -> int:
        return len(self._queue)

    @property
    def backlog_bytes(self) -> int:
        return self._bytes


class WredQueue(RedQueue):
    """Weighted RED: one physical queue, per-drop-precedence curves.

    ``curves`` maps RFC 2597 drop precedence (1..3) to its
    :class:`RedCurve`; precedence 1 (greens) gets the most headroom,
    precedence 3 (reds) the least. Non-AF packets use the precedence-1
    curve (:func:`repro.diffserv.dscp.drop_precedence_of`). The EWMA
    average is shared — what differs per color is where on the average
    the curve bites *and* the packets-since-last-action counter, which
    is kept per precedence (one precedence's action burst must not
    inflate another's drop probability). This is exactly Cisco MQC
    ``random-detect dscp-based`` behaviour.
    """

    #: Default curves over a 100-packet queue: greens survive longest.
    DEFAULT_CURVES: Dict[int, RedCurve] = {
        1: RedCurve(12.0, 30.0, 0.05),
        2: RedCurve(6.0, 20.0, 0.20),
        3: RedCurve(3.0, 12.0, 0.50),
    }

    def __init__(
        self,
        sim,
        curves: Optional[Dict[int, RedCurve]] = None,
        limit_packets: int = 100,
        wq: float = 0.002,
        ecn: bool = False,
        idle_pkt_time: float = 1e-3,
    ) -> None:
        chosen = dict(curves) if curves is not None else dict(self.DEFAULT_CURVES)
        for prec in (1, 2, 3):
            if prec not in chosen:
                raise ValueError(f"missing WRED curve for drop precedence {prec}")
        super().__init__(
            sim,
            curve=chosen[1],
            limit_packets=limit_packets,
            wq=wq,
            ecn=ecn,
            idle_pkt_time=idle_pkt_time,
        )
        self.curves = chosen
        self._counts = {1: -1, 2: -1, 3: -1}

    def _select(self, packet: Packet) -> "tuple[RedCurve, int]":
        prec = drop_precedence_of(packet.dscp)
        return self.curves[prec], prec
