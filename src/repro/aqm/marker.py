"""Three-color meters (RFC 2697 srTCM, RFC 2698 trTCM) and the
edge-marking rule that remaps colors to AF drop precedences.

A meter assigns each packet green, yellow, or red. :class:`TcmMarking`
wraps a meter as a classifier action (the same ``apply(packet)``
protocol as :class:`repro.diffserv.conditioner.PolicedMarking`), so
three-color marking installs at edge conditioners exactly like the
paper's single-bucket policer — but instead of dropping excess it
*remarks* it down the AF drop precedences, leaving the drop decision
to WRED inside the network.

Units follow the repo conventions: rates in bits/second, bucket
depths in bytes (the RFCs use bytes/second; the translation is
confined to the callers' configuration).
"""

from __future__ import annotations

from typing import Optional

from ..diffserv.token_bucket import TokenBucket
from ..net.packet import Packet

__all__ = [
    "COLOR_GREEN",
    "COLOR_YELLOW",
    "COLOR_RED",
    "SrTcmMarker",
    "TrTcmMarker",
    "TcmMarking",
]

COLOR_GREEN = "green"
COLOR_YELLOW = "yellow"
COLOR_RED = "red"


class SrTcmMarker:
    """Single-rate three-color meter (RFC 2697, color-blind mode).

    One rate (CIR) feeds two buckets: the committed burst (CBS) and
    the excess burst (EBS). Green while the committed bucket covers
    the packet, yellow while the excess bucket does, red otherwise.
    """

    def __init__(self, cir: float, cbs: float, ebs: float) -> None:
        if ebs <= 0:
            raise ValueError("ebs must be positive")
        self.committed = TokenBucket(cir, cbs)
        self.excess = TokenBucket(cir, ebs)

    @property
    def cir(self) -> float:
        return self.committed.rate

    def color(self, nbytes: int, now: float) -> str:
        if self.committed.consume(nbytes, now):
            return COLOR_GREEN
        if self.excess.consume(nbytes, now):
            return COLOR_YELLOW
        return COLOR_RED

    def reconfigure(
        self,
        rate: Optional[float] = None,
        depth: Optional[float] = None,
        *,
        now: float,
    ) -> None:
        """Reservation-modify hook: ``depth`` resizes the committed
        burst; the excess burst keeps its CBS ratio."""
        if depth is not None and self.committed.depth > 0:
            ratio = self.excess.depth / self.committed.depth
            self.excess.reconfigure(rate=rate, depth=depth * ratio, now=now)
        else:
            self.excess.reconfigure(rate=rate, now=now)
        self.committed.reconfigure(rate=rate, depth=depth, now=now)

    def __repr__(self) -> str:
        return (
            f"<SrTcmMarker cir={self.cir:.0f}b/s cbs={self.committed.depth:.0f}B "
            f"ebs={self.excess.depth:.0f}B>"
        )


class TrTcmMarker:
    """Two-rate three-color meter (RFC 2698, color-blind mode).

    Red when the peak bucket (PIR/PBS) cannot cover the packet,
    yellow when only the peak can, green when the committed bucket
    (CIR/CBS) can too.
    """

    def __init__(self, cir: float, cbs: float, pir: float, pbs: float) -> None:
        if pir < cir:
            raise ValueError("pir must be >= cir")
        self.committed = TokenBucket(cir, cbs)
        self.peak = TokenBucket(pir, pbs)

    @property
    def cir(self) -> float:
        return self.committed.rate

    def color(self, nbytes: int, now: float) -> str:
        if not self.peak.consume(nbytes, now):
            return COLOR_RED
        if self.committed.consume(nbytes, now):
            return COLOR_GREEN
        return COLOR_YELLOW

    def reconfigure(
        self,
        rate: Optional[float] = None,
        depth: Optional[float] = None,
        *,
        now: float,
    ) -> None:
        """Reservation-modify hook: the peak keeps its rate/depth
        ratios to the committed bucket."""
        if rate is not None:
            pr_ratio = self.peak.rate / self.committed.rate
            self.peak.reconfigure(rate=rate * pr_ratio, now=now)
        if depth is not None and self.committed.depth > 0:
            pb_ratio = self.peak.depth / self.committed.depth
            self.peak.reconfigure(depth=depth * pb_ratio, now=now)
        self.committed.reconfigure(rate=rate, depth=depth, now=now)

    def __repr__(self) -> str:
        return (
            f"<TrTcmMarker cir={self.cir:.0f}b/s pir={self.peak.rate:.0f}b/s>"
        )


class TcmMarking:
    """Classifier action: meter with a TCM, remark by color.

    ``dscp_by_color`` maps each color to the codepoint to stamp —
    e.g. green→EF, yellow→AF12, red→AF13 for a premium flow whose
    excess rides the assured class, or green→AF11/yellow→AF12/
    red→AF13 for a pure AF service. ``red_action`` may instead drop
    reds outright (``"drop"``), degenerating to a policer with an
    excess-burst allowance.

    Exposes the same accounting attributes as
    :class:`repro.diffserv.conditioner.PolicedMarking`
    (``conforming_*`` = green, ``exceeding_*`` = red) so
    :class:`repro.diffserv.mqc.PremiumFlowHandle` aggregates either
    rule kind unchanged.
    """

    def __init__(
        self,
        sim,
        meter,
        dscp_by_color: dict,
        red_action: str = "remark",
    ) -> None:
        if red_action not in ("remark", "drop"):
            raise ValueError(f"unknown red action {red_action!r}")
        missing = {COLOR_GREEN, COLOR_YELLOW, COLOR_RED} - set(dscp_by_color)
        if red_action == "remark" and missing:
            raise ValueError(f"dscp_by_color missing {sorted(missing)}")
        self.sim = sim
        self.meter = meter
        self.dscp_by_color = dict(dscp_by_color)
        self.red_action = red_action
        self.green_packets = 0
        self.green_bytes = 0
        self.yellow_packets = 0
        self.yellow_bytes = 0
        self.red_packets = 0
        self.red_bytes = 0

    # -- PolicedMarking-compatible accounting --------------------------------

    @property
    def conforming_packets(self) -> int:
        return self.green_packets

    @property
    def conforming_bytes(self) -> int:
        return self.green_bytes

    @property
    def exceeding_packets(self) -> int:
        return self.red_packets

    @property
    def exceeding_bytes(self) -> int:
        return self.red_bytes

    def reconfigure(
        self,
        rate: Optional[float] = None,
        depth: Optional[float] = None,
        *,
        now: float,
    ) -> None:
        self.meter.reconfigure(rate=rate, depth=depth, now=now)

    def apply(self, packet: Packet) -> bool:
        color = self.meter.color(packet.size, self.sim._now)
        if color == COLOR_GREEN:
            self.green_packets += 1
            self.green_bytes += packet.size
        elif color == COLOR_YELLOW:
            self.yellow_packets += 1
            self.yellow_bytes += packet.size
        else:
            self.red_packets += 1
            self.red_bytes += packet.size
            if self.red_action == "drop":
                return False
        packet.dscp = self.dscp_by_color[color]
        return True
