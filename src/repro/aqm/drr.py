"""Deficit-round-robin scheduling (Shreedhar & Varghese 1996).

:class:`DrrQdisc` composes child qdiscs into bands and serves them by
byte-accurate deficit rounds, so each band's long-run share of a
saturated link is proportional to its quantum — the alternative to
strict priority that bounds how much one class can take. Leading
bands may optionally stay strict-priority (the EF PHB keeps its
latency guarantee while AF and BE split the remainder by weight).

Work conservation: an idle band forfeits its round, so spare capacity
flows to the backlogged bands; quanta only bind under contention.
"""

from __future__ import annotations

from typing import Callable, List, Optional, Sequence, Tuple

from ..net.packet import Packet
from ..net.queues import Qdisc

__all__ = ["DrrQdisc"]


class DrrQdisc(Qdisc):
    """DRR over child band qdiscs, with optional strict lead bands.

    Parameters
    ----------
    bands:
        ``[(child_qdisc, quantum_bytes), ...]``. Quanta are ignored
        for strict bands. A quantum smaller than the MTU still works —
        the deficit accumulates over rounds — it just costs extra
        scheduler rounds per packet.
    classify:
        ``(packet) -> band index``.
    strict_bands:
        The first ``strict_bands`` bands are served in strict priority
        *before* any DRR band (0 = pure DRR).
    band_filters:
        Optional per-band admission filters ``{index: (packet) -> bool}``
        applied before the child enqueue — the hook the DiffServ domain
        uses for its aggregate EF policer. A False verdict counts in
        ``filter_drops``.
    """

    def __init__(
        self,
        bands: Sequence[Tuple[Qdisc, float]],
        classify: Callable[[Packet], int],
        strict_bands: int = 0,
        band_filters: Optional[dict] = None,
    ) -> None:
        if not bands:
            raise ValueError("at least one band required")
        if not 0 <= strict_bands <= len(bands):
            raise ValueError("strict_bands out of range")
        for _, quantum in bands[strict_bands:]:
            if quantum <= 0:
                raise ValueError("DRR quanta must be positive")
        self._children: List[Qdisc] = [q for q, _ in bands]
        self._quanta: List[float] = [quantum for _, quantum in bands]
        self._classify = classify
        self._strict = strict_bands
        self._deficit: List[float] = [0.0] * len(bands)
        #: DRR bands currently in the active rotation, in service order.
        self._active: List[int] = []
        # Prebound child peeks: the deficit loop asks each band's head
        # through the Qdisc.peek contract, so children that drop at
        # dequeue time (CoDel, DualPI2) or keep no ``_queue`` deque at
        # all compose correctly.
        self._peeks: List[Callable[[], Optional[Packet]]] = [
            q.peek for q in self._children
        ]
        # Own peek stash (qdisc_peek_dequeued pattern): ``peek`` runs
        # one real dequeue and parks the result here; counted in
        # ``__len__``/``backlog_bytes`` until the next ``dequeue``.
        self._stash: Optional[Packet] = None
        self.filter_drops = 0
        self.band_filters = dict(band_filters) if band_filters else {}

    @property
    def bands(self) -> List[Qdisc]:
        return list(self._children)

    # -- qdisc interface ---------------------------------------------------

    def enqueue(self, packet: Packet) -> bool:
        band = self._classify(packet)
        fltr = self.band_filters.get(band)
        if fltr is not None and not fltr(packet):
            self.filter_drops += 1
            return False
        child = self._children[band]
        was_empty = len(child) == 0
        if not child.enqueue(packet):
            return False
        if was_empty and band >= self._strict and band not in self._active:
            self._deficit[band] = 0.0
            self._active.append(band)
        return True

    def dequeue(self) -> Optional[Packet]:
        stashed = self._stash
        if stashed is not None:
            self._stash = None
            return stashed
        # Strict lead bands first (EF keeps its latency bound).
        for band in range(self._strict):
            packet = self._children[band].dequeue()
            if packet is not None:
                return packet
        active = self._active
        while active:
            band = active[0]
            child = self._children[band]
            head = self._peeks[band]()
            if head is None:
                # Drained (possibly by an AQM child dropping its whole
                # backlog): leave the rotation.
                active.pop(0)
                continue
            if head.size <= self._deficit[band]:
                packet = child.dequeue()
                self._deficit[band] -= packet.size
                if len(child) == 0:
                    active.pop(0)
                return packet
            # Head doesn't fit this round: grant the quantum, rotate to
            # the next band, and keep looping — deficits accumulate
            # until some backlogged head fits, so this terminates.
            self._deficit[band] += self._quanta[band]
            active.append(active.pop(0))
        return None

    def peek(self) -> Optional[Packet]:
        # Scheduling decisions (deficits, rotation) are committed by a
        # peek, so the only faithful peek is a dequeue-and-stash.
        if self._stash is None:
            self._stash = self.dequeue()
        return self._stash

    def __len__(self) -> int:
        n = sum(len(q) for q in self._children)
        return n + 1 if self._stash is not None else n

    @property
    def backlog_bytes(self) -> int:
        total = sum(q.backlog_bytes for q in self._children)
        if self._stash is not None:
            total += self._stash.size
        return total

    @property
    def drops(self) -> int:
        return sum(q.total_drops for q in self._children) + self.filter_drops
