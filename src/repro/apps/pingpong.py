"""The ping-pong benchmark (§5.2).

"Two processes repeatedly exchange a fixed-sized message via MPI_Send
and MPI_Recv calls. While artificial, this communication pattern is
characteristic of many SPMD applications." Figure 5 reports the
*one-way* throughput as a function of the reservation, for several
message sizes.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

from ..kernel import Counter
from ..mpi import Communicator

__all__ = ["PingPong", "PingPongResult"]


@dataclass
class PingPongResult:
    """Outcome of one ping-pong run."""

    message_bytes: int
    rounds_completed: int = 0
    started_at: float = 0.0
    finished_at: float = 0.0
    #: Receiver-side per-round completion stamps (rank 0's receives).
    delivered: Optional[Counter] = None

    @property
    def elapsed(self) -> float:
        return self.finished_at - self.started_at

    def one_way_throughput_bps(self) -> float:
        """Application bytes moved per direction per second."""
        if self.elapsed <= 0:
            return 0.0
        return self.rounds_completed * self.message_bytes * 8.0 / self.elapsed

    def one_way_throughput_kbps(self) -> float:
        return self.one_way_throughput_bps() / 1e3


class PingPong:
    """Two-rank ping-pong over MPI."""

    def __init__(
        self,
        message_bytes: int,
        duration: Optional[float] = None,
        rounds: Optional[int] = None,
        tag: int = 42,
        warmup_rounds: int = 2,
    ) -> None:
        if (duration is None) == (rounds is None):
            raise ValueError("give exactly one of duration / rounds")
        self.message_bytes = message_bytes
        self.duration = duration
        self.rounds = rounds
        self.tag = tag
        self.warmup_rounds = warmup_rounds
        self.result = PingPongResult(message_bytes)

    def main(self, comm: Communicator):
        """SPMD entry point for both ranks (launch on ranks 0 and 1)."""
        if comm.rank == 0:
            yield from self._rank0(comm)
        elif comm.rank == 1:
            yield from self._rank1(comm)

    def _stop_after(self, start: float) -> bool:
        if self.rounds is not None:
            return self.result.rounds_completed >= self.rounds
        return (self.result.delivered.sim.now - start) >= self.duration

    def _rank0(self, comm: Communicator):
        sim = comm.sim
        self.result.delivered = Counter(sim, "pingpong-recv")
        for _ in range(self.warmup_rounds):
            yield comm.send(1, nbytes=self.message_bytes, tag=self.tag)
            yield comm.recv(source=1, tag=self.tag)
        start = sim.now
        self.result.started_at = start
        while not self._stop_after(start):
            yield comm.send(1, nbytes=self.message_bytes, tag=self.tag)
            yield comm.recv(source=1, tag=self.tag)
            self.result.rounds_completed += 1
            self.result.delivered.add(self.message_bytes)
        self.result.finished_at = sim.now
        # Tell rank 1 to stop (zero payload would be invalid; use 1B).
        yield comm.send(1, nbytes=1, tag=self.tag + 1)

    def _rank1(self, comm: Communicator):
        stop = comm.irecv(source=0, tag=self.tag + 1)
        while True:
            ping = comm.irecv(source=0, tag=self.tag)
            yield comm.sim.any_of([stop.wait(), ping.wait()])
            if stop.completed:
                return
            yield comm.send(0, nbytes=self.message_bytes, tag=self.tag)
