"""A best-effort CPU hog (the competing application of §5.5)."""

from __future__ import annotations

from typing import Optional

from ..cpu import Cpu, Job
from ..net.node import Host

__all__ = ["CpuHog"]


class CpuHog:
    """Occupies as much CPU as the scheduler will give it."""

    def __init__(self, host: Host, name: str = "hog") -> None:
        if host.cpu is None:
            Cpu(host.sim, host=host, name=f"cpu-{host.name}")
        self.cpu: Cpu = host.cpu
        self.task = self.cpu.create_task(name)
        self._job: Optional[Job] = None

    @property
    def running(self) -> bool:
        return self._job is not None and not self._job.cancelled

    def start(self) -> None:
        if self.running:
            return
        self._job = self.cpu.run_job(self.task, float("inf"))

    def stop(self) -> None:
        if self._job is not None:
            self._job.cancel()
            self._job = None

    def cpu_time(self) -> float:
        return self.task.cpu_time
