"""The UDP contention generator.

"Contention is generated via a UDP traffic generator that is quite
capable of overwhelming any TCP application that does not have a
reservation" (§5.2). Constant-bit-rate by default, with an optional
on/off duty cycle for burstier contention.
"""

from __future__ import annotations

from typing import Optional

from ..kernel import Counter, Simulator
from ..net.node import Host
from ..net.packet import PROTO_UDP
from ..transport.udp import UDP_MAX_PAYLOAD, UdpLayer

__all__ = ["UdpTrafficGenerator"]


class UdpTrafficGenerator:
    """Blasts UDP datagrams from ``src`` to ``dst`` at ``rate`` bits/s."""

    def __init__(
        self,
        src: Host,
        dst: Host,
        rate: float,
        payload_bytes: int = UDP_MAX_PAYLOAD,
        port: int = 9001,
        on_time: Optional[float] = None,
        off_time: Optional[float] = None,
    ) -> None:
        if rate <= 0:
            raise ValueError("rate must be positive")
        if not 0 < payload_bytes <= UDP_MAX_PAYLOAD:
            raise ValueError("bad payload size")
        if (on_time is None) != (off_time is None):
            raise ValueError("on_time and off_time go together")
        self.sim: Simulator = src.sim
        self.src = src
        self.dst = dst
        self.rate = rate
        self.payload_bytes = payload_bytes
        self.port = port
        self.on_time = on_time
        self.off_time = off_time
        self._running = False
        layer = src.protocols.get(PROTO_UDP)
        self.udp = layer if isinstance(layer, UdpLayer) else UdpLayer(src)
        self.socket = self.udp.create_socket()
        self.sent = Counter(self.sim, "udp-gen-sent")
        # A sink on the destination so datagrams terminate cleanly.
        dst_layer = dst.protocols.get(PROTO_UDP)
        dst_udp = dst_layer if isinstance(dst_layer, UdpLayer) else UdpLayer(dst)
        self._dst_udp = dst_udp
        self.sink = dst_udp.create_socket(port=port)
        #: Hybrid mode: the rate envelope standing in for the packet
        #: blaster (:class:`repro.net.fluid.FluidAggregate`), else None.
        self.fluid = None
        self.sim.process(self._sink_loop(), name="udp-gen-sink")

    def _sink_loop(self):
        while True:
            yield self.sink.recvfrom()

    def start(self) -> None:
        if self._running:
            return
        self._running = True
        if self.sim.fluid:
            self._start_fluid()
            return
        self.sim.process(self._send_loop(), name="udp-gen")

    def stop(self) -> None:
        self._running = False
        if self.fluid is not None:
            self.fluid.running = False

    def _start_fluid(self) -> None:
        """Hybrid mode: advance as a rate envelope instead of sending
        packets — the blaster is exactly the open-loop, constant-rate
        aggregate the fluid approximation is valid for."""
        if self.fluid is None:
            from ..net.fluid import FluidAggregate  # late: apps<->net layering

            wire_bytes = self.payload_bytes + 28  # IP + UDP headers
            payload_share = self.payload_bytes / wire_bytes
            aggregate = FluidAggregate(
                self.src,
                self.dst,
                rate=self.rate,
                packet_bytes=wire_bytes,
                dscp=self.socket.dscp,
                on_time=self.on_time,
                off_time=self.off_time,
            )
            # Keep the packet-world counters meaningful: offered wire
            # bytes feed the sent counter (payload share, like sendto),
            # deliveries tally the sink layer's datagram count.
            aggregate.on_offered = lambda b: self.sent.add(b * payload_share)
            previous = {"datagrams": 0}

            def on_delivered(_bytes: float) -> None:
                total = aggregate.delivered_datagrams
                self._dst_udp.rx_datagrams += total - previous["datagrams"]
                previous["datagrams"] = total

            aggregate.on_delivered = on_delivered
            self.fluid = self.sim.get_fluid_engine().register(aggregate)
        self.fluid.running = True
        self.fluid._phase_start = self.sim.now

    @property
    def interval(self) -> float:
        """Inter-datagram gap at the configured rate."""
        return (self.payload_bytes + 28) * 8.0 / self.rate

    def _send_loop(self):
        period_start = self.sim.now
        # The gap is hoisted out of the loop: rate/payload are fixed
        # while running (stop()/start() picks up reconfiguration).
        interval = self.interval
        while self._running:
            if self.on_time is not None:
                phase = (self.sim.now - period_start) % (
                    self.on_time + self.off_time
                )
                if phase >= self.on_time:
                    yield self.sim.timeout(
                        self.on_time + self.off_time - phase
                    )
                    continue
            self.socket.sendto(self.payload_bytes, self.dst.addr, self.port)
            self.sent.add(self.payload_bytes)
            yield self.sim.timeout(interval)
