"""The UDP contention generator.

"Contention is generated via a UDP traffic generator that is quite
capable of overwhelming any TCP application that does not have a
reservation" (§5.2). Constant-bit-rate by default, with an optional
on/off duty cycle for burstier contention.
"""

from __future__ import annotations

from typing import Optional

from ..kernel import Counter, Simulator
from ..net.node import Host
from ..net.packet import PROTO_UDP
from ..transport.udp import UDP_MAX_PAYLOAD, UdpLayer

__all__ = ["UdpTrafficGenerator"]


class UdpTrafficGenerator:
    """Blasts UDP datagrams from ``src`` to ``dst`` at ``rate`` bits/s."""

    def __init__(
        self,
        src: Host,
        dst: Host,
        rate: float,
        payload_bytes: int = UDP_MAX_PAYLOAD,
        port: int = 9001,
        on_time: Optional[float] = None,
        off_time: Optional[float] = None,
    ) -> None:
        if rate <= 0:
            raise ValueError("rate must be positive")
        if not 0 < payload_bytes <= UDP_MAX_PAYLOAD:
            raise ValueError("bad payload size")
        if (on_time is None) != (off_time is None):
            raise ValueError("on_time and off_time go together")
        self.sim: Simulator = src.sim
        self.src = src
        self.dst = dst
        self.rate = rate
        self.payload_bytes = payload_bytes
        self.port = port
        self.on_time = on_time
        self.off_time = off_time
        self._running = False
        layer = src.protocols.get(PROTO_UDP)
        self.udp = layer if isinstance(layer, UdpLayer) else UdpLayer(src)
        self.socket = self.udp.create_socket()
        self.sent = Counter(self.sim, "udp-gen-sent")
        # A sink on the destination so datagrams terminate cleanly.
        dst_layer = dst.protocols.get(PROTO_UDP)
        dst_udp = dst_layer if isinstance(dst_layer, UdpLayer) else UdpLayer(dst)
        self.sink = dst_udp.create_socket(port=port)
        self.sim.process(self._sink_loop(), name="udp-gen-sink")

    def _sink_loop(self):
        while True:
            yield self.sink.recvfrom()

    def start(self) -> None:
        if self._running:
            return
        self._running = True
        self.sim.process(self._send_loop(), name="udp-gen")

    def stop(self) -> None:
        self._running = False

    @property
    def interval(self) -> float:
        """Inter-datagram gap at the configured rate."""
        return (self.payload_bytes + 28) * 8.0 / self.rate

    def _send_loop(self):
        period_start = self.sim.now
        # The gap is hoisted out of the loop: rate/payload are fixed
        # while running (stop()/start() picks up reconfiguration).
        interval = self.interval
        while self._running:
            if self.on_time is not None:
                phase = (self.sim.now - period_start) % (
                    self.on_time + self.off_time
                )
                if phase >= self.on_time:
                    yield self.sim.timeout(
                        self.on_time + self.off_time - phase
                    )
                    continue
            self.socket.sendto(self.payload_bytes, self.dst.addr, self.port)
            self.sent.add(self.payload_bytes)
            yield self.sim.timeout(interval)
