"""The distance-visualization pipeline (§5.3).

"The program communicates a stream of fixed-sized messages from a
sender to a receiver at a fixed rate; both the rate ('frames per
second') and the message size ('frame size') can be adjusted, hence
varying both the generated bandwidth and the burstiness of the
traffic."

§5.5 adds the detail that matters for the CPU experiments: the original
sleep-based version barely used the CPU and so was *not* affected by
CPU contention; "after a modification to make the application do some
'work' between sending frames, the application was more affected". The
sender here demands ``work_fraction / fps`` CPU-seconds per frame
through the host's processor-sharing CPU, so contention slows frame
production exactly as the paper describes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from ..cpu import Cpu
from ..kernel import Counter
from ..mpi import Communicator
from ..core.shaping import Shaper

__all__ = ["VisualizationPipeline"]


@dataclass
class _VizStats:
    frames_sent: int = 0
    frames_received: int = 0
    late_frames: int = 0


class VisualizationPipeline:
    """Rank 0 streams frames to rank 1 at a target rate."""

    def __init__(
        self,
        frame_bytes: int,
        fps: float,
        duration: float,
        tag: int = 77,
        work_fraction: float = 0.0,
        shaper: Optional[Shaper] = None,
    ) -> None:
        if frame_bytes <= 0 or fps <= 0 or duration <= 0:
            raise ValueError("frame_bytes, fps and duration must be positive")
        if not 0 <= work_fraction < 1:
            raise ValueError("work_fraction must be in [0, 1)")
        self.frame_bytes = frame_bytes
        self.fps = fps
        self.duration = duration
        self.tag = tag
        self.work_fraction = work_fraction
        self.shaper = shaper
        self.stats = _VizStats()
        #: Receiver-side delivery counter (bytes at frame completion).
        self.delivered: Optional[Counter] = None
        self._cpu_task = None

    @property
    def target_bandwidth_bps(self) -> float:
        return self.frame_bytes * 8.0 * self.fps

    @property
    def frame_interval(self) -> float:
        return 1.0 / self.fps

    def main(self, comm: Communicator):
        """SPMD entry point (launch on ranks 0 and 1)."""
        if comm.rank == 0:
            yield from self._sender(comm)
        elif comm.rank == 1:
            yield from self._receiver(comm)

    # -- sender ---------------------------------------------------------

    def _work(self, comm: Communicator):
        """Per-frame computation through the host CPU scheduler."""
        if self.work_fraction <= 0:
            return
        host = comm.proc.host
        if host.cpu is None:
            Cpu(comm.sim, host=host, name=f"cpu-{host.name}")
        if self._cpu_task is None:
            self._cpu_task = host.cpu.create_task(f"viz-sender-{id(self)}")
        yield host.cpu.run(self._cpu_task, self.work_fraction * self.frame_interval)

    def _sender(self, comm: Communicator):
        sim = comm.sim
        n_frames = int(self.duration * self.fps)
        next_deadline = sim.now
        for _ in range(n_frames):
            yield from self._work(comm)
            if self.shaper is not None:
                yield from self.shaper.acquire(self.frame_bytes)
            yield comm.send(1, nbytes=self.frame_bytes, tag=self.tag)
            self.stats.frames_sent += 1
            next_deadline += self.frame_interval
            now = sim.now
            if now < next_deadline:
                yield sim.timeout(next_deadline - now)
            else:
                # Running behind: send back-to-back, track lateness.
                self.stats.late_frames += 1
        yield comm.send(1, nbytes=1, tag=self.tag + 1)  # end-of-stream

    # -- receiver ----------------------------------------------------------

    def _receiver(self, comm: Communicator):
        sim = comm.sim
        self.delivered = Counter(sim, "viz-delivered")
        stop = comm.irecv(source=0, tag=self.tag + 1)
        while True:
            frame = comm.irecv(source=0, tag=self.tag)
            yield sim.any_of([stop.wait(), frame.wait()])
            if frame.completed:
                _data, status = frame.wait().value
                self.delivered.add(status.nbytes)
                self.stats.frames_received += 1
                continue
            if stop.completed:
                return

    # -- analysis --------------------------------------------------------------

    def achieved_bandwidth_bps(self, t_start: float, t_end: float) -> float:
        """Receiver-side goodput over an interval, bits/second."""
        if self.delivered is None:
            return 0.0
        return self.delivered.rate_over(t_start, t_end) * 8.0

    def achieved_bandwidth_kbps(self, t_start: float, t_end: float) -> float:
        return self.achieved_bandwidth_bps(t_start, t_end) / 1e3
