"""The paper's workloads: ping-pong, distance visualization, UDP
contention generator, CPU hog, and a finite-difference SPMD code."""

from .cpu_hog import CpuHog
from .finite_difference import FiniteDifference
from .pingpong import PingPong, PingPongResult
from .storage_stream import StoragePipeline
from .traffic_gen import UdpTrafficGenerator
from .visualization import VisualizationPipeline

__all__ = [
    "CpuHog",
    "FiniteDifference",
    "PingPong",
    "PingPongResult",
    "StoragePipeline",
    "UdpTrafficGenerator",
    "VisualizationPipeline",
]
