"""A 2-D finite-difference (Jacobi) stencil application.

This is the motivating workload of §3: "a simple finite difference
application partitioned across two 8-processor multiprocessors
connected by a wide area network ... The application immediately
performs an MPI_Send involving a large buffer (100 KB), depleting the
token bucket" — i.e. low *average* rate but large instantaneous bursts.

The implementation does real numerics (NumPy Jacobi sweeps on a strip
decomposition) with halo exchange over MPI and a periodic allreduce on
the residual, plus optional CPU accounting per sweep.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

import numpy as np

from ..cpu import Cpu
from ..mpi import Communicator, DOUBLE, MAX

__all__ = ["FiniteDifference"]


@dataclass
class _FdStats:
    iterations: int = 0
    residuals: List[float] = field(default_factory=list)
    halo_bytes: int = 0


class FiniteDifference:
    """Jacobi iteration on an ``n x n`` grid, strip-decomposed by rank."""

    def __init__(
        self,
        n: int = 64,
        iterations: int = 20,
        residual_every: int = 5,
        compute_seconds_per_sweep: float = 0.0,
        tag: int = 11,
    ) -> None:
        if n < 4:
            raise ValueError("grid too small")
        self.n = n
        self.iterations = iterations
        self.residual_every = residual_every
        self.compute_seconds = compute_seconds_per_sweep
        self.tag = tag
        self.stats = _FdStats()
        #: Final local strips by rank (for verification).
        self.solutions: dict = {}

    def halo_bytes_per_exchange(self) -> int:
        """Wire bytes per halo row (one row of doubles)."""
        return DOUBLE.extent(self.n)

    def main(self, comm: Communicator):
        """SPMD entry point for every rank."""
        sim = comm.sim
        size, rank = comm.size, comm.rank
        rows = self.n // size
        if rows < 1:
            raise ValueError("more ranks than rows")
        # Local strip with two ghost rows; boundary condition: top edge
        # of the global domain held at 1.0.
        u = np.zeros((rows + 2, self.n))
        if rank == 0:
            u[0, :] = 1.0

        cpu_task = None
        if self.compute_seconds > 0:
            host = comm.proc.host
            if host.cpu is None:
                Cpu(sim, host=host, name=f"cpu-{host.name}")
            cpu_task = host.cpu.create_task(f"fd-{rank}-{id(self)}")

        up, down = rank - 1, rank + 1
        nbytes = self.halo_bytes_per_exchange()
        for it in range(self.iterations):
            # Halo exchange: send boundary rows, receive ghost rows.
            reqs = []
            if up >= 0:
                reqs.append(comm.isend(up, nbytes=nbytes, tag=self.tag,
                                       data=u[1].copy()))
                reqs.append(comm.irecv(source=up, tag=self.tag))
            if down < size:
                reqs.append(comm.isend(down, nbytes=nbytes, tag=self.tag,
                                       data=u[rows].copy()))
                reqs.append(comm.irecv(source=down, tag=self.tag))
            results = yield sim.all_of([r.wait() for r in reqs])
            for value in results:
                if isinstance(value, tuple):  # a receive: (data, status)
                    data, status = value
                    if status.source == up:
                        u[0] = data
                    else:
                        u[rows + 1] = data
            if rank == 0:
                u[0, :] = 1.0  # re-impose the boundary condition
            if down >= size:
                u[rows + 1, :] = 0.0

            # The sweep itself (real numerics).
            new = u.copy()
            new[1 : rows + 1, 1:-1] = 0.25 * (
                u[0:rows, 1:-1]
                + u[2 : rows + 2, 1:-1]
                + u[1 : rows + 1, 0:-2]
                + u[1 : rows + 1, 2:]
            )
            diff = float(np.max(np.abs(new - u)))
            u = new
            if cpu_task is not None:
                yield comm.proc.host.cpu.run(cpu_task, self.compute_seconds)

            if (it + 1) % self.residual_every == 0:
                residual = yield from comm.allreduce(
                    diff, nbytes=DOUBLE.size, op=MAX
                )
                if rank == 0:
                    self.stats.residuals.append(residual)
            if rank == 0:
                self.stats.iterations = it + 1
            self.stats.halo_bytes += nbytes * len(
                [r for r in (up >= 0, down < size) if r]
            )
        self.solutions[rank] = u[1 : rows + 1]
