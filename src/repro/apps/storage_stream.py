"""A storage-fed streaming pipeline (DPSS end-to-end scenario).

GARA's resource managers include one for "the Distributed Parallel
Storage System (DPSS), a network storage system" (§4.2), and the
paper's thesis is *end-to-end* QoS: "immediate and advance reservation,
and co-reservation, of CPU, network, and other resources needed for
end-to-end performance" (§1).

:class:`StoragePipeline` is the visualization sender with its frames
read off a (reservable) :class:`~repro.gara.StorageServer` first —
so the stream's end-to-end rate is gated by disk, CPU, *and* network,
and restoring it under combined contention needs a three-way
co-reservation.
"""

from __future__ import annotations

from typing import Optional

from ..cpu import Cpu
from ..gara import StorageServer
from ..kernel import Counter
from ..mpi import Communicator

__all__ = ["StoragePipeline"]


class StoragePipeline:
    """rank 0: read frame from storage -> (optional CPU work) -> send;
    rank 1: receive/display."""

    def __init__(
        self,
        server: StorageServer,
        client_id: str,
        frame_bytes: int,
        fps: float,
        duration: float,
        tag: int = 88,
        work_fraction: float = 0.0,
    ) -> None:
        if frame_bytes <= 0 or fps <= 0 or duration <= 0:
            raise ValueError("frame_bytes, fps and duration must be positive")
        self.server = server
        self.client_id = client_id
        self.frame_bytes = int(frame_bytes)
        self.fps = fps
        self.duration = duration
        self.tag = tag
        self.work_fraction = work_fraction
        self.frames_sent = 0
        self.delivered: Optional[Counter] = None
        self._cpu_task = None

    @property
    def target_bandwidth_bps(self) -> float:
        return self.frame_bytes * 8.0 * self.fps

    def main(self, comm: Communicator):
        if comm.rank == 0:
            yield from self._sender(comm)
        elif comm.rank == 1:
            yield from self._receiver(comm)

    def _sender(self, comm: Communicator):
        sim = comm.sim
        interval = 1.0 / self.fps
        n_frames = int(self.duration * self.fps)
        deadline = sim.now
        # Single-frame read-ahead: frame i+1 streams off the disk while
        # frame i is processed and sent, so the disk latency overlaps
        # the CPU/network stages instead of adding to them.
        next_read = self.server.read(self.client_id, self.frame_bytes)
        for i in range(n_frames):
            yield next_read
            if i + 1 < n_frames:
                next_read = self.server.read(self.client_id, self.frame_bytes)
            if self.work_fraction > 0:
                host = comm.proc.host
                if host.cpu is None:
                    Cpu(sim, host=host, name=f"cpu-{host.name}")
                if self._cpu_task is None:
                    self._cpu_task = host.cpu.create_task(
                        f"pipeline-{id(self)}"
                    )
                yield host.cpu.run(
                    self._cpu_task, self.work_fraction * interval
                )
            yield comm.send(1, nbytes=self.frame_bytes, tag=self.tag)
            self.frames_sent += 1
            deadline += interval
            if sim.now < deadline:
                yield sim.timeout(deadline - sim.now)
        yield comm.send(1, nbytes=1, tag=self.tag + 1)

    def _receiver(self, comm: Communicator):
        sim = comm.sim
        self.delivered = Counter(sim, "pipeline-delivered")
        stop = comm.irecv(source=0, tag=self.tag + 1)
        while True:
            frame = comm.irecv(source=0, tag=self.tag)
            yield sim.any_of([stop.wait(), frame.wait()])
            if frame.completed:
                _data, status = frame.wait().value
                self.delivered.add(status.nbytes)
                continue
            if stop.completed:
                return

    def achieved_bandwidth_kbps(self, t0: float, t1: float) -> float:
        if self.delivered is None:
            return 0.0
        return self.delivered.rate_over(t0, t1) * 8.0 / 1e3
