"""Cross-layer telemetry: metrics registry, flow tracing, profiling.

Three complementary views of one simulation:

* **metrics** — a registry of counters/gauges/histograms under
  hierarchical names (``tcp.<host>.<flow>.retransmits``,
  ``diffserv.<edge>.policer.drops``, ``gara.broker.admissions``),
  populated by scraping the stack's authoritative per-object statistics
  at snapshot time plus live histograms (e.g. TCP RTT samples);
* **spans** — an event log following MPI messages across layers (MPI
  send → GARA claim → DSCP marking → TCP segments → per-hop egress →
  delivery), emitted by instrumentation sites guarded so a disabled
  session costs one ``None`` check;
* **profiles** — simulator event-loop cost: events/sec, heap depth,
  per-callback-site counts and wall time.

Usage::

    from repro import telemetry

    tel = telemetry.install(telemetry.Telemetry(trace=True, profile=True))
    dep = build_deployment(...)   # auto-attaches to the active session
    ...run...
    telemetry.export_json(tel, "results/run.metrics.json")
    telemetry.uninstall()
"""

from .collect import (
    collect_any,
    collect_broker,
    collect_broker_client,
    collect_broker_service,
    collect_deployment,
    collect_domain,
    collect_mpi_world,
    collect_mpichgq,
    collect_network,
    collect_tcp_host,
)
from .export import export_csv, export_json, metrics_csv_text, metrics_payload
from .hub import Telemetry, active, install, uninstall
from .merge import merge_registries
from .profiler import CallSite, SimProfiler
from .registry import (
    CounterMetric,
    GaugeMetric,
    HistogramMetric,
    MetricsRegistry,
)
from .spans import FlowTrace, SpanEvent
from .windowed import WindowedHistogram

__all__ = [
    "CallSite",
    "CounterMetric",
    "FlowTrace",
    "GaugeMetric",
    "HistogramMetric",
    "MetricsRegistry",
    "SimProfiler",
    "SpanEvent",
    "Telemetry",
    "WindowedHistogram",
    "active",
    "collect_any",
    "collect_broker",
    "collect_broker_client",
    "collect_broker_service",
    "collect_deployment",
    "collect_domain",
    "collect_mpi_world",
    "collect_mpichgq",
    "collect_network",
    "collect_tcp_host",
    "export_csv",
    "export_json",
    "install",
    "merge_registries",
    "metrics_csv_text",
    "metrics_payload",
    "uninstall",
]
