"""Time-bucketed histograms for windowed quantile queries.

:class:`HistogramMetric` answers "what was the p99 over the whole
run?"; SLO supervision needs "what was the p95 over the *last two
seconds*?". A :class:`WindowedHistogram` keeps observations in
fixed-width time buckets and answers quantile/rate queries over any
trailing window, evicting buckets that age out of the retention
horizon so memory stays bounded for arbitrarily long runs.

Buckets past ``max_samples_per_bucket`` switch to seeded reservoir
sampling (Algorithm R) — the same estimator :class:`HistogramMetric`
uses — with the generator seeded from the histogram's name, never the
simulation RNG: recording telemetry must not perturb the simulated
system's random stream.
"""

from __future__ import annotations

import zlib
from typing import Dict, List, Optional

import numpy as np

__all__ = ["WindowedHistogram"]


def _stable_seed(name: str, seed: int) -> int:
    """Deterministic per-instrument seed (``hash()`` is salted per
    process, so it cannot be used here)."""
    return zlib.crc32(name.encode("utf-8")) ^ (seed & 0xFFFFFFFF)


class _Bucket:
    """Samples and exact aggregates of one time bucket."""

    __slots__ = ("count", "total", "min", "max", "samples")

    def __init__(self) -> None:
        self.count = 0
        self.total = 0.0
        self.min = float("inf")
        self.max = float("-inf")
        self.samples: List[float] = []


class WindowedHistogram:
    """A distribution observed against the simulation clock.

    Parameters
    ----------
    name:
        Instrument name (also seeds the reservoir RNG).
    bucket_s:
        Width of one time bucket, seconds.
    n_buckets:
        Retention horizon in buckets; observations older than
        ``bucket_s * n_buckets`` behind the newest are evicted.
    max_samples_per_bucket:
        Raw-sample cap per bucket before reservoir sampling engages.
        Count/sum/min/max stay exact regardless.
    """

    kind = "windowed_histogram"

    __slots__ = (
        "name", "bucket_s", "n_buckets", "max_samples_per_bucket",
        "count", "total", "_buckets", "_newest", "_rng", "_seed",
    )

    def __init__(
        self,
        name: str,
        bucket_s: float = 1.0,
        n_buckets: int = 60,
        max_samples_per_bucket: int = 4096,
        seed: int = 0,
    ) -> None:
        if bucket_s <= 0:
            raise ValueError("bucket_s must be positive")
        if n_buckets < 1:
            raise ValueError("need at least one bucket")
        if max_samples_per_bucket < 1:
            raise ValueError("max_samples_per_bucket must be positive")
        self.name = name
        self.bucket_s = float(bucket_s)
        self.n_buckets = n_buckets
        self.max_samples_per_bucket = max_samples_per_bucket
        #: Lifetime observation count (evicted buckets included).
        self.count = 0
        self.total = 0.0
        self._buckets: Dict[int, _Bucket] = {}
        self._newest: Optional[int] = None
        self._rng = None
        self._seed = seed

    # -- recording ---------------------------------------------------------

    def _index(self, t: float) -> int:
        return int(t / self.bucket_s)

    def observe(self, t: float, value: float) -> None:
        """Record ``value`` observed at simulation time ``t``."""
        idx = self._index(t)
        bucket = self._buckets.get(idx)
        if bucket is None:
            bucket = self._buckets[idx] = _Bucket()
            if self._newest is None or idx > self._newest:
                self._newest = idx
                self._evict(idx)
        self.count += 1
        self.total += value
        bucket.count += 1
        bucket.total += value
        if value < bucket.min:
            bucket.min = value
        if value > bucket.max:
            bucket.max = value
        if bucket.count <= self.max_samples_per_bucket:
            bucket.samples.append(value)
        else:
            if self._rng is None:
                self._rng = np.random.default_rng(
                    _stable_seed(self.name, self._seed)
                )
            j = int(self._rng.integers(bucket.count))
            if j < self.max_samples_per_bucket:
                bucket.samples[j] = value

    def _evict(self, newest: int) -> None:
        floor = newest - self.n_buckets + 1
        if len(self._buckets) > self.n_buckets:
            for idx in [i for i in self._buckets if i < floor]:
                del self._buckets[idx]

    # -- windowed queries --------------------------------------------------

    def _window_buckets(self, t_now: float, window: Optional[float]):
        """Buckets overlapping ``[t_now - window, t_now]`` (all retained
        buckets when ``window`` is None)."""
        if window is None:
            return list(self._buckets.values())
        if window <= 0:
            raise ValueError("window must be positive")
        lo = self._index(t_now - window)
        hi = self._index(t_now)
        return [
            b for i, b in self._buckets.items() if lo <= i <= hi
        ]

    def count_over(self, t_now: float, window: Optional[float] = None) -> int:
        return sum(b.count for b in self._window_buckets(t_now, window))

    def sum_over(self, t_now: float, window: Optional[float] = None) -> float:
        return sum(b.total for b in self._window_buckets(t_now, window))

    def mean_over(self, t_now: float, window: Optional[float] = None) -> float:
        buckets = self._window_buckets(t_now, window)
        n = sum(b.count for b in buckets)
        if n == 0:
            return float("nan")
        return sum(b.total for b in buckets) / n

    def max_over(self, t_now: float, window: Optional[float] = None) -> float:
        buckets = [b for b in self._window_buckets(t_now, window) if b.count]
        if not buckets:
            return float("nan")
        return max(b.max for b in buckets)

    def quantile(
        self, p: float, t_now: float, window: Optional[float] = None
    ) -> float:
        """The ``p``-th percentile (0-100) over the trailing window
        (NaN when the window holds no samples)."""
        if not 0 <= p <= 100:
            raise ValueError("percentile must be in [0, 100]")
        samples = [
            s for b in self._window_buckets(t_now, window) for s in b.samples
        ]
        if not samples:
            return float("nan")
        return float(np.percentile(np.asarray(samples), p))

    # -- registry integration ---------------------------------------------

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else float("nan")

    def snapshot(self) -> dict:
        out = {
            "type": self.kind,
            "count": self.count,
            "sum": self.total,
            "mean": self.mean if self.count else None,
            "bucket_s": self.bucket_s,
            "retained_buckets": len(self._buckets),
        }
        samples = [s for b in self._buckets.values() for s in b.samples]
        if samples:
            qs = np.percentile(np.asarray(samples), [50, 90, 95, 99])
            out["p50"], out["p90"], out["p95"], out["p99"] = (
                float(q) for q in qs
            )
        return out

    def __repr__(self) -> str:
        return (
            f"<WindowedHistogram {self.name!r} {len(self._buckets)} "
            f"buckets x {self.bucket_s}s count={self.count}>"
        )
