"""Simulator profiling: events/sec, heap depth, per-callback-site cost.

The profiler hangs off the :class:`~repro.kernel.Simulator` hot loop
(``sim._profiler``); when absent the loop pays one attribute load and a
``None`` check per event. When present, every processed queue entry is
attributed to its callback site (the callable's qualified name) with a
count and accumulated wall-clock time, and the heap depth is sampled so
scaling work can see where event pressure builds up.
"""

from __future__ import annotations

from time import perf_counter
from typing import Dict, List

__all__ = ["SimProfiler", "CallSite"]


class CallSite:
    """Accumulated cost of one callback site."""

    __slots__ = ("name", "calls", "wall_seconds")

    def __init__(self, name: str) -> None:
        self.name = name
        self.calls = 0
        self.wall_seconds = 0.0

    def snapshot(self) -> dict:
        return {
            "calls": self.calls,
            "wall_seconds": self.wall_seconds,
            "mean_us": (self.wall_seconds / self.calls * 1e6) if self.calls else 0.0,
        }


def _site_name(fn) -> str:
    name = getattr(fn, "__qualname__", None)
    if name is None:
        name = getattr(type(fn), "__qualname__", repr(fn))
    module = getattr(fn, "__module__", "")
    return f"{module}.{name}" if module else name


class SimProfiler:
    """Per-simulation profiling state (one per attached simulator)."""

    def __init__(self) -> None:
        self._sites: Dict[object, CallSite] = {}
        self.events = 0
        self.heap_depth_sum = 0
        self.heap_depth_max = 0
        self._wall_start = perf_counter()
        self._wall_stop: float | None = None

    # -- recording (called from Simulator.step) --------------------------

    def record(self, fn, wall_seconds: float, heap_depth: int) -> None:
        site = self._sites.get(fn)
        if site is None:
            site = CallSite(_site_name(fn))
            self._sites[fn] = site
        site.calls += 1
        site.wall_seconds += wall_seconds
        self.events += 1
        self.heap_depth_sum += heap_depth
        if heap_depth > self.heap_depth_max:
            self.heap_depth_max = heap_depth

    def stop(self) -> None:
        """Freeze the wall clock (called when telemetry detaches)."""
        if self._wall_stop is None:
            self._wall_stop = perf_counter()

    # -- reporting -------------------------------------------------------

    @property
    def wall_seconds(self) -> float:
        end = self._wall_stop if self._wall_stop is not None else perf_counter()
        return end - self._wall_start

    @property
    def events_per_second(self) -> float:
        wall = self.wall_seconds
        return self.events / wall if wall > 0 else 0.0

    @property
    def mean_heap_depth(self) -> float:
        return self.heap_depth_sum / self.events if self.events else 0.0

    def sites(self) -> List[CallSite]:
        """Call sites sorted by accumulated wall time, heaviest first."""
        return sorted(
            self._sites.values(), key=lambda s: s.wall_seconds, reverse=True
        )

    def snapshot(self, top: int = 25) -> dict:
        merged: Dict[str, CallSite] = {}
        for site in self._sites.values():
            agg = merged.get(site.name)
            if agg is None:
                agg = CallSite(site.name)
                merged[site.name] = agg
            agg.calls += site.calls
            agg.wall_seconds += site.wall_seconds
        heaviest = sorted(
            merged.values(), key=lambda s: s.wall_seconds, reverse=True
        )[:top]
        return {
            "events": self.events,
            "wall_seconds": self.wall_seconds,
            "events_per_second": self.events_per_second,
            "heap_depth_mean": self.mean_heap_depth,
            "heap_depth_max": self.heap_depth_max,
            "call_sites": {s.name: s.snapshot() for s in heaviest},
        }
