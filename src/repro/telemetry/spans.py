"""Span-based flow tracing: follow one MPI message across layers.

A :class:`FlowTrace` is an ordered log of :class:`SpanEvent` records
emitted by the instrumented layers while tracing is enabled. One MPI
send produces a cascade the trace stitches back together::

    mpi.send          (engine opens a span for the message)
    gara.admit        (QoS attribute / broker claim, if premium)
    diffserv.mark     (edge conditioner marks/polices the packets)
    tcp.segment       (each data segment carrying the stream)
    net.tx / net.hop  (per-hop egress decisions)
    mpi.delivered     (matching receive completes)

MPI-level events carry an explicit ``span`` id (one per message);
packet-level events carry the flow 5-tuple fields instead, because the
wire does not know about messages — :meth:`FlowTrace.events_for` and
:meth:`FlowTrace.layers` are how tests and experiments join the two
views.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional

__all__ = ["SpanEvent", "FlowTrace"]


@dataclass(frozen=True)
class SpanEvent:
    """One observation in a flow trace."""

    time: float
    layer: str  # "mpi", "gara", "diffserv", "tcp", "net", "sim", ...
    name: str   # event within the layer, e.g. "send", "mark", "segment"
    span: Optional[str] = None  # message-span id, when known
    fields: dict = field(default_factory=dict)

    def __repr__(self) -> str:
        span = f" span={self.span}" if self.span else ""
        return f"<{self.layer}.{self.name} t={self.time:.6f}{span} {self.fields}>"


class FlowTrace:
    """An append-only event log with simple query helpers.

    Parameters
    ----------
    predicate:
        Optional filter ``(SpanEvent) -> bool``; events it rejects are
        not recorded (e.g. restrict the trace to one rank pair).
    limit:
        Hard cap on stored events; once reached, further events are
        counted in :attr:`dropped` but not stored.
    exclude:
        ``(layer, name)`` pairs rejected before the event object is
        even built. Use this (not ``predicate``) to drop per-packet
        event types from long runs: a full figure run emits hundreds
        of thousands of them, and the set lookup is ~30x cheaper than
        constructing a SpanEvent and calling a predicate on it.
    """

    def __init__(
        self,
        predicate: Optional[Callable[[SpanEvent], bool]] = None,
        limit: int = 1_000_000,
        exclude=(),
    ) -> None:
        self.predicate = predicate
        self.limit = limit
        self.exclude = frozenset(exclude)
        self.events: List[SpanEvent] = []
        self.dropped = 0

    def wants(self, layer: str, name: str) -> bool:
        """Cheap pre-check for per-packet emit sites: lets the caller
        skip building the event's field kwargs when the type is
        excluded anyway."""
        return (layer, name) not in self.exclude

    def emit(
        self,
        time: float,
        layer: str,
        name: str,
        span: Optional[str] = None,
        **fields,
    ) -> None:
        if (layer, name) in self.exclude:
            return
        event = SpanEvent(time, layer, name, span, fields)
        if self.predicate is not None and not self.predicate(event):
            return
        if len(self.events) >= self.limit:
            self.dropped += 1
            return
        self.events.append(event)

    # -- queries ---------------------------------------------------------

    def __len__(self) -> int:
        return len(self.events)

    def layers(self) -> List[str]:
        """Distinct layers observed, in first-seen order."""
        seen, out = set(), []
        for e in self.events:
            if e.layer not in seen:
                seen.add(e.layer)
                out.append(e.layer)
        return out

    def for_layer(self, layer: str) -> List[SpanEvent]:
        return [e for e in self.events if e.layer == layer]

    def spans(self) -> List[str]:
        """Distinct span ids observed, in first-seen order."""
        seen, out = set(), []
        for e in self.events:
            if e.span is not None and e.span not in seen:
                seen.add(e.span)
                out.append(e.span)
        return out

    def events_for(self, span: str) -> List[SpanEvent]:
        """All events of one message span, in emission order."""
        return [e for e in self.events if e.span == span]

    def by_span(self) -> Dict[str, List[SpanEvent]]:
        out: Dict[str, List[SpanEvent]] = {}
        for e in self.events:
            if e.span is not None:
                out.setdefault(e.span, []).append(e)
        return out

    def to_records(self) -> List[dict]:
        """JSON-ready dicts (used by the exporters)."""
        return [
            {
                "time": e.time,
                "layer": e.layer,
                "name": e.name,
                "span": e.span,
                **e.fields,
            }
            for e in self.events
        ]
