"""Cross-process metric merges for sharded (PDES) runs.

Every PDES shard keeps its own :class:`MetricsRegistry`; after a run
the coordinator folds them into one registry as if a single process had
recorded everything:

* **counters** sum;
* **gauges** take the value with the latest recorded simulation time
  (:attr:`GaugeMetric.t`); unstamped gauges fall back to the last
  shard in merge order, which is deterministic for a fixed shard
  count;
* **histograms** sum counts and totals, widen min/max, and pool the
  retained samples (for :class:`WindowedHistogram`, bucket by bucket).

Counter and count merges are exact. Histogram sums are float additions
in shard order — deterministic for a fixed layout, but the last ulp
can differ *between* layouts, which is why the PDES byte-identity gate
compares scenario-merged outputs (built from order-insensitive
reductions) and not raw telemetry snapshots.
"""

from __future__ import annotations

from typing import Iterable, List

from .registry import (
    CounterMetric,
    GaugeMetric,
    HistogramMetric,
    MetricsRegistry,
)
from .windowed import WindowedHistogram

__all__ = ["merge_registries"]


def _merge_counter(dst: CounterMetric, src: CounterMetric) -> None:
    dst.value += src.value


def _merge_gauge(dst: GaugeMetric, src: GaugeMetric) -> None:
    # Later sim-time wins; an unstamped source (t=None) acts as minus
    # infinity unless the destination is unstamped too, in which case
    # merge order decides (>= keeps the later shard).
    dst_t = dst.t if dst.t is not None else float("-inf")
    src_t = src.t if src.t is not None else float("-inf")
    if src_t >= dst_t:
        dst.value = src.value
        dst.t = src.t


def _merge_histogram(dst: HistogramMetric, src: HistogramMetric) -> None:
    if src.count == 0:
        return
    dst.count += src.count
    dst.total += src.total
    if src.min < dst.min:
        dst.min = src.min
    if src.max > dst.max:
        dst.max = src.max
    dst.samples.extend(src.samples)


def _merge_windowed(dst: WindowedHistogram, src: WindowedHistogram) -> None:
    if src.bucket_s != dst.bucket_s:
        raise ValueError(
            f"cannot merge windowed histogram {src.name!r}: bucket widths "
            f"differ ({src.bucket_s} vs {dst.bucket_s})"
        )
    dst.count += src.count
    dst.total += src.total
    for idx, bucket in src._buckets.items():
        mine = dst._buckets.get(idx)
        if mine is None:
            mine = dst._buckets[idx] = type(bucket)()
        mine.count += bucket.count
        mine.total += bucket.total
        if bucket.min < mine.min:
            mine.min = bucket.min
        if bucket.max > mine.max:
            mine.max = bucket.max
        mine.samples.extend(bucket.samples)
    if src._newest is not None and (
        dst._newest is None or src._newest > dst._newest
    ):
        dst._newest = src._newest


_MERGERS = [
    (WindowedHistogram, _merge_windowed),  # before the plain histogram
    (HistogramMetric, _merge_histogram),
    (CounterMetric, _merge_counter),
    (GaugeMetric, _merge_gauge),
]


def merge_registries(registries: Iterable[MetricsRegistry]) -> MetricsRegistry:
    """Fold per-shard registries into one (see the module docstring).

    The result is for snapshotting and export; its histograms may hold
    more retained samples than their nominal caps, so keep recording
    into the per-shard originals, not the merge.
    """
    merged = MetricsRegistry()
    for registry in registries:
        for name, metric in registry.items():
            for klass, fold in _MERGERS:
                if isinstance(metric, klass):
                    break
            else:
                raise TypeError(
                    f"metric {name!r} has unmergeable type "
                    f"{type(metric).__name__}"
                )
            existing = merged.get(name)
            if existing is None:
                # Fresh instruments keep the destination independent of
                # the sources (merging must not mutate shard state).
                if klass is WindowedHistogram:
                    existing = merged.windowed_histogram(
                        name,
                        bucket_s=metric.bucket_s,
                        n_buckets=metric.n_buckets,
                        max_samples_per_bucket=metric.max_samples_per_bucket,
                    )
                elif klass is HistogramMetric:
                    existing = merged.histogram(
                        name, max_samples=metric.max_samples
                    )
                elif klass is CounterMetric:
                    existing = merged.counter(name)
                else:
                    existing = merged.gauge(name)
            elif not isinstance(existing, klass) or not isinstance(
                metric, type(existing)
            ):
                raise TypeError(
                    f"metric {name!r} registered with conflicting types "
                    f"across shards: {type(existing).__name__} vs "
                    f"{type(metric).__name__}"
                )
            fold(existing, metric)
    return merged
