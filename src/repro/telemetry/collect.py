"""Scrapers: walk live simulation objects into the metrics registry.

The stack already keeps authoritative per-object statistics (interface
byte counts, qdisc drops, TCP retransmissions, broker admissions) as
plain attributes — the cheapest possible hot path. Collection therefore
happens *at snapshot time*: these functions walk a deployment and
publish every statistic under its hierarchical registry name, so a
metrics dump needs no per-packet bookkeeping beyond what the simulator
does anyway.

Dispatch is duck-typed (``collect_any``) to avoid importing the
experiment layer from here.
"""

from __future__ import annotations

from typing import Optional

from .registry import MetricsRegistry

__all__ = [
    "collect_any",
    "collect_deployment",
    "collect_mpichgq",
    "collect_network",
    "collect_tcp_host",
    "collect_mpi_world",
    "collect_broker",
    "collect_broker_service",
    "collect_broker_client",
    "collect_domain",
]


def _set(reg: MetricsRegistry, name: str, value: float) -> None:
    """Publish an absolute count scraped from an authoritative source."""
    metric = reg.counter(name)
    metric.value = float(value)


def _aqm_metrics(reg: MetricsRegistry, base: str, queue) -> None:
    """RED/WRED instrumentation: mark/drop split plus the EWMA gauge."""
    _set(reg, f"{base}.early_drops", queue.early_drops)
    _set(reg, f"{base}.tail_drops", queue.tail_drops)
    _set(reg, f"{base}.ecn_marks", queue.ecn_marks)
    reg.gauge(f"{base}.avg_queue_packets").set(queue.avg)


def _qdisc_metrics(reg: MetricsRegistry, base: str, qdisc) -> None:
    _set(reg, f"{base}.qdisc.drops", getattr(qdisc, "total_drops", 0))
    reg.gauge(f"{base}.qdisc.backlog_bytes").set(qdisc.backlog_bytes)
    reg.gauge(f"{base}.qdisc.backlog_packets").set(len(qdisc))
    # DiffServ priority qdisc: per-class queues and the EF policer.
    for klass in ("ef", "af", "be"):
        queue = getattr(qdisc, f"{klass}_queue", None)
        if queue is not None:
            _set(reg, f"{base}.qdisc.{klass}.drops", queue.drops)
            reg.gauge(f"{base}.qdisc.{klass}.backlog_bytes").set(
                queue.backlog_bytes
            )
    # AQM DRR qdisc: per-band children, with RED/WRED detail.
    band_children = getattr(qdisc, "bands", None)
    if callable(band_children):
        band_children = None
    if band_children:
        for i, child in enumerate(band_children):
            cbase = f"{base}.qdisc.band{i}"
            _set(reg, f"{cbase}.drops", child.total_drops)
            reg.gauge(f"{cbase}.backlog_bytes").set(child.backlog_bytes)
            if hasattr(child, "early_drops"):
                _aqm_metrics(reg, cbase, child)
        if hasattr(qdisc, "filter_drops"):
            _set(reg, f"{base}.policer.drops", qdisc.filter_drops)
    if hasattr(qdisc, "ef_policer_drops"):
        _set(reg, f"{base}.policer.drops", qdisc.ef_policer_drops)
    if hasattr(qdisc, "early_drops"):
        _aqm_metrics(reg, f"{base}.qdisc", qdisc)


def collect_network(
    reg: MetricsRegistry, network, prefix: str = ""
) -> None:
    """Every node: per-interface counters, qdisc state, routing drops."""
    for node in network.nodes.values():
        node_base = f"{prefix}net.{node.name}"
        _set(reg, f"{node_base}.ttl_drops", node.ttl_drops)
        _set(reg, f"{node_base}.no_route_drops", node.no_route_drops)
        for iface in node.interfaces:
            base = f"{node_base}.{iface.name}"
            _set(reg, f"{base}.tx_packets", iface.tx_packets)
            _set(reg, f"{base}.tx_bytes", iface.tx_bytes)
            _set(reg, f"{base}.rx_packets", iface.rx_packets)
            _set(reg, f"{base}.rx_bytes", iface.rx_bytes)
            _set(reg, f"{base}.ingress_drops", iface.ingress_drops)
            _set(reg, f"{base}.link_down_drops", iface.link_down_drops)
            _set(reg, f"{base}.impairment_drops", iface.impairment_drops)
            _qdisc_metrics(reg, base, iface.qdisc)


def collect_tcp_host(reg: MetricsRegistry, host, prefix: str = "") -> None:
    """Per-flow TCP statistics for every live connection on ``host``."""
    from ..net.packet import PROTO_TCP

    layer = host.protocols.get(PROTO_TCP)
    if layer is None or not hasattr(layer, "_connections"):
        return
    _set(reg, f"{prefix}tcp.{host.name}.rx_segments", layer.rx_segments)
    _set(reg, f"{prefix}tcp.{host.name}.refused", layer.refused)
    for conn in list(layer._connections.values()):
        flow = f"{conn.local_port}-{conn.remote_addr}-{conn.remote_port}"
        base = f"{prefix}tcp.{host.name}.{flow}"
        _set(reg, f"{base}.segments_sent", conn.segments_sent)
        _set(reg, f"{base}.segments_received", conn.segments_received)
        _set(reg, f"{base}.retransmits", conn.retransmissions)
        _set(reg, f"{base}.fast_retransmits", conn.fast_retransmits)
        _set(reg, f"{base}.timeouts", conn.timeouts)
        _set(reg, f"{base}.acked_bytes", conn.acked_counter.total)
        _set(reg, f"{base}.delivered_bytes", conn.delivered_counter.total)
        reg.gauge(f"{base}.cwnd_bytes").set(conn.cwnd)
        if getattr(conn, "ecn_enabled", False):
            _set(reg, f"{base}.ecn_ce_received", conn.ecn_ce_received)
            _set(reg, f"{base}.ecn_responses", conn.ecn_responses)


def collect_mpi_world(reg: MetricsRegistry, world, prefix: str = "") -> None:
    for proc in world.procs:
        base = f"{prefix}mpi.rank{proc.rank}"
        _set(reg, f"{base}.messages_sent", proc.messages_sent)
        _set(reg, f"{base}.messages_received", proc.messages_received)
        _set(reg, f"{base}.bytes_sent", proc.bytes_sent)
        _set(reg, f"{base}.bytes_received", proc.bytes_received)


def collect_broker(reg: MetricsRegistry, broker, prefix: str = "") -> None:
    base = f"{prefix}gara.broker"
    _set(reg, f"{base}.admissions", broker.admissions)
    _set(reg, f"{base}.rejections", broker.rejections)
    _set(reg, f"{base}.releases", broker.releases)
    rbase = f"{prefix}gara.recovery"
    _set(reg, f"{rbase}.broker_crashes", broker.crashes)
    _set(reg, f"{rbase}.broker_restarts", broker.restarts)
    _set(reg, f"{rbase}.journal_replays", broker.journal_replays)
    _set(reg, f"{rbase}.orphans_collected", broker.orphans_collected)
    _set(reg, f"{rbase}.orphan_paths_collected", broker.orphan_paths_collected)
    _set(reg, f"{rbase}.stale_releases", broker.stale_releases)
    _set(reg, f"{rbase}.deaf_releases", broker.deaf_releases)
    _set(reg, f"{rbase}.reregistrations", broker.reregistrations)
    if broker.journal is not None:
        _set(reg, f"{rbase}.journal_records", len(broker.journal))
    for table in broker._tables.values():
        tbase = f"{prefix}gara.slots.{table.name or id(table)}"
        _set(reg, f"{tbase}.admitted", table.admitted_total)
        _set(reg, f"{tbase}.rejected", table.rejected_total)
        reg.gauge(f"{tbase}.capacity").set(table.capacity)
        reg.gauge(f"{tbase}.entries").set(len(table))


def collect_broker_service(
    reg: MetricsRegistry, service, prefix: str = ""
) -> None:
    """Wire-service counters: admission traffic, load shedding,
    crash/recovery history, journal compaction — plus the underlying
    broker via :func:`collect_broker`."""
    base = f"{prefix}broker_service"
    for name, value in service.status_counters().items():
        if name == "sim_now":
            reg.gauge(f"{base}.sim_now").set(value)
        elif name in ("alive", "queue_depth", "connections",
                      "live_reservations"):
            reg.gauge(f"{base}.{name}").set(value)
        else:
            _set(reg, f"{base}.{name}", value)
    detector = getattr(service, "detector", None)
    if detector is not None:
        _set(reg, f"{base}.detector.suspicions", detector.suspicions)
        _set(reg, f"{base}.detector.evictions", detector.evictions)
        _set(
            reg, f"{base}.detector.stale_heartbeats",
            detector.stale_heartbeats,
        )
        reg.gauge(f"{base}.detector.watches").set(len(detector.watches))
    collect_broker(reg, service.broker, prefix=prefix)


def collect_broker_client(
    reg: MetricsRegistry, client, prefix: str = ""
) -> None:
    """Per-client view of the wire service: retry/backoff pressure,
    degradations to best-effort, and idempotent replays observed."""
    base = f"{prefix}broker_client.{client.name}"
    _set(reg, f"{base}.requests", client.requests_total)
    _set(reg, f"{base}.replies", client.replies_total)
    _set(reg, f"{base}.retries", client.retries)
    _set(reg, f"{base}.timeouts", client.timeouts)
    _set(reg, f"{base}.conn_failures", client.conn_failures)
    _set(reg, f"{base}.busy_seen", client.busy_seen)
    _set(reg, f"{base}.retry_seen", client.retry_seen)
    _set(reg, f"{base}.degradations", client.degradations)
    _set(reg, f"{base}.upgrades", client.upgrades)
    _set(reg, f"{base}.idempotent_acks", client.idempotent_acks)
    _set(reg, f"{base}.heartbeats_sent", client.heartbeats_sent)
    _set(reg, f"{base}.stale_epochs", client.stale_epochs)


def collect_domain(reg: MetricsRegistry, domain, prefix: str = "") -> None:
    """Edge conditioners: drops plus per-rule conforming/exceeding."""
    for conditioner in domain.conditioners.values():
        base = f"{prefix}diffserv.{conditioner.name}"
        _set(reg, f"{base}.policer.drops", conditioner.policed_drops)
        for i, (spec, rule) in enumerate(conditioner.classifier):
            if not hasattr(rule, "conforming_bytes"):
                continue
            rbase = f"{base}.rule{i}"
            dscp = getattr(rule, "dscp", None)
            if dscp is None:  # three-color marker: report its green stamp
                dscp = rule.dscp_by_color["green"]
            reg.gauge(f"{rbase}.dscp").set(dscp)
            _set(reg, f"{rbase}.conforming_packets", rule.conforming_packets)
            _set(reg, f"{rbase}.conforming_bytes", rule.conforming_bytes)
            _set(reg, f"{rbase}.exceeding_packets", rule.exceeding_packets)
            _set(reg, f"{rbase}.exceeding_bytes", rule.exceeding_bytes)
            if hasattr(rule, "yellow_packets"):
                _set(reg, f"{rbase}.yellow_packets", rule.yellow_packets)
                _set(reg, f"{rbase}.yellow_bytes", rule.yellow_bytes)


def collect_mpichgq(reg: MetricsRegistry, gq, prefix: str = "") -> None:
    collect_network(reg, gq.network, prefix=prefix)
    collect_domain(reg, gq.domain, prefix=prefix)
    collect_broker(reg, gq.broker, prefix=prefix)
    collect_mpi_world(reg, gq.world, prefix=prefix)
    for proc in gq.world.procs:
        collect_tcp_host(reg, proc.host, prefix=prefix)
    rbase = f"{prefix}gara.recovery"
    detector = getattr(gq, "detector", None)
    if detector is not None:
        _set(reg, f"{rbase}.suspicions", detector.suspicions)
        _set(reg, f"{rbase}.recoveries", detector.recoveries)
    coordinator = getattr(gq.gara, "coordinator", None)
    if coordinator is not None:
        cbase = f"{prefix}gara.twophase"
        _set(reg, f"{cbase}.transactions", coordinator.transactions)
        _set(reg, f"{cbase}.committed", coordinator.committed)
        _set(reg, f"{cbase}.aborted", coordinator.aborted)
        _set(reg, f"{cbase}.prepare_timeouts", coordinator.prepare_timeouts)
        _set(reg, f"{cbase}.commit_timeouts", coordinator.commit_timeouts)
        _set(reg, f"{cbase}.idempotent_replays", coordinator.idempotent_replays)
    reg.gauge(f"{prefix}sim.events_processed").set(gq.sim.events_processed)
    reg.gauge(f"{prefix}sim.now").set(gq.sim.now)


def collect_deployment(reg: MetricsRegistry, dep, prefix: str = "") -> None:
    collect_mpichgq(reg, dep.gq, prefix=prefix)
    contention = getattr(dep, "contention", None)
    if contention is not None:
        _set(
            reg,
            f"{prefix}apps.contention.sent_bytes",
            contention.sent.total,
        )


def collect_any(reg: MetricsRegistry, obj, prefix: str = "") -> None:
    """Duck-typed dispatch over the object shapes ``observe`` accepts."""
    if hasattr(obj, "gq") and hasattr(obj, "testbed"):  # GarnetDeployment
        collect_deployment(reg, obj, prefix=prefix)
    elif hasattr(obj, "status_counters") and hasattr(obj, "broker"):
        collect_broker_service(reg, obj, prefix=prefix)  # BrokerService
    elif hasattr(obj, "idempotent_acks") and hasattr(obj, "new_key"):
        collect_broker_client(reg, obj, prefix=prefix)  # BrokerClient
    elif hasattr(obj, "world") and hasattr(obj, "broker"):  # MpichGQ
        collect_mpichgq(reg, obj, prefix=prefix)
    elif hasattr(obj, "nodes"):  # Network
        collect_network(reg, obj, prefix=prefix)
        for node in obj.nodes.values():
            if hasattr(node, "protocols"):
                collect_tcp_host(reg, node, prefix=prefix)
    elif hasattr(obj, "interfaces") and hasattr(obj, "protocols"):  # Host
        collect_tcp_host(reg, obj, prefix=prefix)
    else:
        raise TypeError(f"don't know how to collect metrics from {obj!r}")
