"""The metrics registry: counters, gauges, and histograms.

Metrics live in one flat namespace with hierarchical dotted names
(``tcp.conn3.retransmits``, ``diffserv.edge1.policer.drops``,
``gara.broker.admissions``). A name maps to exactly one metric of one
type for the registry's lifetime: re-requesting the same name with the
same type returns the existing instrument, while re-requesting it with
a different type raises — a silent type change would corrupt whatever
the first writer recorded.

The instruments are deliberately tiny (plain attribute updates, no
locks, no label machinery) because the hot paths that touch them are
the simulator's packet loops.
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Optional, Tuple

import numpy as np

from .windowed import WindowedHistogram, _stable_seed

__all__ = [
    "MetricsRegistry",
    "CounterMetric",
    "GaugeMetric",
    "HistogramMetric",
    "WindowedHistogram",
]


class Metric:
    """Base class: a named instrument owned by one registry."""

    kind = "metric"
    __slots__ = ("name",)

    def __init__(self, name: str) -> None:
        self.name = name

    def snapshot(self) -> dict:
        raise NotImplementedError

    def __repr__(self) -> str:
        return f"<{type(self).__name__} {self.name!r}>"


class CounterMetric(Metric):
    """A monotonically increasing count (events, bytes, drops)."""

    kind = "counter"
    __slots__ = ("value",)

    def __init__(self, name: str) -> None:
        super().__init__(name)
        self.value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise ValueError("counters only go up; use a gauge")
        self.value += amount

    def snapshot(self) -> dict:
        return {"type": self.kind, "value": self.value}


class GaugeMetric(Metric):
    """A point-in-time value that may move either way (queue depth,
    slot-table utilisation, scraped interface byte totals)."""

    kind = "gauge"
    __slots__ = ("value", "t")

    def __init__(self, name: str) -> None:
        super().__init__(name)
        self.value = 0.0
        #: Simulation time of the last write, when the writer supplies
        #: it. Cross-process merges use it for last-writer-wins
        #: (:mod:`repro.telemetry.merge`); unstamped gauges merge by
        #: shard order instead.
        self.t: Optional[float] = None

    def set(self, value: float, t: Optional[float] = None) -> None:
        self.value = float(value)
        if t is not None:
            self.t = t

    def add(self, delta: float, t: Optional[float] = None) -> None:
        self.value += delta
        if t is not None:
            self.t = t

    def snapshot(self) -> dict:
        out = {"type": self.kind, "value": self.value}
        if self.t is not None:
            out["t"] = self.t
        return out


class HistogramMetric(Metric):
    """A distribution of observed values (latencies, message sizes).

    Observations are kept verbatim up to ``max_samples``; past the cap
    the sample buffer becomes a uniform reservoir (Algorithm R), so
    percentiles keep tracking the *whole* run instead of freezing on
    its first ``max_samples`` observations. Count/sum/min/max stay
    exact regardless. The reservoir draws from a private generator
    seeded from the metric's name — never from the simulation RNG,
    because recording telemetry must not perturb the simulated
    system's random stream.
    """

    kind = "histogram"
    __slots__ = (
        "samples", "count", "total", "min", "max", "max_samples", "_rng",
    )

    def __init__(self, name: str, max_samples: int = 100_000) -> None:
        super().__init__(name)
        self.samples: List[float] = []
        self.count = 0
        self.total = 0.0
        self.min = float("inf")
        self.max = float("-inf")
        self.max_samples = max_samples
        self._rng = None

    def observe(self, value: float) -> None:
        self.count += 1
        self.total += value
        if value < self.min:
            self.min = value
        if value > self.max:
            self.max = value
        if self.count <= self.max_samples:
            self.samples.append(value)
        else:
            if self._rng is None:
                self._rng = np.random.default_rng(_stable_seed(self.name, 0))
            j = int(self._rng.integers(self.count))
            if j < self.max_samples:
                self.samples[j] = value

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else float("nan")

    def percentile(self, p: float) -> float:
        """The ``p``-th percentile (0-100) of the recorded samples."""
        if not 0 <= p <= 100:
            raise ValueError("percentile must be in [0, 100]")
        if not self.samples:
            return float("nan")
        return float(np.percentile(np.asarray(self.samples), p))

    def snapshot(self) -> dict:
        out = {
            "type": self.kind,
            "count": self.count,
            "sum": self.total,
            "mean": self.mean if self.count else None,
            "min": self.min if self.count else None,
            "max": self.max if self.count else None,
        }
        if self.samples:
            qs = np.percentile(np.asarray(self.samples), [50, 90, 99])
            out["p50"], out["p90"], out["p99"] = (float(q) for q in qs)
        return out


class MetricsRegistry:
    """All instruments of one telemetry session, by dotted name."""

    def __init__(self) -> None:
        self._metrics: Dict[str, Metric] = {}

    def _get(self, name: str, klass, **kwargs) -> Metric:
        if not name:
            raise ValueError("metric name must be non-empty")
        metric = self._metrics.get(name)
        if metric is None:
            metric = klass(name, **kwargs)
            self._metrics[name] = metric
            return metric
        if not isinstance(metric, klass):
            raise TypeError(
                f"metric {name!r} already registered as {metric.kind}, "
                f"requested {klass.kind}"
            )
        return metric

    def counter(self, name: str) -> CounterMetric:
        return self._get(name, CounterMetric)

    def gauge(self, name: str) -> GaugeMetric:
        return self._get(name, GaugeMetric)

    def histogram(self, name: str, max_samples: int = 100_000) -> HistogramMetric:
        return self._get(name, HistogramMetric, max_samples=max_samples)

    def windowed_histogram(self, name: str, **kwargs) -> WindowedHistogram:
        return self._get(name, WindowedHistogram, **kwargs)

    def get(self, name: str) -> Optional[Metric]:
        return self._metrics.get(name)

    def __len__(self) -> int:
        return len(self._metrics)

    def __contains__(self, name: str) -> bool:
        return name in self._metrics

    def __iter__(self) -> Iterator[Metric]:
        return iter(self._metrics.values())

    def names(self, prefix: str = "") -> List[str]:
        """Sorted metric names, optionally limited to a dotted prefix."""
        if not prefix:
            return sorted(self._metrics)
        dotted = prefix if prefix.endswith(".") else prefix + "."
        return sorted(
            n for n in self._metrics if n == prefix or n.startswith(dotted)
        )

    def snapshot(self) -> Dict[str, dict]:
        """``{name: metric snapshot}`` for every instrument, sorted."""
        return {name: self._metrics[name].snapshot() for name in sorted(self._metrics)}

    def items(self) -> List[Tuple[str, Metric]]:
        return sorted(self._metrics.items())
