"""Exporters: JSON (full payload) and CSV (flat metrics table).

The JSON dump is the machine-readable companion to every figure run:
``{"meta": ..., "metrics": {...}, "spans": [...], "profile": {...}}``.
The CSV flattens the metrics only (one instrument per row), for quick
spreadsheet/pandas triage of a batch of runs.
"""

from __future__ import annotations

import csv
import io
import json
from pathlib import Path
from typing import Optional

from .hub import Telemetry

__all__ = ["metrics_payload", "export_json", "export_csv", "metrics_csv_text"]


def metrics_payload(telemetry: Telemetry, meta: Optional[dict] = None) -> dict:
    """The full JSON-ready dump, with optional run metadata attached."""
    payload = telemetry.snapshot()
    if meta:
        payload = {"meta": dict(meta), **payload}
    return payload


def export_json(
    telemetry: Telemetry, path, meta: Optional[dict] = None
) -> Path:
    """Write the full payload to ``path``; returns the path written."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps(metrics_payload(telemetry, meta), indent=2))
    return path


_CSV_FIELDS = [
    "name", "type", "value", "count", "sum", "mean",
    "min", "max", "p50", "p90", "p99",
]


def metrics_csv_text(telemetry: Telemetry) -> str:
    """The flat metrics table as CSV text (collects first)."""
    telemetry.collect()
    buf = io.StringIO()
    writer = csv.DictWriter(buf, fieldnames=_CSV_FIELDS, extrasaction="ignore")
    writer.writeheader()
    for name, snap in telemetry.registry.snapshot().items():
        writer.writerow({"name": name, **snap})
    return buf.getvalue()


def export_csv(telemetry: Telemetry, path) -> Path:
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(metrics_csv_text(telemetry))
    return path
