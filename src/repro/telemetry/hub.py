"""The telemetry hub: one session's registry, trace, and profilers.

Layers reach telemetry through the simulator they already hold
(``sim.telemetry``), so the disabled case costs one attribute load and
a ``None`` check — the hot-path contract every instrumentation site in
the stack follows::

    tel = self.sim.telemetry
    if tel is not None and tel.trace is not None:
        tel.trace.emit(self.sim.now, "net", "tx", ...)

A process-wide *active* telemetry can be installed so that deployment
factories (``repro.experiments.common.build_deployment``) pick it up
without threading a parameter through every experiment::

    tel = Telemetry(trace=True, profile=True)
    install(tel)
    try:
        ...build deployments, run simulations...
        payload = tel.snapshot()
    finally:
        uninstall()
"""

from __future__ import annotations

from typing import Any, List, Optional, Tuple

from .profiler import SimProfiler
from .registry import (
    CounterMetric,
    GaugeMetric,
    HistogramMetric,
    MetricsRegistry,
)
from .spans import FlowTrace

__all__ = ["Telemetry", "install", "uninstall", "active"]


class Telemetry:
    """One telemetry session.

    Parameters
    ----------
    trace:
        ``True`` for an unrestricted :class:`FlowTrace`, a ready-made
        ``FlowTrace`` instance, or ``False``/``None`` for no tracing.
    profile:
        When True, every attached simulator gets a
        :class:`SimProfiler` hooked into its event loop.
    """

    def __init__(self, trace: Any = False, profile: bool = False) -> None:
        self.registry = MetricsRegistry()
        if trace is True:
            trace = FlowTrace()
        # NB: explicit identity checks — an empty FlowTrace has len() 0
        # and would be discarded by a truthiness test.
        self.trace: Optional[FlowTrace] = (
            trace if isinstance(trace, FlowTrace) else None
        )
        self.profile = profile
        self._sims: List[Any] = []
        self._profilers: List[SimProfiler] = []
        self._observed: List[Tuple[str, Any]] = []

    # -- simulator wiring ------------------------------------------------

    def attach(self, sim) -> None:
        """Make ``sim``'s instrumented layers report here."""
        if sim in self._sims:
            return
        sim.telemetry = self
        self._sims.append(sim)
        if self.profile:
            profiler = SimProfiler()
            sim._profiler = profiler
            self._profilers.append(profiler)

    def detach(self, sim) -> None:
        if sim not in self._sims:
            return
        self._sims.remove(sim)
        if sim.telemetry is self:
            sim.telemetry = None
        profiler = getattr(sim, "_profiler", None)
        if profiler is not None and profiler in self._profilers:
            profiler.stop()
            sim._profiler = None

    def detach_all(self) -> None:
        for sim in list(self._sims):
            self.detach(sim)

    # -- instrument shortcuts --------------------------------------------

    def counter(self, name: str) -> CounterMetric:
        return self.registry.counter(name)

    def gauge(self, name: str) -> GaugeMetric:
        return self.registry.gauge(name)

    def histogram(self, name: str) -> HistogramMetric:
        return self.registry.histogram(name)

    # -- scrape targets --------------------------------------------------

    def observe(self, obj: Any, prefix: Optional[str] = None) -> None:
        """Register ``obj`` (a deployment, MpichGQ, network, or host)
        to be scraped into the registry at snapshot time. The first
        observed object owns the bare namespace; later ones are
        prefixed ``dep1.``, ``dep2.``, ... to keep names collision-free
        across multi-deployment experiments."""
        if prefix is None:
            prefix = "" if not self._observed else f"dep{len(self._observed)}."
        self._observed.append((prefix, obj))

    def collect(self) -> None:
        """Scrape every observed object into the registry now."""
        from .collect import collect_any  # late import: collect uses nothing here

        for prefix, obj in self._observed:
            collect_any(self.registry, obj, prefix=prefix)

    # -- reporting -------------------------------------------------------

    def snapshot(self) -> dict:
        """Scrape observed objects, then return the full JSON-ready
        payload: metrics, span events (if tracing), and profiles."""
        self.collect()
        payload: dict = {"metrics": self.registry.snapshot()}
        if self.trace is not None:
            payload["spans"] = self.trace.to_records()
            payload["span_count"] = len(self.trace)
            payload["spans_dropped"] = self.trace.dropped
        if self._profilers:
            profiles = [p.snapshot() for p in self._profilers]
            payload["profile"] = profiles[0] if len(profiles) == 1 else profiles
        pools = [
            sim.packet_pool.stats()
            for sim in self._sims
            if getattr(sim, "packet_pool", None) is not None
        ]
        if pools:
            payload["packet_pool"] = pools[0] if len(pools) == 1 else pools
        return payload


#: The process-wide active session (None when telemetry is off).
_ACTIVE: Optional[Telemetry] = None


def install(telemetry: Telemetry) -> Telemetry:
    """Make ``telemetry`` the active session deployment factories join."""
    global _ACTIVE
    _ACTIVE = telemetry
    return telemetry


def uninstall() -> None:
    """Deactivate (and detach) the active session, if any."""
    global _ACTIVE
    if _ACTIVE is not None:
        _ACTIVE.detach_all()
    _ACTIVE = None


def active() -> Optional[Telemetry]:
    """The active session, or None when telemetry is disabled."""
    return _ACTIVE
