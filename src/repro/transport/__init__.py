"""Transport protocols over the simulated network: TCP and UDP."""

from .tcp import (
    ConnectionClosed,
    ConnectionRefused,
    MSS_BYTES,
    TcpConfig,
    TcpConnection,
    TcpLayer,
    TcpListener,
)
from .udp import MTU_BYTES, UDP_MAX_PAYLOAD, UdpLayer, UdpSocket

__all__ = [
    "ConnectionClosed",
    "ConnectionRefused",
    "MSS_BYTES",
    "MTU_BYTES",
    "TcpConfig",
    "TcpConnection",
    "TcpLayer",
    "TcpListener",
    "UDP_MAX_PAYLOAD",
    "UdpLayer",
    "UdpSocket",
]
