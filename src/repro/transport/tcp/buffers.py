"""Send/receive buffer bookkeeping for the byte-counting TCP model.

No payload bytes exist; both buffers track absolute byte *offsets*
within the connection's stream. Application-level message boundaries
("markers") ride with the stream: the sender records the offset at
which each written message ends, segments carry the markers falling in
their range, and the receiver surfaces a marker's object once the
stream is in-order past its end offset. This is how the MPI layer gets
message framing over the simulated byte stream.
"""

from __future__ import annotations

import bisect
from typing import Any, Dict, List, Optional, Tuple

__all__ = ["SendBuffer", "ReceiveBuffer"]


class SendBuffer:
    """Sender-side stream bookkeeping.

    ``written`` is the absolute end of application data; ``una`` (set
    by the connection as ACKs arrive) is the lowest unacknowledged
    offset. Occupancy is ``written - una``.
    """

    def __init__(self, capacity: int) -> None:
        if capacity <= 0:
            raise ValueError("capacity must be positive")
        self.capacity = capacity
        self.written = 0
        self.una = 0
        # Marker end-offsets (sorted) and their payloads.
        self._marker_ends: List[int] = []
        self._marker_objs: List[Any] = []

    @property
    def occupancy(self) -> int:
        return self.written - self.una

    def space_for(self, nbytes: int) -> bool:
        return self.occupancy + nbytes <= self.capacity

    def write(self, nbytes: int, marker: Any = None) -> None:
        """Append ``nbytes`` to the stream, optionally ending a message."""
        if nbytes <= 0:
            raise ValueError("write size must be positive")
        self.written += nbytes
        if marker is not None:
            self._marker_ends.append(self.written)
            self._marker_objs.append(marker)

    def markers_in(self, start: int, end: int) -> List[Tuple[int, Any]]:
        """Markers with end offset in ``(start, end]`` (segment range)."""
        lo = bisect.bisect_right(self._marker_ends, start)
        hi = bisect.bisect_right(self._marker_ends, end)
        return [
            (self._marker_ends[i], self._marker_objs[i]) for i in range(lo, hi)
        ]

    def ack_to(self, offset: int) -> int:
        """Advance ``una``; returns newly-acknowledged byte count.

        Markers wholly below ``una`` can no longer be retransmitted and
        are pruned.
        """
        if offset <= self.una:
            return 0
        if offset > self.written:
            raise ValueError(f"ack {offset} beyond written {self.written}")
        delta = offset - self.una
        self.una = offset
        keep = bisect.bisect_right(self._marker_ends, offset)
        if keep:
            del self._marker_ends[:keep]
            del self._marker_objs[:keep]
        return delta


class ReceiveBuffer:
    """Receiver-side reassembly and flow-control bookkeeping.

    Out-of-order segments are held as merged ``(start, end)`` intervals;
    ``rcv_nxt`` advances when arrivals close the head gap. The
    advertised window is ``capacity`` minus unread in-order data.
    """

    def __init__(self, capacity: int) -> None:
        if capacity <= 0:
            raise ValueError("capacity must be positive")
        self.capacity = capacity
        self.rcv_nxt = 0  # next expected in-order offset
        self.read_offset = 0  # consumed by the application
        self._ooo: List[Tuple[int, int]] = []  # disjoint, sorted
        self._markers: Dict[int, Any] = {}  # end offset -> object
        self._marker_order: List[int] = []  # sorted pending marker ends
        self._object_start = 0  # stream offset where the next message began
        self.duplicate_segments = 0

    # -- flow control ----------------------------------------------------

    @property
    def available(self) -> int:
        """In-order bytes not yet consumed by the application."""
        return self.rcv_nxt - self.read_offset

    @property
    def window(self) -> int:
        """Advertised receive window in bytes."""
        return max(0, self.capacity - self.available)

    # -- reassembly --------------------------------------------------------

    def on_segment(
        self, seq: int, length: int, markers: Optional[List[Tuple[int, Any]]] = None
    ) -> int:
        """Account an arriving data segment ``[seq, seq+length)``.

        Returns the number of bytes by which ``rcv_nxt`` advanced.
        """
        if length <= 0:
            return 0
        end = seq + length
        for m_end, obj in markers or ():
            if m_end not in self._markers and m_end > self.read_offset:
                self._markers[m_end] = obj
                bisect.insort(self._marker_order, m_end)
        if end <= self.rcv_nxt:
            self.duplicate_segments += 1
            return 0
        seq = max(seq, self.rcv_nxt)
        self._insert_interval(seq, end)
        old = self.rcv_nxt
        # Pull contiguous intervals off the head.
        while self._ooo and self._ooo[0][0] <= self.rcv_nxt:
            s, e = self._ooo.pop(0)
            if e > self.rcv_nxt:
                self.rcv_nxt = e
        return self.rcv_nxt - old

    def _insert_interval(self, start: int, end: int) -> None:
        intervals = self._ooo
        i = bisect.bisect_left(intervals, (start, start))
        # Merge with predecessor if overlapping/adjacent.
        if i > 0 and intervals[i - 1][1] >= start:
            i -= 1
            start = intervals[i][0]
            end = max(end, intervals[i][1])
            del intervals[i]
        # Merge successors.
        while i < len(intervals) and intervals[i][0] <= end:
            end = max(end, intervals[i][1])
            del intervals[i]
        intervals.insert(i, (start, end))

    @property
    def sack_intervals(self) -> List[Tuple[int, int]]:
        """Out-of-order intervals currently held (diagnostic)."""
        return list(self._ooo)

    # -- application reads -------------------------------------------------

    def read_bytes(self, max_bytes: int) -> int:
        """Consume up to ``max_bytes`` of in-order data; returns count.

        Byte-mode reads discard any markers they pass.
        """
        n = min(max_bytes, self.available)
        if n <= 0:
            return 0
        self.read_offset += n
        self._object_start = self.read_offset
        while self._marker_order and self._marker_order[0] <= self.read_offset:
            end = self._marker_order.pop(0)
            del self._markers[end]
        return n

    def drain_for_object(self) -> int:
        """Move in-order bytes of a partially-arrived message out of the
        flow-control window (into "application memory").

        A waiting whole-message read must not leave bytes in the TCP
        receive window — a message larger than ``capacity`` would
        deadlock behind a zero window otherwise (real MPI drains the
        socket into its own buffers the same way). Returns the byte
        count drained.
        """
        if self.next_marker_ready():
            return 0  # read_object() will consume these bytes instead
        drained = self.rcv_nxt - self.read_offset
        self.read_offset = self.rcv_nxt
        return drained

    def next_marker_ready(self) -> bool:
        """True if a whole message is in order and unconsumed."""
        return bool(self._marker_order) and self._marker_order[0] <= self.rcv_nxt

    def read_object(self) -> Tuple[int, Any]:
        """Consume bytes through the next marker; returns ``(nbytes, obj)``."""
        if not self.next_marker_ready():
            raise RuntimeError("no complete message available")
        end = self._marker_order.pop(0)
        obj = self._markers.pop(end)
        nbytes = end - self._object_start
        self.read_offset = max(self.read_offset, end)
        self._object_start = end
        return nbytes, obj
