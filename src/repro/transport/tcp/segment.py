"""TCP segment descriptors (carried as packet payloads)."""

from __future__ import annotations

from typing import Any, List, Optional, Tuple

__all__ = [
    "TcpSegment", "SYN", "ACK", "FIN", "FINACK", "PROBE", "ECE", "CWR",
    "flag_names",
]

SYN = 1
ACK = 2
FIN = 4
#: Acknowledges a FIN specifically (stands in for sequence-space FIN handling).
FINACK = 8
#: Zero-window persist probe.
PROBE = 16
#: ECN-Echo (RFC 3168): on SYN/SYN-ACK it negotiates ECN capability;
#: afterwards the receiver sets it on ACKs to report a CE mark.
ECE = 32
#: Congestion Window Reduced (RFC 3168): the sender's receipt for ECE.
CWR = 64

_FLAG_NAMES = [
    (SYN, "SYN"), (ACK, "ACK"), (FIN, "FIN"), (FINACK, "FINACK"),
    (PROBE, "PROBE"), (ECE, "ECE"), (CWR, "CWR"),
]


def flag_names(flags: int) -> str:
    return "|".join(name for bit, name in _FLAG_NAMES if flags & bit) or "none"


class TcpSegment:
    """One TCP segment.

    ``seq`` is the absolute stream offset of the first payload byte;
    ``length`` the payload byte count (0 for pure ACKs/control).
    ``markers`` carries application message boundaries that fall inside
    this segment's range (see :mod:`repro.transport.tcp.buffers`).
    """

    __slots__ = ("seq", "ack", "flags", "wnd", "length", "markers")

    def __init__(
        self,
        seq: int,
        ack: int,
        flags: int,
        wnd: int,
        length: int = 0,
        markers: Optional[List[Tuple[int, Any]]] = None,
    ) -> None:
        self.seq = seq
        self.ack = ack
        self.flags = flags
        self.wnd = wnd
        self.length = length
        self.markers = markers

    def __repr__(self) -> str:
        return (
            f"<TcpSegment {flag_names(self.flags)} seq={self.seq} "
            f"ack={self.ack} len={self.length} wnd={self.wnd}>"
        )
