"""TCP tuning knobs.

Defaults reflect a well-tuned circa-2000 stack; §5.5 of the paper shows
how badly mis-sized socket buffers hurt, so both buffer sizes are
first-class parameters (and exercised by the socket-buffer ablation
benchmark).
"""

from __future__ import annotations

from dataclasses import dataclass

from ...net.packet import IP_HEADER_BYTES, TCP_HEADER_BYTES

__all__ = ["TcpConfig", "MSS_BYTES", "SEGMENT_OVERHEAD_BYTES"]

#: Maximum segment size (payload bytes) for an Ethernet-style 1500B MTU.
MSS_BYTES = 1500 - IP_HEADER_BYTES - TCP_HEADER_BYTES
#: Per-segment wire overhead.
SEGMENT_OVERHEAD_BYTES = IP_HEADER_BYTES + TCP_HEADER_BYTES


@dataclass
class TcpConfig:
    """Per-connection TCP parameters."""

    #: Maximum segment size in payload bytes.
    mss: int = MSS_BYTES
    #: Send-buffer capacity in bytes (blocking writes above this).
    sndbuf: int = 256 * 1024
    #: Receive-buffer capacity in bytes (bounds the advertised window).
    rcvbuf: int = 256 * 1024
    #: Initial congestion window, in segments (RFC 2581 allows 2).
    initial_cwnd_segments: int = 2
    #: Initial slow-start threshold in bytes ("infinite" per RFC 5681).
    initial_ssthresh: int = 1 << 30
    #: Delayed ACKs: ack every 2nd segment or after ``delack_timeout``.
    delayed_ack: bool = True
    delack_timeout: float = 0.040
    #: Retransmission-timer bounds (seconds).
    min_rto: float = 0.2
    max_rto: float = 60.0
    #: Nagle's algorithm (off by default: message-passing traffic).
    nagle: bool = False
    #: DiffServ codepoint stamped on transmitted packets.
    dscp: int = 0
    #: Offer/accept ECN (RFC 3168). Effective only when both ends set
    #: it (negotiated at the handshake); data segments then go out
    #: ECT(0) and AQM marks CE instead of dropping.
    ecn: bool = False
    #: How the sender reacts to ECN congestion signals. "rfc3168"
    #: halves cwnd once per window on any ECE. "dctcp" (RFC 8257)
    #: tracks the per-window fraction of CE-marked bytes and scales
    #: the reduction — cwnd *= (1 - alpha/2) — so a shallow-marking
    #: AQM (CoDel/PIE/DualPI2 step) modulates the rate smoothly; data
    #: segments go out ECT(1) (the L4S identifier, so DualPI2 steers
    #: them to the low-latency queue) and the receiver echoes the CE
    #: state of each data segment rather than latching ECE.
    #: Requires ``ecn=True``.
    ecn_response: str = "rfc3168"
    #: Loss recovery: "newreno" (partial ACKs retransmit the next hole)
    #: or "reno" (any new ACK ends recovery; multiple drops per window
    #: usually end in a retransmission timeout — the 2000-era behaviour
    #: behind the paper's Figure 1 oscillations).
    recovery: str = "newreno"
    #: Congestion control: "reno" (the classic AIMD the paper's era
    #: ran) or "cubic" (RFC 8312: W(t) = C(t-K)^3 + W_max growth in
    #: congestion avoidance, beta = 0.7 multiplicative decrease, fast
    #: convergence). Slow start, recovery, and the ECN machinery are
    #: shared; only the avoidance growth and the decrease factor
    #: change.
    cc: str = "reno"

    def __post_init__(self) -> None:
        if self.mss <= 0:
            raise ValueError("mss must be positive")
        if self.sndbuf < self.mss or self.rcvbuf < self.mss:
            raise ValueError("socket buffers must hold at least one segment")
        if self.min_rto <= 0 or self.max_rto < self.min_rto:
            raise ValueError("invalid RTO bounds")
        if self.recovery not in ("newreno", "reno"):
            raise ValueError(f"unknown recovery style {self.recovery!r}")
        if self.ecn_response not in ("rfc3168", "dctcp"):
            raise ValueError(
                f"unknown ecn_response {self.ecn_response!r}"
            )
        if self.ecn_response == "dctcp" and not self.ecn:
            raise ValueError("ecn_response='dctcp' requires ecn=True")
        if self.cc not in ("reno", "cubic"):
            raise ValueError(f"unknown congestion control {self.cc!r}")
