"""Per-host TCP layer: connection demultiplexing and listeners."""

from __future__ import annotations

from typing import Dict, Optional, Tuple

from ...kernel import Event, Store
from ...net.node import Host
from ...net.packet import PROTO_TCP, Packet
from .config import TcpConfig
from .connection import SYN_RCVD, TcpConnection
from .segment import CWR, ECE, SYN

__all__ = ["TcpLayer", "TcpListener"]

_EPHEMERAL_BASE = 40000


class TcpListener:
    """A passive-open endpoint; accepted connections queue up FIFO."""

    def __init__(self, layer: "TcpLayer", port: int, config: Optional[TcpConfig]) -> None:
        self.layer = layer
        self.port = port
        self.config = config
        self._accept_queue: Store = Store(layer.sim)
        self.closed = False

    def accept(self) -> Event:
        """Event yielding the next ESTABLISHED :class:`TcpConnection`."""
        if self.closed:
            raise RuntimeError("listener is closed")
        return self._accept_queue.get()

    def close(self) -> None:
        self.closed = True
        self.layer._listeners.pop(self.port, None)

    def _on_syn(self, packet: Packet) -> None:
        key = (self.port, packet.src, packet.sport)
        conn = self.layer._connections.get(key)
        if conn is None:
            conn = TcpConnection(
                self.layer,
                local_port=self.port,
                remote_addr=packet.src,
                remote_port=packet.sport,
                config=self.config,
                passive=True,
            )
            conn.state = SYN_RCVD
            conn.peer_wnd = packet.payload.wnd
            # RFC 3168 negotiation: accept ECN iff we are configured
            # for it and the SYN carried the ECE|CWR offer; our SYN-ACK
            # then echoes ECE alone.
            conn.ecn_enabled = bool(
                conn.config.ecn
                and packet.payload.flags & ECE
                and packet.payload.flags & CWR
            )
            conn._pending_listener = self
            self.layer._connections[key] = conn
        conn._send_syn()


class TcpLayer:
    """Registers protocol 6 on a host; owns its connections/listeners."""

    def __init__(self, host: Host) -> None:
        self.host = host
        self.sim = host.sim
        self._connections: Dict[Tuple[int, int, int], TcpConnection] = {}
        self._listeners: Dict[int, TcpListener] = {}
        self._next_ephemeral = _EPHEMERAL_BASE
        self.rx_segments = 0
        self.refused = 0
        host.register_protocol(PROTO_TCP, self)

    # -- public API -------------------------------------------------------

    def connect(
        self,
        remote_addr: int,
        remote_port: int,
        local_port: Optional[int] = None,
        config: Optional[TcpConfig] = None,
    ) -> TcpConnection:
        """Active-open a connection; wait on ``conn.established_event``."""
        if local_port is None:
            local_port = self._alloc_port()
        key = (local_port, remote_addr, remote_port)
        if key in self._connections:
            raise ValueError(f"connection {key} already exists on {self.host.name}")
        conn = TcpConnection(
            self, local_port, remote_addr, remote_port, config=config
        )
        self._connections[key] = conn
        conn.connect()
        return conn

    def listen(self, port: int, config: Optional[TcpConfig] = None) -> TcpListener:
        if port in self._listeners:
            raise ValueError(f"TCP port {port} already listening on {self.host.name}")
        listener = TcpListener(self, port, config)
        self._listeners[port] = listener
        return listener

    # -- demux ---------------------------------------------------------------

    def receive(self, packet: Packet) -> None:
        self.rx_segments += 1
        key = (packet.dport, packet.src, packet.sport)
        conn = self._connections.get(key)
        if conn is not None:
            conn._on_packet(packet)
            return
        if packet.payload.flags & SYN:
            listener = self._listeners.get(packet.dport)
            if listener is not None and not listener.closed:
                listener._on_syn(packet)
                return
        self.refused += 1  # RST equivalent: silently count

    # -- internal hooks --------------------------------------------------------

    def _alloc_port(self) -> int:
        port = self._next_ephemeral
        self._next_ephemeral += 1
        return port

    def _on_established(self, conn: TcpConnection) -> None:
        listener = getattr(conn, "_pending_listener", None)
        if listener is not None:
            conn._pending_listener = None
            if not listener.closed:
                listener._accept_queue.put(conn)

    def _forget(self, conn: TcpConnection) -> None:
        key = (conn.local_port, conn.remote_addr, conn.remote_port)
        if self._connections.get(key) is conn:
            del self._connections[key]
