"""A byte-counting TCP Reno/NewReno implementation over the simulated
network — the reliable transport whose congestion behaviour under
token-bucket policing drives the paper's results."""

from .buffers import ReceiveBuffer, SendBuffer
from .config import MSS_BYTES, SEGMENT_OVERHEAD_BYTES, TcpConfig
from .connection import ConnectionClosed, ConnectionRefused, TcpConnection
from .layer import TcpLayer, TcpListener
from .rtt import RttEstimator
from .segment import ACK, CWR, ECE, FIN, FINACK, PROBE, SYN, TcpSegment

__all__ = [
    "ACK",
    "CWR",
    "ConnectionClosed",
    "ConnectionRefused",
    "ECE",
    "FIN",
    "FINACK",
    "MSS_BYTES",
    "PROBE",
    "ReceiveBuffer",
    "RttEstimator",
    "SEGMENT_OVERHEAD_BYTES",
    "SYN",
    "SendBuffer",
    "TcpConfig",
    "TcpConnection",
    "TcpLayer",
    "TcpListener",
    "TcpSegment",
]
