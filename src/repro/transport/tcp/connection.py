"""The TCP connection state machine: Reno/CUBIC congestion control
with NewReno partial-ACK recovery and RFC 3168/DCTCP ECN responses.

This is the component the paper's headline results hinge on: token-
bucket policing drops packets of a too-fast premium flow, and TCP's
congestion response ("TCP kicks into slow start mode and starts sending
more slowly, gradually building up its send rate until packets are
dropped again", §3) turns a slightly-too-small reservation into a badly
underutilised one (Figs 1, 5, 6).

Implemented behaviour:

* 3-way handshake with SYN retransmission;
* sliding window: ``min(cwnd, peer advertised window)``;
* slow start / congestion avoidance (byte-counted);
* fast retransmit on 3 dup ACKs; NewReno fast recovery with partial
  ACKs and window inflation/deflation;
* retransmission timeout with Jacobson RTT estimation, Karn's rule and
  exponential backoff; go-back-N resend after RTO;
* delayed ACKs (2 segments / 40 ms);
* zero-window persist probing;
* blocking ``send`` with a finite send buffer and blocking ``recv`` /
  ``recv_object`` with a finite receive buffer (advertised window);
* application message boundaries via stream markers (used by MPI);
* optional CUBIC window growth (``cc="cubic"``, RFC 8312) and a
  DCTCP-style proportional ECN response (``ecn_response="dctcp"``,
  RFC 8257) — the modern pairing the ``table1_l4s`` experiment runs
  against DualPI2.
"""

from __future__ import annotations

from collections import deque
from typing import Any, Deque, Optional, Tuple

from ...kernel import Counter, Event, Monitor
from ...net.packet import (
    DEFAULT_TTL,
    ECN_CE,
    ECN_ECT0,
    ECN_ECT1,
    ECN_NOT_ECT,
    PROTO_TCP,
    Packet,
)
from .buffers import ReceiveBuffer, SendBuffer
from .config import SEGMENT_OVERHEAD_BYTES, TcpConfig
from .rtt import RttEstimator
from .segment import ACK, CWR, ECE, FIN, FINACK, PROBE, SYN, TcpSegment

__all__ = ["TcpConnection", "ConnectionClosed", "ConnectionRefused"]

# Connection states.
CLOSED = "CLOSED"
SYN_SENT = "SYN_SENT"
SYN_RCVD = "SYN_RCVD"
ESTABLISHED = "ESTABLISHED"

_MAX_SYN_RETRIES = 6

# CUBIC (RFC 8312) constants: the cubic coefficient (segments/s³), the
# multiplicative-decrease factor, and the TCP-friendly AIMD growth rate
# 3*(1-beta)/(1+beta) derived from beta.
_CUBIC_C = 0.4
_CUBIC_BETA = 0.7
_CUBIC_AIMD = 3.0 * (1.0 - _CUBIC_BETA) / (1.0 + _CUBIC_BETA)

# DCTCP (RFC 8257) EWMA gain for the CE-fraction estimate.
_DCTCP_G = 1.0 / 16.0


class ConnectionClosed(Exception):
    """The peer closed the connection (delivered to blocked readers)."""


class ConnectionRefused(Exception):
    """No listener at the destination port."""


class TcpConnection:
    """One end of a TCP connection over the simulated network."""

    def __init__(
        self,
        layer,
        local_port: int,
        remote_addr: int,
        remote_port: int,
        config: Optional[TcpConfig] = None,
        passive: bool = False,
    ) -> None:
        self.layer = layer
        self.sim = layer.sim
        self.config = config or TcpConfig()
        self.local_port = local_port
        self.remote_addr = remote_addr
        self.remote_port = remote_port

        self.state = CLOSED
        self._passive = passive
        self.established_event: Event = Event(self.sim)

        cfg = self.config
        self.send_buffer = SendBuffer(cfg.sndbuf)
        self.recv_buffer = ReceiveBuffer(cfg.rcvbuf)
        self.rtt = RttEstimator(cfg.min_rto, cfg.max_rto)

        # Congestion control (all byte-denominated).
        self.cwnd = cfg.initial_cwnd_segments * cfg.mss
        self.ssthresh = cfg.initial_ssthresh
        self._ca_acc = 0  # congestion-avoidance byte accumulator
        self.dupacks = 0
        self.in_recovery = False
        self.recover = 0  # NewReno recovery point

        self.snd_nxt = 0  # next new byte offset to transmit
        self.peer_wnd = cfg.rcvbuf  # until first real advertisement
        self._timed: Optional[Tuple[int, float]] = None  # (end offset, tx time)

        # Timers.
        self._rto_timer = None
        self._delack_timer = None
        self._persist_timer = None
        self._persist_interval = 0.0
        self._syn_retries = 0
        self._syn_time: Optional[float] = None

        # Delayed-ACK state.
        self._segs_unacked = 0

        # ECN (RFC 3168). ``ecn_enabled`` becomes True only after both
        # ends offered it at the handshake. The receiver echoes ECE on
        # every ACK from the first CE mark until a CWR receipt; the
        # sender reduces once per window (``_ecn_recover`` is the
        # snd_nxt fence of the last response, as ``recover`` is for
        # NewReno) and stamps CWR on its next new data segment.
        self.ecn_enabled = False
        self._ecn_echo = False
        self._cwr_pending = False
        self._ecn_recover = -1
        self.ecn_ce_received = 0
        self.ecn_responses = 0

        # DCTCP (RFC 8257). The receiver echoes the CE state of each
        # *data* segment instead of latching ECE; the sender counts
        # marked vs acked bytes over one window (``_dctcp_fence`` is
        # the snd_nxt boundary), folds the fraction into ``alpha`` with
        # gain 1/16, and reduces cwnd *= (1 - alpha/2) when the window
        # saw any marks. Data goes out ECT(1) — the L4S identifier —
        # so DualPI2 steers it into the low-latency queue.
        self.dctcp = cfg.ecn and cfg.ecn_response == "dctcp"
        self.dctcp_alpha = 1.0  # start conservative (RFC 8257 §4.2)
        self._dctcp_bytes_acked = 0
        self._dctcp_bytes_marked = 0
        self._dctcp_fence = 0

        # CUBIC (RFC 8312). All window arithmetic stays byte-
        # denominated; the cubic curve is evaluated in segment units
        # and the growth is spread over ACKs through a fractional
        # byte accumulator so ``cwnd`` remains an int.
        self.cubic = cfg.cc == "cubic"
        self._cubic_w_max = 0.0  # bytes
        self._cubic_k = 0.0
        self._cubic_epoch = -1.0  # avoidance-epoch start (<0: unset)
        self._cubic_acc = 0.0

        # Blocking-call plumbing.
        self._send_waiters: Deque[Tuple[Event, int, Any]] = deque()
        self._recv_waiters: Deque[Tuple[Event, str, int]] = deque()
        self._advertised_small = False

        # Close handshake flags.
        self._close_requested = False
        self._fin_sent = False
        self._fin_acked = False
        self.peer_closed = False

        # Measurement.
        self.acked_counter = Counter(self.sim, "acked-bytes")
        self.delivered_counter = Counter(self.sim, "delivered-bytes")
        #: (time, stream offset) samples at each data transmission —
        #: the Fig 7 sequence-number trace.
        self.seq_monitor = Monitor(self.sim, "seq-trace")
        self.segments_sent = 0
        self.segments_received = 0
        self.retransmissions = 0
        self.fast_retransmits = 0
        self.timeouts = 0
        #: Wire-level resends: any data segment starting below the
        #: transmission high-water mark. Unlike ``retransmissions``
        #: (explicit retransmit paths only) this also counts the
        #: go-back-N stream rewind after an RTO, so it measures the
        #: actual repeated wire work a loss episode cost.
        self.resent_segments = 0
        self._snd_high = 0
        self.cwnd_monitor: Optional[Monitor] = None  # opt-in

    # ------------------------------------------------------------------
    # Application API
    # ------------------------------------------------------------------

    def connect(self) -> Event:
        """Start the active-open handshake; event triggers on ESTABLISHED."""
        if self.state != CLOSED or self._passive:
            raise RuntimeError(f"connect() in state {self.state}")
        self.state = SYN_SENT
        self._send_syn()
        return self.established_event

    def send(self, nbytes: int, marker: Any = None) -> Event:
        """Write ``nbytes`` into the stream (blocking on buffer space).

        The returned event triggers once the bytes are accepted into
        the send buffer — like a kernel ``write`` returning, *not* like
        delivery. ``marker`` optionally ends an application message at
        this write's final byte.
        """
        if nbytes <= 0:
            raise ValueError("send size must be positive")
        if self._close_requested:
            raise RuntimeError("send() after close()")
        event = Event(self.sim)
        if not self._send_waiters and self.send_buffer.space_for(nbytes):
            self.send_buffer.write(nbytes, marker)
            event.succeed(nbytes)
            self._transmit()
        else:
            if nbytes > self.config.sndbuf:
                # Oversized writes are accepted in buffer-sized slices;
                # model by waiting for the whole buffer repeatedly is
                # unnecessary — just reject clearly.
                raise ValueError(
                    f"single write of {nbytes}B exceeds sndbuf "
                    f"{self.config.sndbuf}B; split the write"
                )
            self._send_waiters.append((event, nbytes, marker))
        return event

    def send_message(self, nbytes: int, marker: Any):
        """Generator: write an arbitrarily large message, blocking as
        needed, marking the final byte with ``marker``.

        Splits writes at send-buffer granularity so messages larger
        than the socket buffer behave like repeated blocking writes
        (exactly the pattern §5.5 discusses).
        """
        chunk = self.config.sndbuf
        remaining = nbytes
        while remaining > chunk:
            yield self.send(chunk)
            remaining -= chunk
        yield self.send(remaining, marker)

    def recv(self, max_bytes: int) -> Event:
        """Read up to ``max_bytes`` (blocking); value is the byte count.

        Returns 0 once the peer has closed and all data was consumed.
        """
        if max_bytes <= 0:
            raise ValueError("recv size must be positive")
        event = Event(self.sim)
        self._recv_waiters.append((event, "bytes", max_bytes))
        self._satisfy_recv_waiters()
        return event

    def recv_object(self) -> Event:
        """Read the next whole application message (blocking).

        Value is ``(nbytes, marker_object)``. Fails with
        :class:`ConnectionClosed` if the peer closes first.
        """
        event = Event(self.sim)
        self._recv_waiters.append((event, "object", 0))
        self._satisfy_recv_waiters()
        return event

    def close(self) -> None:
        """Half-close: no more sends; FIN goes out once data is acked."""
        if self._close_requested:
            return
        self._close_requested = True
        self._maybe_send_fin()

    @property
    def flight_size(self) -> int:
        """Bytes sent but not yet acknowledged."""
        return self.snd_nxt - self.send_buffer.una

    @property
    def closed(self) -> bool:
        return self._fin_acked and self.peer_closed

    # ------------------------------------------------------------------
    # Packet output
    # ------------------------------------------------------------------

    def _emit(self, segment: TcpSegment, ecn: int = ECN_NOT_ECT) -> None:
        # Positional construction (src, dst, sport, dport, proto, size,
        # payload, dscp, ttl, created_at, ecn): one Packet per segment
        # makes this a hot allocation site.
        packet = Packet(
            self.layer.host.addr,
            self.remote_addr,
            self.local_port,
            self.remote_port,
            PROTO_TCP,
            segment.length + SEGMENT_OVERHEAD_BYTES,
            segment,
            self.config.dscp,
            DEFAULT_TTL,
            self.sim._now,
            ecn,
        )
        self.segments_sent += 1
        self.layer.host.send_packet(packet)

    def _send_syn(self) -> None:
        if self.state == SYN_SENT:
            # RFC 3168 §6.1.1: an ECN-capable active opener sets both
            # ECE and CWR on its SYN. SYNs themselves are never ECT.
            flags = SYN | (ECE | CWR if self.config.ecn else 0)
        else:
            flags = SYN | ACK | (ECE if self.ecn_enabled else 0)
        # Karn's rule applies to the handshake too: only an
        # unretransmitted SYN exchange yields an RTT sample.
        self._syn_time = self.sim.now if self._syn_retries == 0 else None
        self._emit(TcpSegment(seq=0, ack=0, flags=flags, wnd=self.recv_buffer.window))
        self._reset_rto_timer()

    def _send_pure_ack(self, extra_flags: int = 0) -> None:
        self._cancel_delack()
        self._segs_unacked = 0
        if self._ecn_echo:
            extra_flags |= ECE
        wnd = self.recv_buffer.window
        self._advertised_small = wnd < self.config.mss
        self._emit(
            TcpSegment(
                seq=self.snd_nxt,
                ack=self.recv_buffer.rcv_nxt,
                flags=ACK | extra_flags,
                wnd=wnd,
            )
        )

    def _send_data_segment(self, seq: int, length: int, retx: bool) -> None:
        markers = self.send_buffer.markers_in(seq, seq + length)
        if seq < self._snd_high:
            self.resent_segments += 1
        if seq + length > self._snd_high:
            self._snd_high = seq + length
        if retx:
            self.retransmissions += 1
            # Karn's rule: never time a retransmitted range.
            if self._timed is not None and self._timed[0] > seq:
                self._timed = None
        elif self._timed is None:
            self._timed = (seq + length, self.sim._now)
        self._cancel_delack()
        self._segs_unacked = 0
        flags = ACK
        if self._ecn_echo:
            flags |= ECE
        if self._cwr_pending and not retx:
            flags |= CWR
            self._cwr_pending = False
        wnd = self.recv_buffer.window
        self._advertised_small = wnd < self.config.mss
        self.seq_monitor.record(seq + length)
        tel = self.sim.telemetry
        if tel is not None and tel.trace is not None:
            event = "retransmit" if retx else "segment"
            if tel.trace.wants("tcp", event):
                tel.trace.emit(
                    self.sim.now, "tcp", event,
                    host=self.layer.host.name,
                    sport=self.local_port, dport=self.remote_port,
                    dst=self.remote_addr, seq=seq, length=length,
                    cwnd=self.cwnd,
                )
        # Only data segments are ECT (RFC 3168 §6.1.1 forbids marking
        # pure ACKs and handshake segments ECN-capable). DCTCP data
        # rides ECT(1), the L4S identifier (RFC 9331).
        self._emit(
            TcpSegment(
                seq=seq,
                ack=self.recv_buffer.rcv_nxt,
                flags=flags,
                wnd=wnd,
                length=length,
                markers=markers or None,
            ),
            ecn=(
                (ECN_ECT1 if self.dctcp else ECN_ECT0)
                if self.ecn_enabled
                else ECN_NOT_ECT
            ),
        )

    # ------------------------------------------------------------------
    # Transmission engine
    # ------------------------------------------------------------------

    def _usable_window_end(self) -> int:
        wnd = min(self.cwnd, self.peer_wnd)
        return self.send_buffer.una + wnd

    def _transmit(self) -> None:
        if self.state != ESTABLISHED:
            return
        cfg = self.config
        limit = self._usable_window_end()
        sent_any = False
        while True:
            avail = self.send_buffer.written - self.snd_nxt
            if avail <= 0:
                break
            room = limit - self.snd_nxt
            if room <= 0:
                if self.peer_wnd == 0:
                    self._start_persist()
                break
            length = min(cfg.mss, avail, room)
            if (
                cfg.nagle
                and length < cfg.mss
                and self.snd_nxt > self.send_buffer.una
            ):
                break  # Nagle: hold sub-MSS data while unacked data exists
            self._send_data_segment(self.snd_nxt, length, retx=False)
            self.snd_nxt += length
            sent_any = True
        if sent_any or self.flight_size > 0:
            self._ensure_rto_timer()
        self._maybe_send_fin()

    def _retransmit_head(self) -> None:
        """Resend one MSS starting at the lowest unacked offset."""
        start = self.send_buffer.una
        length = min(self.config.mss, self.snd_nxt - start)
        if length <= 0:
            return
        self._send_data_segment(start, length, retx=True)

    # ------------------------------------------------------------------
    # Timers
    # ------------------------------------------------------------------

    # The RTO and delayed-ACK timers are re-armed on nearly every ACK,
    # so each connection keeps one TimerHandle per timer alive and
    # re-arms it with Simulator.reschedule instead of allocating a new
    # handle per cancel/arm cycle. A cancelled handle is kept (not
    # None'd) so the next arm can reuse it; only a *fired* handle is
    # dropped (in the timer callback).

    def _ensure_rto_timer(self) -> None:
        timer = self._rto_timer
        if timer is None:
            self._rto_timer = self.sim.call_in(self.rtt.rto, self._on_rto)
        elif timer.cancelled:
            self.sim.reschedule(timer, self.rtt.rto)

    def _reset_rto_timer(self) -> None:
        timer = self._rto_timer
        if timer is None:
            self._rto_timer = self.sim.call_in(self.rtt.rto, self._on_rto)
        else:
            self.sim.reschedule(timer, self.rtt.rto)

    def _cancel_rto_timer(self) -> None:
        if self._rto_timer is not None:
            self._rto_timer.cancel()

    def _on_rto(self) -> None:
        self._rto_timer = None
        if self.state == SYN_SENT or self.state == SYN_RCVD:
            self._syn_retries += 1
            if self._syn_retries > _MAX_SYN_RETRIES:
                self.state = CLOSED
                self.layer._forget(self)
                if not self.established_event.triggered:
                    self.established_event.fail(
                        ConnectionRefused(
                            f"no answer from {self.remote_addr}:{self.remote_port}"
                        )
                    )
                return
            self.rtt.backoff()
            self._send_syn()
            return
        if self.flight_size <= 0 and not (self._fin_sent and not self._fin_acked):
            return  # everything acked in the meantime
        self.timeouts += 1
        self.ssthresh = self._ssthresh_after_loss()
        self.cwnd = self.config.mss
        self._ca_acc = 0
        self._cubic_epoch = -1.0
        self.in_recovery = False
        self.dupacks = 0
        self.rtt.backoff()
        self._timed = None
        if self._fin_sent and not self._fin_acked and self.flight_size <= 0:
            self._emit_fin()
        else:
            # Go-back-N: rewind and let slow start re-clock the stream.
            self.snd_nxt = self.send_buffer.una
            self._record_cwnd()
            self._transmit()
        self._ensure_rto_timer()

    def _start_persist(self) -> None:
        if self._persist_timer is not None:
            return
        self._persist_interval = max(self.rtt.rto, 0.5)
        self._persist_timer = self.sim.call_in(
            self._persist_interval, self._persist_probe
        )

    def _persist_probe(self) -> None:
        self._persist_timer = None
        if self.peer_wnd > 0 or self.state != ESTABLISHED:
            return
        self._send_pure_ack(extra_flags=PROBE)
        self._persist_interval = min(self._persist_interval * 2, self.config.max_rto)
        self._persist_timer = self.sim.call_in(
            self._persist_interval, self._persist_probe
        )

    def _cancel_persist(self) -> None:
        if self._persist_timer is not None:
            self._persist_timer.cancel()
            self._persist_timer = None

    def _schedule_delack(self) -> None:
        timer = self._delack_timer
        if timer is None:
            self._delack_timer = self.sim.call_in(
                self.config.delack_timeout, self._on_delack
            )
        elif timer.cancelled:
            self.sim.reschedule(timer, self.config.delack_timeout)

    def _cancel_delack(self) -> None:
        if self._delack_timer is not None:
            self._delack_timer.cancel()

    def _on_delack(self) -> None:
        self._delack_timer = None
        if self._segs_unacked > 0:
            self._send_pure_ack()

    # ------------------------------------------------------------------
    # Packet input
    # ------------------------------------------------------------------

    def _on_packet(self, packet: Packet) -> None:
        segment: TcpSegment = packet.payload
        self.segments_received += 1

        if segment.flags & SYN:
            self._on_syn_segment(segment)
            return
        if self.state == SYN_RCVD and segment.flags & ACK:
            self._become_established()
        if self.state != ESTABLISHED:
            return

        if self.ecn_enabled:
            if self.dctcp:
                # RFC 8257 receiver: the echo mirrors the CE state of
                # each *data* segment (no ECE latch, CWR irrelevant) so
                # the sender can reconstruct the marked-byte fraction.
                if segment.length > 0:
                    ce = packet.ecn == ECN_CE
                    if ce:
                        self.ecn_ce_received += 1
                    self._ecn_echo = ce
            else:
                # CWR receipt first: it closes the previous CE episode
                # even when this very packet carries a fresh CE mark.
                if segment.flags & CWR:
                    self._ecn_echo = False
                if packet.ecn == ECN_CE:
                    self.ecn_ce_received += 1
                    self._ecn_echo = True

        if segment.flags & FINACK:
            self._on_finack()
        if segment.flags & ACK:
            self._process_ack(segment)
        if segment.length > 0:
            self._process_data(segment)
        elif segment.flags & PROBE:
            self._send_pure_ack()
        if segment.flags & FIN:
            self._process_fin(segment)

    def _on_syn_segment(self, segment: TcpSegment) -> None:
        if self.state == SYN_SENT and segment.flags & ACK:
            # SYN+ACK: connection established on the active side. ECN
            # is negotiated iff the passive side echoed ECE alone
            # (ECE|CWR would be a simultaneous-open offer, not an echo).
            self.peer_wnd = segment.wnd
            if (
                self.config.ecn
                and segment.flags & ECE
                and not segment.flags & CWR
            ):
                self.ecn_enabled = True
            if self._syn_time is not None:
                self.rtt.sample(self.sim.now - self._syn_time)
            self._become_established()
            self._send_pure_ack()
        elif self.state == SYN_RCVD:
            # Duplicate SYN: our SYN+ACK was lost; resend.
            self._send_syn()
        elif self.state == ESTABLISHED and segment.flags & ACK:
            # Peer kept retransmitting SYN+ACK (our handshake ACK was
            # lost): re-acknowledge.
            self._send_pure_ack()

    def _become_established(self) -> None:
        self._cancel_rto_timer()
        self._syn_retries = 0
        if self.state == ESTABLISHED:
            return
        self.state = ESTABLISHED
        if not self.established_event.triggered:
            self.established_event.succeed(self)
        self.layer._on_established(self)
        self._transmit()

    # -- ACK processing ----------------------------------------------------

    def _process_ack(self, segment: TcpSegment) -> None:
        cfg = self.config
        old_peer_wnd = self.peer_wnd
        self.peer_wnd = segment.wnd
        if self.peer_wnd > 0:
            self._cancel_persist()
        ack = segment.ack
        una = self.send_buffer.una

        if (
            self.ecn_enabled
            and not self.dctcp
            and segment.flags & ECE
            and not self.in_recovery
            and ack > self._ecn_recover
        ):
            # RFC 3168 §6.1.2: respond to ECE like a fast retransmit —
            # halve the window, no retransmission — at most once per
            # window of data; confirm with CWR on the next new segment.
            self.ecn_responses += 1
            self.ssthresh = self._ssthresh_after_loss()
            self.cwnd = max(self.ssthresh, cfg.mss)
            self._ca_acc = 0
            self._cubic_epoch = -1.0
            self._cwr_pending = True
            self._ecn_recover = self.snd_nxt
            self._record_cwnd()

        if self.dctcp and ack > una:
            self._dctcp_on_ack(
                min(ack, self.snd_nxt) - una, bool(segment.flags & ECE)
            )

        if ack > una:
            newly = self.send_buffer.ack_to(min(ack, self.snd_nxt))
            self.acked_counter.add(newly)
            self.dupacks = 0
            if self._timed is not None and ack >= self._timed[0]:
                rtt_sample = self.sim._now - self._timed[1]
                self.rtt.sample(rtt_sample)
                self._timed = None
                tel = self.sim.telemetry
                if tel is not None:
                    tel.registry.histogram(
                        f"tcp.{self.layer.host.name}.rtt_seconds"
                    ).observe(rtt_sample)
            if self.in_recovery:
                if ack >= self.recover or cfg.recovery == "reno":
                    # Full ACK (or classic Reno, which leaves recovery
                    # on any new ACK): deflate to ssthresh. Under Reno,
                    # remaining holes must earn their own fast
                    # retransmit or wait out the RTO.
                    self.cwnd = max(self.ssthresh, cfg.mss)
                    self._ca_acc = 0
                    self.in_recovery = False
                else:
                    # NewReno partial ACK: retransmit the next hole.
                    self._retransmit_head()
                    self.cwnd = max(self.cwnd - newly + cfg.mss, cfg.mss)
            else:
                if self.cwnd < self.ssthresh:
                    self.cwnd += min(newly, cfg.mss)  # slow start
                elif self.cubic:
                    self._cubic_growth(newly)
                else:
                    self._ca_acc += newly
                    while self._ca_acc >= self.cwnd:
                        self._ca_acc -= self.cwnd
                        self.cwnd += cfg.mss
            self._record_cwnd()
            if self.flight_size > 0:
                self._reset_rto_timer()
            else:
                self._cancel_rto_timer()
            self._admit_send_waiters()
            self._maybe_send_fin()
        elif (
            ack == una
            and self.flight_size > 0
            and segment.length == 0
            and not segment.flags & (FIN | FINACK | PROBE)
        ):
            if segment.wnd != old_peer_wnd:
                pass  # pure window update, not a dup ACK
            else:
                self.dupacks += 1
                if self.in_recovery:
                    self.cwnd += cfg.mss  # inflation
                elif self.dupacks == 3:
                    self._enter_fast_recovery()
        self._transmit()

    def _enter_fast_recovery(self) -> None:
        cfg = self.config
        self.fast_retransmits += 1
        self.ssthresh = self._ssthresh_after_loss()
        self.recover = self.snd_nxt
        self._retransmit_head()
        self.cwnd = self.ssthresh + 3 * cfg.mss
        self._ca_acc = 0
        self._cubic_epoch = -1.0
        self.in_recovery = True
        self._record_cwnd()
        self._reset_rto_timer()

    def _ssthresh_after_loss(self) -> int:
        """Post-loss slow-start threshold under the configured cc.

        Reno keeps the classic ``flight/2``; CUBIC multiplies by
        ``beta = 0.7`` and books ``W_max`` for the cubic trajectory
        (with RFC 8312 fast convergence when the window was still
        below the previous peak).
        """
        cfg = self.config
        flight = self.flight_size
        if not self.cubic:
            return max(flight // 2, 2 * cfg.mss)
        cwnd = float(self.cwnd)
        if cwnd < self._cubic_w_max:
            # Fast convergence: release bandwidth to newer flows.
            self._cubic_w_max = cwnd * (2.0 - _CUBIC_BETA) / 2.0
        else:
            self._cubic_w_max = cwnd
        return max(int(flight * _CUBIC_BETA), 2 * cfg.mss)

    def _cubic_growth(self, newly: int) -> None:
        """RFC 8312 congestion-avoidance growth for ``newly`` acked
        bytes: steer cwnd toward ``W(t+RTT) = C(t-K)³ + W_max``,
        floored by the TCP-friendly AIMD estimate."""
        cfg = self.config
        mss = cfg.mss
        now = self.sim._now
        srtt = self.rtt.srtt
        if srtt is None or srtt <= 0.0:
            srtt = 0.1
        if self._cubic_epoch < 0.0:
            self._cubic_epoch = now
            self._cubic_acc = 0.0
            if self._cubic_w_max < self.cwnd:
                # No loss on record below us: start a fresh plateau.
                self._cubic_w_max = float(self.cwnd)
                self._cubic_k = 0.0
            else:
                self._cubic_k = (
                    (self._cubic_w_max - self.cwnd) / (_CUBIC_C * mss)
                ) ** (1.0 / 3.0)
        t = now - self._cubic_epoch + srtt
        w_max_seg = self._cubic_w_max / mss
        cwnd_seg = self.cwnd / mss
        target_seg = w_max_seg + _CUBIC_C * (t - self._cubic_k) ** 3
        friendly_seg = w_max_seg * _CUBIC_BETA + _CUBIC_AIMD * (t / srtt)
        if target_seg < friendly_seg:
            target_seg = friendly_seg  # TCP-friendly region
        if target_seg <= cwnd_seg:
            return  # at/above the curve: hold
        inc = (target_seg - cwnd_seg) * newly * mss / self.cwnd
        if inc > newly:
            inc = float(newly)  # never outgrow slow-start pace
        self._cubic_acc += inc
        grow = int(self._cubic_acc)
        if grow:
            self._cubic_acc -= grow
            self.cwnd += grow

    def _dctcp_on_ack(self, newly: int, ece: bool) -> None:
        """RFC 8257 sender: per-window CE-fraction accounting and the
        proportional ``cwnd *= (1 - alpha/2)`` reduction."""
        self._dctcp_bytes_acked += newly
        if ece:
            self._dctcp_bytes_marked += newly
        if self.send_buffer.una + newly <= self._dctcp_fence:
            return  # window still open
        # One window's worth acknowledged: fold the observed fraction
        # into alpha and reduce once if anything was marked.
        acked = self._dctcp_bytes_acked
        marked = self._dctcp_bytes_marked
        frac = marked / acked if acked > 0 else 0.0
        self.dctcp_alpha += _DCTCP_G * (frac - self.dctcp_alpha)
        self._dctcp_bytes_acked = 0
        self._dctcp_bytes_marked = 0
        self._dctcp_fence = self.snd_nxt
        if marked > 0 and not self.in_recovery:
            cfg = self.config
            self.ecn_responses += 1
            reduced = int(self.cwnd * (1.0 - self.dctcp_alpha / 2.0))
            self.cwnd = max(reduced, 2 * cfg.mss)
            self.ssthresh = self.cwnd
            self._ca_acc = 0
            if self.cubic:
                self._cubic_w_max = float(self.cwnd)
                self._cubic_epoch = -1.0
            self._cwr_pending = True
            self._record_cwnd()

    def _record_cwnd(self) -> None:
        if self.cwnd_monitor is not None:
            self.cwnd_monitor.record(self.cwnd)

    # -- data processing -----------------------------------------------------

    def _process_data(self, segment: TcpSegment) -> None:
        rb = self.recv_buffer
        advanced = rb.on_segment(segment.seq, segment.length, segment.markers)
        if advanced > 0:
            self.delivered_counter.add(advanced)
            self._satisfy_recv_waiters()
        if rb.sack_intervals or advanced == 0:
            # Out-of-order or duplicate: immediate (dup) ACK.
            self._send_pure_ack()
            return
        if self.config.delayed_ack:
            self._segs_unacked += 1
            if self._segs_unacked >= 2:
                self._send_pure_ack()
            else:
                self._schedule_delack()
        else:
            self._send_pure_ack()

    # -- close handshake -----------------------------------------------------

    def _maybe_send_fin(self) -> None:
        if (
            self._close_requested
            and not self._fin_sent
            and self.state == ESTABLISHED
            and not self._send_waiters
            and self.snd_nxt >= self.send_buffer.written
            and self.flight_size == 0
        ):
            self._emit_fin()

    def _emit_fin(self) -> None:
        self._fin_sent = True
        self._emit(
            TcpSegment(
                seq=self.snd_nxt,
                ack=self.recv_buffer.rcv_nxt,
                flags=ACK | FIN,
                wnd=self.recv_buffer.window,
            )
        )
        self._ensure_rto_timer()

    def _process_fin(self, segment: TcpSegment) -> None:
        if segment.seq > self.recv_buffer.rcv_nxt:
            # Data still missing; the peer will retransmit the FIN.
            return
        first_fin = not self.peer_closed
        self.peer_closed = True
        self._send_pure_ack(extra_flags=FINACK)
        if first_fin:
            self._satisfy_recv_waiters()
        self._maybe_finish_close()

    def _on_finack(self) -> None:
        if self._fin_sent:
            self._fin_acked = True
            self._cancel_rto_timer()
            self._maybe_finish_close()

    def _maybe_finish_close(self) -> None:
        if self.closed:
            self.state = CLOSED
            self._cancel_rto_timer()
            self._cancel_delack()
            self._cancel_persist()
            self.layer._forget(self)

    # ------------------------------------------------------------------
    # Blocking-call plumbing
    # ------------------------------------------------------------------

    def _admit_send_waiters(self) -> None:
        wrote = False
        while self._send_waiters:
            event, nbytes, marker = self._send_waiters[0]
            if not self.send_buffer.space_for(nbytes):
                break
            self._send_waiters.popleft()
            self.send_buffer.write(nbytes, marker)
            event.succeed(nbytes)
            wrote = True
        if wrote:
            self._transmit()

    def _satisfy_recv_waiters(self) -> None:
        if not self._recv_waiters and not self._advertised_small:
            return
        rb = self.recv_buffer
        window_was_small = self._advertised_small
        while self._recv_waiters:
            event, mode, arg = self._recv_waiters[0]
            if mode == "bytes":
                if rb.available > 0:
                    self._recv_waiters.popleft()
                    event.succeed(rb.read_bytes(arg))
                elif self.peer_closed:
                    self._recv_waiters.popleft()
                    event.succeed(0)
                else:
                    break
            else:  # object mode
                if rb.next_marker_ready():
                    self._recv_waiters.popleft()
                    event.succeed(rb.read_object())
                elif self.peer_closed:
                    self._recv_waiters.popleft()
                    event.fail(ConnectionClosed("peer closed the connection"))
                else:
                    # Drain partial-message bytes out of the advertised
                    # window so messages larger than rcvbuf cannot
                    # deadlock flow control.
                    rb.drain_for_object()
                    break
        # Reads freed buffer space: reopen the advertised window if it
        # had shrunk below one segment.
        if window_was_small and rb.window >= self.config.mss:
            self._send_pure_ack()

    def __repr__(self) -> str:
        return (
            f"<TcpConnection {self.layer.host.name}:{self.local_port}->"
            f"{self.remote_addr}:{self.remote_port} {self.state} "
            f"cwnd={self.cwnd}>"
        )
