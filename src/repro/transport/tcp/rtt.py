"""RTT estimation and retransmission-timeout computation.

Implements the Jacobson/Karels estimator with Karn's algorithm
(retransmitted segments are never sampled), per RFC 6298.
"""

from __future__ import annotations

__all__ = ["RttEstimator"]


class RttEstimator:
    """Smoothed RTT / RTT variance tracker."""

    ALPHA = 0.125  # gain for srtt
    BETA = 0.25  # gain for rttvar

    def __init__(self, min_rto: float, max_rto: float, initial_rto: float = 1.0) -> None:
        self.min_rto = min_rto
        self.max_rto = max_rto
        self.srtt: float | None = None
        self.rttvar: float | None = None
        self._rto = max(min_rto, min(initial_rto, max_rto))
        self.samples = 0

    @property
    def rto(self) -> float:
        """Current retransmission timeout in seconds."""
        return self._rto

    def sample(self, rtt: float) -> None:
        """Feed one (non-retransmitted) round-trip measurement."""
        if rtt < 0:
            raise ValueError("negative RTT sample")
        if self.srtt is None:
            self.srtt = rtt
            self.rttvar = rtt / 2.0
        else:
            err = rtt - self.srtt
            self.srtt += self.ALPHA * err
            self.rttvar += self.BETA * (abs(err) - self.rttvar)
        self.samples += 1
        self._rto = min(
            self.max_rto, max(self.min_rto, self.srtt + 4.0 * self.rttvar)
        )

    def backoff(self) -> None:
        """Exponential backoff after a retransmission timeout."""
        self._rto = min(self.max_rto, self._rto * 2.0)

    def __repr__(self) -> str:
        srtt = f"{self.srtt * 1e3:.2f}ms" if self.srtt is not None else "?"
        return f"<RttEstimator srtt={srtt} rto={self._rto * 1e3:.1f}ms>"
