"""UDP: connectionless datagram sockets.

Used by the contention generator (the paper's UDP blaster, §5.2) and by
anything that wants unreliable delivery. Datagrams above the MTU are
rejected rather than fragmented (the generator always sends MTU-sized
packets anyway).
"""

from __future__ import annotations

from typing import Any, Dict, Optional, Tuple

from ..kernel import Event, Store
from ..net.node import Host
from ..net.packet import DEFAULT_TTL, IP_HEADER_BYTES, PROTO_UDP, Packet, UDP_HEADER_BYTES

__all__ = ["UdpLayer", "UdpSocket", "UDP_MAX_PAYLOAD", "MTU_BYTES"]

#: Ethernet-style MTU: 1500 bytes of IP payload.
MTU_BYTES = 1500
UDP_MAX_PAYLOAD = MTU_BYTES - IP_HEADER_BYTES - UDP_HEADER_BYTES

_EPHEMERAL_BASE = 32768


class UdpLayer:
    """Per-host UDP: port allocation and datagram demultiplexing."""

    __slots__ = (
        "host", "sim", "_sockets", "_next_ephemeral", "rx_datagrams",
        "no_port_drops",
    )

    def __init__(self, host: Host) -> None:
        self.host = host
        self.sim = host.sim
        self._sockets: Dict[int, "UdpSocket"] = {}
        self._next_ephemeral = _EPHEMERAL_BASE
        self.rx_datagrams = 0
        self.no_port_drops = 0
        host.register_protocol(PROTO_UDP, self)

    def create_socket(self, port: Optional[int] = None, dscp: int = 0) -> "UdpSocket":
        if port is None:
            port = self._alloc_port()
        if port in self._sockets:
            raise ValueError(f"UDP port {port} already bound on {self.host.name}")
        sock = UdpSocket(self, port, dscp=dscp)
        self._sockets[port] = sock
        return sock

    def _alloc_port(self) -> int:
        while self._next_ephemeral in self._sockets:
            self._next_ephemeral += 1
        port = self._next_ephemeral
        self._next_ephemeral += 1
        return port

    def close_socket(self, sock: "UdpSocket") -> None:
        self._sockets.pop(sock.port, None)

    def receive(self, packet: Packet) -> None:
        sock = self._sockets.get(packet.dport)
        if sock is None:
            self.no_port_drops += 1
        else:
            self.rx_datagrams += 1
            sock._on_datagram(packet)
        # End of a pooled datagram's bracketed lifetime: the inbox keeps
        # the extracted fields, never the packet, so its slab slot (if
        # any) can be recycled. No-op for plain packets / packet mode.
        pool = self.sim.packet_pool
        if pool is not None:
            pool.release(packet)


class UdpSocket:
    """A bound UDP endpoint."""

    __slots__ = (
        "layer", "port", "dscp", "_inbox", "tx_datagrams", "tx_bytes",
        "closed",
    )

    def __init__(self, layer: UdpLayer, port: int, dscp: int = 0) -> None:
        self.layer = layer
        self.port = port
        self.dscp = dscp
        self._inbox: Store = Store(layer.sim)
        self.tx_datagrams = 0
        self.tx_bytes = 0
        self.closed = False

    @property
    def host(self) -> Host:
        return self.layer.host

    def sendto(
        self,
        nbytes: int,
        dst: int,
        dport: int,
        payload: Any = None,
    ) -> bool:
        """Emit one datagram of ``nbytes`` application bytes.

        Returns False if the local egress queue dropped it.
        """
        if self.closed:
            raise RuntimeError("socket is closed")
        if nbytes <= 0 or nbytes > UDP_MAX_PAYLOAD:
            raise ValueError(
                f"datagram payload must be in (0, {UDP_MAX_PAYLOAD}], got {nbytes}"
            )
        # Positional construction (src, dst, sport, dport, proto, size,
        # payload, dscp, ttl, created_at): the contention generator
        # builds one of these per datagram. Batch/hybrid modes draw the
        # datagram from the struct-of-arrays slab instead — UDP is the
        # one datapath whose packet lifetime is provably bracketed
        # (released by the receiving UdpLayer), so it is the pooled one.
        sim = self.layer.sim
        size = nbytes + IP_HEADER_BYTES + UDP_HEADER_BYTES
        if sim.batch_egress:
            packet = sim.get_packet_pool().acquire(
                self.host.addr,
                dst,
                self.port,
                dport,
                PROTO_UDP,
                size,
                payload,
                self.dscp,
                DEFAULT_TTL,
                sim._now,
            )
        else:
            packet = Packet(
                self.host.addr,
                dst,
                self.port,
                dport,
                PROTO_UDP,
                size,
                payload,
                self.dscp,
                DEFAULT_TTL,
                sim._now,
            )
        self.tx_datagrams += 1
        self.tx_bytes += nbytes
        accepted = self.host.send_packet(packet)
        if not accepted:
            # Refused at the local egress queue — the packet is dead
            # and nothing downstream saw it; reclaim its slot.
            pool = sim.packet_pool
            if pool is not None:
                pool.release(packet)
        return accepted

    def recvfrom(self) -> Event:
        """Event yielding ``(payload_bytes, src_addr, sport, payload)``."""
        if self.closed:
            raise RuntimeError("socket is closed")
        return self._inbox.get()

    def _on_datagram(self, packet: Packet) -> None:
        if self.closed:
            return
        app_bytes = packet.size - IP_HEADER_BYTES - UDP_HEADER_BYTES
        self._inbox.put((app_bytes, packet.src, packet.sport, packet.payload))

    def close(self) -> None:
        self.closed = True
        self.layer.close_socket(self)

    def __repr__(self) -> str:
        return f"<UdpSocket {self.host.name}:{self.port}>"
