"""Reservations as renewable leases.

A GARA reservation is a one-shot grant: revoke it (or break its path)
and the application is simply without QoS. A :class:`Lease` turns the
grant into a supervised obligation: a heartbeat watches the underlying
reservation, external revocation or a path failure degrades the lease,
and a retry loop re-admits with exponential backoff plus jitter. After
``max_retries`` consecutive failed re-admissions the lease is lost and
the terminal ``on_lost`` callback fires with a :class:`ReservationLost`.

For network reservations the heartbeat additionally validates the
broker claims: a claim whose egress interface sits on a downed link
reserves capacity on a path that no longer exists, so the lease cancels
(releasing the stale slot-table entries) and re-admits — landing on
whatever path routing now uses.

All backoff jitter is drawn from the simulator RNG, so recovery
timelines are reproducible for a fixed seed.
"""

from __future__ import annotations

from typing import Any, Callable, List, Optional, Sequence

from ..gara import CANCELLED, EXPIRED, Gara, Reservation, ReservationError

__all__ = [
    "backoff_delay",
    "Lease",
    "LeaseManager",
    "ReservationLost",
    "LEASE_ACQUIRING",
    "LEASE_HELD",
    "LEASE_DEGRADED",
    "LEASE_LOST",
    "LEASE_CLOSED",
]

def backoff_delay(attempt: int, base: float, cap: float, jitter: float, rng) -> float:
    """Capped exponential backoff: ``min(cap, base * 2**attempt)``
    scaled by a uniform ±``jitter`` fraction drawn from ``rng`` (any
    object with a ``random()`` method — the simulator RNG here, a
    seeded ``random.Random`` in the broker client). The single shared
    formula keeps lease re-admission and wire-client retry timelines
    directly comparable; no draw is consumed when ``jitter`` is 0.
    """
    delay = min(cap, base * (2.0 ** attempt))
    if jitter:
        delay *= 1.0 + jitter * (2.0 * rng.random() - 1.0)
    return delay


LEASE_ACQUIRING = "ACQUIRING"  # first admission not yet granted
LEASE_HELD = "HELD"  # reservation in place, heartbeat running
LEASE_DEGRADED = "DEGRADED"  # reservation lost; retrying admission
LEASE_LOST = "LOST"  # retries exhausted (terminal)
LEASE_CLOSED = "CLOSED"  # closed by the holder (terminal)


class ReservationLost(ReservationError):
    """A lease exhausted its re-admission budget (terminal)."""


class Lease:
    """One supervised reservation. Create via :meth:`LeaseManager.lease`."""

    def __init__(
        self,
        manager: "LeaseManager",
        spec: Any,
        duration: Optional[float],
        bindings: Sequence[Any],
        on_degraded: Optional[Callable[["Lease", str], None]] = None,
        on_restored: Optional[Callable[["Lease"], None]] = None,
        on_lost: Optional[Callable[["Lease", ReservationLost], None]] = None,
    ) -> None:
        self.manager = manager
        self.sim = manager.sim
        self.spec = spec
        self.bindings = list(bindings)
        self.on_degraded = on_degraded
        self.on_restored = on_restored
        self.on_lost = on_lost
        #: Absolute lease deadline (inf = until closed).
        self.deadline = (
            float("inf") if duration is None else self.sim.now + float(duration)
        )
        self.state = LEASE_ACQUIRING
        #: The current underlying reservation (None while degraded).
        self.reservation: Optional[Reservation] = None
        self.last_error: Optional[str] = None
        # Statistics.
        self.degradations = 0
        self.readmissions = 0
        self.retries = 0  # within the current degradation episode
        self._heartbeat_timer = None
        self._retry_timer = None
        self._expected_cancel = False
        self._suspended = False
        self._attempt_acquire(initial=True)

    # -- state ------------------------------------------------------------

    @property
    def held(self) -> bool:
        return self.state == LEASE_HELD

    @property
    def finished(self) -> bool:
        return self.state in (LEASE_LOST, LEASE_CLOSED)

    # -- public control ----------------------------------------------------

    def close(self) -> None:
        """Release the lease (cancels the reservation; idempotent)."""
        if self.finished:
            return
        self._stop_timers()
        self._cancel_reservation()
        self.state = LEASE_CLOSED
        self.manager._forget(self)

    def check(self) -> None:
        """Run one health check now (normally heartbeat-driven)."""
        if self.state != LEASE_HELD or self._suspended:
            return
        if self.sim.now >= self.deadline:
            self.close()
            return
        stale = self._staleness()
        if stale is not None:
            self._degrade(stale)

    def retry_now(self) -> None:
        """Collapse a degraded lease's backoff wait and re-admit
        immediately — used when a failure detector observes the broker
        coming back, so recovery is event-driven instead of waiting out
        the exponential delay."""
        if self.state != LEASE_DEGRADED or self._suspended:
            return
        if self._retry_timer is not None:
            self._retry_timer.cancel()
            self._retry_timer = None
        self._attempt_acquire()

    # -- internals ---------------------------------------------------------

    def _stop_timers(self) -> None:
        for timer in (self._heartbeat_timer, self._retry_timer):
            if timer is not None:
                timer.cancel()
        self._heartbeat_timer = None
        self._retry_timer = None

    def _cancel_reservation(self) -> None:
        reservation = self.reservation
        self.reservation = None
        if reservation is not None and not reservation.finished:
            self._expected_cancel = True
            try:
                reservation.cancel()
            except ReservationError:
                # A dead manager/broker cannot take the release; the
                # claim will be reclaimed by write-behind flush or
                # orphan GC after recovery. The lease moves on.
                pass
            finally:
                self._expected_cancel = False

    def _remaining_duration(self) -> Optional[float]:
        if self.deadline == float("inf"):
            return None
        return self.deadline - self.sim.now

    def _pause(self) -> None:
        """Freeze supervision (agent control session crashed): stop the
        heartbeat and any pending retry without changing lease state."""
        if self._suspended or self.finished:
            return
        self._suspended = True
        self._stop_timers()

    def _resume(self) -> None:
        """Thaw supervision after :meth:`_pause`: re-arm the heartbeat
        (held) or retry immediately (degraded)."""
        if not self._suspended or self.finished:
            return
        self._suspended = False
        if self.state == LEASE_HELD:
            self._arm_heartbeat()
        elif self.state == LEASE_DEGRADED:
            self._attempt_acquire()

    def _attempt_acquire(self, initial: bool = False) -> None:
        if self.finished or self._suspended:
            return
        if self.sim.now >= self.deadline:
            self.close()
            return
        try:
            reservation = self.manager.gara.reserve(
                self.spec, duration=self._remaining_duration()
            )
            for binding in self.bindings:
                self.manager.gara.bind(reservation, binding)
        except ReservationError as exc:
            self.last_error = str(exc)
            if initial:
                self.state = LEASE_DEGRADED
            self._schedule_retry()
            return
        reservation.register_callback(self._on_reservation_transition)
        self.reservation = reservation
        was_degraded = self.state == LEASE_DEGRADED
        self.state = LEASE_HELD
        self.retries = 0
        self.last_error = None
        if was_degraded:
            self.readmissions += 1
            if self.on_restored is not None:
                self.on_restored(self)
        self._arm_heartbeat()

    def _arm_heartbeat(self) -> None:
        if self._heartbeat_timer is not None:
            self._heartbeat_timer.cancel()
        self._heartbeat_timer = self.sim.call_in(
            self.manager.heartbeat, self._on_heartbeat
        )

    def _on_heartbeat(self) -> None:
        self._heartbeat_timer = None
        self.check()
        if self.state == LEASE_HELD:
            self._arm_heartbeat()

    def _staleness(self) -> Optional[str]:
        """Why the held reservation is no longer sound, or None."""
        reservation = self.reservation
        if reservation is None or reservation.finished:
            return "reservation gone"
        return self.manager._check_claims(reservation)

    def _on_reservation_transition(self, reservation, old, new) -> None:
        if self.finished or self._expected_cancel:
            return
        if reservation is not self.reservation:
            return  # a superseded reservation's late transition
        if new == EXPIRED and self.sim.now >= self.deadline:
            # Natural end of a bounded lease, not a fault.
            self.reservation = None
            self.close()
            return
        if new in (CANCELLED, EXPIRED):
            self._degrade(f"reservation revoked ({new.lower()})")

    def _degrade(self, reason: str) -> None:
        if self.state != LEASE_HELD:
            return
        self.state = LEASE_DEGRADED
        self.degradations += 1
        self.retries = 0
        self.last_error = reason
        if self._heartbeat_timer is not None:
            self._heartbeat_timer.cancel()
            self._heartbeat_timer = None
        self._cancel_reservation()  # releases claims on the dead path
        if self.on_degraded is not None:
            self.on_degraded(self, reason)
        self._schedule_retry()

    def _schedule_retry(self) -> None:
        if self._suspended:
            return  # _resume() will re-attempt
        if self.retries >= self.manager.max_retries:
            self._lose()
            return
        delay = self.manager._backoff_delay(self.retries)
        self.retries += 1
        self._retry_timer = self.sim.call_in(delay, self._on_retry)

    def _on_retry(self) -> None:
        self._retry_timer = None
        self._attempt_acquire()

    def _lose(self) -> None:
        self._stop_timers()
        self.state = LEASE_LOST
        self.manager._forget(self)
        if self.on_lost is not None:
            self.on_lost(
                self,
                ReservationLost(
                    f"lease gave up after {self.manager.max_retries} "
                    f"re-admission attempts: {self.last_error}"
                ),
            )

    def __repr__(self) -> str:
        return (
            f"<Lease {self.state} retries={self.retries} "
            f"degradations={self.degradations} {self.spec!r}>"
        )


class LeaseManager:
    """Factory and supervisor for :class:`Lease` objects.

    Parameters
    ----------
    gara:
        The reservation facade leases go through.
    network:
        When given, the manager subscribes to topology changes so path
        failures are detected at reroute time rather than waiting for
        the next heartbeat.
    heartbeat:
        Seconds between health checks of a held lease.
    backoff_base, backoff_cap, jitter:
        Re-admission delay: ``min(cap, base * 2**attempt)`` scaled by a
        uniform ±``jitter`` fraction drawn from the simulator RNG.
    max_retries:
        Consecutive failed re-admissions before the lease is lost.
    """

    def __init__(
        self,
        gara: Gara,
        network=None,
        heartbeat: float = 0.25,
        backoff_base: float = 0.2,
        backoff_cap: float = 5.0,
        jitter: float = 0.25,
        max_retries: int = 12,
    ) -> None:
        if heartbeat <= 0:
            raise ValueError("heartbeat must be positive")
        if backoff_base <= 0 or backoff_cap < backoff_base:
            raise ValueError("invalid backoff bounds")
        if not 0 <= jitter < 1:
            raise ValueError("jitter must be in [0, 1)")
        if max_retries < 1:
            raise ValueError("max_retries must be at least 1")
        self.gara = gara
        self.sim = gara.sim
        self.network = network
        self.heartbeat = heartbeat
        self.backoff_base = backoff_base
        self.backoff_cap = backoff_cap
        self.jitter = jitter
        self.max_retries = max_retries
        self.leases: List[Lease] = []
        if network is not None:
            network.topology_listeners.append(self._on_topology_change)

    def lease(
        self,
        spec: Any,
        duration: Optional[float] = None,
        bindings: Sequence[Any] = (),
        on_degraded: Optional[Callable[[Lease, str], None]] = None,
        on_restored: Optional[Callable[[Lease], None]] = None,
        on_lost: Optional[Callable[[Lease, ReservationLost], None]] = None,
    ) -> Lease:
        """Acquire a supervised reservation for ``spec``.

        ``bindings`` are re-bound to every re-admitted reservation, so
        enforcement (flow marking, CPU shares) follows the lease across
        failures.
        """
        lease = Lease(
            self, spec, duration, bindings, on_degraded, on_restored, on_lost
        )
        if not lease.finished:
            self.leases.append(lease)
        return lease

    # -- plumbing -----------------------------------------------------------

    def _forget(self, lease: Lease) -> None:
        if lease in self.leases:
            self.leases.remove(lease)

    def _backoff_delay(self, attempt: int) -> float:
        return backoff_delay(
            attempt, self.backoff_base, self.backoff_cap, self.jitter,
            self.sim.rng,
        )

    def _check_claims(self, reservation: Reservation) -> Optional[str]:
        """Staleness reason for a reservation's broker claims, or None.

        Only network reservations have path claims; other resource
        types have nothing to invalidate here.
        """
        manager = reservation.manager
        claims_of = getattr(manager, "claims_of", None)
        broker = getattr(manager, "broker", None)
        if claims_of is None or broker is None:
            return None
        if not getattr(broker, "alive", True):
            # Crashed broker: the claims cannot be validated (and the
            # slot-table state backing them is gone until replay), so
            # the lease degrades to best-effort rather than trusting a
            # grant nobody is accounting for.
            return "bandwidth broker down"
        claims = claims_of(reservation)
        if claims and not broker.claims_valid(claims):
            return "path failed under the reservation"
        return None

    def _on_topology_change(self) -> None:
        # Defer one tick: build_routes may be running inside another
        # component's callback; a zero-delay timer keeps ordering clean.
        self.sim.call_in(0.0, self._check_all)

    def _check_all(self) -> None:
        for lease in list(self.leases):
            lease.check()

    # -- failure-detector / crash hooks -------------------------------------

    def recheck(self) -> None:
        """Health-check every lease now — wired to a failure detector's
        ``on_down`` so held leases degrade as soon as the broker is
        suspected dead instead of at the next heartbeat."""
        self._check_all()

    def poke_degraded(self) -> None:
        """Collapse backoff on every degraded lease — wired to a
        failure detector's ``on_up`` so re-admission happens as soon as
        the broker is observed back."""
        for lease in list(self.leases):
            lease.retry_now()

    def suspend(self) -> None:
        """Freeze supervision of every lease (the owning agent's
        control session crashed)."""
        for lease in list(self.leases):
            lease._pause()

    def resume(self) -> None:
        """Thaw supervision after :meth:`suspend`."""
        for lease in list(self.leases):
            lease._resume()

    def __repr__(self) -> str:
        return f"<LeaseManager {len(self.leases)} leases hb={self.heartbeat}s>"
