"""Probabilistic packet impairments.

Injectors are egress-side fault models attached to an
:class:`~repro.net.node.Interface` via ``iface.impairments``. Each is a
callable ``(packet) -> bool`` returning True when the packet is
destroyed. All randomness is drawn from the owning simulator's seeded
generator, so chaos runs replay bit-identically for a given
``Simulator(seed=...)``.
"""

from __future__ import annotations

from typing import List

from ..kernel import Simulator
from ..net.node import Interface
from ..net.packet import Packet

__all__ = ["LossInjector", "CorruptionInjector"]


class _Injector:
    """Base: Bernoulli per-packet fault drawn from the simulator RNG."""

    #: Counter attribute name on the injector (subclass cosmetic).
    kind = "faulted"

    def __init__(self, sim: Simulator, probability: float) -> None:
        if not 0.0 <= probability <= 1.0:
            raise ValueError(f"probability must be in [0, 1], got {probability}")
        self.sim = sim
        self.probability = probability
        #: Packets destroyed by this injector.
        self.count = 0
        self._installed_on: List[Interface] = []

    def __call__(self, packet: Packet) -> bool:
        # Zero-probability injectors never fault; skipping the draw
        # also keeps them out of the seeded RNG stream entirely.
        if self.probability <= 0.0:
            return False
        if self.sim.rng.random() < self.probability:
            self.count += 1
            return True
        return False

    # -- installation -----------------------------------------------------

    def install(self, *ifaces: Interface) -> "_Injector":
        """Attach to the given interfaces' egress paths."""
        for iface in ifaces:
            iface.impairments.append(self)
            self._installed_on.append(iface)
        return self

    def remove(self) -> None:
        """Detach from every interface it was installed on."""
        for iface in self._installed_on:
            if self in iface.impairments:
                iface.impairments.remove(self)
        self._installed_on.clear()

    def __repr__(self) -> str:
        return (
            f"<{type(self).__name__} p={self.probability:.3f} "
            f"{self.kind}={self.count}>"
        )


class LossInjector(_Injector):
    """Drops each egress packet with the given probability (a flaky
    link losing frames independently of congestion)."""

    kind = "lost"


class CorruptionInjector(_Injector):
    """Corrupts each egress packet with the given probability.

    A corrupted frame fails the receiver's checksum and is discarded,
    so at this abstraction level corruption is loss with a separate
    cause — kept distinct because real QoS post-mortems care which one
    it was.
    """

    kind = "corrupted"
