"""Fault injection and resilience: link/router failures, probabilistic
packet impairments, chaos schedules, and renewable reservation leases.

The paper's premise is that QoS guarantees matter most under hostile
network conditions. This package supplies the hostile conditions — and
the recovery machinery that keeps MPICH-GQ's guarantees meaningful
through them:

``repro.faults.injectors``
    Seeded probabilistic loss/corruption injectors for interfaces.
``repro.faults.chaos``
    :class:`ChaosSchedule`, a deterministic scripted fault timeline
    (``at(t).fail_link(...)``, ``between(a, b).loss(p, ...)``).
``repro.faults.lease``
    :class:`LeaseManager`/:class:`Lease`: reservations as renewable
    leases with heartbeat revocation detection and exponential-backoff
    re-admission.
"""

from .chaos import ChaosSchedule
from .injectors import CorruptionInjector, LossInjector
from .lease import (
    backoff_delay,
    Lease,
    LeaseManager,
    ReservationLost,
    LEASE_ACQUIRING,
    LEASE_HELD,
    LEASE_DEGRADED,
    LEASE_LOST,
    LEASE_CLOSED,
)

__all__ = [
    "backoff_delay",
    "ChaosSchedule",
    "CorruptionInjector",
    "LEASE_ACQUIRING",
    "LEASE_CLOSED",
    "LEASE_DEGRADED",
    "LEASE_HELD",
    "LEASE_LOST",
    "Lease",
    "LeaseManager",
    "LossInjector",
    "ReservationLost",
]
