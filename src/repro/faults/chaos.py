"""Scripted, deterministic fault timelines.

A :class:`ChaosSchedule` turns a test's failure scenario into a fluent
script over simulation time::

    chaos = ChaosSchedule(sim, network)
    chaos.at(5.0).fail_link("edge1", "core")
    chaos.at(9.0).restore_link("edge1", "core")
    chaos.between(2.0, 4.0).loss(0.05, "core", "edge2")

Everything is scheduled on the simulator heap at construction time and
all stochastic injectors draw from the simulator's seeded RNG, so the
same seed replays the identical fault trace.
"""

from __future__ import annotations

from typing import Callable, List

from ..kernel import Simulator
from ..net.topology import Network
from .injectors import CorruptionInjector, LossInjector, _Injector

__all__ = ["ChaosSchedule"]


class _Moment:
    """Actions bound to one instant of the schedule."""

    def __init__(self, schedule: "ChaosSchedule", time: float) -> None:
        self._schedule = schedule
        self._time = time

    def fail_link(self, a, b) -> "ChaosSchedule":
        """Take the a--b link down (and reroute) at this instant."""
        return self.call(self._schedule.network.fail_link, a, b)

    def restore_link(self, a, b) -> "ChaosSchedule":
        """Bring the a--b link back (and reroute) at this instant."""
        return self.call(self._schedule.network.restore_link, a, b)

    def fail_router(self, name) -> "ChaosSchedule":
        """Take every link of a router down at this instant."""
        return self.call(self._schedule._fail_router, name)

    def restore_router(self, name) -> "ChaosSchedule":
        return self.call(self._schedule._restore_router, name)

    def crash(self, component) -> "ChaosSchedule":
        """Crash a control-plane component (broker, resource manager,
        QoS agent...) at this instant. The component must expose
        ``crash()``/``restart()`` methods."""
        return self.call(self._crashable(component).crash)

    def restart(self, component) -> "ChaosSchedule":
        """Restart a previously crashed component at this instant."""
        return self.call(self._crashable(component).restart)

    @staticmethod
    def _crashable(component):
        if not callable(getattr(component, "crash", None)) or not callable(
            getattr(component, "restart", None)
        ):
            raise TypeError(
                f"{component!r} is not crash/restart capable "
                "(needs crash() and restart() methods)"
            )
        return component

    def call(self, fn: Callable, *args) -> "ChaosSchedule":
        """Schedule an arbitrary callback at this instant (clamped to
        now if the schedule is scripted mid-run with a past time)."""
        sim = self._schedule.sim
        sim.call_at(max(sim.now, self._time), fn, *args)
        return self._schedule


class _Window:
    """Impairments active over one [start, end) interval."""

    def __init__(self, schedule: "ChaosSchedule", start: float, end: float) -> None:
        if end <= start:
            raise ValueError("empty chaos window")
        self._schedule = schedule
        self._start = start
        self._end = end

    def _impair(self, injector: _Injector, a, b) -> "ChaosSchedule":
        schedule = self._schedule
        record = schedule.network.find_link(a, b)
        schedule.injectors.append(injector)
        now = schedule.sim.now
        schedule.sim.call_at(
            max(now, self._start), injector.install, record.iface_ab, record.iface_ba
        )
        schedule.sim.call_at(max(now, self._end), injector.remove)
        return schedule

    def loss(self, probability: float, a, b) -> "ChaosSchedule":
        """Drop packets on the a--b link (both directions) with the
        given probability during the window."""
        return self._impair(
            LossInjector(self._schedule.sim, probability), a, b
        )

    def corruption(self, probability: float, a, b) -> "ChaosSchedule":
        """Corrupt (and thereby lose) packets on the a--b link during
        the window."""
        return self._impair(
            CorruptionInjector(self._schedule.sim, probability), a, b
        )


class ChaosSchedule:
    """A deterministic fault timeline over one network."""

    def __init__(self, sim: Simulator, network: Network) -> None:
        self.sim = sim
        self.network = network
        #: Injectors created by ``between(...)`` clauses, for inspection.
        self.injectors: List[_Injector] = []

    def at(self, time: float) -> _Moment:
        """Bind instantaneous actions to absolute time ``time``."""
        return _Moment(self, time)

    def between(self, start: float, end: float) -> _Window:
        """Bind impairments to the interval ``[start, end)``."""
        return _Window(self, start, end)

    # -- router-level faults ----------------------------------------------

    def _router_links(self, name):
        router = self.network._resolve(name)
        return [
            record
            for record in self.network.links
            if router in (record.node_a, record.node_b)
        ]

    def _fail_router(self, name) -> None:
        for record in self._router_links(name):
            self.network.fail_link(record.node_a, record.node_b)

    def _restore_router(self, name) -> None:
        for record in self._router_links(name):
            self.network.restore_link(record.node_a, record.node_b)

    def __repr__(self) -> str:
        return f"<ChaosSchedule {len(self.injectors)} injectors>"
