"""Core event primitives for the discrete-event kernel.

The design follows the classic generator-based discrete-event pattern:
an :class:`Event` is a one-shot container for a value (or an exception)
plus a list of callbacks; a :class:`~repro.kernel.process.Process`
yields events to suspend itself until they trigger.

Events move through three states:

``pending``
    created but not yet given a value;
``triggered``
    a value (or failure) has been set and the event is scheduled on the
    simulator queue;
``processed``
    the simulator has popped the event and run its callbacks.
"""

from __future__ import annotations

from typing import Any, Callable, List, Optional

__all__ = [
    "Event",
    "Timeout",
    "AnyOf",
    "AllOf",
    "Interrupt",
    "PENDING",
    "URGENT",
    "NORMAL",
    "LOW",
]

#: Sentinel marking an event that has not yet been triggered.
PENDING = object()

# Scheduling priorities: lower sorts earlier among same-time entries.
URGENT = 0
NORMAL = 1
LOW = 2


class Interrupt(Exception):
    """Raised inside a process that another process interrupted.

    The interrupt ``cause`` is available both as ``exc.cause`` and as
    ``exc.args[0]``.
    """

    @property
    def cause(self) -> Any:
        return self.args[0] if self.args else None


class Event:
    """A one-shot occurrence that processes can wait on.

    Parameters
    ----------
    sim:
        The owning :class:`~repro.kernel.simulator.Simulator`.
    """

    __slots__ = ("sim", "callbacks", "_value", "_ok", "_defused")

    def __init__(self, sim) -> None:
        self.sim = sim
        #: Callbacks invoked (in order) when the event is processed.
        self.callbacks: Optional[List[Callable[["Event"], None]]] = []
        self._value: Any = PENDING
        self._ok: bool = True
        # A failed event whose exception was delivered to at least one
        # waiter is "defused"; undefused failures crash the simulation
        # rather than passing silently.
        self._defused: bool = False

    # -- state ---------------------------------------------------------

    @property
    def triggered(self) -> bool:
        """True once the event has a value and is scheduled."""
        return self._value is not PENDING

    @property
    def processed(self) -> bool:
        """True once callbacks have been run."""
        return self.callbacks is None

    @property
    def ok(self) -> bool:
        """True if the event succeeded (only meaningful once triggered)."""
        return self._ok

    @property
    def value(self) -> Any:
        """The event's value; raises if the event is still pending."""
        if self._value is PENDING:
            raise RuntimeError(f"{self!r} has not been triggered")
        return self._value

    # -- triggering ----------------------------------------------------

    def succeed(self, value: Any = None, priority: int = NORMAL) -> "Event":
        """Trigger the event successfully with ``value``."""
        if self._value is not PENDING:
            raise RuntimeError(f"{self!r} has already been triggered")
        self._ok = True
        self._value = value
        self.sim._schedule(self, 0.0, priority)
        return self

    def fail(self, exception: BaseException, priority: int = NORMAL) -> "Event":
        """Trigger the event with an exception."""
        if self._value is not PENDING:
            raise RuntimeError(f"{self!r} has already been triggered")
        if not isinstance(exception, BaseException):
            raise TypeError(f"{exception!r} is not an exception")
        self._ok = False
        self._value = exception
        self.sim._schedule(self, 0.0, priority)
        return self

    def trigger(self, event: "Event") -> None:
        """Trigger this event with the state of another (for chaining)."""
        if event._ok:
            self.succeed(event._value)
        else:
            event._defused = True
            self.fail(event._value)

    def __repr__(self) -> str:
        state = (
            "processed"
            if self.processed
            else ("triggered" if self.triggered else "pending")
        )
        return f"<{type(self).__name__} {state} at {id(self):#x}>"


class Timeout(Event):
    """An event that triggers ``delay`` seconds after its creation."""

    __slots__ = ("delay",)

    def __init__(self, sim, delay: float, value: Any = None) -> None:
        if delay < 0:
            raise ValueError(f"negative timeout delay {delay!r}")
        super().__init__(sim)
        self.delay = delay
        self._ok = True
        self._value = value
        sim._schedule(self, delay, NORMAL)


class _Condition(Event):
    """Base for AnyOf / AllOf composite events."""

    __slots__ = ("events", "_n_done")

    def __init__(self, sim, events) -> None:
        super().__init__(sim)
        self.events = tuple(events)
        self._n_done = 0
        for ev in self.events:
            if ev.sim is not sim:
                raise ValueError("cannot mix events from different simulators")
        # Check already-processed events immediately, subscribe to others.
        for ev in self.events:
            if ev.callbacks is None:
                self._check(ev)
            else:
                ev.callbacks.append(self._check)
        if not self.events and not self.triggered:
            # Vacuous conditions trigger immediately.
            self.succeed(self._collect())

    def _collect(self) -> list:
        # Only events whose callbacks have run count as "happened";
        # a Timeout holds its value from construction, so checking
        # `triggered` would wrongly include still-future timeouts.
        return [ev._value for ev in self.events if ev.callbacks is None]

    def _check(self, event: Event) -> None:
        if self.triggered:
            return
        if not event._ok:
            event._defused = True
            self.fail(event._value)
            return
        self._n_done += 1
        if self._satisfied():
            self.succeed(self._collect())

    def _satisfied(self) -> bool:  # pragma: no cover - abstract
        raise NotImplementedError


class AnyOf(_Condition):
    """Triggers as soon as any of the given events triggers."""

    __slots__ = ()

    def _satisfied(self) -> bool:
        return self._n_done >= 1


class AllOf(_Condition):
    """Triggers once all of the given events have triggered."""

    __slots__ = ()

    def _satisfied(self) -> bool:
        return self._n_done >= len(self.events)
