"""Discrete-event simulation kernel.

The kernel is deliberately small: events, generator processes, a
deterministic clock/heap, waitable stores, and measurement monitors.
Everything else in :mod:`repro` (network, TCP, CPU scheduling, MPI) is
built on these primitives.
"""

from .events import (
    AllOf,
    AnyOf,
    Event,
    Interrupt,
    LOW,
    NORMAL,
    Timeout,
    URGENT,
)
from .monitor import Counter, Monitor
from .process import Process
from .resources import Resource, Store
from .simulator import SimulationError, Simulator, TimerHandle

__all__ = [
    "AllOf",
    "AnyOf",
    "Counter",
    "Event",
    "Interrupt",
    "LOW",
    "Monitor",
    "NORMAL",
    "Process",
    "Resource",
    "SimulationError",
    "Simulator",
    "Store",
    "TimerHandle",
    "Timeout",
    "URGENT",
]
