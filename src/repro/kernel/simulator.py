"""The discrete-event simulator core.

:class:`Simulator` owns the event heap and the simulation clock. Two
styles of concurrency are supported and freely mixed:

* **generator processes** (:meth:`Simulator.process`) for application
  logic that reads naturally as sequential code, and
* **raw timer callbacks** (:meth:`Simulator.call_in` /
  :meth:`Simulator.call_at` / :meth:`Simulator.call_fast`) for hot
  data-path code (packet transmission, TCP timers) where per-event
  generator overhead would dominate.

Determinism: ties in time are broken by an explicit priority and then
by insertion order, so a simulation with a fixed RNG seed is exactly
reproducible.

Hot-path design
---------------
Heap entries are plain tuples tagged by their fourth element so the run
loop dispatches without ``isinstance``:

* ``(time, priority, seq, _FAST, fn, arg)`` — a fire-and-forget
  single-argument timer from :meth:`Simulator.call_fast`. No handle is
  allocated; it cannot be cancelled. Used for per-packet transmission
  and propagation timers.
* ``(time, priority, seq, _EVENT, event)`` — an :class:`Event` whose
  callbacks run when popped.
* ``(time, priority, seq, gen, handle)`` with ``gen >= 0`` — a
  cancellable :class:`TimerHandle`. ``gen`` is the handle's generation
  at push time; :meth:`Simulator.reschedule` bumps the generation so
  the old entry is recognised as dead when popped, letting TCP's
  cancel-and-rearm RTO pattern reuse one handle object instead of
  allocating a new one per ACK.

``seq`` is unique, so tuple comparison never reaches the tag and mixed
entry lengths are safe. Cancelled/superseded entries are discarded
lazily when popped; when more than half the heap is dead
(:data:`_COMPACT_MIN_DEAD` floor) the heap is compacted in one pass.
"""

from __future__ import annotations

import heapq
import math
import zlib
from itertools import count
from time import perf_counter
from typing import Any, Callable, Generator, Iterable, Optional

import numpy as np

from .events import AllOf, AnyOf, Event, NORMAL, Timeout
from .process import Process

__all__ = ["Simulator", "TimerHandle", "SimulationError"]

_heappush = heapq.heappush

# Entry type tags (heap entry element 3). Generations are >= 0, so any
# negative tag is a non-handle entry.
_FAST = -2
_EVENT = -1

#: Compaction never triggers below this many dead entries, so small
#: heaps are never rebuilt; above it, a >50% dead fraction triggers a
#: single-pass rebuild.
_COMPACT_MIN_DEAD = 64


class SimulationError(RuntimeError):
    """Raised when the simulation itself is misused or crashes."""


class TimerHandle:
    """A cancellable handle for a scheduled callback."""

    __slots__ = ("sim", "fn", "args", "time", "cancelled", "_gen")

    def __init__(self, sim: "Simulator", fn: Callable, args: tuple, time: float) -> None:
        self.sim = sim
        self.fn = fn
        self.args = args
        self.time = time
        self.cancelled = False
        self._gen = 0

    def cancel(self) -> None:
        """Prevent the callback from running (no-op if already run)."""
        if not self.cancelled:
            self.cancelled = True
            sim = self.sim
            sim._dead += 1
            if (
                sim._dead >= _COMPACT_MIN_DEAD
                and sim._dead * 2 > len(sim._queue)
            ):
                sim._compact()

    def __repr__(self) -> str:
        state = "cancelled" if self.cancelled else f"at t={self.time:.6f}"
        return f"<TimerHandle {getattr(self.fn, '__qualname__', self.fn)} {state}>"


class Simulator:
    """Event heap, clock, and factory for events and processes.

    Parameters
    ----------
    seed:
        Seed for :attr:`rng`, the simulation-wide NumPy random
        generator. All stochastic components draw from this generator
        so runs are reproducible.
    """

    # Slots keep the per-event clock/counter stores at fixed offsets
    # (the run loop writes _now and events_processed ~1M times/run).
    __slots__ = (
        "_now",
        "_queue",
        "_seq",
        "_dead",
        "_active_proc",
        "rng",
        "_seed",
        "_rng_streams",
        "events_processed",
        "events_credited",
        "mode",
        "batch_egress",
        "fluid",
        "packet_pool",
        "fluid_engine",
        "telemetry",
        "_profiler",
        "__weakref__",
    )

    #: Valid datapath fidelity modes (see the ``mode`` parameter).
    MODES = ("packet", "batch", "hybrid")

    def __init__(self, seed: int = 0, mode: str = "packet") -> None:
        if mode not in self.MODES:
            raise ValueError(
                f"unknown simulator mode {mode!r}; expected one of {self.MODES}"
            )
        self._now: float = 0.0
        self._queue: list = []
        # Monotonic insertion counter (C-level; only ever advanced
        # with next()) breaking (time, priority) ties deterministically.
        self._seq = count(1)
        # Estimated dead (cancelled or superseded) entries still in the
        # heap. May overcount when a handle is cancelled after firing;
        # compaction resets it to the truth.
        self._dead: int = 0
        self._active_proc: Optional[Process] = None
        self.rng: np.random.Generator = np.random.default_rng(seed)
        # Root seed for named substreams (see rng_stream); streams are
        # cached so repeated lookups return the same generator object.
        self._seed: int = seed
        self._rng_streams: dict = {}
        #: Number of live queue entries processed so far (for
        #: profiling). Dead entries skipped by the run loop do not
        #: count.
        self.events_processed: int = 0
        #: Datapath fidelity mode. ``"packet"`` (the default) is the
        #: byte-identical per-packet event chain. ``"batch"`` drains
        #: router egress bursts through one kernel callback per burst
        #: (arrival times stay analytic/exact; mid-burst preemption is
        #: approximated at burst granularity). ``"hybrid"`` additionally
        #: advances registered background aggregates as fluid rate
        #: envelopes between foreground packet events.
        self.mode = mode
        #: True when interfaces should use the batched egress path.
        self.batch_egress = mode != "packet"
        #: True when background aggregates advance analytically.
        self.fluid = mode == "hybrid"
        #: Logical events avoided by batching/fluid shortcuts. A burst
        #: of n packets drained in one callback credits n-1 (the
        #: collapsed per-packet tx-done events); a fluid aggregate
        #: credits the per-packet event chain it replaced. Always 0 in
        #: packet mode, so the pinned benchmark counts are untouched.
        self.events_credited: int = 0
        #: Struct-of-arrays packet slab (:class:`repro.net.slab.PacketPool`),
        #: created lazily by the first pooled allocator in batch/hybrid
        #: modes; stays None in packet mode.
        self.packet_pool = None
        #: Fluid background engine (:class:`repro.net.fluid.FluidEngine`),
        #: created lazily by the first registered aggregate in hybrid
        #: mode; stays None otherwise.
        self.fluid_engine = None
        #: Active :class:`repro.telemetry.Telemetry` session, or None.
        #: Instrumented layers throughout the stack read this; the
        #: disabled case is one attribute load and a None check.
        self.telemetry = None
        #: Event-loop profiler (:class:`repro.telemetry.SimProfiler`),
        #: installed by ``Telemetry.attach`` when profiling is on.
        self._profiler = None

    # -- clock ----------------------------------------------------------

    @property
    def now(self) -> float:
        """Current simulation time in seconds."""
        return self._now

    @property
    def effective_events(self) -> int:
        """Events processed plus events analytically avoided.

        In packet mode this equals :attr:`events_processed`. In batch
        and hybrid modes it adds :attr:`events_credited`, the
        per-packet events the batched egress and fluid aggregates
        collapsed, so throughput figures stay comparable across modes
        (same simulated work per effective event).
        """
        return self.events_processed + self.events_credited

    def get_packet_pool(self):
        """The struct-of-arrays packet slab, created on first use.

        Only meaningful in batch/hybrid modes — pooled allocators must
        check :attr:`batch_egress` before calling this.
        """
        pool = self.packet_pool
        if pool is None:
            from ..net.slab import PacketPool  # late: avoids kernel<->net cycle

            pool = self.packet_pool = PacketPool()
        return pool

    def get_fluid_engine(self):
        """The hybrid-mode fluid background engine, created on first
        use. Raises in non-hybrid modes — callers gate on
        :attr:`fluid`."""
        if not self.fluid:
            raise RuntimeError(
                "fluid aggregates need Simulator(mode='hybrid'), "
                f"this simulator is in {self.mode!r} mode"
            )
        engine = self.fluid_engine
        if engine is None:
            from ..net.fluid import FluidEngine  # late: avoids kernel<->net cycle

            engine = self.fluid_engine = FluidEngine(self)
        return engine

    @property
    def active_process(self) -> Optional[Process]:
        """The process currently being stepped, if any."""
        return self._active_proc

    @property
    def seed(self) -> int:
        """The seed this simulator was constructed with."""
        return self._seed

    def rng_stream(self, name: str) -> np.random.Generator:
        """A named random substream derived from the simulator seed.

        The stream for a given ``name`` depends only on ``(seed, name)``
        — never on how many other streams exist or in what order they
        were created — so components that draw from named streams
        produce the same values regardless of how a topology is
        partitioned across shards. This is the determinism contract
        sharded runs rely on: use ``rng_stream`` (not :attr:`rng`) for
        any randomness consumed at runtime in a scenario that must be
        shard-count invariant.
        """
        gen = self._rng_streams.get(name)
        if gen is None:
            gen = np.random.default_rng(
                [self._seed & 0xFFFFFFFF, zlib.crc32(name.encode("utf-8"))]
            )
            self._rng_streams[name] = gen
        return gen

    # -- scheduling -----------------------------------------------------

    def _schedule(self, item: Any, delay: float, priority: int) -> None:
        _heappush(
            self._queue, (self._now + delay, priority, next(self._seq), _EVENT, item)
        )

    def call_in(self, delay: float, fn: Callable, *args: Any) -> TimerHandle:
        """Run ``fn(*args)`` after ``delay`` seconds; returns a cancellable handle."""
        if delay < 0:
            raise ValueError(f"negative delay {delay!r}")
        time = self._now + delay
        handle = TimerHandle(self, fn, args, time)
        _heappush(self._queue, (time, NORMAL, next(self._seq), 0, handle))
        return handle

    def call_at(self, time: float, fn: Callable, *args: Any) -> TimerHandle:
        """Run ``fn(*args)`` at absolute simulation time ``time``.

        Raises :class:`ValueError` if ``time`` is already in the past,
        mirroring negative :meth:`call_in` delays. Callers that want
        "now or later" semantics must clamp explicitly with
        ``max(sim.now, time)``.
        """
        if time < self._now:
            raise ValueError(
                f"call_at time {time!r} is in the past (now={self._now})"
            )
        return self.call_in(time - self._now, fn, *args)

    def call_fast(self, delay: float, fn: Callable, arg: Any) -> None:
        """Run ``fn(arg)`` after ``delay`` seconds, fire-and-forget.

        The data-path fast lane: no :class:`TimerHandle` is allocated
        and the timer cannot be cancelled. Use for per-packet events
        (serialization done, propagation arrival) where handle
        allocation in :meth:`call_in` would dominate the run loop.
        """
        if delay < 0:
            raise ValueError(f"negative delay {delay!r}")
        _heappush(
            self._queue, (self._now + delay, NORMAL, next(self._seq), _FAST, fn, arg)
        )

    def reschedule(self, handle: TimerHandle, delay: float) -> TimerHandle:
        """Re-arm ``handle`` to fire ``delay`` seconds from now.

        Behaviourally identical to ``handle.cancel()`` followed by
        ``call_in(delay, handle.fn, *handle.args)`` (one sequence number
        is consumed either way, so event ordering is bit-identical) but
        reuses the handle object: the pending heap entry, if any, is
        orphaned by bumping the handle's generation and is discarded
        lazily. This is the TCP RTO pattern — one handle per
        connection, re-armed on nearly every ACK.
        """
        if delay < 0:
            raise ValueError(f"negative delay {delay!r}")
        if handle.cancelled:
            # The old entry was already counted dead when cancelled.
            handle.cancelled = False
        else:
            self._dead += 1
        handle._gen += 1
        handle.time = self._now + delay
        _heappush(
            self._queue, (handle.time, NORMAL, next(self._seq), handle._gen, handle)
        )
        if (
            self._dead >= _COMPACT_MIN_DEAD
            and self._dead * 2 > len(self._queue)
        ):
            self._compact()
        return handle

    def _compact(self) -> None:
        """Drop dead entries and re-heapify in one pass.

        (time, priority, seq) ordering of the survivors is unchanged —
        heapify re-establishes the heap invariant over the same total
        order the lazy path would have produced.
        """
        # In-place rebuild: the run loops keep a local alias to the
        # queue list, so the list object's identity must not change.
        self._queue[:] = [
            e
            for e in self._queue
            if e[3] < 0 or not (e[4].cancelled or e[4]._gen != e[3])
        ]
        heapq.heapify(self._queue)
        self._dead = 0

    # -- factories ------------------------------------------------------

    def event(self) -> Event:
        """A fresh untriggered event."""
        return Event(self)

    def timeout(self, delay: float, value: Any = None) -> Timeout:
        """An event that triggers after ``delay`` seconds."""
        return Timeout(self, delay, value)

    def process(self, generator: Generator, name: Optional[str] = None) -> Process:
        """Start a generator as a simulation process."""
        return Process(self, generator, name=name)

    def any_of(self, events: Iterable[Event]) -> AnyOf:
        return AnyOf(self, events)

    def all_of(self, events: Iterable[Event]) -> AllOf:
        return AllOf(self, events)

    # -- execution ------------------------------------------------------

    def peek(self) -> float:
        """Time of the next live queue entry, or ``inf`` if none.

        .. warning:: ``peek`` mutates the heap: dead entries (cancelled
           or superseded timers) at the head are popped and discarded
           so the returned time is that of real pending work.
        """
        queue = self._queue
        while queue:
            entry = queue[0]
            tag = entry[3]
            if tag >= 0:
                handle = entry[4]
                if handle.cancelled or handle._gen != tag:
                    heapq.heappop(queue)
                    if self._dead:
                        self._dead -= 1
                    continue
            return entry[0]
        return float("inf")

    def step(self) -> None:
        """Process exactly one live queue entry.

        Dead entries at the head are discarded without advancing the
        clock or counting toward :attr:`events_processed`; a queue
        holding only dead entries drains silently. An empty queue
        raises :class:`IndexError` (as ``heappop`` always has).
        """
        queue = self._queue
        if not queue:
            raise IndexError("step() on an empty event queue")
        while queue:
            entry = heapq.heappop(queue)
            tag = entry[3]
            if tag >= 0:
                handle = entry[4]
                if handle.cancelled or handle._gen != tag:
                    if self._dead:
                        self._dead -= 1
                    continue
            self._dispatch(entry)
            return

    def _dispatch(self, entry: tuple) -> None:
        """Advance the clock to a live entry and run it."""
        tag = entry[3]
        self._now = entry[0]
        self.events_processed += 1
        profiler = self._profiler
        if tag == _FAST:
            fn = entry[4]
            if profiler is None:
                fn(entry[5])
            else:
                started = perf_counter()
                fn(entry[5])
                profiler.record(fn, perf_counter() - started, len(self._queue))
            return
        if tag >= 0:
            handle = entry[4]
            if profiler is None:
                handle.fn(*handle.args)
            else:
                started = perf_counter()
                handle.fn(*handle.args)
                profiler.record(
                    handle.fn, perf_counter() - started, len(self._queue)
                )
            return
        self._dispatch_event(entry[0], entry[4], profiler, advance=False)

    def _dispatch_event(
        self,
        time: float,
        event: Event,
        profiler: Any,
        advance: bool = True,
    ) -> None:
        """Run an event's callbacks (the clock already sits at ``time``
        when called from :meth:`_dispatch`, which passes ``advance=False``)."""
        if advance:
            self._now = time
            self.events_processed += 1
        callbacks, event.callbacks = event.callbacks, None
        if profiler is None:
            for callback in callbacks:
                callback(event)
        else:
            for callback in callbacks:
                started = perf_counter()
                callback(event)
                profiler.record(
                    callback, perf_counter() - started, len(self._queue)
                )
        if not event._ok and not event._defused:
            exc = event._value
            raise SimulationError(
                f"unhandled failure in {event!r}: {exc!r}"
            ) from exc

    def run(self, until: Optional[float] = None) -> None:
        """Run until the queue drains or the clock reaches ``until``.

        When ``until`` is given the clock is advanced to exactly
        ``until`` even if the last processed entry was earlier.

        This is the hot loop: each iteration pops the head exactly once
        (no separate peek walk), dispatches on the entry's type tag,
        and skips dead entries without touching the clock or
        :attr:`events_processed`. The profiler is sampled once on
        entry, so installing one mid-run takes effect at the next
        ``run()`` call (``Telemetry.attach`` always precedes the run).
        """
        queue = self._queue
        pop = heapq.heappop
        timer = perf_counter
        profiler = self._profiler
        # Live entries are tallied locally and flushed on exit; nothing
        # reads events_processed mid-run (telemetry collects after).
        processed = 0
        try:
            if until is not None:
                if until < self._now:
                    raise ValueError(
                        f"until={until} is in the past (now={self._now})"
                    )
                while queue:
                    # Pop first, compare after: the common case (entry is
                    # due) then costs no head peek. An overshooting entry
                    # is pushed back unchanged — same tuple, same seq —
                    # so ordering is unaffected.
                    entry = pop(queue)
                    if entry[0] > until:
                        _heappush(queue, entry)
                        break
                    tag = entry[3]
                    if tag == _FAST:
                        self._now = entry[0]
                        processed += 1
                        fn = entry[4]
                        if profiler is None:
                            fn(entry[5])
                        else:
                            started = timer()
                            fn(entry[5])
                            profiler.record(fn, timer() - started, len(queue))
                    elif tag >= 0:
                        handle = entry[4]
                        if handle.cancelled or handle._gen != tag:
                            if self._dead:
                                self._dead -= 1
                            continue
                        self._now = entry[0]
                        processed += 1
                        if profiler is None:
                            handle.fn(*handle.args)
                        else:
                            started = timer()
                            handle.fn(*handle.args)
                            profiler.record(
                                handle.fn, timer() - started, len(queue)
                            )
                    else:
                        # Inlined _dispatch_event (see that method for
                        # the commentary); counts via the local tally.
                        self._now = entry[0]
                        processed += 1
                        event = entry[4]
                        callbacks, event.callbacks = event.callbacks, None
                        if profiler is None:
                            for callback in callbacks:
                                callback(event)
                        else:
                            for callback in callbacks:
                                started = timer()
                                callback(event)
                                profiler.record(
                                    callback, timer() - started, len(queue)
                                )
                        if not event._ok and not event._defused:
                            exc = event._value
                            raise SimulationError(
                                f"unhandled failure in {event!r}: {exc!r}"
                            ) from exc
                if until != float("inf"):
                    self._now = max(self._now, until)
            else:
                while queue:
                    entry = pop(queue)
                    tag = entry[3]
                    if tag == _FAST:
                        self._now = entry[0]
                        processed += 1
                        fn = entry[4]
                        if profiler is None:
                            fn(entry[5])
                        else:
                            started = timer()
                            fn(entry[5])
                            profiler.record(fn, timer() - started, len(queue))
                    elif tag >= 0:
                        handle = entry[4]
                        if handle.cancelled or handle._gen != tag:
                            if self._dead:
                                self._dead -= 1
                            continue
                        self._now = entry[0]
                        processed += 1
                        if profiler is None:
                            handle.fn(*handle.args)
                        else:
                            started = timer()
                            handle.fn(*handle.args)
                            profiler.record(
                                handle.fn, timer() - started, len(queue)
                            )
                    else:
                        # Inlined _dispatch_event, as in the until loop.
                        self._now = entry[0]
                        processed += 1
                        event = entry[4]
                        callbacks, event.callbacks = event.callbacks, None
                        if profiler is None:
                            for callback in callbacks:
                                callback(event)
                        else:
                            for callback in callbacks:
                                started = timer()
                                callback(event)
                                profiler.record(
                                    callback, timer() - started, len(queue)
                                )
                        if not event._ok and not event._defused:
                            exc = event._value
                            raise SimulationError(
                                f"unhandled failure in {event!r}: {exc!r}"
                            ) from exc
        finally:
            self.events_processed += processed

    def run_window(self, limit: float) -> None:
        """Process every queue entry with ``time < limit`` (strict).

        The conservative-PDES building block: a shard runs a lockstep
        window ``[now, limit)`` and stops with the clock at or before
        ``limit`` without consuming any entry at ``limit`` itself, so
        messages injected by peers *at* ``limit`` (the lookahead
        guarantee) are still in the future. Implemented on top of the
        inclusive :meth:`run` by stepping ``limit`` one ulp down, so
        the clock lands strictly below ``limit`` (the PDES runtime owns
        clock finalisation at the end of the whole run).
        """
        if limit <= self._now:
            return
        bound = math.nextafter(limit, -math.inf)
        if bound < self._now:  # limit is one ulp above now: nothing strictly inside
            return
        self.run(until=bound)

    def inject(self, time: float, priority: int, fn: Callable, arg: Any) -> None:
        """Schedule ``fn(arg)`` at absolute ``time`` from outside the run loop.

        The cross-shard delivery primitive: the PDES runtime turns a
        peer shard's egress message back into a local fast-path entry.
        ``time`` must not be in the past — conservative synchronization
        guarantees arrivals land at or after the current window start.
        """
        if time < self._now:
            raise SimulationError(
                f"inject at t={time!r} is in the past (now={self._now}); "
                "lookahead violated"
            )
        _heappush(self._queue, (time, priority, next(self._seq), _FAST, fn, arg))

    def run_until_event(self, event: Event, limit: float = float("inf")) -> Any:
        """Run until ``event`` is processed; returns its value.

        Raises :class:`SimulationError` if the queue drains or the time
        ``limit`` passes first.
        """
        queue = self._queue
        pop = heapq.heappop
        while not event.processed:
            # Prune dead heads so the drain/limit checks see real work.
            while queue:
                head = queue[0]
                tag = head[3]
                if tag >= 0:
                    handle = head[4]
                    if handle.cancelled or handle._gen != tag:
                        pop(queue)
                        if self._dead:
                            self._dead -= 1
                        continue
                break
            if not queue:
                raise SimulationError(f"queue drained before {event!r} triggered")
            if queue[0][0] > limit:
                raise SimulationError(f"time limit {limit} passed before {event!r}")
            self._dispatch(pop(queue))
        if not event.ok:
            raise event.value
        return event.value
