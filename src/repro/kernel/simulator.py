"""The discrete-event simulator core.

:class:`Simulator` owns the event heap and the simulation clock. Two
styles of concurrency are supported and freely mixed:

* **generator processes** (:meth:`Simulator.process`) for application
  logic that reads naturally as sequential code, and
* **raw timer callbacks** (:meth:`Simulator.call_in` /
  :meth:`Simulator.call_at`) for hot data-path code (packet
  transmission, TCP timers) where per-event generator overhead would
  dominate.

Determinism: ties in time are broken by an explicit priority and then
by insertion order, so a simulation with a fixed RNG seed is exactly
reproducible.
"""

from __future__ import annotations

import heapq
from time import perf_counter
from typing import Any, Callable, Generator, Iterable, Optional

import numpy as np

from .events import AllOf, AnyOf, Event, NORMAL, Timeout
from .process import Process

__all__ = ["Simulator", "TimerHandle", "SimulationError"]


class SimulationError(RuntimeError):
    """Raised when the simulation itself is misused or crashes."""


class TimerHandle:
    """A cancellable handle for a scheduled callback."""

    __slots__ = ("fn", "args", "time", "cancelled")

    def __init__(self, fn: Callable, args: tuple, time: float) -> None:
        self.fn = fn
        self.args = args
        self.time = time
        self.cancelled = False

    def cancel(self) -> None:
        """Prevent the callback from running (no-op if already run)."""
        self.cancelled = True

    def __repr__(self) -> str:
        state = "cancelled" if self.cancelled else f"at t={self.time:.6f}"
        return f"<TimerHandle {getattr(self.fn, '__qualname__', self.fn)} {state}>"


class Simulator:
    """Event heap, clock, and factory for events and processes.

    Parameters
    ----------
    seed:
        Seed for :attr:`rng`, the simulation-wide NumPy random
        generator. All stochastic components draw from this generator
        so runs are reproducible.
    """

    def __init__(self, seed: int = 0) -> None:
        self._now: float = 0.0
        self._queue: list = []
        self._seq: int = 0
        self._active_proc: Optional[Process] = None
        self.rng: np.random.Generator = np.random.default_rng(seed)
        #: Number of queue entries processed so far (for profiling).
        self.events_processed: int = 0
        #: Active :class:`repro.telemetry.Telemetry` session, or None.
        #: Instrumented layers throughout the stack read this; the
        #: disabled case is one attribute load and a None check.
        self.telemetry = None
        #: Event-loop profiler (:class:`repro.telemetry.SimProfiler`),
        #: installed by ``Telemetry.attach`` when profiling is on.
        self._profiler = None

    # -- clock ----------------------------------------------------------

    @property
    def now(self) -> float:
        """Current simulation time in seconds."""
        return self._now

    @property
    def active_process(self) -> Optional[Process]:
        """The process currently being stepped, if any."""
        return self._active_proc

    # -- scheduling -----------------------------------------------------

    def _schedule(self, item: Any, delay: float, priority: int) -> None:
        self._seq += 1
        heapq.heappush(self._queue, (self._now + delay, priority, self._seq, item))

    def call_in(self, delay: float, fn: Callable, *args: Any) -> TimerHandle:
        """Run ``fn(*args)`` after ``delay`` seconds; returns a cancellable handle."""
        if delay < 0:
            raise ValueError(f"negative delay {delay!r}")
        handle = TimerHandle(fn, args, self._now + delay)
        self._schedule(handle, delay, NORMAL)
        return handle

    def call_at(self, time: float, fn: Callable, *args: Any) -> TimerHandle:
        """Run ``fn(*args)`` at absolute simulation time ``time``."""
        return self.call_in(max(0.0, time - self._now), fn, *args)

    # -- factories ------------------------------------------------------

    def event(self) -> Event:
        """A fresh untriggered event."""
        return Event(self)

    def timeout(self, delay: float, value: Any = None) -> Timeout:
        """An event that triggers after ``delay`` seconds."""
        return Timeout(self, delay, value)

    def process(self, generator: Generator, name: Optional[str] = None) -> Process:
        """Start a generator as a simulation process."""
        return Process(self, generator, name=name)

    def any_of(self, events: Iterable[Event]) -> AnyOf:
        return AnyOf(self, events)

    def all_of(self, events: Iterable[Event]) -> AllOf:
        return AllOf(self, events)

    # -- execution ------------------------------------------------------

    def peek(self) -> float:
        """Time of the next queue entry, or ``inf`` if the queue is empty."""
        while self._queue:
            time, _prio, _seq, item = self._queue[0]
            if isinstance(item, TimerHandle) and item.cancelled:
                heapq.heappop(self._queue)
                continue
            return time
        return float("inf")

    def step(self) -> None:
        """Process exactly one queue entry."""
        time, _prio, _seq, item = heapq.heappop(self._queue)
        profiler = self._profiler
        if isinstance(item, TimerHandle):
            if item.cancelled:
                return
            self._now = time
            self.events_processed += 1
            if profiler is None:
                item.fn(*item.args)
            else:
                started = perf_counter()
                item.fn(*item.args)
                profiler.record(
                    item.fn, perf_counter() - started, len(self._queue)
                )
            return
        # Event: run its callbacks.
        self._now = time
        self.events_processed += 1
        callbacks, item.callbacks = item.callbacks, None
        if profiler is None:
            for callback in callbacks:
                callback(item)
        else:
            for callback in callbacks:
                started = perf_counter()
                callback(item)
                profiler.record(
                    callback, perf_counter() - started, len(self._queue)
                )
        if not item._ok and not item._defused:
            exc = item._value
            raise SimulationError(
                f"unhandled failure in {item!r}: {exc!r}"
            ) from exc

    def run(self, until: Optional[float] = None) -> None:
        """Run until the queue drains or the clock reaches ``until``.

        When ``until`` is given the clock is advanced to exactly
        ``until`` even if the last processed entry was earlier.
        """
        if until is not None:
            if until < self._now:
                raise ValueError(f"until={until} is in the past (now={self._now})")
            while self._queue:
                if self.peek() > until:
                    break
                self.step()
            self._now = max(self._now, until) if until != float("inf") else self._now
        else:
            while self._queue:
                self.step()

    def run_until_event(self, event: Event, limit: float = float("inf")) -> Any:
        """Run until ``event`` is processed; returns its value.

        Raises :class:`SimulationError` if the queue drains or the time
        ``limit`` passes first.
        """
        while not event.processed:
            next_time = self.peek()
            if next_time == float("inf"):
                raise SimulationError(f"queue drained before {event!r} triggered")
            if next_time > limit:
                raise SimulationError(f"time limit {limit} passed before {event!r}")
            self.step()
        if not event.ok:
            raise event.value
        return event.value
