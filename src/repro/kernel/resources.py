"""Waitable resources built on the event kernel.

:class:`Store` is the workhorse: an unbounded (or capacity-bounded)
FIFO channel used for inter-process message queues (e.g. the MPI
unexpected-message queue, listener accept queues).

:class:`Resource` is a counted lock (semaphore) used where mutual
exclusion between simulation processes is required.
"""

from __future__ import annotations

from collections import deque
from typing import Any, Deque, Optional

from .events import Event

__all__ = ["Store", "Resource"]


class Store:
    """A FIFO channel of Python objects.

    ``put(item)`` never blocks unless a ``capacity`` was given, in which
    case it returns an event that triggers when space is available.
    ``get()`` returns an event that triggers with the next item.
    """

    def __init__(self, sim, capacity: Optional[int] = None) -> None:
        if capacity is not None and capacity <= 0:
            raise ValueError("capacity must be positive")
        self.sim = sim
        self.capacity = capacity
        self.items: Deque[Any] = deque()
        self._getters: Deque[Event] = deque()
        self._putters: Deque[tuple] = deque()  # (event, item)

    def __len__(self) -> int:
        return len(self.items)

    def put(self, item: Any) -> Event:
        """Insert ``item``; returns an event (already triggered unless full)."""
        event = Event(self.sim)
        if self._getters:
            # Hand straight to the oldest waiting getter.
            getter = self._getters.popleft()
            getter.succeed(item)
            event.succeed()
        elif self.capacity is None or len(self.items) < self.capacity:
            self.items.append(item)
            event.succeed()
        else:
            self._putters.append((event, item))
        return event

    def get(self) -> Event:
        """Remove and return the next item (event-valued)."""
        event = Event(self.sim)
        if self.items:
            event.succeed(self.items.popleft())
            self._admit_putter()
        else:
            self._getters.append(event)
        return event

    def try_get(self) -> tuple[bool, Any]:
        """Non-blocking get: ``(True, item)`` or ``(False, None)``."""
        if self.items:
            item = self.items.popleft()
            self._admit_putter()
            return True, item
        return False, None

    def _admit_putter(self) -> None:
        if self._putters and (
            self.capacity is None or len(self.items) < self.capacity
        ):
            event, item = self._putters.popleft()
            self.items.append(item)
            event.succeed()


class Resource:
    """A counted resource (semaphore) with FIFO granting."""

    def __init__(self, sim, capacity: int = 1) -> None:
        if capacity <= 0:
            raise ValueError("capacity must be positive")
        self.sim = sim
        self.capacity = capacity
        self.in_use = 0
        self._waiters: Deque[Event] = deque()

    def request(self) -> Event:
        """Acquire one unit; the returned event triggers when granted."""
        event = Event(self.sim)
        if self.in_use < self.capacity:
            self.in_use += 1
            event.succeed()
        else:
            self._waiters.append(event)
        return event

    def release(self) -> None:
        """Release one unit, granting the oldest waiter if any."""
        if self.in_use <= 0:
            raise RuntimeError("release() without a matching request()")
        if self._waiters:
            self._waiters.popleft().succeed()
        else:
            self.in_use -= 1

    @property
    def queued(self) -> int:
        """Number of waiting requests."""
        return len(self._waiters)
