"""Measurement helpers: time-series recording and rate estimation.

Every experiment in the paper reports either a bandwidth-versus-time
trace (Figs 1, 8, 9), a throughput scalar (Figs 5, 6, Table 1), or a
sequence-number trace (Fig 7). These come from two primitives:

* :class:`Monitor` — records ``(t, value)`` samples;
* :class:`Counter` — records timestamped increments of a cumulative
  quantity (bytes delivered) and bins them into rates.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

import numpy as np

__all__ = ["Monitor", "Counter"]


class Monitor:
    """Records ``(time, value)`` samples for later analysis."""

    def __init__(self, sim, name: str = "") -> None:
        self.sim = sim
        self.name = name
        self.times: List[float] = []
        self.values: List[float] = []

    def record(self, value: float) -> None:
        """Append a sample at the current simulation time."""
        self.times.append(self.sim._now)
        self.values.append(value)

    def __len__(self) -> int:
        return len(self.times)

    def as_arrays(self) -> Tuple[np.ndarray, np.ndarray]:
        """Samples as ``(times, values)`` NumPy arrays."""
        return np.asarray(self.times), np.asarray(self.values)

    def mean(self) -> float:
        """Arithmetic mean of the recorded values (nan when empty)."""
        return float(np.mean(self.values)) if self.values else float("nan")

    def time_average(self, t_end: Optional[float] = None) -> float:
        """Time-weighted average, treating samples as a step function.

        Each sample holds from its timestamp until the next sample; the
        last sample holds until ``t_end`` (current simulation time by
        default). Earlier versions dropped that final interval, so the
        last recorded value never contributed — a sampler that records
        0 for nine seconds and 10 for the tenth averaged to exactly 0.
        """
        if not self.times:
            return self.mean()
        if t_end is None:
            t_end = self.sim.now
        t = np.asarray(self.times)
        v = np.asarray(self.values)
        end = max(float(t_end), float(t[-1]))
        dt = np.diff(np.append(t, end))
        total = dt.sum()
        if total <= 0:
            return self.mean()
        return float(np.dot(v, dt) / total)


class Counter:
    """A cumulative counter whose increments are timestamped.

    Used to turn "bytes delivered at time t" into bandwidth series and
    aggregate throughput. Increments are stored compactly as parallel
    lists and binned with :func:`numpy.histogram` — the hot path is a
    plain append.
    """

    def __init__(self, sim, name: str = "") -> None:
        self.sim = sim
        self.name = name
        self.times: List[float] = []
        self.amounts: List[float] = []
        self.total: float = 0.0

    def add(self, amount: float) -> None:
        """Record ``amount`` units at the current time."""
        self.times.append(self.sim._now)
        self.amounts.append(amount)
        self.total += amount

    def __len__(self) -> int:
        return len(self.times)

    def rate_series(
        self,
        binsize: float,
        t_start: float = 0.0,
        t_end: Optional[float] = None,
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Bin increments into per-``binsize`` rates.

        Returns ``(bin_centers, rates)`` where ``rates`` is in units
        per second.
        """
        if binsize <= 0:
            raise ValueError("binsize must be positive")
        if t_end is None:
            t_end = self.sim.now
        if t_end <= t_start:
            return np.array([]), np.array([])
        n_bins = max(1, int(np.ceil((t_end - t_start) / binsize)))
        edges = t_start + np.arange(n_bins + 1) * binsize
        if not self.times:
            return (edges[:-1] + edges[1:]) / 2.0, np.zeros(n_bins)
        sums, _ = np.histogram(
            np.asarray(self.times), bins=edges, weights=np.asarray(self.amounts)
        )
        return (edges[:-1] + edges[1:]) / 2.0, sums / binsize

    def rate_over(self, t_start: float, t_end: float) -> float:
        """Average rate (units/second) over ``[t_start, t_end)``."""
        if t_end <= t_start:
            raise ValueError("empty interval")
        t = np.asarray(self.times)
        a = np.asarray(self.amounts)
        if t.size == 0:
            return 0.0
        mask = (t >= t_start) & (t < t_end)
        return float(a[mask].sum() / (t_end - t_start))

    def cumulative_series(self) -> Tuple[np.ndarray, np.ndarray]:
        """``(times, running totals)`` — the Fig 7 sequence-number view."""
        t = np.asarray(self.times)
        return t, np.cumsum(np.asarray(self.amounts))
