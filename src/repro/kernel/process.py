"""Generator-based simulation processes.

A :class:`Process` drives a Python generator: each ``yield``\\ ed
:class:`~repro.kernel.events.Event` suspends the generator until the
event triggers, at which point the generator is resumed with the
event's value (or the event's exception is thrown into it).

A ``Process`` is itself an event that triggers when the generator
returns, so processes can wait on each other (``yield other_process``).
"""

from __future__ import annotations

from typing import Any, Generator, Optional

from .events import Event, Interrupt, NORMAL, PENDING, URGENT

__all__ = ["Process"]


class Process(Event):
    """Wraps a generator as a concurrently-running simulation process."""

    __slots__ = ("_generator", "_target", "name")

    def __init__(self, sim, generator: Generator, name: Optional[str] = None) -> None:
        if not hasattr(generator, "send") or not hasattr(generator, "throw"):
            raise TypeError(f"{generator!r} is not a generator")
        super().__init__(sim)
        self._generator = generator
        self.name = name or getattr(generator, "__name__", "process")
        #: The event this process is currently waiting on (None while
        #: running or once finished).
        self._target: Optional[Event] = None
        # Kick off the first step via an immediately-triggered event so
        # that process start is itself an ordinary queue entry.
        start = Event(sim)
        start._ok = True
        start._value = None
        start.callbacks.append(self._resume)
        sim._schedule(start, 0.0, URGENT)

    @property
    def is_alive(self) -> bool:
        """True while the generator has not finished."""
        return self._value is PENDING

    @property
    def target(self) -> Optional[Event]:
        """The event this process is currently suspended on."""
        return self._target

    def interrupt(self, cause: Any = None) -> None:
        """Throw :class:`Interrupt` into the process at the current time.

        The process stops waiting on its current target; the target
        event itself is unaffected and may still trigger later.
        """
        if not self.is_alive:
            raise RuntimeError(f"{self!r} has terminated and cannot be interrupted")
        if self.sim._active_proc is self:
            raise RuntimeError("a process cannot interrupt itself")
        # Detach from the current target so its later trigger does not
        # resume us a second time.
        if self._target is not None and self._target.callbacks is not None:
            try:
                self._target.callbacks.remove(self._resume)
            except ValueError:
                pass
        self._target = None
        failure = Event(self.sim)
        failure._ok = False
        failure._value = Interrupt(cause)
        failure._defused = True
        failure.callbacks.append(self._resume)
        self.sim._schedule(failure, 0.0, URGENT)

    # -- internal ------------------------------------------------------

    def _resume(self, event: Event) -> None:
        self._target = None
        self.sim._active_proc = self
        try:
            if event._ok:
                next_target = self._generator.send(event._value)
            else:
                event._defused = True
                next_target = self._generator.throw(event._value)
        except StopIteration as stop:
            self.sim._active_proc = None
            self._ok = True
            self._value = stop.value
            self.sim._schedule(self, 0.0, NORMAL)
            return
        except BaseException as exc:
            self.sim._active_proc = None
            self._ok = False
            self._value = exc
            self.sim._schedule(self, 0.0, NORMAL)
            return
        self.sim._active_proc = None
        if not isinstance(next_target, Event):
            raise TypeError(
                f"process {self.name!r} yielded {next_target!r}, expected an Event"
            )
        if next_target.callbacks is None:
            # Already processed: resume on the next queue step via a
            # fresh relay event carrying the same outcome.
            relay = Event(self.sim)
            relay._ok = next_target._ok
            relay._value = next_target._value
            if not relay._ok:
                relay._defused = True
                next_target._defused = True
            self._target = relay
            relay.callbacks.append(self._resume)
            self.sim._schedule(relay, 0.0, URGENT)
        else:
            self._target = next_target
            next_target.callbacks.append(self._resume)

    def __repr__(self) -> str:
        return f"<Process {self.name!r} {'alive' if self.is_alive else 'done'}>"
