"""CPU substrate: fluid processor sharing with DSRT-style reservations."""

from .scheduler import Cpu, CpuTask, Job

__all__ = ["Cpu", "CpuTask", "Job"]
