"""A fluid processor-sharing CPU model with soft real-time reservations.

This substitutes for the paper's DSRT scheduler (§5.5): DSRT "works by
overriding the Unix scheduler and performing soft real-time scheduling
of select processes". We model the CPU as a fluid resource:

* a task with a reservation is guaranteed its fraction of the CPU;
* leftover capacity is shared equally among best-effort tasks (or
  returned to reserved tasks when nothing else is runnable);
* when the runnable set or reservations change, rates are recomputed
  and the earliest job completion is (re)scheduled.

Quantum-level context switching is deliberately abstracted away — the
experiments only depend on *shares* over tens of milliseconds, which
the fluid model reproduces exactly.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from ..kernel import Event, Simulator, TimerHandle

__all__ = ["Cpu", "CpuTask", "Job"]

_EPS = 1e-12


class CpuTask:
    """A schedulable entity (think: a pid DSRT can reserve for)."""

    def __init__(self, cpu: "Cpu", name: str) -> None:
        self.cpu = cpu
        self.name = name
        #: Guaranteed CPU fraction in [0, 1); 0 means best effort.
        self.reservation = 0.0
        #: Total CPU-seconds consumed.
        self.cpu_time = 0.0

    def __repr__(self) -> str:
        r = f" res={self.reservation:.0%}" if self.reservation else ""
        return f"<CpuTask {self.name}{r}>"


class Job:
    """One unit of demanded work by a task."""

    __slots__ = ("task", "remaining", "event", "rate", "cancelled")

    def __init__(self, task: CpuTask, work: float, event: Event) -> None:
        self.task = task
        self.remaining = work
        self.event = event
        self.rate = 0.0
        self.cancelled = False

    def cancel(self) -> None:
        """Abandon the job; its completion event never triggers."""
        self.cancelled = True
        self.task.cpu._on_change()


class Cpu:
    """The processor-sharing scheduler for one host."""

    def __init__(self, sim: Simulator, host=None, name: str = "cpu") -> None:
        self.sim = sim
        self.name = name
        self.host = host
        if host is not None:
            host.cpu = self
        self._jobs: List[Job] = []
        self._last = 0.0
        self._timer: Optional[TimerHandle] = None
        self._tasks: Dict[str, CpuTask] = {}

    # -- tasks ----------------------------------------------------------

    def create_task(self, name: str) -> CpuTask:
        if name in self._tasks:
            raise ValueError(f"task {name!r} already exists on {self.name}")
        task = CpuTask(self, name)
        self._tasks[name] = task
        return task

    def task(self, name: str) -> CpuTask:
        return self._tasks[name]

    def set_reservation(self, task: CpuTask, fraction: float) -> None:
        """Grant ``task`` a guaranteed CPU fraction (DSRT reserve)."""
        if not 0.0 <= fraction < 1.0:
            raise ValueError("reservation fraction must be in [0, 1)")
        self._advance()
        task.reservation = fraction
        self._reallocate()

    def clear_reservation(self, task: CpuTask) -> None:
        self.set_reservation(task, 0.0)

    # -- work -------------------------------------------------------------

    def run(self, task: CpuTask, work: float) -> Event:
        """Demand ``work`` CPU-seconds; the event triggers on completion.

        ``work`` may be ``inf`` for a hog that runs until cancelled —
        keep the returned event's :class:`Job` via :meth:`run_job` if
        you need to cancel.
        """
        return self.run_job(task, work).event

    def run_job(self, task: CpuTask, work: float) -> Job:
        if work <= 0:
            raise ValueError("work must be positive")
        if task.cpu is not self:
            raise ValueError(f"{task!r} belongs to a different CPU")
        event = Event(self.sim)
        job = Job(task, work, event)
        self._advance()
        self._jobs.append(job)
        self._reallocate()
        return job

    @property
    def runnable(self) -> int:
        """Number of active jobs."""
        return len(self._jobs)

    def rate_of(self, task: CpuTask) -> float:
        """The task's current CPU share (0 if it has no active job)."""
        self._advance()
        self._reallocate(reschedule=False)
        return sum(j.rate for j in self._jobs if j.task is task)

    # -- internals -----------------------------------------------------------

    def _advance(self) -> None:
        """Apply progress at current rates since the last change."""
        now = self.sim.now
        dt = now - self._last
        if dt > 0:
            for job in self._jobs:
                if job.rate > 0:
                    done = dt * job.rate
                    job.remaining -= done
                    job.task.cpu_time += done
        self._last = now

    def _compute_rates(self) -> None:
        jobs = self._jobs
        if not jobs:
            return
        total_reserved = sum(j.task.reservation for j in jobs)
        scale = 1.0 / total_reserved if total_reserved > 1.0 else 1.0
        best_effort = [j for j in jobs if j.task.reservation == 0.0]
        leftover = max(0.0, 1.0 - min(total_reserved, 1.0))
        for job in jobs:
            job.rate = job.task.reservation * scale
        if best_effort:
            share = leftover / len(best_effort)
            for job in best_effort:
                job.rate = share
        elif leftover > 0 and total_reserved > 0:
            # Idle capacity flows back to the reserved tasks.
            for job in jobs:
                job.rate += leftover * job.task.reservation / total_reserved

    def _reallocate(self, reschedule: bool = True) -> None:
        # Finish any jobs that just completed.
        finished = [j for j in self._jobs if j.remaining <= _EPS or j.cancelled]
        if finished:
            self._jobs = [j for j in self._jobs if j not in finished]
            for job in finished:
                if not job.cancelled:
                    job.event.succeed(job.task.cpu_time)
        self._compute_rates()
        if not reschedule:
            return
        if self._timer is not None:
            self._timer.cancel()
            self._timer = None
        horizon = float("inf")
        for job in self._jobs:
            if job.rate > 0 and job.remaining != float("inf"):
                horizon = min(horizon, job.remaining / job.rate)
        if horizon != float("inf"):
            # Floor the horizon: a float-residue remaining would
            # otherwise schedule a tick that does not advance float
            # time, spinning the simulator at one timestamp.
            self._timer = self.sim.call_in(max(horizon, 1e-9), self._on_tick)

    def _on_tick(self) -> None:
        self._timer = None
        self._advance()
        self._reallocate()

    def _on_change(self) -> None:
        self._advance()
        self._reallocate()

    def __repr__(self) -> str:
        return f"<Cpu {self.name} jobs={len(self._jobs)}>"
