"""Application-level QoS specification (Fig 3 of the paper).

.. code-block:: c

    struct qos_attribute {
        u_int32_t qosclass;
        double bandwidth;        /* Peak bandwidth in kbps */
        int max_message_size;    /* Max size used in MPI_Send */
    } QoS, *Qos_p;

"The QoS class may be 'best-effort' (i.e., no QoS), 'low-latency'
(suitable for small message traffic: e.g., certain collective
operations), or 'premium'. The maximum message size allows us to
translate application reservation sizes to network reservation sizes,
because it is possible to calculate the amount of protocol overhead"
(§4.1).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Any, List, Optional

from ..transport.tcp.config import MSS_BYTES, SEGMENT_OVERHEAD_BYTES
from ..mpi.message import ENVELOPE_WIRE_BYTES

__all__ = [
    "QOS_BEST_EFFORT",
    "QOS_LOW_LATENCY",
    "QOS_PREMIUM",
    "QosAttribute",
    "protocol_overhead_factor",
]

QOS_BEST_EFFORT = 0
QOS_LOW_LATENCY = 1
QOS_PREMIUM = 2

_CLASS_NAMES = {
    QOS_BEST_EFFORT: "best-effort",
    QOS_LOW_LATENCY: "low-latency",
    QOS_PREMIUM: "premium",
}


def protocol_overhead_factor(
    max_message_size: int, mss: int = MSS_BYTES
) -> float:
    """Application-rate -> network-rate multiplier.

    Accounts for TCP/IP headers on every segment, the MPI envelope per
    message, and the ACK stream that shares the direction with the
    reverse flow. The paper observes a required factor of about 1.06
    for its visualization workload (§5.3); this calculation lands in
    the same range for KB-to-tens-of-KB messages.
    """
    if max_message_size <= 0:
        raise ValueError("max_message_size must be positive")
    n_segments = math.ceil(max_message_size / mss)
    wire = (
        max_message_size
        + n_segments * SEGMENT_OVERHEAD_BYTES
        + ENVELOPE_WIRE_BYTES
    )
    # Delayed ACKs of the reverse flow: one 40B ACK per two segments.
    ack_bytes = (n_segments / 2.0) * SEGMENT_OVERHEAD_BYTES
    return (wire + ack_bytes) / max_message_size


@dataclass
class QosAttribute:
    """The value applications put on the MPICH_QOS keyval.

    After ``attr_put`` the QoS agent fills in the outcome fields, so a
    subsequent ``attr_get`` "see[s] whether the requested QoS is
    available" (§4.1).
    """

    qosclass: int = QOS_BEST_EFFORT
    bandwidth_kbps: float = 0.0  # peak application bandwidth, Kb/s
    max_message_size: int = MSS_BYTES

    # -- outcome, written by the MPI QoS agent ---------------------------
    granted: bool = False
    error: Optional[str] = None
    #: GARA reservation handles backing this attribute.
    reservations: List[Any] = field(default_factory=list)
    #: Renewable leases backing this attribute (resilient mode only);
    #: while a lease is degraded the flows run best-effort and
    #: ``granted`` is False, flipping back once re-admission succeeds.
    leases: List[Any] = field(default_factory=list)
    #: Optional service-level objective (a :class:`repro.slo.SloSpec`)
    #: stating what the application *needs* from this QoS, as opposed
    #: to what it reserved. Typed loosely to keep ``repro.core`` free
    #: of a dependency on ``repro.slo`` (which builds on top of it).
    slo: Optional[Any] = None

    @property
    def bandwidth_bps(self) -> float:
        return self.bandwidth_kbps * 1e3

    @property
    def class_name(self) -> str:
        return _CLASS_NAMES.get(self.qosclass, f"class-{self.qosclass}")

    def network_bandwidth_bps(self) -> float:
        """Requested application rate inflated by protocol overhead."""
        return self.bandwidth_bps * protocol_overhead_factor(
            self.max_message_size
        )

    def __repr__(self) -> str:
        state = "granted" if self.granted else (self.error or "pending")
        return (
            f"QosAttribute({self.class_name}, {self.bandwidth_kbps:.0f}Kb/s, "
            f"max_msg={self.max_message_size}B, {state})"
        )
