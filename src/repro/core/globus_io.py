"""The globus_io-style socket wrapper.

"The globus-io library provides a convenient wrapper for the low-level
socket calls used to implement wide area transport; traffic shaping can
also be performed here" (§4). :class:`GlobusIoSocket` wraps a
:class:`~repro.transport.tcp.TcpConnection` and optionally paces writes
through a :class:`~repro.core.shaping.Shaper`.
"""

from __future__ import annotations

from typing import Any, Optional

from ..transport.tcp import TcpConnection
from .shaping import Shaper

__all__ = ["GlobusIoSocket"]


class GlobusIoSocket:
    """A thin, shapable wrapper over a TCP connection."""

    def __init__(
        self, connection: TcpConnection, shaper: Optional[Shaper] = None
    ) -> None:
        self.connection = connection
        self.shaper = shaper

    @property
    def sim(self):
        return self.connection.sim

    def set_shaper(self, shaper: Optional[Shaper]) -> None:
        """Attach/detach end-system traffic shaping."""
        self.shaper = shaper

    def send(self, nbytes: int, marker: Any = None):
        """Generator: (optionally shaped) blocking send."""
        if self.shaper is not None:
            yield from self.shaper.acquire(nbytes)
        yield from self.connection.send_message(nbytes, marker)

    def recv(self, max_bytes: int):
        """Blocking receive (event to yield)."""
        return self.connection.recv(max_bytes)

    def recv_object(self):
        """Blocking whole-message receive (event to yield)."""
        return self.connection.recv_object()

    def close(self) -> None:
        self.connection.close()
