"""Network weather monitoring (the paper's [35], Wolski's NWS).

§5.4 proposes computing the token-bucket size dynamically "by using
application-specific information and perhaps also dynamic network
performance data [35]". :class:`NetworkWeatherMonitor` supplies that
second input: it sends periodic UDP probes between two hosts (a
reflector echoes them), maintains EWMA forecasts of round-trip latency
and loss, and can feed the measured delay into the §4.3
``depth = bandwidth * delay`` rule via
:meth:`DynamicBucketSizer`-style consumers.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

from ..kernel import Simulator
from ..net.node import Host
from ..net.packet import PROTO_UDP
from ..transport.udp import UdpLayer

__all__ = ["NetworkWeatherMonitor", "WeatherForecast"]

_PROBE_BYTES = 64


@dataclass
class WeatherForecast:
    """Current path estimate."""

    rtt: Optional[float]  # smoothed round-trip time (s); None before data
    rtt_min: Optional[float]
    rtt_max: Optional[float]
    loss_rate: float  # fraction of recent probes lost
    samples: int


def _udp_layer(host: Host) -> UdpLayer:
    layer = host.protocols.get(PROTO_UDP)
    return layer if isinstance(layer, UdpLayer) else UdpLayer(host)


class NetworkWeatherMonitor:
    """Active path prober with EWMA forecasting."""

    ALPHA = 0.25  # EWMA gain
    LOSS_WINDOW = 20  # probes in the loss estimate

    def __init__(
        self,
        src: Host,
        dst: Host,
        interval: float = 0.5,
        timeout: float = 2.0,
        reflector_port: int = 9500,
    ) -> None:
        if interval <= 0 or timeout <= 0:
            raise ValueError("interval and timeout must be positive")
        self.sim: Simulator = src.sim
        self.src = src
        self.dst = dst
        self.interval = interval
        self.timeout = timeout
        self._socket = _udp_layer(src).create_socket()
        self._reflector = _udp_layer(dst).create_socket(port=reflector_port)
        self.reflector_port = reflector_port
        self._in_flight: Dict[int, float] = {}  # seq -> sent time
        self._next_seq = 0
        self._recent: list = []  # 1 = answered, 0 = lost (window)
        self.srtt: Optional[float] = None
        self.rtt_min: Optional[float] = None
        self.rtt_max: Optional[float] = None
        self.probes_sent = 0
        self.probes_answered = 0
        self._running = False

    # -- lifecycle ------------------------------------------------------

    def start(self) -> None:
        if self._running:
            return
        self._running = True
        self.sim.process(self._reflector_loop(), name="nws-reflector")
        self.sim.process(self._receive_loop(), name="nws-receiver")
        self.sim.process(self._probe_loop(), name="nws-prober")

    def stop(self) -> None:
        self._running = False

    # -- probing -----------------------------------------------------------

    def _probe_loop(self):
        while self._running:
            seq = self._next_seq
            self._next_seq += 1
            self._in_flight[seq] = self.sim.now
            self.probes_sent += 1
            self._socket.sendto(
                _PROBE_BYTES, self.dst.addr, self.reflector_port, payload=seq
            )
            self.sim.call_in(self.timeout, self._expire, seq)
            yield self.sim.timeout(self.interval)

    def _reflector_loop(self):
        while True:
            nbytes, src_addr, sport, payload = yield self._reflector.recvfrom()
            self._reflector.sendto(nbytes, src_addr, sport, payload=payload)

    def _receive_loop(self):
        while True:
            _nbytes, _src, _sport, seq = yield self._socket.recvfrom()
            sent = self._in_flight.pop(seq, None)
            if sent is None:
                continue  # answered after its timeout; already counted lost
            rtt = self.sim.now - sent
            self.probes_answered += 1
            self._record(answered=True)
            if self.srtt is None:
                self.srtt = rtt
            else:
                self.srtt += self.ALPHA * (rtt - self.srtt)
            self.rtt_min = rtt if self.rtt_min is None else min(self.rtt_min, rtt)
            self.rtt_max = rtt if self.rtt_max is None else max(self.rtt_max, rtt)

    def _expire(self, seq: int) -> None:
        if self._in_flight.pop(seq, None) is not None:
            self._record(answered=False)

    def _record(self, answered: bool) -> None:
        self._recent.append(1 if answered else 0)
        if len(self._recent) > self.LOSS_WINDOW:
            del self._recent[0]

    # -- forecasts -----------------------------------------------------------

    @property
    def loss_rate(self) -> float:
        if not self._recent:
            return 0.0
        return 1.0 - sum(self._recent) / len(self._recent)

    def forecast(self) -> WeatherForecast:
        return WeatherForecast(
            rtt=self.srtt,
            rtt_min=self.rtt_min,
            rtt_max=self.rtt_max,
            loss_rate=self.loss_rate,
            samples=self.probes_answered,
        )

    def bucket_depth_for(self, bandwidth_bps: float, fallback: float) -> float:
        """The §4.3 rule with *measured* delay:
        ``depth_bytes = bandwidth * delay / 8`` (``fallback`` until the
        first forecast exists)."""
        if self.srtt is None:
            return fallback
        return max(fallback, bandwidth_bps * self.srtt / 8.0)
