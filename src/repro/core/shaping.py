"""End-system traffic shaping.

§5.4's closing alternative to ever-larger router token buckets: "An
alternative approach is to incorporate traffic-shaping support into the
MPICH-GQ implementation on the end-system." A :class:`Shaper` paces
application writes through a token bucket *before* they reach TCP, so a
bursty application (1 frame/second) presents the network with the same
smooth profile as a 10 frames/second one.
"""

from __future__ import annotations

from ..diffserv.token_bucket import TokenBucket
from ..kernel import Simulator

__all__ = ["Shaper"]


class Shaper:
    """Token-bucket pacing of application sends."""

    __slots__ = ("sim", "bucket", "delayed_sends", "total_delay")

    def __init__(
        self, sim: Simulator, rate: float, depth_bytes: float
    ) -> None:
        """``rate`` in bits/second, ``depth_bytes`` the largest burst
        released without pacing."""
        self.sim = sim
        self.bucket = TokenBucket(rate, depth_bytes)
        self.bucket._last = sim.now
        self.delayed_sends = 0
        self.total_delay = 0.0

    @property
    def rate(self) -> float:
        return self.bucket.rate

    def reconfigure(self, rate: float = None, depth_bytes: float = None) -> None:
        self.bucket.reconfigure(rate=rate, depth=depth_bytes, now=self.sim.now)

    def acquire(self, nbytes: int):
        """Generator: block until ``nbytes`` conform to the profile.

        Oversized requests are admitted in depth-sized slices, so a
        single huge frame is smoothed rather than rejected.
        """
        remaining = nbytes
        while remaining > 0:
            chunk = min(remaining, int(self.bucket.depth))
            while True:
                wait = self.bucket.time_until_conforming(chunk, self.sim._now)
                if wait <= 0:
                    break
                self.delayed_sends += 1
                self.total_delay += wait
                yield self.sim.timeout(wait)
            if not self.bucket.consume(chunk, self.sim._now):
                raise RuntimeError("shaper accounting error")  # pragma: no cover
            remaining -= chunk
