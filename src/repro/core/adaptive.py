"""Adaptive reservation negotiation (§4.2's forward-looking goal).

"In the future, we will integrate the reservation process with MPI
startup and execution, so that, for example, an MPI program can select
from among alternative resources, according to their availability, and
adapt execution strategies or change reservations if reservations
cannot be satisfied in full or are preempted."

:class:`AdaptiveQosSession` implements that loop for one flow
direction: ask for the desired premium bandwidth; if admission fails,
consult the bandwidth broker for what *is* available and take it (down
to a floor); watch the reservation's lifecycle callbacks and
renegotiate when it expires or is preempted. The application reads
:attr:`granted_bps` to adapt (e.g. drop its frame rate).

The class is a thin shim over
:class:`repro.slo.AdaptationController`, which generalises the loop
into full closed-loop SLO supervision (violation detection, upward
renegotiation, a degradation ladder, bounded-flap restoration). A
session without a monitor *is* the controller in its legacy mode —
availability-driven only — with the same constructor surface,
counters, and listener contract as always.
"""

from __future__ import annotations

from typing import Optional

from ..slo.controller import AdaptationController
from .agent import MpiQosAgent

__all__ = ["AdaptiveQosSession"]


class AdaptiveQosSession(AdaptationController):
    """Keeps the best obtainable premium reservation for one direction."""

    def __init__(
        self,
        agent: MpiQosAgent,
        src_rank: int,
        dst_rank: int,
        desired_bps: float,
        minimum_bps: float = 0.0,
        renegotiate: bool = True,
        upgrade_interval: Optional[float] = 5.0,
    ) -> None:
        super().__init__(
            agent,
            src_rank,
            dst_rank,
            desired_bps,
            minimum_bps=minimum_bps,
            renegotiate=renegotiate,
            upgrade_interval=upgrade_interval,
            monitor=None,
        )

    def __repr__(self) -> str:
        return (
            f"<AdaptiveQosSession {self.src_rank}->{self.dst_rank} "
            f"granted={self.granted_bps / 1e3:.0f}Kb/s "
            f"of {self.desired_bps / 1e3:.0f}Kb/s>"
        )
