"""Adaptive reservation negotiation (§4.2's forward-looking goal).

"In the future, we will integrate the reservation process with MPI
startup and execution, so that, for example, an MPI program can select
from among alternative resources, according to their availability, and
adapt execution strategies or change reservations if reservations
cannot be satisfied in full or are preempted."

:class:`AdaptiveQosSession` implements that loop for one flow
direction: ask for the desired premium bandwidth; if admission fails,
consult the bandwidth broker for what *is* available and take it (down
to a floor); watch the reservation's lifecycle callbacks and
renegotiate when it expires or is preempted. The application reads
:attr:`granted_bps` to adapt (e.g. drop its frame rate).
"""

from __future__ import annotations

from typing import Callable, List, Optional

from ..gara import ReservationError
from .agent import MpiQosAgent

__all__ = ["AdaptiveQosSession"]


class AdaptiveQosSession:
    """Keeps the best obtainable premium reservation for one direction."""

    def __init__(
        self,
        agent: MpiQosAgent,
        src_rank: int,
        dst_rank: int,
        desired_bps: float,
        minimum_bps: float = 0.0,
        renegotiate: bool = True,
        upgrade_interval: Optional[float] = 5.0,
    ) -> None:
        if desired_bps <= 0:
            raise ValueError("desired bandwidth must be positive")
        if not 0 <= minimum_bps <= desired_bps:
            raise ValueError("need 0 <= minimum <= desired")
        if upgrade_interval is not None and upgrade_interval <= 0:
            raise ValueError("upgrade_interval must be positive or None")
        self.agent = agent
        self.sim = agent.world.sim
        self.src_rank = src_rank
        self.dst_rank = dst_rank
        self.desired_bps = desired_bps
        self.minimum_bps = minimum_bps
        self.renegotiate = renegotiate
        self.upgrade_interval = upgrade_interval
        self.reservation = None
        self.granted_bps = 0.0
        #: ``fn(session)`` invoked after every (re)negotiation.
        self.listeners: List[Callable] = []
        self.negotiations = 0
        self.upgrades = 0
        self._closed = False
        self.negotiate()
        if upgrade_interval is not None:
            self.sim.call_in(upgrade_interval, self._upgrade_tick)

    # -- negotiation ---------------------------------------------------------

    def _available_now(self) -> float:
        src = self.agent.world.procs[self.src_rank].host
        dst = self.agent.world.procs[self.dst_rank].host
        broker = self.agent.gara.manager("network").broker
        horizon = self.sim.now + 1.0
        return broker.path_available(src, dst, self.sim.now, horizon)

    def negotiate(self) -> float:
        """(Re)acquire the best available bandwidth; returns it (bps)."""
        if self._closed:
            return 0.0
        self.negotiations += 1
        for attempt_bps in self._candidates():
            try:
                reservation = self.agent.reserve_flows(
                    self.src_rank, self.dst_rank, attempt_bps
                )
            except ReservationError:
                continue
            self.reservation = reservation
            self.granted_bps = attempt_bps
            reservation.register_callback(self._on_state_change)
            self._notify()
            return attempt_bps
        # Nothing obtainable above the floor: run best effort.
        self.reservation = None
        self.granted_bps = 0.0
        self._notify()
        return 0.0

    def _candidates(self):
        yield self.desired_bps
        available = self._available_now()
        # Leave a sliver so concurrent requesters are not starved by
        # exact-fit rounding.
        fallback = min(self.desired_bps, available * 0.99)
        if fallback >= max(self.minimum_bps, 1.0) and fallback < self.desired_bps:
            yield fallback

    def _on_state_change(self, reservation, old, new) -> None:
        if new in ("EXPIRED", "CANCELLED") and reservation is self.reservation:
            self.reservation = None
            self.granted_bps = 0.0
            if self.renegotiate and not self._closed:
                self.negotiate()
            else:
                self._notify()

    def _notify(self) -> None:
        for listener in list(self.listeners):
            listener(self)

    # -- background upgrades ----------------------------------------------

    def _upgrade_tick(self) -> None:
        """Periodically try to claw back toward the desired bandwidth
        (capacity may have been freed by other reservations expiring)."""
        if self._closed:
            return
        if self.granted_bps < self.desired_bps:
            if self.reservation is None:
                self.negotiate()
            else:
                try:
                    # Transactional: the network manager re-admits at
                    # the new bandwidth and rolls back on failure.
                    self.agent.gara.modify(
                        self.reservation, bandwidth=self.desired_bps
                    )
                    self.granted_bps = self.desired_bps
                    self.upgrades += 1
                    self._notify()
                except ReservationError:
                    pass
        self.sim.call_in(self.upgrade_interval, self._upgrade_tick)

    # -- teardown ----------------------------------------------------------

    def close(self) -> None:
        """Cancel the held reservation and stop renegotiating."""
        self._closed = True
        if self.reservation is not None:
            reservation, self.reservation = self.reservation, None
            reservation.cancel()
        self.granted_bps = 0.0

    def __repr__(self) -> str:
        return (
            f"<AdaptiveQosSession {self.src_rank}->{self.dst_rank} "
            f"granted={self.granted_bps / 1e3:.0f}Kb/s "
            f"of {self.desired_bps / 1e3:.0f}Kb/s>"
        )
