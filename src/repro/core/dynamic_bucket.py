"""Dynamic token-bucket sizing (§5.4's first proposed remedy).

"One approach to this problem is to attempt to compute the 'correct'
token bucket size dynamically, by using application-specific
information and perhaps also dynamic network performance data."

:class:`DynamicBucketSizer` does exactly that: it observes the
application's actual burst sizes (reported by the sending path — the
globus_io wrapper or the application itself), and periodically adjusts
the reservation's bucket depth to cover the observed peak burst with a
safety margin, never dropping below the static ``bandwidth/40`` rule.
The paper's §5.4 caveat applies and is preserved: deeper buckets spend
"scarce system resources", so the sizer also *shrinks* the bucket when
bursts subside.
"""

from __future__ import annotations

from typing import Optional

from ..diffserv.token_bucket import paper_bucket_depth
from ..gara import Reservation, ReservationError
from ..kernel import Simulator

__all__ = ["DynamicBucketSizer"]


class DynamicBucketSizer:
    """Adapts one network reservation's bucket depth to observed bursts.

    Parameters
    ----------
    sim:
        The simulator (for the adjustment timer).
    reservation:
        A network reservation whose spec supports
        ``bucket_depth_bytes`` modification.
    margin:
        Safety factor over the observed peak burst (the paper's static
        rule also over-provisions "to allow for larger bursts").
    interval:
        Seconds between adjustments.
    window:
        Number of recent intervals whose peak is covered; bursts older
        than this stop holding the bucket open.
    """

    def __init__(
        self,
        sim: Simulator,
        reservation: Reservation,
        margin: float = 1.2,
        interval: float = 1.0,
        window: int = 5,
        weather=None,
    ) -> None:
        if margin < 1.0:
            raise ValueError("margin must be >= 1")
        if interval <= 0 or window < 1:
            raise ValueError("bad interval/window")
        self.sim = sim
        self.reservation = reservation
        self.margin = margin
        self.interval = interval
        self.window = window
        #: Optional NetworkWeatherMonitor supplying measured path delay
        #: for the paper's original ``depth = bandwidth * delay`` rule.
        self.weather = weather
        self._interval_peaks = [0.0]
        self._current_burst = 0.0
        self._last_send_end: Optional[float] = None
        self.adjustments = 0
        self.last_depth: Optional[float] = None
        self._timer = sim.call_in(interval, self._adjust)
        self._stopped = False

    # -- observation hooks -------------------------------------------------

    def observe_send(self, nbytes: int, gap_threshold: float = 0.01) -> None:
        """Report an application send of ``nbytes``.

        Consecutive sends closer than ``gap_threshold`` seconds count
        as one burst (a message split over several writes still arrives
        at the policer back-to-back).
        """
        now = self.sim.now
        if (
            self._last_send_end is not None
            and now - self._last_send_end <= gap_threshold
        ):
            self._current_burst += nbytes
        else:
            self._current_burst = float(nbytes)
        self._last_send_end = now
        self._interval_peaks[-1] = max(
            self._interval_peaks[-1], self._current_burst
        )

    # -- control loop ----------------------------------------------------

    @property
    def floor_depth(self) -> float:
        """Depth never drops below the static rule — or, when a weather
        monitor is attached, below ``bandwidth * measured delay`` (the
        §4.3 derivation with live data instead of a guess)."""
        spec = self.reservation.spec
        static = paper_bucket_depth(spec.bandwidth, spec.bucket_divisor)
        if self.weather is not None:
            return self.weather.bucket_depth_for(spec.bandwidth, static)
        return static

    def recommended_depth(self) -> float:
        peak = max(self._interval_peaks)
        return max(self.floor_depth, peak * self.margin)

    def _adjust(self) -> None:
        if self._stopped or self.reservation.state in ("CANCELLED", "EXPIRED"):
            return
        depth = self.recommended_depth()
        if self.last_depth is None or abs(depth - self.last_depth) > 1.0:
            try:
                self.reservation.modify(bucket_depth_bytes=depth)
                self.last_depth = depth
                self.adjustments += 1
            except ReservationError:
                pass  # keep observing; retry next interval
        self._interval_peaks.append(0.0)
        if len(self._interval_peaks) > self.window:
            del self._interval_peaks[0]
        self._timer = self.sim.call_in(self.interval, self._adjust)

    def stop(self) -> None:
        self._stopped = True
        if self._timer is not None:
            self._timer.cancel()
