"""MPICH-GQ: the paper's contribution — QoS for MPI programs via the
attribute mechanism, an MPI QoS agent over GARA, end-system traffic
shaping, and the dynamic/adaptive extensions the paper proposes."""

from .adaptive import AdaptiveQosSession
from .agent import MpiQosAgent
from .dynamic_bucket import DynamicBucketSizer
from .globus_io import GlobusIoSocket
from .mpichgq import MpichGQ
from .qos import (
    QOS_BEST_EFFORT,
    QOS_LOW_LATENCY,
    QOS_PREMIUM,
    QosAttribute,
    protocol_overhead_factor,
)
from .shaping import Shaper
from .weather import NetworkWeatherMonitor, WeatherForecast

__all__ = [
    "AdaptiveQosSession",
    "DynamicBucketSizer",
    "GlobusIoSocket",
    "MpiQosAgent",
    "MpichGQ",
    "NetworkWeatherMonitor",
    "QOS_BEST_EFFORT",
    "QOS_LOW_LATENCY",
    "QOS_PREMIUM",
    "QosAttribute",
    "Shaper",
    "WeatherForecast",
    "protocol_overhead_factor",
]
