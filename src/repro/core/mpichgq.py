"""Top-level MPICH-GQ wiring (the architecture of Fig 2).

:class:`MpichGQ` assembles the full stack over an existing network:
DiffServ domain on the routers, bandwidth broker, GARA with network/
CPU/storage managers, an MPI world over the given hosts, and the MPI
QoS Agent exposing the ``MPICH_QOS`` keyval.
"""

from __future__ import annotations

from typing import List, Optional

from ..diffserv import DiffServDomain
from ..gara import (
    BandwidthBroker,
    DiffServNetworkManager,
    DsrtCpuManager,
    DpssStorageManager,
    Gara,
)
from ..kernel import Simulator
from ..mpi import MpiWorld
from ..net.node import Host, Router
from ..net.topology import GarnetTestbed, Network
from ..transport.tcp import TcpConfig
from .agent import MpiQosAgent

__all__ = ["MpichGQ"]


class MpichGQ:
    """One QoS-enabled MPI deployment."""

    def __init__(
        self,
        network: Network,
        mpi_hosts: List[Host],
        routers: Optional[List[Router]] = None,
        ef_share: float = 0.7,
        eager_threshold: int = 64 * 1024,
        tcp_config: Optional[TcpConfig] = None,
        bucket_divisor: Optional[float] = None,
        resilient: bool = False,
        aqm=None,
    ) -> None:
        """``aqm`` (a :class:`repro.aqm.AqmPolicy`, or None) selects the
        domain's congestion-signalling mode; the default is the paper's
        drop-tail strict-priority configuration."""
        self.network = network
        self.sim: Simulator = network.sim
        if routers is None:
            routers = [n for n in network.nodes.values() if isinstance(n, Router)]
        self.domain = DiffServDomain(self.sim, routers, aqm=aqm)
        #: Write-ahead journal for broker mutations (resilient only).
        self.journal = None
        #: Heartbeat failure detector over the broker (resilient only).
        self.detector = None
        if resilient:
            from ..resilience import Journal

            self.journal = Journal(name="broker-wal")
        self.broker = BandwidthBroker(
            network, ef_share=ef_share, journal=self.journal
        )
        self.gara = Gara(self.sim)
        self.network_manager = DiffServNetworkManager(
            self.sim, self.domain, self.broker
        )
        self.cpu_manager = DsrtCpuManager(self.sim)
        self.storage_manager = DpssStorageManager(self.sim)
        self.gara.register_manager(self.network_manager)
        self.gara.register_manager(self.cpu_manager)
        self.gara.register_manager(self.storage_manager)
        self.world = MpiWorld(
            self.sim,
            mpi_hosts,
            eager_threshold=eager_threshold,
            tcp_config=tcp_config,
        )
        #: Lease supervisor, present only in resilient deployments.
        self.lease_manager = None
        if resilient:
            from ..faults import LeaseManager
            from ..resilience import FailureDetector

            self.lease_manager = LeaseManager(self.gara, network=network)
            # Heartbeat monitoring of the broker: suspicion degrades
            # held leases immediately; observed recovery collapses
            # their backoff so re-admission is event-driven.
            self.detector = FailureDetector(self.sim)
            self.detector.watch(
                "broker",
                self.broker,
                on_down=lambda watch: self.lease_manager.recheck(),
                on_up=lambda watch: self.lease_manager.poke_degraded(),
            )
        self.agent = MpiQosAgent(
            self.world,
            self.gara,
            self.domain,
            bucket_divisor=bucket_divisor,
            lease_manager=self.lease_manager,
        )

    @property
    def qos_keyval(self):
        """The MPICH_QOS keyval for ``attr_put``/``attr_get`` (Fig 3)."""
        return self.agent.keyval

    def enable_end_system_shaping(
        self,
        src_rank: int,
        dst_rank: int,
        rate: float,
        depth_bytes: Optional[float] = None,
    ):
        """Install §5.4's proposed end-system traffic shaping for one
        rank pair: MPI wire traffic is paced to ``rate`` (bits/s) with
        bursts bounded by ``depth_bytes`` (default: 8 KB, comfortably
        under any sane policer bucket). Returns the Shaper."""
        from .shaping import Shaper

        shaper = Shaper(
            self.sim, rate=rate,
            depth_bytes=depth_bytes if depth_bytes is not None else 8192,
        )
        self.world.set_flow_shaper(src_rank, dst_rank, shaper)
        return shaper

    @classmethod
    def on_garnet(
        cls, testbed: GarnetTestbed, ranks_hosts: Optional[List[Host]] = None, **kwargs
    ) -> "MpichGQ":
        """Deploy on the GARNET testbed: rank 0 on the premium source,
        rank 1 on the premium destination (the paper's two-party
        experiments), unless explicit hosts are given."""
        hosts = ranks_hosts or [testbed.premium_src, testbed.premium_dst]
        return cls(
            testbed.network,
            hosts,
            routers=testbed.routers(),
            **kwargs,
        )
