"""The MPI QoS Agent.

"An MPI QoS Agent incorporates the rules used to translate application-
level QoS specifications into the lower-level commands and parameters
required to implement QoS" (§4). Concretely:

* ``attr_put(MPICH_QOS, QosAttribute(...))`` triggers this agent (the
  paper's put-as-action semantics);
* a *premium* request becomes one GARA network reservation per flow
  direction between the communicator's endpoint pairs, sized by the
  protocol-overhead rule, with the TCP 5-tuples bound to it;
* a *low-latency* request marks the flows into the AF class (no
  admission control — it is not a guaranteed service);
* a *best-effort* request (or deleting the attribute, or freeing the
  communicator) cancels whatever the attribute held.

The outcome is written back into the :class:`QosAttribute`, so
``attr_get`` tells the application whether the QoS is in place.

With a :class:`~repro.faults.LeaseManager` attached the agent becomes
fault-tolerant: premium grants are held as renewable leases, and a path
failure degrades the communicator to best-effort (``granted`` flips to
False with an explanatory ``error``) instead of raising, then restores
premium marking once re-admission succeeds.
"""

from __future__ import annotations

from typing import Any, List, Optional, Tuple

from ..diffserv import DiffServDomain, FlowSpec
from ..gara import Gara, NetworkReservationSpec, ReservationError
from ..mpi import Communicator, Intercommunicator, MpiWorld
from ..net.packet import PROTO_TCP
from .qos import QOS_BEST_EFFORT, QOS_LOW_LATENCY, QOS_PREMIUM, QosAttribute

__all__ = ["MpiQosAgent"]


class MpiQosAgent:
    """Binds the MPICH_QOS keyval to GARA and the DiffServ domain."""

    def __init__(
        self,
        world: MpiWorld,
        gara: Gara,
        domain: DiffServDomain,
        bucket_divisor: Optional[float] = None,
        lease_manager: Optional[Any] = None,
    ) -> None:
        self.world = world
        self.gara = gara
        self.domain = domain
        self.bucket_divisor = bucket_divisor
        #: When set, premium grants are supervised leases that survive
        #: revocation and path failure (see :mod:`repro.faults`).
        self.lease_manager = lease_manager
        #: False while the agent's control session is crashed.
        self.alive = True
        # Recovery statistics (scraped by repro.telemetry).
        self.crashes = 0
        self.restarts = 0
        #: The keyval applications use (the paper's ``MPICH_ATM_QOS``).
        self.keyval = world.create_keyval(
            put_hook=self._on_put,
            delete_fn=self._on_delete,
        )
        #: Low-latency flow handles per communicator identity.
        self._af_handles: dict = {}

    # ------------------------------------------------------------------
    # Flow enumeration
    # ------------------------------------------------------------------

    def flow_directions(
        self, comm: Communicator
    ) -> List[Tuple[int, int]]:
        """Ordered (src world rank, dst world rank) pairs that need a
        reservation for this communicator.

        Two-party intercommunicators (the paper's initial focus) yield
        one pair per direction; intracommunicators yield every ordered
        pair (full-mesh, for SPMD codes).
        """
        if isinstance(comm, Intercommunicator):
            pairs = comm.flow_pairs()
            return pairs + [(b, a) for a, b in pairs]
        ranks = comm.group.world_ranks
        return [(a, b) for a in ranks for b in ranks if a != b]

    def _flow_specs(self, src_rank: int, dst_rank: int) -> List[FlowSpec]:
        """The TCP 5-tuple patterns covering rank->rank traffic.

        MPI channels are lazily created from either side, so the
        direction src->dst carries segments of src-initiated
        connections (``dport == dst's listener``) and of dst-initiated
        connections (``sport == src's listener``).
        """
        src = self.world.procs[src_rank]
        dst = self.world.procs[dst_rank]
        return [
            FlowSpec(
                src=src.host.addr, dst=dst.host.addr,
                dport=dst.port, proto=PROTO_TCP,
            ),
            FlowSpec(
                src=src.host.addr, dst=dst.host.addr,
                sport=src.port, proto=PROTO_TCP,
            ),
        ]

    # ------------------------------------------------------------------
    # External management (§4.1: "it can be useful to allow for
    # external management of QoS, by a separate QoS agent")
    # ------------------------------------------------------------------

    def reserve_flows(
        self,
        src_rank: int,
        dst_rank: int,
        bandwidth_bps: float,
        start: Optional[float] = None,
        duration: Optional[float] = None,
        bucket_divisor: Optional[float] = None,
    ):
        """Directly reserve ``bandwidth_bps`` of premium service for the
        rank-to-rank direction, with the MPI flows bound. This is the
        network-level reservation (no protocol-overhead inflation) —
        what the paper's figures put on their x axes."""
        self._require_alive()
        src_host = self.world.procs[src_rank].host
        dst_host = self.world.procs[dst_rank].host
        spec = NetworkReservationSpec(src_host, dst_host, bandwidth_bps)
        divisor = bucket_divisor or self.bucket_divisor
        if divisor is not None:
            spec.bucket_divisor = divisor
        reservation = self.gara.reserve(spec, start=start, duration=duration)
        for flow in self._flow_specs(src_rank, dst_rank):
            self.gara.bind(reservation, flow)
        return reservation

    def lease_flows(
        self,
        src_rank: int,
        dst_rank: int,
        bandwidth_bps: float,
        duration: Optional[float] = None,
        bucket_divisor: Optional[float] = None,
        on_degraded=None,
        on_restored=None,
        on_lost=None,
    ):
        """Like :meth:`reserve_flows` but as a renewable lease that
        survives revocation and path failure. Requires a
        ``lease_manager``; returns the :class:`~repro.faults.Lease`."""
        self._require_alive()
        if self.lease_manager is None:
            raise ReservationError("agent has no lease manager attached")
        src_host = self.world.procs[src_rank].host
        dst_host = self.world.procs[dst_rank].host
        spec = NetworkReservationSpec(src_host, dst_host, bandwidth_bps)
        divisor = bucket_divisor or self.bucket_divisor
        if divisor is not None:
            spec.bucket_divisor = divisor
        return self.lease_manager.lease(
            spec,
            duration=duration,
            bindings=self._flow_specs(src_rank, dst_rank),
            on_degraded=on_degraded,
            on_restored=on_restored,
            on_lost=on_lost,
        )

    # ------------------------------------------------------------------
    # Keyval hooks
    # ------------------------------------------------------------------

    def _on_put(self, comm: Communicator, keyval, attr: QosAttribute) -> None:
        if not isinstance(attr, QosAttribute):
            raise TypeError(
                f"the MPICH_QOS attribute takes a QosAttribute, got {attr!r}"
            )
        if not self.alive:
            # attr_put never fails MPI-side; the attribute just records
            # that no QoS could be arranged.
            attr.granted = False
            attr.error = "QoS agent control session is down"
            return
        if attr.qosclass == QOS_BEST_EFFORT:
            attr.granted = True  # vacuously: no QoS requested
            return
        if attr.qosclass == QOS_LOW_LATENCY:
            self._grant_low_latency(comm, attr)
            return
        if attr.qosclass == QOS_PREMIUM:
            self._grant_premium(comm, attr)
            return
        attr.granted = False
        attr.error = f"unknown QoS class {attr.qosclass}"

    def _on_delete(self, comm: Communicator, keyval, attr: QosAttribute) -> None:
        for reservation in attr.reservations:
            reservation.cancel()
        attr.reservations.clear()
        for lease in attr.leases:
            lease.close()
        attr.leases.clear()
        handle = self._af_handles.pop(id(attr), None)
        if handle is not None:
            self.domain.remove_premium_flow(handle)
        attr.granted = False

    # ------------------------------------------------------------------
    # Grant paths
    # ------------------------------------------------------------------

    def _emit_grant(self, name: str, comm: Communicator, **fields) -> None:
        sim = self.world.sim
        tel = sim.telemetry
        if tel is not None and tel.trace is not None:
            tel.trace.emit(sim.now, "qos", name, comm=comm.name, **fields)

    def _grant_premium(self, comm: Communicator, attr: QosAttribute) -> None:
        if attr.bandwidth_kbps <= 0:
            attr.granted = False
            attr.error = "premium QoS needs a positive bandwidth"
            self._emit_grant("premium_rejected", comm, error=attr.error)
            return
        net_bw = attr.network_bandwidth_bps()
        requests = []
        bindings = []
        for src_rank, dst_rank in self.flow_directions(comm):
            src_host = self.world.procs[src_rank].host
            dst_host = self.world.procs[dst_rank].host
            if src_host is dst_host:
                continue  # same-node traffic never crosses the network
            spec = NetworkReservationSpec(src_host, dst_host, net_bw)
            if self.bucket_divisor is not None:
                spec.bucket_divisor = self.bucket_divisor
            requests.append((spec, None, None))
            bindings.append(self._flow_specs(src_rank, dst_rank))
        if self.lease_manager is not None:
            self._grant_premium_leased(attr, requests, bindings)
            return
        try:
            reservations = self.gara.reserve_many(requests)
        except ReservationError as exc:
            attr.granted = False
            attr.error = str(exc)
            self._emit_grant("premium_rejected", comm, error=attr.error)
            return
        for reservation, flow_specs in zip(reservations, bindings):
            for flow in flow_specs:
                self.gara.bind(reservation, flow)
        attr.reservations = reservations
        attr.granted = True
        attr.error = None
        self._emit_grant(
            "premium_granted", comm,
            bandwidth_bps=net_bw, flows=len(reservations),
        )

    def _grant_premium_leased(
        self, attr: QosAttribute, requests, bindings
    ) -> None:
        """Premium via renewable leases: a fault degrades the attribute
        to best-effort (``granted`` False) instead of raising, and
        re-admission flips it back."""

        def degraded(lease, reason: str) -> None:
            attr.granted = False
            attr.error = f"premium degraded to best-effort: {reason}"

        def restored(lease) -> None:
            if all(l.held for l in attr.leases):
                attr.granted = True
                attr.error = None

        def lost(lease, exc) -> None:
            attr.granted = False
            attr.error = str(exc)

        attr.leases = [
            self.lease_manager.lease(
                spec,
                duration=duration,
                bindings=flow_specs,
                on_degraded=degraded,
                on_restored=restored,
                on_lost=lost,
            )
            for (spec, _start, duration), flow_specs in zip(requests, bindings)
        ]
        stuck = next((l for l in attr.leases if not l.held), None)
        if stuck is None:  # vacuously granted when no flow crosses the net
            attr.granted = True
            attr.error = None
        else:
            attr.granted = False
            attr.error = stuck.last_error

    def _grant_low_latency(self, comm: Communicator, attr: QosAttribute) -> None:
        specs: List[FlowSpec] = []
        for src_rank, dst_rank in self.flow_directions(comm):
            if self.world.procs[src_rank].host is self.world.procs[dst_rank].host:
                continue
            specs.extend(self._flow_specs(src_rank, dst_rank))
        if specs:
            handle = self.domain.install_low_latency_flow(specs)
            self._af_handles[id(attr)] = handle
        attr.granted = True
        attr.error = None
        self._emit_grant("low_latency_granted", comm, flows=len(specs))

    # ------------------------------------------------------------------
    # Crash model
    # ------------------------------------------------------------------

    def _require_alive(self) -> None:
        if not self.alive:
            raise ReservationError("QoS agent control session is down")

    def crash(self) -> None:
        """Kill the agent's control session: QoS requests are refused
        and lease supervision freezes (no heartbeats, no retries) until
        :meth:`restart`. Installed enforcement keeps running."""
        if not self.alive:
            return
        self.alive = False
        self.crashes += 1
        if self.lease_manager is not None:
            self.lease_manager.suspend()

    def restart(self) -> None:
        """Bring the control session back and thaw lease supervision —
        held leases resume heartbeating, degraded leases immediately
        re-attempt admission."""
        if self.alive:
            return
        self.alive = True
        self.restarts += 1
        if self.lease_manager is not None:
            self.lease_manager.resume()
