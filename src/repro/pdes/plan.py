"""Shard plans: who owns which node, and what the lookahead is."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Tuple

from ..net.topology import Network, partition_topology

__all__ = ["ShardPlan", "make_plan"]


@dataclass(frozen=True)
class ShardPlan:
    """A partition of one topology across ``n_shards`` workers.

    ``lookahead`` is the minimum propagation delay over the cut links:
    a message generated at time *t* on one shard cannot arrive on
    another before ``t + lookahead``, which is what lets every shard
    safely process a window of that width without hearing from its
    peers. ``inf`` when nothing is cut (one shard, or disconnected
    components).
    """

    n_shards: int
    #: node name -> shard index, for every node in the network.
    assignment: Dict[str, int]
    #: Minimum propagation delay over the cut links (seconds).
    lookahead: float
    #: Indices into ``network.links`` of the links the partition cuts.
    cut_links: Tuple[int, ...]

    def owner(self, name: str) -> int:
        return self.assignment[name]

    def owns(self, shard_id: int, name: str) -> bool:
        return self.assignment[name] == shard_id

    def shard_sizes(self) -> Tuple[int, ...]:
        sizes = [0] * self.n_shards
        for shard in self.assignment.values():
            sizes[shard] += 1
        return tuple(sizes)


def make_plan(
    network: Network,
    n_shards: int,
    hint: Optional[Dict[str, int]] = None,
) -> ShardPlan:
    """Partition ``network`` and derive the cut set and lookahead.

    Conservative synchronization needs strictly positive lookahead, so
    a partition that cuts a zero-delay link is rejected — repartition
    (or pass a ``hint``) so such links stay internal to a shard.
    """
    assignment = partition_topology(network, n_shards, hint=hint)
    cut = []
    lookahead = float("inf")
    for idx, link in enumerate(network.links):
        if assignment[link.node_a.name] != assignment[link.node_b.name]:
            if link.delay <= 0.0:
                raise ValueError(
                    f"partition cuts zero-delay link "
                    f"{link.node_a.name}--{link.node_b.name}; conservative "
                    "PDES needs positive lookahead on every cut link"
                )
            cut.append(idx)
            if link.delay < lookahead:
                lookahead = link.delay
    return ShardPlan(
        n_shards=n_shards,
        assignment=assignment,
        lookahead=lookahead,
        cut_links=tuple(cut),
    )
