"""Shard-count-invariance gate: ``python -m repro.pdes.check``.

Runs one scenario at each requested shard count and byte-compares the
deterministically merged outputs (and the per-run total event count,
which a sharded run must conserve exactly). Exit status 0 when every
layout reproduces the 1-shard bytes, 1 otherwise — CI runs this on a
one-core container, where the fork backend still exercises the real
cross-process protocol even though it yields no speedup.

Examples::

    python -m repro.pdes.check --scenario garnet_small --shards 1,2,4
    python -m repro.pdes.check --scenario fig1 --shards 1,2 --duration 4
"""

from __future__ import annotations

import argparse
import json
import sys

from .runtime import run_scenario

__all__ = ["main"]


def _first_diff(a: str, b: str, context: int = 60) -> str:
    n = min(len(a), len(b))
    for i in range(n):
        if a[i] != b[i]:
            lo = max(0, i - context)
            return (
                f"first differing byte at offset {i}:\n"
                f"  reference: ...{a[lo:i + context]!r}\n"
                f"  candidate: ...{b[lo:i + context]!r}"
            )
    return f"payload lengths differ: {len(a)} vs {len(b)}"


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.pdes.check",
        description="verify N-shard PDES runs are byte-identical to 1-shard",
    )
    parser.add_argument("--scenario", default="garnet_small")
    parser.add_argument(
        "--shards",
        default="1,2,4",
        help="comma-separated shard counts; the first is the reference",
    )
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument(
        "--duration", type=float, default=None,
        help="override the scenario's run length (seconds)",
    )
    parser.add_argument(
        "--backend", default="auto", choices=["auto", "inline", "fork"],
    )
    parser.add_argument(
        "--json", action="store_true",
        help="emit the per-layout summaries as JSON on stdout",
    )
    args = parser.parse_args(argv)

    counts = [int(s) for s in args.shards.split(",") if s.strip()]
    if not counts:
        parser.error("--shards must name at least one count")

    reference = None
    ref_events = None
    summaries = []
    failed = False
    for shards in counts:
        result = run_scenario(
            args.scenario,
            seed=args.seed,
            shards=shards,
            backend=args.backend,
            duration=args.duration,
        )
        payload = json.dumps(result.merged, sort_keys=True)
        summaries.append(result.summary())
        line = (
            f"{args.scenario} x{shards} [{result.backend}]: "
            f"{result.total_events} events, {result.windows} windows, "
            f"{sum(result.boundary_messages)} boundary msgs, "
            f"{result.wall_s:.2f}s"
        )
        if reference is None:
            reference, ref_events = payload, result.total_events
            print(f"{line} (reference)")
            continue
        ok = payload == reference and result.total_events == ref_events
        print(f"{line} -> {'OK' if ok else 'MISMATCH'}")
        if not ok:
            failed = True
            if result.total_events != ref_events:
                print(
                    f"  event count diverged: {result.total_events} "
                    f"vs {ref_events}",
                    file=sys.stderr,
                )
            if payload != reference:
                print("  " + _first_diff(reference, payload), file=sys.stderr)
    if args.json:
        print(json.dumps(summaries, indent=2, sort_keys=True))
    return 1 if failed else 0


if __name__ == "__main__":
    sys.exit(main())
