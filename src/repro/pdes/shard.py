"""One PDES worker: a full topology build with only owned actors live.

Every shard builds the *entire* scenario from the same seed — topology,
control plane, reservations — so shared state (routes, DiffServ
conditioners, broker tables) is identical everywhere without any
cross-shard RPC. What differs per shard is which **actors** run:
scenario builders install traffic sources, sinks, and application
processes only on nodes the shard owns. The cut-link interfaces owned
by this shard get their :attr:`Interface.remote_egress` hook pointed at
the shard's outbox; the cut-link interfaces owned by peers get a
tripwire that turns any accidental transmission from a non-owned node
into a hard error instead of silent divergence.

Boundary messages are ``(arrival_time, link, direction, channel_seq,
pickled packet)``. The channel sequence number — one counter per
directed cut link — preserves the sender's generation order, so the
receiving shard can replay same-channel messages in exactly the order
serial execution would have pushed them, regardless of how the
transport interleaved them.
"""

from __future__ import annotations

import pickle
from itertools import count
from typing import Callable, List, Optional, Tuple

from ..kernel import Simulator
from ..kernel.events import NORMAL
from ..kernel.simulator import SimulationError
from .plan import ShardPlan

__all__ = ["BoundaryMessage", "ShardRunner"]

#: (dest_shard, arrival_time, link_index, direction, channel_seq, blob).
#: ``direction`` 0 is node_a -> node_b, 1 the reverse.
BoundaryMessage = Tuple[int, float, int, int, int, bytes]


class ShardRunner:
    """Builds and advances one shard's simulator."""

    def __init__(
        self,
        scenario,
        seed: int,
        plan: ShardPlan,
        shard_id: int,
        params: Optional[dict] = None,
    ) -> None:
        if not 0 <= shard_id < plan.n_shards:
            raise ValueError(f"shard_id {shard_id} outside 0..{plan.n_shards - 1}")
        self.scenario = scenario
        self.plan = plan
        self.shard_id = shard_id
        self.sim = Simulator(seed=seed)
        assignment = plan.assignment

        def owns(name: str) -> bool:
            return assignment[name] == shard_id

        self.owns: Callable[[str], bool] = owns
        self.handle = scenario.build(self.sim, owns, **(params or {}))
        self.boundary_out = 0
        self.boundary_in = 0
        self._outbox: List[BoundaryMessage] = []
        #: (link, direction) -> receiving interface on this shard.
        self._ingress = {}
        if plan.n_shards > 1:
            network = self.handle.network
            for link_idx in plan.cut_links:
                record = network.links[link_idx]
                a_shard = assignment[record.node_a.name]
                b_shard = assignment[record.node_b.name]
                self._wire_egress(
                    link_idx, 0, record.iface_ab, b_shard, a_shard == shard_id
                )
                self._wire_egress(
                    link_idx, 1, record.iface_ba, a_shard, b_shard == shard_id
                )
                if b_shard == shard_id:
                    self._ingress[(link_idx, 0)] = record.iface_ba
                if a_shard == shard_id:
                    self._ingress[(link_idx, 1)] = record.iface_ab

    def _wire_egress(
        self, link_idx: int, direction: int, iface, dest_shard: int, owned: bool
    ) -> None:
        if not owned:
            # The node at this end belongs to a peer shard: nothing on
            # this shard should ever transmit from it. A scenario bug
            # that does must fail loudly, not silently double-deliver.
            def tripwire(arrival: float, packet, _iface=iface) -> None:
                raise SimulationError(
                    f"non-owned interface {_iface!r} transmitted across a "
                    "shard boundary: scenario actors must be ownership-gated"
                )

            iface.remote_egress = tripwire
            return
        chan_seq = count()

        def egress(
            arrival: float,
            packet,
            _dest=dest_shard,
            _link=link_idx,
            _dir=direction,
            _next=chan_seq,
        ) -> None:
            # Append via the attribute, not a captured list: run_window
            # swaps self._outbox for a fresh list every window.
            self.boundary_out += 1
            self._outbox.append(
                (_dest, arrival, _link, _dir, next(_next),
                 pickle.dumps(packet, pickle.HIGHEST_PROTOCOL))
            )

        iface.remote_egress = egress

    # -- window protocol -------------------------------------------------

    def next_time(self) -> float:
        """Earliest pending local event time (``inf`` when idle)."""
        return self.sim.peek()

    def inject(self, messages: List[Tuple[float, int, int, int, bytes]]) -> None:
        """Deliver boundary messages from peer shards.

        Messages are sorted by ``(arrival, link, direction, channel
        seq)`` before scheduling, so the local sequence numbers they
        receive — and therefore all downstream tie-breaking — do not
        depend on the interleaving in which peers produced them.
        Packets are deserialized here: each shard owns a private copy,
        exactly as under process isolation (the in-process backend
        relies on this for byte-identity with the fork backend).
        """
        if not messages:
            return
        messages.sort(key=lambda m: (m[0], m[1], m[2], m[3]))
        inject = self.sim.inject
        ingress = self._ingress
        loads = pickle.loads
        for arrival, link_idx, direction, _seq, blob in messages:
            iface = ingress[(link_idx, direction)]
            inject(arrival, NORMAL, iface._deliver_arrival, loads(blob))
        self.boundary_in += len(messages)

    def run_window(self, limit: float) -> List[BoundaryMessage]:
        """Advance through ``[now, limit)`` and return the outbox."""
        self.sim.run_window(limit)
        out, self._outbox = self._outbox, []
        return out

    def finalize(self, until: float) -> None:
        """Advance the clock to the end of the run.

        By the time the coordinator calls this, every event at or
        before ``until`` has been processed (the barrier loop only
        terminates once the global next-event time passes ``until``),
        so this matches serial ``run(until=...)`` semantics: the clock
        lands exactly on ``until`` and later-scheduled work stays
        unprocessed.
        """
        self.sim.run(until=until)

    def collect(self) -> dict:
        """The scenario's per-shard partial result."""
        return self.scenario.collect(self.handle)

    @property
    def registry(self):
        """The shard's metrics registry, if the scenario keeps one."""
        return getattr(self.handle, "registry", None)
